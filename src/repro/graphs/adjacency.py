"""Mutable undirected graph with neighbour-of-neighbour queries.

The DDSR (Dynamic Distributed Self-Repairing) construction in the paper is
defined over an undirected graph where every node additionally knows the
identities of its neighbours' neighbours.  This module provides that data
structure.  Node identifiers are arbitrary hashable objects -- the overlay
layer uses ``.onion`` address strings, the experiment harness uses integers.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple

NodeId = Hashable


class GraphError(ValueError):
    """Raised for invalid graph operations (missing nodes, self-loops...)."""


class UndirectedGraph:
    """A simple undirected graph backed by adjacency sets.

    Self-loops are rejected; parallel edges collapse into a single edge.
    """

    def __init__(self, nodes: Iterable[NodeId] = (), edges: Iterable[Tuple[NodeId, NodeId]] = ()) -> None:
        self._adjacency: Dict[NodeId, Set[NodeId]] = {}
        #: Incremented on every structural change; derived representations
        #: (e.g. the fast backend's cached CSR arrays) key their caches on it.
        self._mutations: int = 0
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    @property
    def mutation_stamp(self) -> int:
        """Counter of structural changes (nodes/edges added or removed)."""
        return self._mutations

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId) -> None:
        """Add ``node`` (no-op if already present)."""
        if node not in self._adjacency:
            self._adjacency[node] = set()
            self._mutations += 1

    def add_edge(self, u: NodeId, v: NodeId) -> bool:
        """Add the undirected edge ``(u, v)``.

        Returns ``True`` when a new edge was created, ``False`` if it already
        existed.  Both endpoints are created if missing.
        """
        if u == v:
            raise GraphError(f"self-loops are not allowed: {u!r}")
        self.add_node(u)
        self.add_node(v)
        if v in self._adjacency[u]:
            return False
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._mutations += 1
        return True

    def remove_edge(self, u: NodeId, v: NodeId) -> bool:
        """Remove the edge ``(u, v)`` if it exists.  Returns whether it did."""
        if u not in self._adjacency or v not in self._adjacency:
            return False
        if v not in self._adjacency[u]:
            return False
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._mutations += 1
        return True

    def remove_node(self, node: NodeId) -> List[NodeId]:
        """Remove ``node`` and every incident edge.

        Returns the list of former neighbours (in sorted-by-repr order for
        determinism), which is exactly what the DDSR repair step needs.
        """
        if node not in self._adjacency:
            raise GraphError(f"node {node!r} not in graph")
        neighbors = sorted(self._adjacency[node], key=repr)
        for neighbor in neighbors:
            self._adjacency[neighbor].discard(node)
        del self._adjacency[node]
        self._mutations += 1
        return neighbors

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Whether the undirected edge ``(u, v)`` is present."""
        return u in self._adjacency and v in self._adjacency[u]

    def nodes(self) -> List[NodeId]:
        """All node identifiers (in insertion order)."""
        return list(self._adjacency)

    def edges(self) -> List[Tuple[NodeId, NodeId]]:
        """Every edge exactly once."""
        seen: Set[Tuple[NodeId, NodeId]] = set()
        result: List[Tuple[NodeId, NodeId]] = []
        for u, neighbors in self._adjacency.items():
            for v in neighbors:
                key = (u, v) if repr(u) <= repr(v) else (v, u)
                if key in seen:
                    continue
                seen.add(key)
                result.append(key)
        return result

    def number_of_nodes(self) -> int:
        """Count of nodes."""
        return len(self._adjacency)

    def number_of_edges(self) -> int:
        """Count of undirected edges."""
        return sum(len(neighbors) for neighbors in self._adjacency.values()) // 2

    def neighbors(self, node: NodeId) -> Set[NodeId]:
        """A copy of the neighbour set of ``node``."""
        if node not in self._adjacency:
            raise GraphError(f"node {node!r} not in graph")
        return set(self._adjacency[node])

    def degree(self, node: NodeId) -> int:
        """Number of neighbours of ``node``."""
        if node not in self._adjacency:
            raise GraphError(f"node {node!r} not in graph")
        return len(self._adjacency[node])

    def degrees(self) -> Dict[NodeId, int]:
        """Mapping of every node to its degree."""
        return {node: len(neighbors) for node, neighbors in self._adjacency.items()}

    def max_degree(self) -> int:
        """Largest degree in the graph (0 for an empty graph)."""
        if not self._adjacency:
            return 0
        return max(len(neighbors) for neighbors in self._adjacency.values())

    def neighbors_of_neighbors(self, node: NodeId) -> Set[NodeId]:
        """The NoN set of ``node``: peers of peers, excluding the node itself.

        This is the "knowledge of Neighbors-of-Neighbor" the paper's DDSR
        construction relies on: each bot knows who its peers are peered with,
        so that when a peer disappears the survivors can immediately link up.
        """
        if node not in self._adjacency:
            raise GraphError(f"node {node!r} not in graph")
        result: Set[NodeId] = set()
        for neighbor in self._adjacency[node]:
            result.update(self._adjacency[neighbor])
        result.discard(node)
        result.difference_update(self._adjacency[node])
        return result

    def common_neighbors(self, u: NodeId, v: NodeId) -> Set[NodeId]:
        """Nodes adjacent to both ``u`` and ``v``."""
        if u not in self._adjacency or v not in self._adjacency:
            raise GraphError("both endpoints must be in the graph")
        return self._adjacency[u] & self._adjacency[v]

    def adjacency_view(self, node: NodeId) -> frozenset:
        """Immutable view of a node's neighbour set (no copy of the graph)."""
        if node not in self._adjacency:
            raise GraphError(f"node {node!r} not in graph")
        return frozenset(self._adjacency[node])

    # ------------------------------------------------------------------
    # Copy / iteration helpers
    # ------------------------------------------------------------------
    def copy(self) -> "UndirectedGraph":
        """A deep copy of the adjacency structure."""
        clone = UndirectedGraph()
        clone._adjacency = {node: set(neighbors) for node, neighbors in self._adjacency.items()}
        return clone

    def subgraph(self, nodes: Iterable[NodeId]) -> "UndirectedGraph":
        """The induced subgraph on ``nodes``.

        Node insertion order follows *this* graph's order, not the iteration
        order of ``nodes``: the sampled metric estimators draw sources from
        ``nodes()``, so the subgraph must be canonical for a given membership
        set no matter how the caller assembled it (e.g. both graph backends
        computing the same largest component by different algorithms).
        """
        keep = set(nodes)
        sub = UndirectedGraph()
        for node in self._adjacency:
            if node in keep:
                sub.add_node(node)
        for node in sub._adjacency:
            for neighbor in self._adjacency[node]:
                if neighbor in keep:
                    sub.add_edge(node, neighbor)
        return sub

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._adjacency)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UndirectedGraph(nodes={self.number_of_nodes()}, "
            f"edges={self.number_of_edges()})"
        )
