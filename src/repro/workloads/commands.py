"""Streams of benign stand-in C&C commands.

The execution stage in the paper covers DDoS, spam and coin mining; the
simulator obviously performs none of those.  The workload generator instead
produces harmless placeholder verbs ("noop", "report-status",
"simulated-task") with realistic pacing, so command propagation, signing and
replay protection can be exercised end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

#: The benign placeholder verbs the simulated botmaster issues.
BENIGN_COMMANDS: Tuple[str, ...] = (
    "noop",
    "report-status",
    "simulated-task",
    "update-peer-list",
    "rotate-now",
)


@dataclass
class CommandWorkload:
    """A reproducible schedule of (time, verb, arguments) command triples."""

    commands_per_day: float = 4.0
    duration_days: float = 2.0
    seed: int = 0
    verbs: Tuple[str, ...] = BENIGN_COMMANDS
    _schedule: List[Tuple[float, str, Dict[str, str]]] = field(default_factory=list, repr=False)

    def generate(self) -> List[Tuple[float, str, Dict[str, str]]]:
        """Build (or rebuild) the schedule and return it."""
        rng = random.Random(self.seed)
        self._schedule = []
        if self.commands_per_day <= 0 or self.duration_days <= 0:
            return self._schedule
        total = max(1, int(round(self.commands_per_day * self.duration_days)))
        horizon = self.duration_days * 86400.0
        times = sorted(rng.uniform(0.0, horizon) for _ in range(total))
        for index, time in enumerate(times):
            verb = rng.choice(self.verbs)
            self._schedule.append((time, verb, {"sequence": str(index)}))
        return self._schedule

    def __iter__(self) -> Iterator[Tuple[float, str, Dict[str, str]]]:
        if not self._schedule:
            self.generate()
        return iter(self._schedule)

    def __len__(self) -> int:
        if not self._schedule:
            self.generate()
        return len(self._schedule)
