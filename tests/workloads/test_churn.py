"""Tests for the churn model."""

import pytest

from repro.workloads.churn import ChurnKind, ChurnModel


class TestChurnModel:
    def test_events_sorted_by_time(self):
        events = ChurnModel(join_rate=5.0, leave_rate=5.0, seed=1).generate(duration_hours=10.0)
        times = [event.time for event in events]
        assert times == sorted(times)

    def test_event_counts_near_expectation(self):
        model = ChurnModel(join_rate=4.0, leave_rate=4.0, seed=2)
        events = model.generate(duration_hours=50.0)
        expected = model.expected_events(50.0)
        assert 0.5 * expected < len(events) < 1.5 * expected

    def test_join_events_have_unique_labels(self):
        events = ChurnModel(join_rate=5.0, leave_rate=0.0, seed=3).generate(duration_hours=20.0)
        labels = [event.label for event in events if event.kind is ChurnKind.JOIN]
        assert len(labels) == len(set(labels))

    def test_zero_rates_produce_no_events(self):
        assert ChurnModel(join_rate=0.0, leave_rate=0.0).generate(10.0) == []

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            ChurnModel().generate(-1.0)

    def test_reproducible_for_seed(self):
        a = ChurnModel(seed=7).generate(10.0)
        b = ChurnModel(seed=7).generate(10.0)
        assert [(e.time, e.kind) for e in a] == [(e.time, e.kind) for e in b]

    def test_times_within_duration(self):
        events = ChurnModel(join_rate=10.0, leave_rate=10.0, seed=4).generate(duration_hours=5.0)
        assert all(0.0 <= event.time <= 5.0 * 3600.0 for event in events)
