"""Event and event-queue primitives for the discrete-event engine.

Events are ordered by ``(timestamp, priority, sequence)``: the sequence number
guarantees a deterministic total order even when many events share a timestamp,
which matters because the resilience experiments (Figures 4--6 of the paper)
must be exactly reproducible for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Attributes
    ----------
    timestamp:
        Simulated time at which the event fires.
    priority:
        Tie-breaker for events sharing a timestamp; lower fires first.
    sequence:
        Monotonic insertion counter ensuring deterministic ordering.
    action:
        Zero-argument callable executed when the event fires.
    label:
        Human-readable tag used in traces and error messages.
    cancelled:
        Cancelled events stay in the heap but are skipped when popped.
    """

    timestamp: float
    priority: int
    sequence: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when it is reached."""
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        timestamp: float,
        action: Callable[[], Any],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at ``timestamp`` and return its :class:`Event`."""
        event = Event(
            timestamp=timestamp,
            priority=priority,
            sequence=next(self._counter),
            action=action,
            label=label,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the next non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        self._live = 0
        return None

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next non-cancelled event, without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            self._live = 0
            return None
        return self._heap[0].timestamp

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        if not event.cancelled:
            event.cancel()
            self._live = max(0, self._live - 1)

    def drain(self) -> Iterator[Event]:
        """Yield remaining events in firing order (used by tests)."""
        while True:
            event = self.pop()
            if event is None:
                return
            yield event

    def clear(self) -> None:
        """Drop every scheduled event."""
        self._heap.clear()
        self._live = 0
