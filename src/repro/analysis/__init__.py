"""Experiment harness: one runner per paper table/figure plus reporting.

* :mod:`~repro.analysis.experiments` -- reusable runners for Figure 3 (repair
  walk-through), Figure 4 (centrality with/without pruning), Figure 5 (DDSR vs
  normal graph), Figure 6 (simultaneous-takedown partition threshold), the
  SOAP campaign, the HSDir interception mitigation, the SuperOnion arms race
  and the PoW/rate-limit trade-off.
* :mod:`~repro.analysis.table1` -- the Table I comparison (crypto, signing,
  replay) augmented with empirical message-distinguishability measurements.
* :mod:`~repro.analysis.reporting` -- plain-text tables and series formatting
  used by the benchmarks and EXPERIMENTS.md.
* :mod:`~repro.analysis.sweep` -- a small parameter-sweep helper.
"""

from repro.analysis.experiments import (
    Fig3Result,
    Fig4Result,
    Fig5Result,
    Fig6Result,
    HsdirExperimentResult,
    PowTradeoffPoint,
    SoapExperimentResult,
    run_fig3_walkthrough,
    run_fig4_centrality,
    run_fig5_resilience,
    run_fig5_resilience_sweep,
    run_fig6_partition_threshold,
    run_hsdir_interception,
    run_pow_tradeoff,
    run_soap_campaign,
    run_superonion_vs_soap,
)
from repro.analysis.export import (
    export_fig4,
    export_fig5,
    export_fig6,
    write_json,
    write_rows_csv,
    write_series_csv,
)
from repro.analysis.reporting import format_series, format_table, render_result_rows
from repro.analysis.sweep import SweepResult, parameter_sweep, sweep_scenario
from repro.analysis.table1 import build_table1

__all__ = [
    "Fig3Result",
    "Fig4Result",
    "Fig5Result",
    "Fig6Result",
    "SoapExperimentResult",
    "HsdirExperimentResult",
    "PowTradeoffPoint",
    "run_fig3_walkthrough",
    "run_fig4_centrality",
    "run_fig5_resilience",
    "run_fig5_resilience_sweep",
    "run_fig6_partition_threshold",
    "run_soap_campaign",
    "run_hsdir_interception",
    "run_superonion_vs_soap",
    "run_pow_tradeoff",
    "build_table1",
    "format_table",
    "format_series",
    "render_result_rows",
    "parameter_sweep",
    "sweep_scenario",
    "SweepResult",
    "write_json",
    "write_series_csv",
    "write_rows_csv",
    "export_fig4",
    "export_fig5",
    "export_fig6",
]
