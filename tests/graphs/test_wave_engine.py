"""Adaptive multi-word frontier engine: parity, dispatch, and tuning knobs.

The engine under test is :func:`repro.graphs.fast._batched_wave` and the
machinery around it: multi-word (>64-source) waves, the per-level
dense / sparse / pull step dispatch, the wave-width auto-tuner, and the
``REPRO_BFS_BATCH`` / ``backend.use_bfs_batch`` override plumbing.  Every
configuration must return results identical to the pure-Python reference in
:mod:`repro.graphs.metrics` -- the knobs tune wall-clock time, never values.

The 100k-node full-sample closeness golden lives in
``benchmarks/bench_graph_kernels.py`` (the benchmark builds that graph
anyway); here the same contracts are pinned at tier-1-friendly sizes.
"""

from __future__ import annotations

import math
import random

import pytest

np = pytest.importorskip("numpy")

from repro.graphs import backend, fast, metrics
from repro.graphs.adjacency import UndirectedGraph
from repro.graphs.generators import k_regular_graph, ring_graph

#: Full-population (every node a source) mean closeness on
#: ``k_regular_graph(800, 6, seed=11)`` -- pinned under both backends.
FULL_POPULATION_GOLDEN_800 = 0.24697170483624897

#: Sampled (96 sources) and full-population mean closeness on
#: ``k_regular_graph(2500, 10, seed=77)`` -- a graph past ``AUTO_THRESHOLD``,
#: so the ``auto`` policy routes it through the wave engine.
SAMPLED_GOLDEN_2500 = 0.2712470362069424
FULL_POPULATION_GOLDEN_2500 = 0.27123199657863245


def _path_graph(n: int) -> UndirectedGraph:
    return UndirectedGraph(edges=[(i, i + 1) for i in range(n - 1)])


def _partitioned(n: int, k: int, seed: int) -> UndirectedGraph:
    graph = k_regular_graph(n, k, seed=seed)
    rng = random.Random(seed + 1)
    for victim in rng.sample(graph.nodes(), n // 3):
        graph.remove_node(victim)
    return graph


def step_zoo():
    """Graphs spanning every step regime the dispatcher can pick."""
    return [
        ("k-regular", k_regular_graph(260, 8, seed=21)),
        ("ring", ring_graph(180)),
        ("path", _path_graph(150)),
        ("star", UndirectedGraph(edges=[(0, leaf) for leaf in range(1, 120)])),
        ("partitioned", _partitioned(240, 6, seed=23)),
    ]


STEP_ZOO = step_zoo()


@pytest.fixture(params=STEP_ZOO, ids=[name for name, _ in STEP_ZOO])
def step_graph(request):
    return request.param[1]


# ----------------------------------------------------------------------
# >64-source waves
# ----------------------------------------------------------------------
def test_multiword_wave_matches_per_source_reference():
    """300 sources in one 5-word wave reproduce per-source BFS exactly."""
    graph = k_regular_graph(300, 6, seed=31)
    sources = graph.nodes()
    with backend.using_bfs_batch(512):
        batched = fast.shortest_path_lengths_from_many(graph, sources)
    for source, distances in zip(sources, batched):
        assert distances == metrics.shortest_path_lengths_from(graph, source)


def test_multiword_wave_width_is_actually_used():
    graph = k_regular_graph(200, 6, seed=32)
    csr = fast.csr_of(graph)
    sources = np.arange(200, dtype=np.int64)
    levels = list(fast._batched_wave(csr, sources))
    assert levels, "wave advanced no level"
    for rows, words in levels:
        assert words.shape[1] == 4  # ceil(200 / 64) frontier words per node
        assert rows.size == words.shape[0]


@pytest.mark.parametrize("forced", [64, 100, 128, 512])
def test_forced_wave_widths_identical(forced):
    """Any forced wave width returns the same estimator values."""
    graph = k_regular_graph(300, 8, seed=33)
    expected_diameter = metrics.diameter(graph, sample_size=40, rng=random.Random(3))
    expected_closeness = metrics.average_closeness_centrality(
        graph, sample_size=40, rng=random.Random(4)
    )
    expected_aspl = metrics.average_shortest_path_length(
        graph, sample_size=40, rng=random.Random(5)
    )
    with backend.using_bfs_batch(forced):
        assert fast.diameter(graph, sample_size=40, rng=random.Random(3)) == (
            expected_diameter
        )
        assert fast.average_closeness_centrality(
            graph, sample_size=40, rng=random.Random(4)
        ) == expected_closeness
        assert fast.average_shortest_path_length(
            graph, sample_size=40, rng=random.Random(5)
        ) == expected_aspl


def test_multiword_wave_after_incremental_patch():
    """Ghost-carrying (delta-patched) snapshots run wide waves correctly."""
    graph = k_regular_graph(220, 6, seed=34)
    fast.csr_of(graph)  # prime the mirror so mutations patch it
    rng = random.Random(35)
    for _ in range(12):
        graph.remove_node(rng.choice(graph.nodes()))
    with backend.using_bfs_batch(256):
        batched = fast.shortest_path_lengths_from_many(graph, graph.nodes())
    for source, distances in zip(graph.nodes(), batched):
        assert distances == metrics.shortest_path_lengths_from(graph, source)


# ----------------------------------------------------------------------
# Dense / sparse / pull step equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["dense", "sparse", "pull", "adaptive"])
def test_forced_step_modes_identical(step_graph, mode, monkeypatch):
    monkeypatch.setattr(fast, "WAVE_STEP_MODE", mode)
    sources = step_graph.nodes()[::3]
    batched = fast.shortest_path_lengths_from_many(step_graph, sources)
    for source, distances in zip(sources, batched):
        assert distances == metrics.shortest_path_lengths_from(step_graph, source)
    assert fast.diameter(step_graph, sample_size=12, rng=random.Random(1)) == (
        metrics.diameter(step_graph, sample_size=12, rng=random.Random(1))
    )
    assert fast.average_closeness_centrality(step_graph) == (
        metrics.average_closeness_centrality(step_graph)
    )
    assert fast.average_shortest_path_length(
        step_graph, sample_size=9, rng=random.Random(2)
    ) == metrics.average_shortest_path_length(
        step_graph, sample_size=9, rng=random.Random(2)
    )


@pytest.mark.parametrize("mode", ["dense", "sparse", "pull"])
def test_forced_step_modes_identical_multiword(step_graph, mode, monkeypatch):
    """Step forcing and >64-source waves compose."""
    monkeypatch.setattr(fast, "WAVE_STEP_MODE", mode)
    sources = step_graph.nodes()
    with backend.using_bfs_batch(192):
        batched = fast.shortest_path_lengths_from_many(step_graph, sources)
    for source, distances in zip(sources[:: max(1, len(sources) // 8)], batched[:: max(1, len(sources) // 8)]):
        assert distances == metrics.shortest_path_lengths_from(step_graph, source)


def test_adaptive_ring_uses_sparse_steps(monkeypatch):
    """On a ring nearly every level must take the sparse step (the point)."""
    graph = ring_graph(400)
    csr = fast.csr_of(graph)
    calls = {"sparse": 0, "dense": 0, "pull": 0}
    for name in ("_sparse_step", "_dense_step", "_pull_step"):
        original = getattr(fast, name)

        def counting(*args, _original=original, _key=name.strip("_").split("_")[0], **kwargs):
            calls[_key] += 1
            return _original(*args, **kwargs)

        monkeypatch.setattr(fast, name, counting)
    fast.diameter(graph, sample_size=4, rng=random.Random(0), connected=True)
    assert calls["sparse"] > 50
    assert calls["dense"] == 0


# ----------------------------------------------------------------------
# Auto-tuner and override plumbing
# ----------------------------------------------------------------------
def test_wave_batch_narrow_on_low_diameter_graphs():
    csr = fast.csr_of(k_regular_graph(3000, 10, seed=41))
    assert fast.wave_batch(csr, 1024) == fast.BFS_BATCH


def test_wave_batch_wide_on_high_diameter_graphs():
    csr = fast.csr_of(ring_graph(3000))
    width = fast.wave_batch(csr, 3000)
    assert width >= 47 * fast.BFS_BATCH  # every source packs into one wave
    assert width % fast.BFS_BATCH == 0


def test_wave_batch_respects_buffer_budget(monkeypatch):
    monkeypatch.setattr(fast, "WAVE_BUFFER_BUDGET", 8 * 3000 * 2)  # two words
    csr = fast.csr_of(ring_graph(3000))
    assert fast.wave_batch(csr, 3000) == 2 * fast.BFS_BATCH


def test_wave_batch_small_requests_stay_single_word():
    csr = fast.csr_of(ring_graph(3000))
    assert fast.wave_batch(csr, 17) == fast.BFS_BATCH


def test_estimated_levels_regimes():
    assert fast._estimated_levels(fast.csr_of(k_regular_graph(2000, 10, seed=42))) < 10
    ring_csr = fast.csr_of(ring_graph(2000))
    assert fast._estimated_levels(ring_csr) >= 2000  # mean degree 2: path-like


def test_use_bfs_batch_forced_and_restored():
    previous = backend.use_bfs_batch(128)
    try:
        assert backend.bfs_batch_policy() == 128
        with backend.using_bfs_batch("auto"):
            assert backend.bfs_batch_policy() == "auto"
        assert backend.bfs_batch_policy() == 128
    finally:
        backend.use_bfs_batch(previous)
    assert backend.bfs_batch_policy() == "auto"


def test_bfs_batch_env_var(monkeypatch):
    previous = backend.use_bfs_batch(None)
    try:
        monkeypatch.setenv(backend.BFS_BATCH_ENV_VAR, "256")
        assert backend.bfs_batch_policy() == 256
        csr = fast.csr_of(ring_graph(64))
        assert fast.wave_batch(csr, 5000) == 256
        monkeypatch.setenv(backend.BFS_BATCH_ENV_VAR, "auto")
        assert backend.bfs_batch_policy() == "auto"
        monkeypatch.setenv(backend.BFS_BATCH_ENV_VAR, "bogus")
        with pytest.raises(backend.BackendError):
            backend.bfs_batch_policy()
    finally:
        backend.use_bfs_batch(previous)


def test_forced_policy_wins_over_env(monkeypatch):
    monkeypatch.setenv(backend.BFS_BATCH_ENV_VAR, "512")
    with backend.using_bfs_batch(96):
        assert backend.bfs_batch_policy() == 96


@pytest.mark.parametrize("bad", [0, -3, "zero", 1.5, True])
def test_invalid_bfs_batch_rejected(bad):
    with pytest.raises(backend.BackendError):
        backend.use_bfs_batch(bad)


def test_env_batch_changes_results_not_one_bit(monkeypatch):
    graph = k_regular_graph(500, 8, seed=43)
    baseline = fast.average_closeness_centrality(
        graph, sample_size=100, rng=random.Random(9)
    )
    monkeypatch.setenv(backend.BFS_BATCH_ENV_VAR, "128")
    assert fast.average_closeness_centrality(
        graph, sample_size=100, rng=random.Random(9)
    ) == baseline


# ----------------------------------------------------------------------
# Full-population closeness (the symmetric per-node accumulation path)
# ----------------------------------------------------------------------
def test_full_population_closeness_golden_both_backends():
    graph = k_regular_graph(800, 6, seed=11)
    reference = metrics.average_closeness_centrality(graph)
    vectorized = fast.average_closeness_centrality(graph)
    assert reference == FULL_POPULATION_GOLDEN_800
    assert vectorized == FULL_POPULATION_GOLDEN_800


def test_autosized_graph_goldens_both_backends():
    """Past AUTO_THRESHOLD the dispatcher itself must hit the same goldens."""
    graph = k_regular_graph(2500, 10, seed=77)
    assert graph.number_of_nodes() >= backend.AUTO_THRESHOLD
    with backend.using("python"):
        assert backend.average_closeness_centrality(
            graph, sample_size=96, rng=random.Random(5)
        ) == SAMPLED_GOLDEN_2500
    with backend.using("fast"):
        assert backend.average_closeness_centrality(
            graph, sample_size=96, rng=random.Random(5)
        ) == SAMPLED_GOLDEN_2500
        assert backend.average_closeness_centrality(graph) == (
            FULL_POPULATION_GOLDEN_2500
        )
    with backend.using("python"):
        assert backend.average_closeness_centrality(graph) == (
            FULL_POPULATION_GOLDEN_2500
        )


def test_full_population_matches_sampled_formula_on_disconnected():
    """The symmetric path agrees with the reference on non-trivial components."""
    graph = _partitioned(300, 6, seed=51)
    assert metrics.number_connected_components(graph) >= 1
    assert fast.average_closeness_centrality(graph) == (
        metrics.average_closeness_centrality(graph)
    )
    # sample_size >= n is the same full-population code path by contract.
    n = graph.number_of_nodes()
    assert fast.average_closeness_centrality(
        graph, sample_size=n + 50, rng=random.Random(1)
    ) == metrics.average_closeness_centrality(
        graph, sample_size=n + 50, rng=random.Random(1)
    )


def test_full_population_closeness_after_ghost_patching():
    graph = k_regular_graph(400, 8, seed=52)
    fast.csr_of(graph)
    rng = random.Random(53)
    for _ in range(25):
        graph.remove_node(rng.choice(graph.nodes()))
    assert fast.csr_of(graph).ghost_count > 0
    assert fast.average_closeness_centrality(graph) == (
        metrics.average_closeness_centrality(graph)
    )


def test_wave_scratch_is_not_shared_between_interleaved_waves():
    """Two generators advancing in lockstep must not corrupt each other."""
    graph = k_regular_graph(300, 8, seed=54)
    csr = fast.csr_of(graph)
    first = fast._batched_wave(csr, np.arange(0, 64, dtype=np.int64))
    second = fast._batched_wave(csr, np.arange(64, 128, dtype=np.int64))
    interleaved = []
    for (rows_a, words_a), (rows_b, words_b) in zip(first, second):
        interleaved.append((rows_a.copy(), words_a.copy(), rows_b.copy(), words_b.copy()))
    replay_first = list(fast._batched_wave(csr, np.arange(0, 64, dtype=np.int64)))
    replay_second = list(fast._batched_wave(csr, np.arange(64, 128, dtype=np.int64)))
    for (rows_a, words_a, rows_b, words_b), (ra, wa), (rb, wb) in zip(
        interleaved, replay_first, replay_second
    ):
        assert np.array_equal(rows_a, ra) and np.array_equal(words_a, wa)
        assert np.array_equal(rows_b, rb) and np.array_equal(words_b, wb)


# ----------------------------------------------------------------------
# Exact full-population path metrics (eccentricity / diameter / ASPL)
# ----------------------------------------------------------------------
#: Exact full-population path metrics of ``k_regular_graph(800, 6, seed=11)``
#: -- note ``avg_closeness`` equals :data:`FULL_POPULATION_GOLDEN_800`.
FULL_PATH_GOLDEN_800 = {
    "components": 1,
    "largest_fraction": 1.0,
    "diameter": 6.0,
    "avg_path_length": 4.049242803504381,
    "avg_closeness": 0.24697170483624897,
}

#: Exact full-population path metrics of ``k_regular_graph(2500, 10, seed=77)``
#: (past ``AUTO_THRESHOLD``; ``avg_closeness`` matches
#: :data:`FULL_POPULATION_GOLDEN_2500`).
FULL_PATH_GOLDEN_2500 = {
    "components": 1,
    "largest_fraction": 1.0,
    "diameter": 5.0,
    "avg_path_length": 3.6869058023209282,
    "avg_closeness": 0.27123199657863245,
}


def test_full_path_metrics_golden_both_backends():
    graph = k_regular_graph(800, 6, seed=11)
    assert metrics.full_path_metrics(graph) == FULL_PATH_GOLDEN_800
    assert fast.full_path_metrics(graph) == FULL_PATH_GOLDEN_800


def test_full_path_metrics_autosized_golden():
    """Past AUTO_THRESHOLD the dispatcher itself must hit the same golden."""
    graph = k_regular_graph(2500, 10, seed=77)
    assert graph.number_of_nodes() >= backend.AUTO_THRESHOLD
    assert backend.full_path_metrics(graph) == FULL_PATH_GOLDEN_2500
    with backend.using("python"):
        assert backend.full_path_metrics(graph) == FULL_PATH_GOLDEN_2500


def test_full_path_metrics_matches_reference(step_graph):
    """Every step-zoo topology: exact metrics identical to the reference."""
    assert fast.full_path_metrics(step_graph) == metrics.full_path_metrics(step_graph)


def test_full_path_metrics_matches_componentwise_estimators(step_graph):
    """The one-campaign values equal the separate exact estimator calls."""
    summary = fast.full_path_metrics(step_graph)
    working = fast.largest_component_subgraph(step_graph)
    assert summary["diameter"] == metrics.diameter(working, connected=True)
    assert summary["avg_path_length"] == metrics.average_shortest_path_length(
        working, connected=True
    )
    assert summary["avg_closeness"] == metrics.average_closeness_centrality(working)


def test_path_length_accumulators_match_reference(step_graph):
    """Per-node (eccentricity, distance sum, reachable) -- exact integers."""
    assert fast.path_length_accumulators(step_graph) == (
        metrics.path_length_accumulators(step_graph)
    )


@pytest.mark.parametrize("mode", ["dense", "sparse", "pull"])
def test_full_path_metrics_forced_step_modes(step_graph, mode, monkeypatch):
    expected = metrics.full_path_metrics(step_graph)
    monkeypatch.setattr(fast, "WAVE_STEP_MODE", mode)
    assert fast.full_path_metrics(step_graph) == expected


def test_full_path_metrics_multiword_wave():
    """Forced >64-source waves feed the same exact accumulators."""
    graph = k_regular_graph(300, 6, seed=61)
    expected = metrics.full_path_metrics(graph)
    with backend.using_bfs_batch(192):
        assert fast.full_path_metrics(graph) == expected


def test_full_path_metrics_after_ghost_patching():
    graph = k_regular_graph(400, 8, seed=62)
    fast.csr_of(graph)  # prime the mirror so mutations patch it
    rng = random.Random(63)
    for _ in range(25):
        graph.remove_node(rng.choice(graph.nodes()))
    assert fast.csr_of(graph).ghost_count > 0
    assert fast.full_path_metrics(graph) == metrics.full_path_metrics(graph)
    assert fast.path_length_accumulators(graph) == (
        metrics.path_length_accumulators(graph)
    )


def test_accumulate_path_shard_merge_is_exact():
    """Any split of the source set merges to the serial accumulators."""
    graph = k_regular_graph(350, 6, seed=64)
    csr = fast.csr_of(graph)
    live = fast.live_source_indices(csr)
    serial_ecc, serial_totals = fast.accumulate_path_shard(csr, live)
    for pieces in (2, 3, 7):
        ecc = np.zeros(csr.n, dtype=np.int64)
        totals = np.zeros(csr.n, dtype=np.int64)
        for shard in np.array_split(live, pieces):
            shard_ecc, shard_totals = fast.accumulate_path_shard(csr, shard)
            np.maximum(ecc, shard_ecc, out=ecc)
            totals += shard_totals
        assert np.array_equal(ecc, serial_ecc)
        assert np.array_equal(totals, serial_totals)


def test_full_path_metrics_empty_and_singleton():
    empty = {
        "components": 0,
        "largest_fraction": 0.0,
        "diameter": 0.0,
        "avg_path_length": 0.0,
        "avg_closeness": 0.0,
    }
    assert fast.full_path_metrics(UndirectedGraph()) == empty
    assert metrics.full_path_metrics(UndirectedGraph()) == empty
    singleton = UndirectedGraph(nodes=["only"])
    assert fast.full_path_metrics(singleton) == metrics.full_path_metrics(singleton)


def test_row_popcounts_matches_bit_matrix():
    rng = np.random.default_rng(0)
    words = rng.integers(0, 2 ** 63, size=(97, 3), dtype=np.uint64)
    expected = fast._frontier_bits(words, 192).sum(axis=1, dtype=np.int64)
    assert np.array_equal(fast._row_popcounts(words), expected)


def test_frontier_bit_counts_matches_unpacked_columns():
    rng = np.random.default_rng(1)
    words = rng.integers(0, 2 ** 63, size=(131, 2), dtype=np.uint64)
    bits = fast._frontier_bits(words, 100)
    assert np.array_equal(
        fast._frontier_bit_counts(words, 100), bits.sum(axis=0, dtype=np.int64)
    )
