"""Render the per-PR speedup trajectory from ``BENCH_graph_kernels.json``.

Every PR appends one entry to the ``runs`` list of the benchmark report
(PR 2 onward); this tool turns that trajectory into

* a markdown table (``BENCH_trajectory.md``) -- one row per workload series,
  one column per PR, and
* a dependency-free hand-rolled SVG line chart (``BENCH_trajectory.svg``)
  of the speedup curves on a log scale.

Run it from the repository root::

    python -m benchmarks.report_trajectory            # writes both artifacts
    python -m benchmarks.report_trajectory --quiet    # files only, no stdout

Smoke entries appended by the bench CLI (labelled ``... (cli smoke)``) are
ignored; only canonical full-scale entries contribute points.
"""

from __future__ import annotations

import argparse
import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Tuple

DEFAULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_graph_kernels.json"

#: Placeholder-palette series colours (dark-on-light friendly).
_COLORS = (
    "#4063d8", "#389826", "#cb3c33", "#9558b2", "#aa7f39",
    "#0e7490", "#b45309", "#6b7280",
)


def _series_points(runs: List[dict]) -> Dict[str, List[Tuple[int, float]]]:
    """``{series name: [(pr_index, speedup), ...]}`` from canonical runs."""
    series: Dict[str, List[Tuple[int, float]]] = {}

    def add(name: str, index: int, speedup) -> None:
        if speedup is None:
            return
        series.setdefault(name, []).append((index, float(speedup)))

    for index, run in enumerate(runs):
        for row in run.get("rows", []):
            add(f"kernels n={row['n']:,}", index, row.get("speedup"))
        for row in run.get("batched_bfs", []):
            add(f"batched BFS n={row['n']:,}", index, row.get("speedup"))
        soap = run.get("soap_campaign")
        if soap:
            add(f"SOAP campaign n={soap['n']:,}", index, soap.get("speedup"))
        full = run.get("full_closeness")
        if full:
            add(f"full closeness n={full['n']:,}", index, full.get("speedup"))
        ring = run.get("sparse_frontier")
        if ring:
            add(f"ring diameter n={ring['n']:,}", index, ring.get("speedup"))
        full_path = run.get("full_path_metrics")
        if full_path:
            add(
                f"exact path metrics n={full_path['n']:,}",
                index,
                full_path.get("speedup"),
            )
    return series


def load_runs(path: Path = DEFAULT_JSON) -> List[dict]:
    """The canonical (non-smoke) per-PR entries, in trajectory order."""
    report = json.loads(path.read_text())
    return [
        run for run in report.get("runs", [])
        if "cli smoke" not in str(run.get("pr", ""))
    ]


def render_markdown(runs: List[dict]) -> str:
    """Markdown table: one row per workload series, one column per PR."""
    labels = [str(run.get("pr", f"run {i}")) for i, run in enumerate(runs)]
    series = _series_points(runs)
    lines = [
        "# Graph-kernel speedup trajectory",
        "",
        "Speedup of the vectorized/adaptive implementation over its baseline",
        "(pure-Python reference, per-source loop, reference SOAP campaign, or",
        "PR 3 wave path, per workload), one column per PR entry in",
        "`BENCH_graph_kernels.json`.",
        "",
        "| workload | " + " | ".join(labels) + " |",
        "|---" * (len(labels) + 1) + "|",
    ]
    for name in sorted(series):
        cells = {index: value for index, value in series[name]}
        row = [name] + [
            f"{cells[i]:.1f}x" if i in cells else "—" for i in range(len(labels))
        ]
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    return "\n".join(lines)


def _log_y(value: float, top: float, plot_top: float, plot_bottom: float) -> float:
    """Map a speedup onto the SVG y axis (log10 scale from 1 to ``top``)."""
    span = math.log10(top)
    fraction = math.log10(max(value, 1.0)) / span if span else 0.0
    return plot_bottom - fraction * (plot_bottom - plot_top)


def render_svg(runs: List[dict], *, width: int = 760, height: int = 440) -> str:
    """A dependency-free SVG line chart of every speedup series."""
    labels = [str(run.get("pr", f"run {i}")) for i, run in enumerate(runs)]
    series = _series_points(runs)
    left, right, top, bottom = 64, 240, 36, 48
    plot_w = width - left - right
    plot_h = height - top - bottom
    plot_bottom = top + plot_h
    peak = max((v for pts in series.values() for _, v in pts), default=10.0)
    y_top = 10 ** math.ceil(math.log10(max(peak, 2.0)))

    def x_of(index: int) -> float:
        if len(labels) == 1:
            return left + plot_w / 2
        return left + index * plot_w / (len(labels) - 1)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        'font-family="system-ui, sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="#ffffff"/>',
        f'<text x="{left}" y="20" font-size="14" font-weight="600" '
        'fill="#111827">Graph-kernel speedup trajectory (log scale)</text>',
    ]
    # Gridlines at decades and 2/5 subdivisions.
    tick = 1.0
    ticks = []
    while tick <= y_top:
        for factor in (1, 2, 5):
            value = tick * factor
            if 1.0 <= value <= y_top:
                ticks.append(value)
        tick *= 10
    for value in sorted(set(ticks)):
        y = _log_y(value, y_top, top, plot_bottom)
        parts.append(
            f'<line x1="{left}" y1="{y:.1f}" x2="{left + plot_w}" y2="{y:.1f}" '
            'stroke="#e5e7eb" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{left - 8}" y="{y + 4:.1f}" text-anchor="end" '
            f'fill="#6b7280">{value:g}x</text>'
        )
    for index, label in enumerate(labels):
        x = x_of(index)
        parts.append(
            f'<text x="{x:.1f}" y="{plot_bottom + 20}" text-anchor="middle" '
            f'fill="#374151">{label}</text>'
        )
    for rank, name in enumerate(sorted(series)):
        color = _COLORS[rank % len(_COLORS)]
        points = " ".join(
            f"{x_of(i):.1f},{_log_y(v, y_top, top, plot_bottom):.1f}"
            for i, v in series[name]
        )
        if len(series[name]) > 1:
            parts.append(
                f'<polyline points="{points}" fill="none" stroke="{color}" '
                'stroke-width="2"/>'
            )
        for i, v in series[name]:
            parts.append(
                f'<circle cx="{x_of(i):.1f}" '
                f'cy="{_log_y(v, y_top, top, plot_bottom):.1f}" r="3" '
                f'fill="{color}"/>'
            )
        legend_y = top + 16 * rank
        parts.append(
            f'<rect x="{left + plot_w + 16}" y="{legend_y - 9}" width="10" '
            f'height="10" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{left + plot_w + 32}" y="{legend_y}" '
            f'fill="#111827">{name}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def write_report(
    json_path: Path = DEFAULT_JSON, output_dir: Optional[Path] = None
) -> Tuple[Path, Path]:
    """Write markdown + SVG next to the JSON (or into ``output_dir``)."""
    runs = load_runs(json_path)
    target = output_dir if output_dir is not None else json_path.parent
    markdown_path = target / "BENCH_trajectory.md"
    svg_path = target / "BENCH_trajectory.svg"
    markdown_path.write_text(render_markdown(runs))
    svg_path.write_text(render_svg(runs))
    return markdown_path, svg_path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", type=Path, default=DEFAULT_JSON, help="trajectory JSON to read"
    )
    parser.add_argument(
        "--output-dir", type=Path, default=None, help="where to write the artifacts"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="write files without echoing the table"
    )
    args = parser.parse_args(argv)
    if not args.json.exists():
        parser.error(f"no benchmark trajectory at {args.json}")
    markdown_path, svg_path = write_report(args.json, args.output_dir)
    if not args.quiet:
        print(render_markdown(load_runs(args.json)))
    print(f"wrote {markdown_path}")
    print(f"wrote {svg_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
