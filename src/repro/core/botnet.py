"""Full OnionBotnet orchestration.

:class:`OnionBotnet` wires every piece of the reproduction together into one
runnable simulation: a :class:`~repro.tor.network.TorNetwork`, a
:class:`~repro.core.commander.Botmaster`, a population of
:class:`~repro.core.node.OnionBotNode` objects each hosting a hidden service,
and a :class:`~repro.core.ddsr.DDSROverlay` describing who peers with whom.

It exposes the operations the paper reasons about -- building the botnet,
broadcasting or directing commands through the overlay, rotating every bot's
``.onion`` address at a period boundary, and taking bots down (which triggers
the self-healing repair) -- plus the bookkeeping the integration tests and
examples assert on.

Scale note: this orchestrator simulates *functional* botnets of tens to a few
hundred bots (every message really flows through the in-memory Tor model).
The 5000--15000-node resilience sweeps of Figures 4--6 use the pure-graph
:class:`~repro.core.ddsr.DDSROverlay` directly, as the paper's own simulations
do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.core.commander import Botmaster
from repro.core.config import OnionBotConfig
from repro.core.ddsr import DDSRConfig, DDSROverlay
from repro.core.errors import BotnetError
from repro.core.messaging import CommandMessage, Envelope, MessageKind
from repro.core.node import OnionBotNode
from repro.crypto.kdf import kdf
from repro.crypto.keys import KeyPair
from repro.graphs.generators import k_regular_graph
from repro.graphs.backend import diameter, number_connected_components
from repro.sim.engine import Simulator
from repro.tor.hidden_service import HiddenServiceHost, ServiceUnreachable
from repro.tor.network import TorNetwork, TorNetworkConfig


@dataclass
class BotnetStats:
    """Aggregate health snapshot of the simulated botnet."""

    active_bots: int
    neutralized_bots: int
    overlay_edges: int
    max_degree: int
    connected_components: int
    overlay_diameter: float
    commands_executed: int
    envelopes_relayed: int

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict snapshot for reports."""
        return {
            "active_bots": self.active_bots,
            "neutralized_bots": self.neutralized_bots,
            "overlay_edges": self.overlay_edges,
            "max_degree": self.max_degree,
            "connected_components": self.connected_components,
            "overlay_diameter": self.overlay_diameter,
            "commands_executed": self.commands_executed,
            "envelopes_relayed": self.envelopes_relayed,
        }


@dataclass
class PropagationReport:
    """Outcome of pushing one command through the overlay."""

    nonce: str
    reached: int
    executed: int
    total_active: int
    rounds: int
    envelopes_sent: int
    unreachable: List[str] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Fraction of active bots that received the command."""
        if self.total_active == 0:
            return 0.0
        return self.reached / self.total_active


class OnionBotnet:
    """A complete, runnable OnionBot simulation."""

    def __init__(
        self,
        *,
        simulator: Optional[Simulator] = None,
        config: Optional[OnionBotConfig] = None,
        tor_config: Optional[TorNetworkConfig] = None,
        seed: int = 0,
    ) -> None:
        self.simulator = simulator or Simulator(seed=seed)
        self.config = config or OnionBotConfig()
        self.tor = TorNetwork(self.simulator, tor_config or TorNetworkConfig())
        self.botmaster = Botmaster(
            keypair=KeyPair.from_seed(
                self.simulator.random.random_bytes("botmaster.key", 32)
            ),
            config=self.config,
        )
        self.overlay = DDSROverlay(
            config=DDSRConfig(
                d_min=self.config.d_min,
                d_max=self.config.d_max,
                forgetting_enabled=self.config.forgetting_enabled,
            ),
            rng=self.simulator.random.stream("overlay"),
        )
        self.bots: Dict[str, OnionBotNode] = {}
        self._hosts: Dict[str, HiddenServiceHost] = {}
        self._built = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self, n_bots: int, *, relays: Optional[int] = None) -> None:
        """Bootstrap Tor, infect ``n_bots`` bots, wire the overlay, rally everyone."""
        if self._built:
            raise BotnetError("botnet has already been built")
        if n_bots < 2:
            raise BotnetError(f"a botnet needs at least 2 bots, got {n_bots}")
        self.tor.bootstrap(relays)
        degree = min(self.config.degree, n_bots - 1)
        if (n_bots * degree) % 2 != 0:
            degree = max(1, degree - 1)
        labels = [f"bot-{index:05d}" for index in range(n_bots)]
        wiring = k_regular_graph(n_bots, degree, rng=self.simulator.random.stream("overlay.wiring"))

        for label in labels:
            self._create_bot(label)
        for label in labels:
            self.overlay.graph.add_node(label)
        for u, v in wiring.edges():
            self.overlay.graph.add_edge(labels[u], labels[v])

        for label in labels:
            self._host_bot_service(label)
        for label in labels:
            self._rally_bot(label)
        self._built = True
        self.simulator.log("botnet", "built", bots=n_bots, degree=degree)

    def _create_bot(self, label: str) -> OnionBotNode:
        bot_key = kdf(
            "onionbot.bot-key",
            label.encode("utf-8"),
            self.simulator.random.random_bytes(f"bot.{label}.key", 32),
        )
        bot = OnionBotNode(
            label=label,
            botmaster_public=self.botmaster.public_key,
            network_key=self.botmaster.network_key,
            bot_key=bot_key,
            config=self.config,
        )
        bot.infect(self.simulator.now)
        self.bots[label] = bot
        return bot

    def _host_bot_service(self, label: str) -> None:
        bot = self.bots[label]
        keypair = bot.keypair_at(self.simulator.now)
        host = self.tor.host_service(keypair, self._make_handler(label))
        self._hosts[label] = host

    def _rally_bot(self, label: str) -> None:
        bot = self.bots[label]
        peers = {
            str(self.bots[peer].onion_at(self.simulator.now))
            for peer in self.overlay.peers(label)
        }
        report = bot.rally(peers, self.simulator.now)
        self.botmaster.enroll(label, report)

    def _make_handler(self, label: str):
        def handler(payload: bytes, _connection) -> bytes:
            bot = self.bots.get(label)
            if bot is None or not bot.is_active:
                return b"gone"
            try:
                envelope = Envelope(blob=payload)
            except Exception:
                return b"malformed"
            bot.record_relay()
            command = bot.try_open(envelope, self.simulator.now)
            if command is not None:
                bot.process_command(command, self.simulator.now)
            return b"ack"

        return handler

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def active_labels(self) -> List[str]:
        """Labels of every bot still participating in the overlay."""
        return [label for label, bot in self.bots.items() if bot.is_active]

    def onion_of(self, label: str) -> str:
        """Current onion address of a bot."""
        if label not in self.bots:
            raise BotnetError(f"unknown bot {label!r}")
        return str(self.bots[label].onion_at(self.simulator.now))

    def stats(self) -> BotnetStats:
        """Aggregate statistics over the live botnet."""
        active = self.active_labels()
        graph = self.overlay.graph
        executed = sum(len(bot.executed) for bot in self.bots.values())
        relayed = sum(bot.relayed_envelopes for bot in self.bots.values())
        overlay_diameter = diameter(graph) if len(graph) else 0.0
        return BotnetStats(
            active_bots=len(active),
            neutralized_bots=len(self.bots) - len(active),
            overlay_edges=graph.number_of_edges(),
            max_degree=graph.max_degree(),
            connected_components=number_connected_components(graph) if len(graph) else 0,
            overlay_diameter=overlay_diameter,
            commands_executed=executed,
            envelopes_relayed=relayed,
        )

    # ------------------------------------------------------------------
    # Command propagation
    # ------------------------------------------------------------------
    def broadcast_command(
        self,
        command: str,
        *,
        ttl: Optional[float] = None,
        seeds: int = 2,
        arguments: Optional[Dict[str, str]] = None,
    ) -> PropagationReport:
        """Issue a broadcast command and flood it across the overlay.

        The botmaster injects the fixed-size envelope at a few seed bots (it
        can reach any bot directly thanks to the address plan); every bot then
        forwards the identical envelope to its overlay peers.  Bots that
        cannot be reached over Tor (offline, censored descriptors) are reported
        in ``unreachable``.
        """
        message = self.botmaster.issue_broadcast(
            command, now=self.simulator.now, ttl=ttl, arguments=arguments
        )
        return self._flood(message)

    def directed_command(
        self,
        command: str,
        target_labels: List[str],
        *,
        ttl: Optional[float] = None,
    ) -> PropagationReport:
        """Issue a command addressed only to specific bots (still flooded)."""
        targets = [self.onion_of(label) for label in target_labels]
        message = self.botmaster.issue_directed(
            command, targets, now=self.simulator.now, ttl=ttl
        )
        return self._flood(message)

    def _flood(self, message: CommandMessage) -> PropagationReport:
        active = self.active_labels()
        if not active:
            return PropagationReport(
                nonce=message.nonce,
                reached=0,
                executed=0,
                total_active=0,
                rounds=0,
                envelopes_sent=0,
            )
        randomness = self.simulator.random.random_bytes("cc.envelope", 32)
        # Directed envelopes are sealed per-target with the bot key; broadcast
        # and group envelopes are identical blobs for every recipient.
        per_target_key = message.kind is MessageKind.COMMAND_DIRECTED

        seed_count = min(2, len(active))
        seeds = self.simulator.random.sample("cc.seeds", active, seed_count)
        reached: Set[str] = set()
        unreachable: List[str] = []
        envelopes_sent = 0
        frontier = list(seeds)
        rounds = 0
        executed_before = sum(len(self.bots[label].executed) for label in active)

        visited: Set[str] = set()
        while frontier:
            rounds += 1
            next_frontier: List[str] = []
            for label in frontier:
                if label in visited:
                    continue
                visited.add(label)
                bot = self.bots.get(label)
                if bot is None or not bot.is_active:
                    continue
                envelope = self._envelope_for(message, label, randomness, per_target_key)
                try:
                    self.tor.send_to("relay-peer", self.onion_of(label), envelope.blob)
                    envelopes_sent += 1
                    reached.add(label)
                except ServiceUnreachable:
                    unreachable.append(label)
                    continue
                for peer in self.overlay.peers(label):
                    if peer not in visited and self.bots.get(peer) is not None:
                        next_frontier.append(peer)
            frontier = next_frontier

        executed_after = sum(
            len(self.bots[label].executed) for label in active if label in self.bots
        )
        return PropagationReport(
            nonce=message.nonce,
            reached=len(reached),
            executed=executed_after - executed_before,
            total_active=len(active),
            rounds=rounds,
            envelopes_sent=envelopes_sent,
            unreachable=unreachable,
        )

    def _envelope_for(
        self,
        message: CommandMessage,
        target_label: str,
        randomness: bytes,
        per_target_key: bool,
    ) -> Envelope:
        if per_target_key:
            return self.botmaster.envelope_for(
                message, randomness, target_label=target_label
            )
        return self.botmaster.envelope_for(message, randomness)

    # ------------------------------------------------------------------
    # Takedown and self-healing
    # ------------------------------------------------------------------
    def take_down(self, labels: Iterable[str], *, repair: bool = True) -> int:
        """Neutralize bots (defender takedown); the overlay self-heals.

        Returns the number of bots actually removed.  With ``repair=False``
        the removals are treated as simultaneous (no healing in between),
        matching the Figure 6 scenario.
        """
        removed = 0
        neighbor_sets = []
        for label in labels:
            bot = self.bots.get(label)
            if bot is None or not bot.is_active:
                continue
            self.tor.retire_service(bot.onion_at(self.simulator.now))
            bot.neutralize(self.simulator.now)
            if label in self.overlay.graph:
                neighbors = self.overlay.remove_node(label, repair=repair)
                if not repair:
                    neighbor_sets.append(neighbors)
            removed += 1
        if not repair and neighbor_sets:
            # Survivors heal once the mass takedown is over.
            self.overlay.repair_after_mass_removal(neighbor_sets)
        self._sync_peer_lists()
        self.simulator.log("botnet", "takedown", removed=removed, repair=repair)
        return removed

    def silent_failure(self, label: str) -> None:
        """A bot's host dies without anyone noticing (power-off, cleanup).

        The hidden service disappears and the bot stops participating, but --
        unlike :meth:`take_down` -- the overlay bookkeeping is *not* updated:
        the dead bot's peers still list its address and will only find out via
        their heartbeat probes (see
        :class:`repro.core.failure_detection.FailureDetector`).
        """
        bot = self.bots.get(label)
        if bot is None or not bot.is_active:
            raise BotnetError(f"no active bot {label!r} to fail")
        self.tor.retire_service(bot.onion_at(self.simulator.now))
        bot.neutralize(self.simulator.now)
        self.simulator.log("botnet", "silent failure", label=label)

    def _sync_peer_lists(self) -> None:
        """Refresh every active bot's peer list from the overlay graph."""
        now = self.simulator.now
        for label in self.active_labels():
            if label not in self.overlay.graph:
                continue
            self.bots[label].peer_addresses = {
                str(self.bots[peer].onion_at(now))
                for peer in self.overlay.peers(label)
                if peer in self.bots and self.bots[peer].is_active
            }

    # ------------------------------------------------------------------
    # Address rotation
    # ------------------------------------------------------------------
    def advance_to_next_period(self) -> Dict[str, str]:
        """Advance simulated time past the next rotation boundary and rotate.

        Every active bot derives its next-period keypair, re-homes its hidden
        service under the new ``.onion`` address and announces the new address
        to its current peers (modelled by refreshing their peer lists).
        Returns a mapping of bot label -> new onion address.
        """
        remaining = self.simulator.clock.seconds_until_period(self.config.rotation_period)
        self.simulator.run_for(remaining + 1.0)
        now = self.simulator.now
        rotated: Dict[str, str] = {}
        for label in self.active_labels():
            bot = self.bots[label]
            host = self._hosts.get(label)
            if host is None:
                continue
            new_keypair = bot.keypair_at(now)
            new_address = self.tor.rotate_service_key(host, new_keypair)
            rotated[label] = str(new_address)
        self._sync_peer_lists()
        self.simulator.log("botnet", "rotation", rotated=len(rotated))
        return rotated

    # ------------------------------------------------------------------
    # Defender-visible surface (used by adversary models)
    # ------------------------------------------------------------------
    def capture_view(self, label: str) -> Set[str]:
        """What a defender learns by capturing bot ``label``: its peers' onions.

        Only the *current* addresses of direct peers are exposed -- nothing
        about the rest of the botnet, its size, or any IP addresses, which is
        the stealth property section V-A claims.
        """
        bot = self.bots.get(label)
        if bot is None:
            raise BotnetError(f"unknown bot {label!r}")
        return set(bot.peer_addresses)
