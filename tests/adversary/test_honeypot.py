"""Tests for honeypot-based bot capture."""

import random

import pytest

from repro.adversary.honeypot import HoneypotOperator
from repro.core.ddsr import DDSROverlay


class TestCaptureFromOverlay:
    def test_capture_reveals_only_direct_peers(self):
        overlay = DDSROverlay.k_regular(100, 8, seed=1)
        operator = HoneypotOperator(rng=random.Random(0))
        result = operator.capture_from_overlay(overlay, node=overlay.nodes()[0])
        assert result.captured == overlay.nodes()[0]
        assert result.peer_labels == overlay.peers(result.captured)
        assert result.exposure == 8

    def test_capture_random_node(self):
        overlay = DDSROverlay.k_regular(50, 6, seed=2)
        operator = HoneypotOperator(rng=random.Random(1))
        result = operator.capture_from_overlay(overlay)
        assert result.captured in overlay.graph

    def test_capture_from_empty_overlay_rejected(self):
        with pytest.raises(ValueError):
            HoneypotOperator().capture_from_overlay(DDSROverlay())

    def test_total_exposed_accumulates(self):
        overlay = DDSROverlay.k_regular(60, 6, seed=3)
        operator = HoneypotOperator(rng=random.Random(2))
        operator.capture_from_overlay(overlay, node=overlay.nodes()[0])
        operator.capture_from_overlay(overlay, node=overlay.nodes()[1])
        exposed = operator.total_exposed()
        assert overlay.nodes()[0] in exposed
        assert len(exposed) <= 2 + 12


class TestCaptureFromBotnet:
    def test_capture_reveals_onion_addresses(self, small_botnet):
        operator = HoneypotOperator(rng=random.Random(0))
        result = operator.capture_from_botnet(small_botnet)
        assert result.captured in small_botnet.bots
        assert all(address.endswith(".onion") for address in result.peer_addresses)
        assert result.exposure > 0

    def test_capture_specific_label(self, small_botnet):
        operator = HoneypotOperator()
        label = small_botnet.active_labels()[3]
        result = operator.capture_from_botnet(small_botnet, label=label)
        assert result.captured == label

    def test_capture_fails_when_botnet_is_empty(self, small_botnet):
        small_botnet.take_down(list(small_botnet.active_labels()))
        with pytest.raises(ValueError):
            HoneypotOperator().capture_from_botnet(small_botnet)
