"""Partition analysis (Figure 6 of the paper).

Figure 6 asks: how many nodes must an adversary take down *simultaneously* for
a 10-regular overlay to split into more than one component, as a function of
network size?  The paper finds the answer to be roughly 40 % of the nodes for
n = 1000 ... 15000.  This module provides the primitives the experiment harness
uses to answer that question: partition checks, reports, and the search for the
minimum simultaneous-deletion fraction that partitions a given graph.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, Iterable, List, Optional, Sequence

from repro.graphs import backend
from repro.graphs.adjacency import UndirectedGraph

NodeId = Hashable


@dataclass(frozen=True)
class PartitionReport:
    """Summary of the component structure of a graph."""

    surviving_nodes: int
    component_count: int
    largest_component: int
    isolated_nodes: int

    @property
    def is_partitioned(self) -> bool:
        """True when the surviving nodes form more than one component."""
        return self.component_count > 1

    @property
    def largest_fraction(self) -> float:
        """Fraction of survivors inside the largest component."""
        if self.surviving_nodes == 0:
            return 0.0
        return self.largest_component / self.surviving_nodes


def analyze_partition(graph: UndirectedGraph) -> PartitionReport:
    """Compute a :class:`PartitionReport` for ``graph``."""
    return _report_after_removal(graph, ())


def _report_after_removal(graph: UndirectedGraph, victims: Iterable[NodeId]) -> PartitionReport:
    """Partition report of the survivors after a simultaneous mass removal.

    Routed through the active graph backend: the fast path computes component
    counts on a masked CSR without ever materialising the survivor subgraph,
    which is what makes the 100k-node threshold sweeps tractable.
    """
    surviving, components, largest, isolated = backend.partition_summary_after_removal(
        graph, victims
    )
    return PartitionReport(
        surviving_nodes=surviving,
        component_count=components,
        largest_component=largest,
        isolated_nodes=isolated,
    )


def is_partitioned(graph: UndirectedGraph) -> bool:
    """Whether the graph has more than one connected component."""
    return analyze_partition(graph).is_partitioned


def simultaneous_deletion_survivors(
    graph: UndirectedGraph,
    victims: Iterable[NodeId],
) -> UndirectedGraph:
    """The subgraph remaining after removing ``victims`` all at once.

    "Simultaneous" is the key word: unlike the incremental-deletion sweeps,
    there is no opportunity for the overlay to run its repair step in between,
    which is precisely the scenario Figure 6 analyses.
    """
    victim_set = set(victims)
    survivors = [node for node in graph.nodes() if node not in victim_set]
    return graph.subgraph(survivors)


def minimum_partition_fraction(
    graph: UndirectedGraph,
    *,
    rng: Optional[random.Random] = None,
    resolution: float = 0.01,
    trials_per_fraction: int = 3,
) -> float:
    """Smallest fraction of simultaneously deleted nodes that partitions ``graph``.

    Random victim sets of increasing size are tried (``trials_per_fraction``
    independent draws per size); the first fraction at which *any* draw
    partitions the survivors is returned.  Returns ``1.0`` when the graph never
    partitions before being wiped out (e.g. a complete graph).
    """
    if resolution <= 0 or resolution > 1:
        raise ValueError(f"resolution must be in (0, 1], got {resolution}")
    rng = rng if rng is not None else random.Random(0)
    nodes: List[NodeId] = graph.nodes()
    n = len(nodes)
    if n < 3:
        return 1.0
    fraction = resolution
    while fraction < 1.0:
        count = max(1, int(round(fraction * n)))
        if count >= n - 1:
            break
        for _ in range(trials_per_fraction):
            victims = rng.sample(nodes, count)
            report = _report_after_removal(graph, victims)
            if report.surviving_nodes > 1 and report.is_partitioned:
                return fraction
        fraction = round(fraction + resolution, 10)
    return 1.0


def partition_after_fraction(
    graph: UndirectedGraph,
    fraction: float,
    *,
    rng: Optional[random.Random] = None,
) -> PartitionReport:
    """Partition report after deleting a random ``fraction`` of nodes at once."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = rng if rng is not None else random.Random(0)
    nodes: Sequence[NodeId] = graph.nodes()
    count = int(round(fraction * len(nodes)))
    victims = rng.sample(list(nodes), count) if count else []
    return _report_after_removal(graph, victims)
