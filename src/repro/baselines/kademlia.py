"""A Kademlia-style structured overlay baseline (Overbot-like).

Related work (paper section VIII) describes Overbot, a botnet protocol riding
on the Kademlia DHT.  Structured overlays maintain much more routing state per
node (log-scaled bucket tables keyed by XOR distance) and their repair story
is different from DDSR: a node learns replacements lazily from lookups rather
than eagerly from NoN knowledge.  This baseline implements just enough of
Kademlia -- node IDs, XOR distance, k-buckets, iterative lookup and node
removal -- to compare degree/state, lookup success under churn and takedown
behaviour against the DDSR overlay in the ablation benchmarks.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

#: Bit length of Kademlia node identifiers.
ID_BITS = 32
#: Bucket capacity (the classic Kademlia ``k``).
BUCKET_SIZE = 8


def node_id_from_label(label: str) -> int:
    """Derive a deterministic ``ID_BITS``-bit identifier from a label."""
    digest = hashlib.sha1(label.encode("utf-8")).digest()
    return int.from_bytes(digest[: ID_BITS // 8], "big")


def xor_distance(a: int, b: int) -> int:
    """Kademlia's XOR distance metric."""
    return a ^ b


@dataclass
class KademliaNode:
    """One node: an identifier plus its k-bucket routing table."""

    label: str
    node_id: int
    buckets: Dict[int, List[int]] = field(default_factory=dict)

    def bucket_index(self, other_id: int) -> int:
        """Index of the bucket that ``other_id`` belongs to."""
        distance = xor_distance(self.node_id, other_id)
        if distance == 0:
            return 0
        return distance.bit_length() - 1

    def observe(self, other_id: int) -> None:
        """Insert ``other_id`` into the appropriate bucket (LRU-less, capped)."""
        if other_id == self.node_id:
            return
        index = self.bucket_index(other_id)
        bucket = self.buckets.setdefault(index, [])
        if other_id in bucket:
            return
        if len(bucket) < BUCKET_SIZE:
            bucket.append(other_id)

    def forget(self, other_id: int) -> None:
        """Drop a dead contact from whichever bucket holds it."""
        index = self.bucket_index(other_id)
        bucket = self.buckets.get(index, [])
        if other_id in bucket:
            bucket.remove(other_id)

    def contacts(self) -> Set[int]:
        """Every identifier in the routing table."""
        return {other for bucket in self.buckets.values() for other in bucket}

    def routing_state_size(self) -> int:
        """Number of contacts stored (the per-node state DDSR avoids)."""
        return sum(len(bucket) for bucket in self.buckets.values())

    def closest(self, target_id: int, count: int) -> List[int]:
        """The ``count`` known contacts closest to ``target_id``."""
        return sorted(self.contacts(), key=lambda other: xor_distance(other, target_id))[:count]


class KademliaOverlay:
    """A population of Kademlia nodes with iterative lookups."""

    def __init__(self, *, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self.nodes: Dict[int, KademliaNode] = {}

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, n: int, *, seed: int = 0, bootstrap_contacts: int = 8) -> "KademliaOverlay":
        """Create ``n`` nodes and populate routing tables from random contacts."""
        overlay = cls(seed=seed)
        for index in range(n):
            overlay.join(f"knode-{index:05d}")
        ids = list(overlay.nodes)
        for node in overlay.nodes.values():
            for contact in overlay.rng.sample(ids, min(bootstrap_contacts, len(ids))):
                node.observe(contact)
        return overlay

    def join(self, label: str) -> KademliaNode:
        """Add a node (its table starts empty until it observes contacts)."""
        node_id = node_id_from_label(label)
        while node_id in self.nodes:  # resolve unlikely collisions
            node_id = (node_id + 1) % (1 << ID_BITS)
        node = KademliaNode(label=label, node_id=node_id)
        self.nodes[node_id] = node
        return node

    def remove(self, node_id: int) -> None:
        """Take a node down.  Peers only notice lazily, during lookups."""
        self.nodes.pop(node_id, None)

    def remove_fraction(self, fraction: float) -> List[int]:
        """Take down a random fraction of nodes simultaneously."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        victims = self.rng.sample(
            list(self.nodes), int(round(fraction * len(self.nodes)))
        )
        for victim in victims:
            self.remove(victim)
        return victims

    # ------------------------------------------------------------------
    def lookup(self, origin_id: int, target_id: int, *, max_hops: int = 16) -> Optional[int]:
        """Iterative lookup for the live node closest to ``target_id``.

        Returns the identifier of the closest *live* node found, or ``None``
        when routing dead-ends (every candidate contact is dead) -- the
        failure mode that grows under mass takedowns because dead contacts
        linger in buckets.
        """
        if origin_id not in self.nodes:
            return None
        current = self.nodes[origin_id]
        best: Optional[int] = None
        best_distance = None
        visited: Set[int] = set()
        for _ in range(max_hops):
            candidates = [
                contact
                for contact in current.closest(target_id, BUCKET_SIZE)
                if contact not in visited
            ]
            progressed = False
            for contact in candidates:
                visited.add(contact)
                if contact not in self.nodes:
                    current.forget(contact)
                    continue
                distance = xor_distance(contact, target_id)
                if best_distance is None or distance < best_distance:
                    best, best_distance = contact, distance
                    current = self.nodes[contact]
                    progressed = True
                    break
            if not progressed:
                break
        return best

    def lookup_success_rate(self, trials: int = 100) -> float:
        """Fraction of random lookups that terminate at a live node."""
        live = list(self.nodes)
        if len(live) < 2:
            return 0.0
        successes = 0
        for _ in range(trials):
            origin = self.rng.choice(live)
            target = self.rng.randrange(1 << ID_BITS)
            if self.lookup(origin, target) is not None:
                successes += 1
        return successes / trials

    def average_routing_state(self) -> float:
        """Mean routing-table size across live nodes (contrast with DDSR degree)."""
        if not self.nodes:
            return 0.0
        return sum(node.routing_state_size() for node in self.nodes.values()) / len(self.nodes)
