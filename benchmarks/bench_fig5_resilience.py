"""Figure 5 -- DDSR vs normal graph: components, degree centrality, diameter.

Paper setup: 10-regular graphs of 5000 nodes (left column, 5a/5c/5e) and
15000 nodes (right column, 5b/5d/5f), incremental deletions of essentially the
whole population, comparing the self-repairing DDSR overlay against a normal
graph with no repair.

Expected shapes (paper): the DDSR overlay stays in a single connected
component until almost every node is gone (90--95 %), while the normal graph
shatters into many components after roughly 60 % deletions; DDSR's degree
centrality stays slightly above the normal graph's (bounded by pruning); the
DDSR diameter *decreases* as the network shrinks while the normal graph's
diameter grows until it partitions.

Both "columns" (600 and 1200 nodes by default; qualitatively identical to
the paper's sizes) run through the :mod:`repro.runner` subsystem as a grid
over ``n`` -- the same sweep the CLI exposes::

    python -m repro.runner sweep fig5-resilience --grid n=600,1200 --workers 2
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.experiments import run_fig5_resilience_sweep
from repro.analysis.reporting import render_result_rows

SMALL_N = 600
LARGE_N = 1200
CHECKPOINTS = 10
DIAMETER_SAMPLE = 24


def _check_shapes(row):
    # 5a/5b: DDSR stays connected essentially to the end; the normal graph
    # fragments into many components.
    assert row["ddsr_stays_connected_until"] >= 0.75
    assert row["max_normal_components"] > 3 * row["max_ddsr_components"]
    # 5c/5d: DDSR degree centrality stays bounded but slightly above normal.
    assert row["ddsr_final_degree_centrality"] >= row["normal_final_degree_centrality"]
    # 5e/5f: the DDSR diameter at the end is no larger than it was initially,
    # while the normal graph's diameter (largest component) grew or the graph
    # disintegrated into tiny fragments.
    assert row["ddsr_late_diameter"] <= row["ddsr_initial_diameter"] + 1


def test_fig5_both_columns_via_runner(benchmark):
    """Figures 5a-5f: both network-size columns as one runner sweep."""
    rows = benchmark.pedantic(
        lambda: run_fig5_resilience_sweep(
            sizes=(SMALL_N, LARGE_N),
            k=10,
            checkpoints=CHECKPOINTS,
            diameter_sample=DIAMETER_SAMPLE,
            max_fraction=0.95,
            seed=50,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        f"Figure 5 — DDSR vs normal graph (n={SMALL_N} and n={LARGE_N}, k=10)",
        render_result_rows(rows),
    )
    assert [row["n"] for row in rows] == [SMALL_N, LARGE_N]
    for row in rows:
        _check_shapes(row)


def test_fig5_parallel_matches_serial(benchmark):
    """The sharded executor reproduces the serial sweep bit-for-bit."""
    serial = run_fig5_resilience_sweep(
        sizes=(SMALL_N, LARGE_N), k=10, checkpoints=CHECKPOINTS,
        diameter_sample=DIAMETER_SAMPLE, max_fraction=0.95, seed=50, workers=1,
    )
    parallel = benchmark.pedantic(
        lambda: run_fig5_resilience_sweep(
            sizes=(SMALL_N, LARGE_N), k=10, checkpoints=CHECKPOINTS,
            diameter_sample=DIAMETER_SAMPLE, max_fraction=0.95, seed=50, workers=2,
        ),
        rounds=1,
        iterations=1,
    )
    assert parallel == serial
