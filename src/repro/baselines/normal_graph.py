"""The "normal graph" baseline (no self-repair).

Figures 5 and 6 compare the DDSR overlay against "a normal graph (a graph with
no self-repairing mechanism)": identical starting topology, but when nodes are
deleted the survivors do nothing.  :class:`NormalOverlay` is a thin
configuration of :class:`~repro.core.ddsr.DDSROverlay` with repair and pruning
disabled, so experiment code can drive both overlays through exactly the same
deletion schedule.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.ddsr import DDSRConfig, DDSROverlay, PruningPolicy, RepairPolicy
from repro.graphs.adjacency import UndirectedGraph
from repro.graphs.generators import k_regular_graph


class NormalOverlay(DDSROverlay):
    """A static overlay: deletions are never repaired, degrees never pruned."""

    def __init__(
        self,
        graph: Optional[UndirectedGraph] = None,
        *,
        rng: Optional[random.Random] = None,
    ) -> None:
        config = DDSRConfig(
            d_min=0,
            d_max=10**9,
            repair_policy=RepairPolicy.NONE,
            pruning_policy=PruningPolicy.NONE,
            forgetting_enabled=False,
        )
        super().__init__(graph, config=config, rng=rng)

    @classmethod
    def k_regular(
        cls,
        n: int,
        k: int,
        *,
        config=None,  # accepted for signature compatibility; ignored
        seed: int = 0,
    ) -> "NormalOverlay":
        """A k-regular normal graph matching the DDSR starting topology."""
        rng = random.Random(seed)
        graph = k_regular_graph(n, k, rng=rng)
        return cls(graph, rng=rng)

    @classmethod
    def matching(cls, overlay: DDSROverlay) -> "NormalOverlay":
        """A normal-graph copy of an existing overlay's current topology.

        Used by the Figure 5 experiment so that the DDSR and normal curves
        start from the *same* wiring, not merely the same parameters.
        """
        return cls(overlay.graph.copy(), rng=random.Random(0))
