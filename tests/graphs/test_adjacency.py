"""Tests for the mutable undirected graph with NoN queries."""

import pytest

from repro.graphs.adjacency import GraphError, UndirectedGraph


class TestBasicStructure:
    def test_add_nodes_and_edges(self):
        graph = UndirectedGraph()
        assert graph.add_edge(1, 2) is True
        assert graph.add_edge(2, 3) is True
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2

    def test_duplicate_edge_collapses(self):
        graph = UndirectedGraph()
        assert graph.add_edge(1, 2) is True
        assert graph.add_edge(2, 1) is False
        assert graph.number_of_edges() == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            UndirectedGraph().add_edge(1, 1)

    def test_edge_is_symmetric(self):
        graph = UndirectedGraph(edges=[(1, 2)])
        assert graph.has_edge(1, 2)
        assert graph.has_edge(2, 1)

    def test_remove_edge(self):
        graph = UndirectedGraph(edges=[(1, 2), (2, 3)])
        assert graph.remove_edge(1, 2) is True
        assert graph.remove_edge(1, 2) is False
        assert not graph.has_edge(2, 1)
        assert graph.number_of_edges() == 1

    def test_remove_node_returns_former_neighbors(self):
        graph = UndirectedGraph(edges=[(0, 1), (0, 2), (0, 3), (1, 2)])
        neighbors = graph.remove_node(0)
        assert set(neighbors) == {1, 2, 3}
        assert 0 not in graph
        assert graph.has_edge(1, 2)

    def test_remove_missing_node_raises(self):
        with pytest.raises(GraphError):
            UndirectedGraph().remove_node("nope")

    def test_constructor_with_nodes_and_edges(self):
        graph = UndirectedGraph(nodes=[1, 2, 3, 4], edges=[(1, 2)])
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 1


class TestQueries:
    def test_degree_and_degrees(self):
        graph = UndirectedGraph(edges=[(0, 1), (0, 2), (0, 3)])
        assert graph.degree(0) == 3
        assert graph.degree(1) == 1
        assert graph.degrees() == {0: 3, 1: 1, 2: 1, 3: 1}

    def test_degree_of_missing_node_raises(self):
        with pytest.raises(GraphError):
            UndirectedGraph().degree(0)

    def test_max_degree(self):
        graph = UndirectedGraph(edges=[(0, 1), (0, 2)])
        assert graph.max_degree() == 2
        assert UndirectedGraph().max_degree() == 0

    def test_neighbors_returns_copy(self):
        graph = UndirectedGraph(edges=[(0, 1)])
        neighbors = graph.neighbors(0)
        neighbors.add(99)
        assert 99 not in graph.neighbors(0)

    def test_neighbors_of_neighbors_excludes_self_and_direct_peers(self):
        # 0 - 1 - 2 - 3 chain plus 0 - 4
        graph = UndirectedGraph(edges=[(0, 1), (1, 2), (2, 3), (0, 4)])
        non = graph.neighbors_of_neighbors(0)
        assert non == {2}
        assert 0 not in non
        assert 1 not in non and 4 not in non

    def test_common_neighbors(self):
        graph = UndirectedGraph(edges=[(0, 2), (1, 2), (0, 3), (1, 3), (0, 4)])
        assert graph.common_neighbors(0, 1) == {2, 3}

    def test_edges_listed_once(self):
        graph = UndirectedGraph(edges=[(0, 1), (1, 2), (2, 0)])
        assert len(graph.edges()) == 3

    def test_adjacency_view_is_frozen(self):
        graph = UndirectedGraph(edges=[(0, 1)])
        view = graph.adjacency_view(0)
        assert view == frozenset({1})
        with pytest.raises(AttributeError):
            view.add(2)  # type: ignore[attr-defined]


class TestCopyAndSubgraph:
    def test_copy_is_independent(self):
        graph = UndirectedGraph(edges=[(0, 1)])
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert 2 not in graph
        assert graph.number_of_edges() == 1

    def test_subgraph_induces_edges(self):
        graph = UndirectedGraph(edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
        sub = graph.subgraph([0, 1, 2])
        assert sub.number_of_nodes() == 3
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)
        assert not sub.has_edge(3, 0)

    def test_subgraph_with_unknown_nodes_ignores_them(self):
        graph = UndirectedGraph(edges=[(0, 1)])
        sub = graph.subgraph([0, 1, 99])
        assert 99 not in sub

    def test_iteration_yields_nodes(self):
        graph = UndirectedGraph(nodes=[3, 1, 2])
        assert set(iter(graph)) == {1, 2, 3}


class TestDeltaLogBoundaries:
    """The mutation log's exact-capacity and overflow semantics (no numpy)."""

    def test_exactly_limit_ops_still_fully_logged(self, monkeypatch):
        monkeypatch.setattr("repro.graphs.adjacency.DELTA_LOG_LIMIT", 4)
        graph = UndirectedGraph(edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
        graph.reset_delta_log()
        stamp = graph.mutation_stamp
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 4)]:  # exactly the limit
            graph.remove_edge(u, v)
        ops = graph.delta_since(stamp)
        assert ops == [("-e", 0, 1), ("-e", 1, 2), ("-e", 2, 3), ("-e", 3, 4)]

    def test_limit_plus_one_overflows(self, monkeypatch):
        monkeypatch.setattr("repro.graphs.adjacency.DELTA_LOG_LIMIT", 4)
        graph = UndirectedGraph(edges=[(i, i + 1) for i in range(6)])
        graph.reset_delta_log()
        stamp = graph.mutation_stamp
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]:  # limit + 1
            graph.remove_edge(u, v)
        assert graph.delta_since(stamp) is None
        # Re-arming starts a fresh, usable window.
        graph.reset_delta_log()
        stamp = graph.mutation_stamp
        graph.add_edge(0, 1)
        assert graph.delta_since(stamp) == [("+e", 0, 1)]

    def test_delta_since_rejects_foreign_stamp(self):
        graph = UndirectedGraph(edges=[(0, 1)])
        graph.reset_delta_log()
        graph.remove_edge(0, 1)
        assert graph.delta_since(graph.mutation_stamp) is None  # wrong base
        assert graph.delta_since(graph.mutation_stamp - 1) == [("-e", 0, 1)]


class TestDeltaLogConsumers:
    """Several independent consumers share one mutation log."""

    def test_two_consumers_see_their_own_windows(self):
        graph = UndirectedGraph(edges=[(0, 1), (1, 2), (2, 3)])
        graph.reset_delta_log()  # default consumer ("csr")
        first_stamp = graph.mutation_stamp
        graph.remove_edge(0, 1)
        graph.reset_delta_log(consumer="pool:x")
        pool_stamp = graph.mutation_stamp
        graph.remove_edge(1, 2)
        assert graph.delta_since(first_stamp) == [("-e", 0, 1), ("-e", 1, 2)]
        assert graph.delta_since(pool_stamp, consumer="pool:x") == [("-e", 1, 2)]
        # Consuming one window does not disturb the other.
        graph.reset_delta_log()
        graph.remove_edge(2, 3)
        assert graph.delta_since(graph.mutation_stamp - 1) == [("-e", 2, 3)]
        assert graph.delta_since(pool_stamp, consumer="pool:x") == [
            ("-e", 1, 2),
            ("-e", 2, 3),
        ]

    def test_unknown_consumer_gets_none(self):
        graph = UndirectedGraph(edges=[(0, 1)])
        graph.reset_delta_log()
        graph.remove_edge(0, 1)
        assert graph.delta_since(graph.mutation_stamp - 1, consumer="pool:y") is None

    def test_log_trimmed_to_slowest_live_consumer(self):
        graph = UndirectedGraph(edges=[(0, 1), (1, 2), (2, 3)])
        graph.reset_delta_log()
        graph.reset_delta_log(consumer="pool:x")
        graph.remove_edge(0, 1)
        graph.remove_edge(1, 2)
        # The fast consumer advances; the slow one still pins the prefix.
        graph.reset_delta_log()
        assert len(graph._delta_log) == 2
        # Once the slow consumer advances too, the shared prefix is freed.
        graph.reset_delta_log(consumer="pool:x")
        assert len(graph._delta_log) == 0

    def test_drop_consumer_disarms_when_last_mark_leaves(self):
        graph = UndirectedGraph(edges=[(0, 1), (1, 2)])
        graph.reset_delta_log(consumer="pool:x")
        stamp = graph.mutation_stamp
        graph.remove_edge(0, 1)
        graph.drop_delta_consumer("pool:x")
        assert graph.delta_since(stamp, consumer="pool:x") is None
        # With no marks left the log is disarmed: later ops are not hoarded.
        assert graph._delta_log is None
        graph.remove_edge(1, 2)
        assert graph._delta_log is None
        graph.drop_delta_consumer("pool:x")  # idempotent

    def test_overflow_invalidates_every_consumer(self, monkeypatch):
        monkeypatch.setattr("repro.graphs.adjacency.DELTA_LOG_LIMIT", 3)
        graph = UndirectedGraph(edges=[(i, i + 1) for i in range(5)])
        graph.reset_delta_log()
        csr_stamp = graph.mutation_stamp
        graph.reset_delta_log(consumer="pool:x")
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 4)]:  # limit + 1
            graph.remove_edge(u, v)
        assert graph.delta_since(csr_stamp) is None
        assert graph.delta_since(csr_stamp, consumer="pool:x") is None
