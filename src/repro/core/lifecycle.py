"""Bot life-cycle state machine.

"OnionBot retains the life cycle of a typical peer-to-peer bot" (section
IV-A): **infection** (the host is recruited and learns the botmaster public
key), **rally** (it finds peers / bootstraps into the overlay and reports its
key to the C&C), **waiting** (it relays traffic, maintains the overlay and
rotates addresses while awaiting commands) and **execution** (it carries out an
authenticated command, then returns to waiting).  A bot can also be
**neutralized** -- taken down by a defender or fully contained by SOAP.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import LifecycleError


class BotStage(enum.Enum):
    """Stages of the OnionBot life cycle."""

    CREATED = "created"
    INFECTION = "infection"
    RALLY = "rally"
    WAITING = "waiting"
    EXECUTION = "execution"
    NEUTRALIZED = "neutralized"


#: Allowed transitions of the life-cycle machine.
_TRANSITIONS: Dict[BotStage, Tuple[BotStage, ...]] = {
    BotStage.CREATED: (BotStage.INFECTION,),
    BotStage.INFECTION: (BotStage.RALLY, BotStage.NEUTRALIZED),
    BotStage.RALLY: (BotStage.WAITING, BotStage.NEUTRALIZED),
    BotStage.WAITING: (BotStage.EXECUTION, BotStage.RALLY, BotStage.NEUTRALIZED),
    BotStage.EXECUTION: (BotStage.WAITING, BotStage.NEUTRALIZED),
    BotStage.NEUTRALIZED: (),
}


@dataclass
class LifecycleMachine:
    """Tracks and validates one bot's progress through the life cycle."""

    stage: BotStage = BotStage.CREATED
    history: List[Tuple[float, BotStage]] = field(default_factory=list)

    def can_transition(self, target: BotStage) -> bool:
        """Whether moving to ``target`` is a legal transition from here."""
        return target in _TRANSITIONS[self.stage]

    def transition(self, target: BotStage, timestamp: float = 0.0) -> BotStage:
        """Move to ``target``, recording the transition.

        Raises
        ------
        LifecycleError
            If the transition is not allowed (e.g. executing before rallying,
            or doing anything after being neutralized).
        """
        if not self.can_transition(target):
            raise LifecycleError(
                f"illegal life-cycle transition {self.stage.value} -> {target.value}"
            )
        self.stage = target
        self.history.append((timestamp, target))
        return self.stage

    # Convenience transitions -------------------------------------------------
    def infect(self, timestamp: float = 0.0) -> BotStage:
        """CREATED -> INFECTION."""
        return self.transition(BotStage.INFECTION, timestamp)

    def rally(self, timestamp: float = 0.0) -> BotStage:
        """INFECTION/WAITING -> RALLY."""
        return self.transition(BotStage.RALLY, timestamp)

    def wait(self, timestamp: float = 0.0) -> BotStage:
        """RALLY/EXECUTION -> WAITING."""
        return self.transition(BotStage.WAITING, timestamp)

    def execute(self, timestamp: float = 0.0) -> BotStage:
        """WAITING -> EXECUTION."""
        return self.transition(BotStage.EXECUTION, timestamp)

    def neutralize(self, timestamp: float = 0.0) -> BotStage:
        """Any active stage -> NEUTRALIZED (terminal)."""
        return self.transition(BotStage.NEUTRALIZED, timestamp)

    # Introspection ------------------------------------------------------------
    @property
    def is_active(self) -> bool:
        """Whether the bot is participating in the overlay."""
        return self.stage in (BotStage.RALLY, BotStage.WAITING, BotStage.EXECUTION)

    @property
    def is_neutralized(self) -> bool:
        """Whether the bot has been permanently removed."""
        return self.stage is BotStage.NEUTRALIZED

    def time_entered(self, stage: BotStage) -> Optional[float]:
        """Timestamp at which the bot first entered ``stage`` (None if never)."""
        for timestamp, entered in self.history:
            if entered is stage:
                return timestamp
        return None
