"""Workload generators: deletion schedules, churn models and command streams.

The experiment harness composes these with overlays and botnets:

* :mod:`~repro.workloads.deletion` -- the node-deletion schedules behind
  Figures 4, 5 and 6 (incremental random, targeted, simultaneous fractions).
* :mod:`~repro.workloads.churn` -- background join/leave churn used by the
  failure-injection tests and the ablation benchmarks.
* :mod:`~repro.workloads.commands` -- streams of benign stand-in C&C commands
  used to exercise propagation in the integrated botnet simulation.
"""

from repro.workloads.deletion import DeletionSchedule, fraction_checkpoints
from repro.workloads.churn import ChurnEvent, ChurnModel
from repro.workloads.commands import CommandWorkload

__all__ = [
    "DeletionSchedule",
    "fraction_checkpoints",
    "ChurnModel",
    "ChurnEvent",
    "CommandWorkload",
]
