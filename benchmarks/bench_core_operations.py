"""Micro-benchmarks of the core operations the experiments are built from.

These quantify the simulator's own performance (not a paper figure): the cost
of a single DDSR repair, an address rotation, envelope sealing/opening, a
hidden-service connection through the Tor model, and a command flood through a
small live botnet.  They use pytest-benchmark's normal calibrated timing (many
rounds), unlike the experiment-level benches which run once.
"""

from __future__ import annotations

import itertools
import random

from repro.core.botnet import OnionBotnet
from repro.core.ddsr import DDSROverlay
from repro.core.messaging import build_envelope, open_envelope
from repro.crypto.keys import KeyPair
from repro.graphs.metrics import average_closeness_centrality
from repro.sim.engine import Simulator
from repro.tor.network import TorNetwork, TorNetworkConfig


def test_bench_ddsr_single_repair(benchmark):
    """Cost of removing one node and running repair + pruning."""
    overlay = DDSROverlay.k_regular(2000, 10, seed=110)
    pool = overlay.nodes()
    random.Random(0).shuffle(pool)
    victim_iter = iter(pool)

    def remove_one():
        victim = next(victim_iter)
        if victim in overlay.graph:
            overlay.remove_node(victim)

    benchmark.pedantic(remove_one, rounds=200, iterations=1)


def test_bench_closeness_centrality_sampled(benchmark):
    """Sampled closeness centrality on a 2000-node overlay (the Fig. 4 metric)."""
    overlay = DDSROverlay.k_regular(2000, 10, seed=111)
    rng = random.Random(1)
    benchmark(lambda: average_closeness_centrality(overlay.graph, sample_size=32, rng=rng))


def test_bench_envelope_roundtrip(benchmark):
    """Seal + whiten + open one fixed-size C&C envelope."""
    key = b"benchmark-key-material-32-bytes!"
    payload = b'{"command": "report-status", "sequence": "12345"}' * 4
    randomness = b"benchmark-randomness-0123456789abcdef"

    def roundtrip():
        envelope = build_envelope(payload, key, randomness)
        return open_envelope(envelope, key)

    assert benchmark(roundtrip) == payload


def test_bench_hidden_service_connection(benchmark):
    """One rendezvous connection + payload exchange through the Tor model."""
    simulator = Simulator(seed=112)
    network = TorNetwork(simulator, TorNetworkConfig(num_relays=40))
    network.bootstrap()
    host = network.host_service(KeyPair.from_seed(b"bench-service"), lambda p, c: b"ack")
    address = host.onion_address

    benchmark(lambda: network.send_to("bench-client", address, b"ping" * 64))


def test_bench_broadcast_through_live_botnet(benchmark):
    """Flooding one signed command through a 30-bot botnet over the Tor model."""
    net = OnionBotnet(seed=113)
    net.build(30)
    counter = itertools.count()

    def flood():
        return net.broadcast_command(f"report-status-{next(counter)}")

    report = benchmark.pedantic(flood, rounds=5, iterations=1)
    assert report.coverage == 1.0


def test_bench_address_rotation_derivation(benchmark):
    """Deriving one period's keypair + onion address (done by every bot daily)."""
    from repro.core.addressing import current_onion_address

    botmaster = KeyPair.from_seed(b"bench-botmaster")
    bot_key = b"bench-bot-key"
    times = itertools.count(start=0, step=86400)

    benchmark(lambda: current_onion_address(botmaster.public, bot_key, float(next(times))))
