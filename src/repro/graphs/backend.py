"""Graph-metric backend selection: pure-Python reference vs vectorized CSR.

Two interchangeable kernel sets compute the paper's graph metrics:

* ``"python"`` -- the readable BFS reference in :mod:`repro.graphs.metrics`
  (the oracle the differential tests trust);
* ``"fast"`` -- the vectorized CSR kernels in :mod:`repro.graphs.fast`
  (numpy), ~10-100x faster at the 20k--100k-node scales the large runner
  scenarios sweep.

Both return identical results (enforced by
``tests/graphs/test_backend_equivalence.py``), so call sites route through
the dispatchers below and pick up whichever backend is active:

    from repro.graphs import backend

    backend.use("fast")                    # force, process-wide
    with backend.using("python"):          # force, scoped
        ...
    backend.use("auto")                    # default: fast iff the graph is
                                           # large enough and numpy imports

The ``REPRO_GRAPH_BACKEND`` environment variable (``python`` / ``fast`` /
``auto``) supplies the initial policy; :func:`use` overrides it at runtime.
Under ``auto`` the choice is made per call from the graph's size, so small
graphs keep the zero-overhead reference path while resilience sweeps at
paper scale and beyond get the CSR kernels transparently.

A second, independent knob controls the fast backend's multi-source BFS
wave width (sources advanced per bit-packed wave).  ``REPRO_BFS_BATCH``
supplies the initial policy (``auto`` or a positive source count) and
:func:`use_bfs_batch` / :func:`using_bfs_batch` override it at runtime;
``auto`` lets :func:`repro.graphs.fast.wave_batch` size waves from the
graph and the number of requested sources.  Results never depend on the
wave width -- only wall-clock time and memory do.
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager
from typing import Dict, Hashable, Iterator, List, Optional, Set, Tuple

from repro.core.errors import ConfigError
from repro.graphs import metrics
from repro.graphs.adjacency import UndirectedGraph

NodeId = Hashable

ENV_VAR = "REPRO_GRAPH_BACKEND"
BACKENDS = ("python", "fast", "auto")

#: Environment variable seeding the multi-source BFS wave-width policy:
#: ``auto`` (default) or a positive integer of sources per wave (rounded up
#: to whole 64-bit frontier words by the kernel).
BFS_BATCH_ENV_VAR = "REPRO_BFS_BATCH"

#: Set truthy to force the fast backend's byte-LUT row-popcount kernel even
#: when ``np.bitwise_count`` exists (the numpy < 2.0 fallback, kept honest
#: by a dedicated CI job).  Parsed here -- without importing numpy -- so the
#: runner's cache keys can cover it on any install.
POPCOUNT_LUT_ENV_VAR = "REPRO_FORCE_POPCOUNT_LUT"

#: Under ``auto``, graphs with at least this many nodes use the fast backend.
#: Below it the numpy fixed costs rival the pure-Python BFS runtime.
AUTO_THRESHOLD = 2048

_forced: Optional[str] = None
_forced_bfs_batch: "Optional[object]" = None  # None | "auto" | int >= 1


class BackendError(ConfigError):
    """Raised for unknown backend names, policies or unavailable backends.

    Subclasses :class:`repro.core.errors.ConfigError`: an invalid
    ``REPRO_GRAPH_BACKEND`` / ``REPRO_BFS_BATCH`` value is a configuration
    error and must fail loudly, never silently fall back to a default.
    """


def _validate(name: str, *, source: str = "") -> str:
    if name not in BACKENDS:
        origin = f"{source}=" if source else ""
        raise BackendError(
            f"invalid graph backend {origin}{name!r}; expected one of {BACKENDS}"
        )
    return name


def fast_available() -> bool:
    """Whether the vectorized backend can be used (numpy imports)."""
    try:
        import repro.graphs.fast  # noqa: F401
    except ImportError:
        return False
    return True


def use(name: Optional[str]) -> Optional[str]:
    """Force a backend policy process-wide; returns the previous forced value.

    ``None`` clears the override, falling back to ``REPRO_GRAPH_BACKEND``
    (default ``auto``).
    """
    global _forced
    previous = _forced
    _forced = _validate(name) if name is not None else None
    return previous


@contextmanager
def using(name: str) -> Iterator[None]:
    """Context manager scoping a forced backend policy."""
    previous = use(name)
    try:
        yield
    finally:
        use(previous)


def policy() -> str:
    """The active selection policy: forced > environment > ``auto``.

    An invalid ``REPRO_GRAPH_BACKEND`` value raises a
    :class:`~repro.core.errors.ConfigError` (via :class:`BackendError`)
    naming the variable -- a typo must never silently route metric calls
    through an unintended backend.
    """
    if _forced is not None:
        return _forced
    env = os.environ.get(ENV_VAR, "").strip().lower()
    if env:
        return _validate(env, source=ENV_VAR)
    return "auto"


# ----------------------------------------------------------------------
# Multi-source BFS wave-width policy (threaded into repro.graphs.fast)
# ----------------------------------------------------------------------
def _validate_bfs_batch(value, *, source: str = ""):
    """Normalise a wave-width policy value to ``"auto"`` or a positive int."""
    origin = f"{source}=" if source else "BFS batch policy "
    if isinstance(value, str):
        text = value.strip().lower()
        if text == "auto":
            return "auto"
        try:
            value = int(text)
        except ValueError:
            raise BackendError(
                f"invalid {origin}{value!r}; expected 'auto' or a "
                "positive integer of sources per wave"
            ) from None
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise BackendError(
            f"invalid {origin}{value!r}; expected 'auto' or a "
            "positive integer of sources per wave"
        )
    return value


def use_bfs_batch(value) -> "Optional[object]":
    """Force the BFS wave-width policy process-wide; returns the previous value.

    ``value`` is ``"auto"`` or a positive source count per wave (the kernel
    rounds it up to whole 64-bit frontier words).  ``None`` clears the
    override, falling back to ``REPRO_BFS_BATCH`` (default ``auto``).  Wave
    width never changes results -- only wall-clock time and memory -- so this
    is a tuning knob, not a semantic switch.
    """
    global _forced_bfs_batch
    previous = _forced_bfs_batch
    _forced_bfs_batch = _validate_bfs_batch(value) if value is not None else None
    return previous


@contextmanager
def using_bfs_batch(value) -> Iterator[None]:
    """Context manager scoping a forced BFS wave-width policy."""
    previous = use_bfs_batch(value)
    try:
        yield
    finally:
        use_bfs_batch(previous)


def bfs_batch_policy():
    """The active wave-width policy: forced > environment > ``"auto"``.

    Returns ``"auto"`` or a positive integer of sources per wave.
    """
    if _forced_bfs_batch is not None:
        return _forced_bfs_batch
    env = os.environ.get(BFS_BATCH_ENV_VAR, "").strip()
    if env:
        return _validate_bfs_batch(env, source=BFS_BATCH_ENV_VAR)
    return "auto"


def popcount_lut_forced() -> bool:
    """Whether :data:`POPCOUNT_LUT_ENV_VAR` forces the LUT popcount kernel.

    Raises :class:`BackendError` (a :class:`~repro.core.errors.ConfigError`)
    for unrecognised values -- a kernel-selection typo must fail loudly, not
    silently pick a path.  :func:`repro.graphs.fast.configure_popcount`
    consumes this; it also feeds the runner's cache keys, so it deliberately
    avoids importing numpy.
    """
    raw = os.environ.get(POPCOUNT_LUT_ENV_VAR, "").strip().lower()
    if raw in ("1", "true", "yes", "on"):
        return True
    if raw in ("", "0", "false", "no", "off"):
        return False
    raise BackendError(
        f"invalid {POPCOUNT_LUT_ENV_VAR}={raw!r}; expected 1/true/yes/on "
        "to force the LUT popcount fallback, or 0/false/no/off/unset"
    )


def resolve_for(graph: UndirectedGraph) -> str:
    """The backend a metric call on ``graph`` will use right now."""
    active = policy()
    if active == "python":
        return "python"
    if active == "fast":
        if not fast_available():
            raise BackendError(
                "graph backend forced to 'fast' but numpy is not importable"
            )
        return "fast"
    if graph.number_of_nodes() >= AUTO_THRESHOLD and fast_available():
        return "fast"
    return "python"


def _impl(graph: UndirectedGraph):
    if resolve_for(graph) == "fast":
        from repro.graphs import fast

        return fast
    return metrics


# ----------------------------------------------------------------------
# Dispatchers (signatures mirror repro.graphs.metrics)
# ----------------------------------------------------------------------
def shortest_path_lengths_from(graph: UndirectedGraph, source: NodeId) -> Dict[NodeId, int]:
    """BFS distances from ``source`` (active backend)."""
    return _impl(graph).shortest_path_lengths_from(graph, source)


def shortest_path_lengths_from_many(
    graph: UndirectedGraph, sources
) -> List[Dict[NodeId, int]]:
    """Batched BFS distances: one dict per source, in source order.

    The fast path advances all sources together as bit-packed multi-source
    BFS waves (one kernel invocation per level for up to 64 sources) instead
    of launching one BFS per source; the reference path is the equivalent
    loop.  Both return exactly what per-source
    :func:`shortest_path_lengths_from` calls would.
    """
    sources = list(sources)
    if resolve_for(graph) == "fast":
        from repro.graphs import fast

        return fast.shortest_path_lengths_from_many(graph, sources)
    return [metrics.shortest_path_lengths_from(graph, source) for source in sources]


def closeness_centrality(graph: UndirectedGraph, node: NodeId) -> float:
    """Normalised closeness centrality of ``node`` (active backend)."""
    return _impl(graph).closeness_centrality(graph, node)


def average_closeness_centrality(
    graph: UndirectedGraph,
    *,
    sample_size: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> float:
    """Mean closeness centrality (active backend)."""
    return _impl(graph).average_closeness_centrality(
        graph, sample_size=sample_size, rng=rng
    )


def degree_centrality(graph: UndirectedGraph, node: NodeId) -> float:
    """Degree centrality of ``node`` (active backend)."""
    return _impl(graph).degree_centrality(graph, node)


def average_degree_centrality(graph: UndirectedGraph) -> float:
    """Mean degree centrality (active backend)."""
    return _impl(graph).average_degree_centrality(graph)


def connected_components(graph: UndirectedGraph) -> List[Set[NodeId]]:
    """Connected components, largest first (active backend)."""
    return _impl(graph).connected_components(graph)


def number_connected_components(graph: UndirectedGraph) -> int:
    """Count of connected components (active backend)."""
    return _impl(graph).number_connected_components(graph)


def largest_component_fraction(graph: UndirectedGraph) -> float:
    """Fraction of nodes in the largest component (active backend)."""
    return _impl(graph).largest_component_fraction(graph)


def component_summary(graph: UndirectedGraph) -> Tuple[int, int]:
    """``(component_count, largest_component_size)`` in one pass.

    Cheaper than materialising every component when only the counts matter
    (takedown summaries, checkpoint records).
    """
    if resolve_for(graph) == "fast":
        from repro.graphs import fast

        return fast.component_summary(graph)
    components = metrics.connected_components(graph)
    if not components:
        return 0, 0
    return len(components), len(components[0])


def largest_component_subgraph(graph: UndirectedGraph) -> UndirectedGraph:
    """``graph`` when connected, else the induced largest-component subgraph.

    Lets callers that need several path metrics on a disconnected graph
    extract the component once and pass ``connected=True`` to each metric,
    instead of every metric re-deriving it.  ``UndirectedGraph.subgraph``
    orders nodes canonically, so both backends return the same subgraph.
    """
    if resolve_for(graph) == "fast":
        from repro.graphs import fast

        return fast.largest_component_subgraph(graph)
    if graph.number_of_nodes() == 0:
        return graph
    components = metrics.connected_components(graph)
    return graph if len(components) == 1 else graph.subgraph(components[0])


def eccentricity(graph: UndirectedGraph, node: NodeId) -> int:
    """Largest BFS distance from ``node`` (active backend)."""
    return _impl(graph).eccentricity(graph, node)


def diameter(
    graph: UndirectedGraph,
    *,
    sample_size: Optional[int] = None,
    rng: Optional[random.Random] = None,
    largest_component_only: bool = True,
    connected: Optional[bool] = None,
) -> float:
    """Graph diameter, optionally sampled (active backend).

    Pass ``connected=True`` when the caller has just established the graph is
    connected (e.g. from :func:`component_summary`) to skip the redundant
    component scan on both backends.
    """
    return _impl(graph).diameter(
        graph,
        sample_size=sample_size,
        rng=rng,
        largest_component_only=largest_component_only,
        connected=connected,
    )


def average_shortest_path_length(
    graph: UndirectedGraph,
    *,
    sample_size: Optional[int] = None,
    rng: Optional[random.Random] = None,
    connected: Optional[bool] = None,
) -> float:
    """Mean pairwise distance, optionally sampled (active backend)."""
    return _impl(graph).average_shortest_path_length(
        graph, sample_size=sample_size, rng=rng, connected=connected
    )


def full_path_metrics(graph: UndirectedGraph) -> Dict:
    """Exact largest-component diameter / ASPL / closeness (active backend).

    ``{components, largest_fraction, diameter, avg_path_length,
    avg_closeness}`` with every node of the largest component as a BFS
    source.  The fast path computes all three metrics from *one*
    full-population wave campaign (per-node eccentricity max and
    level-weighted distance sums accumulated as the waves advance); the
    reference path runs one BFS per node.  Results are bit-identical.
    """
    return _impl(graph).full_path_metrics(graph)


def path_length_accumulators(graph: UndirectedGraph) -> Dict:
    """``{node: (eccentricity, distance_sum, reachable_count)}`` (active backend).

    Exact per-node path accumulators; per-node ASPL is
    ``distance_sum / reachable_count``.  Both backends return identical
    integers.
    """
    return _impl(graph).path_length_accumulators(graph)


def degree_histogram(graph: UndirectedGraph) -> Dict[int, int]:
    """Degree -> node-count histogram (active backend)."""
    return _impl(graph).degree_histogram(graph)


def top_degree_nodes(graph: UndirectedGraph) -> List[NodeId]:
    """All maximum-degree nodes, sorted by ``repr`` (empty for an empty graph).

    Backs the hub-targeted takedown's per-victim candidate search: the fast
    path is a masked argmax over the (incrementally patched) CSR degree
    array, the reference path the equivalent dict scan.  The ``repr`` sort
    makes the list identical on both backends, so the strategy's rng draw is
    backend-independent.
    """
    if graph.number_of_nodes() == 0:
        return []
    if resolve_for(graph) == "fast":
        from repro.graphs import fast

        return fast.top_degree_nodes(graph)
    degrees = graph.degrees()
    top = max(degrees.values())
    return sorted((node for node, degree in degrees.items() if degree == top), key=repr)


def induced_component_summary(
    graph: UndirectedGraph, keep_nodes
) -> Tuple[int, int, int, int]:
    """``(surviving, components, largest, isolated)`` of an induced subgraph.

    The complement of :func:`partition_summary_after_removal`: the caller
    names the nodes to *keep*.  The fast path builds a compact CSR straight
    from the kept nodes' adjacency (never mirroring the full graph -- the
    point when the kept set is a small minority, e.g. the benign bots of a
    clone-flooded SOAP overlay); the reference path materialises the
    subgraph and walks it with the pure-Python kernels.
    """
    keep_nodes = list(keep_nodes)
    if resolve_for(graph) == "fast":
        from repro.graphs import fast

        return fast.induced_component_summary(graph, keep_nodes)
    # dict.fromkeys: duplicates are one node (mirrors the fast path's dedup).
    present = [node for node in dict.fromkeys(keep_nodes) if node in graph]
    subgraph = graph.subgraph(present)
    components = metrics.connected_components(subgraph)
    if not components:
        return len(present), 0, 0, 0
    isolated = sum(1 for component in components if len(component) == 1)
    return len(present), len(components), len(components[0]), isolated


def partition_summary_after_removal(
    graph: UndirectedGraph, victims
) -> Tuple[int, int, int, int]:
    """``(surviving, components, largest, isolated)`` after a mass removal.

    The fast backend computes this on a masked CSR without building the
    survivor subgraph; the reference path materialises the subgraph exactly
    like :func:`repro.graphs.partition.simultaneous_deletion_survivors`.
    """
    if resolve_for(graph) == "fast":
        from repro.graphs import fast

        return fast.partition_summary_after_removal(graph, list(victims))
    victim_set = set(victims)
    if victim_set:
        survivors = [node for node in graph.nodes() if node not in victim_set]
        subgraph = graph.subgraph(survivors)
    else:
        subgraph = graph
    components = metrics.connected_components(subgraph)
    if not components:
        return 0, 0, 0, 0
    isolated = sum(1 for component in components if len(component) == 1)
    return (
        subgraph.number_of_nodes(),
        len(components),
        len(components[0]),
        isolated,
    )
