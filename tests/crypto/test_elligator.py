"""Tests for the uniform-encoding (Elligator stand-in) model."""

import pytest

from repro.crypto.elligator import (
    byte_entropy,
    decode_uniform,
    distinguishing_advantage,
    encode_uniform,
    looks_uniform,
)


class TestEncodeDecode:
    def test_roundtrip(self):
        payload = b"maintenance message: change peers" * 4
        encoded = encode_uniform(payload, b"randomness-seed")
        assert decode_uniform(encoded) == payload

    def test_encoded_is_longer_by_prefix(self):
        payload = b"x" * 100
        encoded = encode_uniform(payload, b"r")
        assert len(encoded) == len(payload) + 16

    def test_decode_too_short_raises(self):
        with pytest.raises(ValueError):
            decode_uniform(b"short")

    def test_same_payload_different_randomness_differs(self):
        payload = b"identical payload bytes" * 8
        a = encode_uniform(payload, b"rand-a")
        b = encode_uniform(payload, b"rand-b")
        assert a != b

    def test_structured_payload_becomes_high_entropy(self):
        payload = b'{"cmd": "ddos", "target": "example.com"}' * 10
        assert byte_entropy(payload) < 6.0
        assert byte_entropy(encode_uniform(payload, b"r")) > 7.0


class TestEntropyChecks:
    def test_byte_entropy_bounds(self):
        assert byte_entropy(b"") == 0.0
        assert byte_entropy(b"\x00" * 100) == 0.0
        assert byte_entropy(bytes(range(256)) * 4) == pytest.approx(8.0)

    def test_looks_uniform_accepts_whitened_blob(self):
        blob = encode_uniform(b"some structured plaintext" * 20, b"r")
        assert looks_uniform(blob)

    def test_looks_uniform_rejects_plaintext(self):
        assert not looks_uniform(b"plaintext command " * 20)

    def test_looks_uniform_requires_minimum_size(self):
        with pytest.raises(ValueError):
            looks_uniform(b"tiny")

    def test_distinguishing_advantage_separates_plain_from_uniform(self):
        plain = [b"GET /command HTTP/1.1 host: cc.example" * 5 for _ in range(5)]
        uniform = [encode_uniform(sample, bytes([index])) for index, sample in enumerate(plain)]
        advantage = distinguishing_advantage(plain, uniform)
        assert advantage > 0.2

    def test_distinguishing_advantage_near_zero_for_same_family(self):
        family = [encode_uniform(b"message" * 30, bytes([index])) for index in range(6)]
        advantage = distinguishing_advantage(family[:3], family[3:])
        assert advantage < 0.05

    def test_distinguishing_advantage_requires_samples(self):
        with pytest.raises(ValueError):
            distinguishing_advantage([], [b"x" * 64])
