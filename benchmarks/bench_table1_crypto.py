"""Table I -- cryptographic use in different botnets.

Regenerates the paper's Table I rows (crypto, signing, replay) and augments
them with empirical measurements from the simulator: byte entropy and
uniformity of representative wire messages, and whether message sizes leak the
plaintext length.  The benchmark timing covers building the full table,
including generating and measuring the sample messages and OnionBot envelopes.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.reporting import render_result_rows
from repro.analysis.table1 import build_table1
from repro.adversary.hijack import HijackAttempt
from repro.core.botnet import OnionBotnet


def test_table1_crypto_comparison(benchmark):
    """Table I: published columns plus measured distinguishability columns."""
    rows = benchmark(build_table1, 8)
    emit("Table I — cryptographic use in different botnets", render_result_rows(rows))

    onionbot = next(row for row in rows if row["Botnet"] == "OnionBot")
    legacy = [row for row in rows if row["Botnet"] != "OnionBot"]
    assert onionbot["LooksUniform"] and onionbot["ConstantSize"]
    assert all(not row["ConstantSize"] for row in legacy)
    assert all(row["Replay"] == "yes" for row in legacy)
    assert onionbot["Replay"] == "no"


def test_table1_replay_and_hijack_resistance(benchmark):
    """Empirical complement to the Replay column: injection attempts against live bots."""

    def run():
        net = OnionBotnet(seed=41)
        net.build(12)
        attempt = HijackAttempt()
        unsigned = attempt.inject_unsigned(net)
        self_signed = attempt.inject_self_signed(net)
        original = net.botmaster.issue_broadcast("report-status", now=net.simulator.now)
        for label in net.active_labels():
            net.bots[label].process_command(original, net.simulator.now)
        replay = attempt.replay(net, original)
        return [
            {"technique": outcome.technique, "attempted": outcome.attempted,
             "accepted": outcome.accepted, "success_rate": outcome.success_rate}
            for outcome in (unsigned, self_signed, replay)
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Table I complement — command injection against OnionBot", render_result_rows(rows))
    assert all(row["accepted"] == 0 for row in rows)
