"""Graph-kernel backend benchmark: pure-Python BFS vs vectorized CSR.

Six workloads, written as one per-PR entry in the ``runs`` trajectory of
``BENCH_graph_kernels.json`` at the repository root:

* ``kernels`` -- connected components + sampled diameter on k-regular graphs
  at n in {1k, 5k, 20k, 100k}, python reference vs CSR backend (the PR-2
  workload, re-measured every PR to grow the trajectory);
* ``batched_bfs`` -- the sampled-diameter estimator run as one BFS kernel
  per source (the pre-batching fast path) vs the bit-packed multi-source
  wave that now backs diameter/ASPL/closeness;
* ``soap`` -- a full SOAP containment campaign plus benign-subgraph summary,
  original implementation (``ReferenceSoapAttack``, pure-Python metrics) vs
  the vectorized campaign over the CSR backend;
* ``full_closeness`` (PR 4) -- *exact* full-population closeness at 100k
  nodes: the PR 3 single-word dense-only wave (kept verbatim below as the
  baseline) vs the adaptive multi-word frontier engine, bit-identical and
  pinned to a golden;
* ``sparse_frontier`` (PR 4) -- sampled diameter on a 100k-node ring, the
  dense-only wave vs the engine's sparse-frontier dispatch (the pathological
  high-diameter topology of the partition-threshold study);
* ``full_path_metrics`` (PR 5) -- exact full-population diameter + ASPL +
  closeness in *one* wave campaign (``fast.full_path_metrics``: per-node
  eccentricity max and distance sums accumulated as the waves advance) vs a
  naive per-source full sweep (one ``bfs_distances`` kernel launch per node,
  the pre-accumulator way to get exact values), bit-identical and pinned to
  a golden.

The fast timings are measured *cold*: the CSR cache is dropped before each
repetition, so the reported numbers include the UndirectedGraph -> CSR
conversion that a real checkpoint pays after a batch of deletions.  The SOAP
timings disable the cyclic GC inside the timed region (both sides equally;
the campaign's allocation burst otherwise dominates run-to-run noise).

Asserted contracts (the PR acceptance bars): fast >= 10x at n=20k on the
kernel pair, batched multi-source BFS >= 3x over the per-source loop at
n=100k, the vectorized SOAP campaign >= 5x at n=20k, the adaptive engine
>= 3.5x over the PR 3 wave on 100k full-population closeness, >= 5x over
the dense-only wave on the 100k ring diameter, and the one-campaign exact
path metrics >= 4x over the naive per-source full sweep at n=20k.

Run directly for a quick smoke with a wall-clock bound (used by CI)::

    python benchmarks/bench_graph_kernels.py --sizes 1000 --soap-n 2000 \
        --multiword-n 1000 --multiword-sources 128 --ring-n 4000 \
        --full-path-n 1500 --shard-n 2000 --shard-workers 2 --max-seconds 150
"""

from __future__ import annotations

import gc
import json
import random
import time
from pathlib import Path

SIZES = (1_000, 5_000, 20_000, 100_000)
K = 10
DIAMETER_SAMPLE = 32
#: Repetitions per (size, backend); the minimum is reported.
REPEATS = {1_000: 3, 5_000: 3, 20_000: 2, 100_000: 1}

BATCHED_SIZES = (20_000, 100_000)
SOAP_N = 20_000
SOAP_REPEATS = 3

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_graph_kernels.json"

SPEEDUP_FLOOR_AT_20K = 10.0
BATCHED_SPEEDUP_FLOOR_AT_100K = 3.0
SOAP_SPEEDUP_FLOOR = 5.0
#: PR 4 recorded 4.13x and pinned the floor at 4.0 -- a 3% margin that
#: machine drift alone erases (the same PR 4 code measures ~3.9x on the
#: PR 5 runner; A/B-tested, the engine itself did not regress).  The floor
#: is a regression tripwire, not a record: the trajectory keeps the real
#: measured numbers, the tripwire gets a margin that survives a slow box.
FULL_CLOSENESS_SPEEDUP_FLOOR = 3.5
SPARSE_FRONTIER_SPEEDUP_FLOOR = 5.0
FULL_PATH_SPEEDUP_FLOOR = 4.0

FULL_CLOSENESS_N = 100_000
SPARSE_FRONTIER_N = 100_000
SPARSE_FRONTIER_SAMPLE = 32
#: The exact-path-metric pair runs at 20k: the naive per-source baseline is
#: O(n * (n + m)) kernel launches, which at 100k would take a quarter hour
#: for the privilege of losing by three orders of magnitude.
FULL_PATH_N = 20_000

#: Exact (every-node-a-source) mean closeness of
#: ``k_regular_graph(100_000, 10, seed=104000)`` -- the 100k full-sample
#: golden, identical from the PR 3 wave and the adaptive engine.
FULL_CLOSENESS_GOLDEN_100K = 0.18551634688146879

#: Exact full-population path metrics of
#: ``k_regular_graph(20_000, 10, seed=25000)`` -- identical from the naive
#: per-source sweep and the one-campaign accumulator path.
FULL_PATH_GOLDEN_20K = {
    "diameter": 6.0,
    "avg_path_length": 4.6381386169308465,
    "avg_closeness": 0.21560390270516486,
}

#: Exact full-population diameter / ASPL / closeness of the 100k closeness
#: golden graph (``k_regular_graph(100_000, 10, seed=104000)``) from the
#: one-campaign accumulator path; ``avg_closeness`` must equal
#: :data:`FULL_CLOSENESS_GOLDEN_100K` -- the accumulator assembly and the
#: closeness-only symmetric path are independent implementations.
FULL_PATH_GOLDEN_100K = {
    "diameter": 7.0,
    "avg_path_length": 5.390361515615156,
    "avg_closeness": FULL_CLOSENESS_GOLDEN_100K,
}

#: Ordinal of this PR's entry in the ``runs`` trajectory.
PR_LABEL = "PR 5"


def _workload(module, graph, *, connected_components=True, diameter=True):
    """The benchmarked kernel pair, via one backend module."""
    results = {}
    if connected_components:
        results["components"] = module.number_connected_components(graph)
    if diameter:
        results["diameter"] = module.diameter(
            graph, sample_size=DIAMETER_SAMPLE, rng=random.Random(0)
        )
    return results


def _time_backend(module, graph, repeats: int, *, drop_csr_cache: bool = False):
    """``(best_seconds, workload_result)`` over ``repeats`` repetitions."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        if drop_csr_cache and hasattr(graph, "_csr_cache"):
            delattr(graph, "_csr_cache")
        started = time.perf_counter()
        result = _workload(module, graph)
        best = min(best, time.perf_counter() - started)
    return best, result


def run_kernel_benchmark(sizes=SIZES, *, emit=print) -> list:
    """Measure both backends at every size and return the report rows."""
    from repro.graphs import fast, metrics
    from repro.graphs.generators import k_regular_graph

    rows = []
    for n in sizes:
        repeats = REPEATS.get(n, 1)
        graph = k_regular_graph(n, K, seed=1000 + n)
        python_seconds, python_result = _time_backend(metrics, graph, repeats)
        fast_seconds, fast_result = _time_backend(fast, graph, repeats, drop_csr_cache=True)
        # Sanity: both backends agree on the benchmarked graph.
        assert python_result == fast_result
        speedup = python_seconds / fast_seconds if fast_seconds else float("inf")
        rows.append(
            {
                "n": n,
                "k": K,
                "edges": graph.number_of_edges(),
                "diameter_sample": DIAMETER_SAMPLE,
                "repeats": repeats,
                "python_seconds": round(python_seconds, 6),
                "fast_seconds": round(fast_seconds, 6),
                "speedup": round(speedup, 2),
            }
        )
        emit(
            f"kernels  n={n:>7,}  python={python_seconds:8.3f}s  "
            f"fast={fast_seconds:8.4f}s  speedup={speedup:7.1f}x"
        )
    return rows


def _per_source_diameter(csr, node_indices) -> float:
    """The pre-batching fast path: one BFS kernel launch per sampled source."""
    from repro.graphs import fast

    best = 0
    for index in node_indices:
        distances = fast.bfs_distances(csr, index)
        best = max(best, int(distances.max()))
    return float(best)


def run_batched_bfs_benchmark(sizes=BATCHED_SIZES, *, emit=print) -> list:
    """Per-source BFS loop vs the bit-packed multi-source wave (same sources)."""
    from repro.graphs import fast
    from repro.graphs.generators import k_regular_graph
    from repro.graphs.metrics import _select_nodes

    rows = []
    for n in sizes:
        graph = k_regular_graph(n, K, seed=2000 + n)
        csr = fast.csr_of(graph)
        nodes = _select_nodes(graph, DIAMETER_SAMPLE, random.Random(0))
        indices = [csr.index_of[node] for node in nodes]

        per_source_seconds = float("inf")
        batched_seconds = float("inf")
        for _ in range(2):
            started = time.perf_counter()
            per_source = _per_source_diameter(csr, indices)
            per_source_seconds = min(per_source_seconds, time.perf_counter() - started)
            started = time.perf_counter()
            batched = fast.diameter(
                graph, sample_size=DIAMETER_SAMPLE, rng=random.Random(0), connected=True
            )
            batched_seconds = min(batched_seconds, time.perf_counter() - started)
            assert batched == per_source
        speedup = per_source_seconds / batched_seconds if batched_seconds else float("inf")
        rows.append(
            {
                "n": n,
                "k": K,
                "sources": len(indices),
                "per_source_seconds": round(per_source_seconds, 6),
                "batched_seconds": round(batched_seconds, 6),
                "speedup": round(speedup, 2),
            }
        )
        emit(
            f"batched  n={n:>7,}  per-source={per_source_seconds:8.4f}s  "
            f"batched={batched_seconds:8.4f}s  speedup={speedup:7.1f}x"
        )
    return rows


# ----------------------------------------------------------------------
# PR 3 wave, kept verbatim as the PR 4 baseline: one uint64 frontier word
# per node (64 sources max), dense all-edges gather + reduceat every level,
# per-level full-length unpackbits counting.
# ----------------------------------------------------------------------
def _pr3_wave(csr, sources):
    import numpy as np

    batch = sources.size
    n = csr.n
    bits = np.left_shift(np.uint64(1), np.arange(batch, dtype=np.uint64))
    visited = np.zeros(n, dtype=np.uint64)
    np.bitwise_or.at(visited, sources, bits)
    frontier = visited.copy()
    degrees = np.diff(csr.indptr)
    nonzero = np.flatnonzero(degrees > 0)
    starts = csr.indptr[nonzero]
    if csr.indices.size == 0:
        return
    while True:
        gathered = frontier[csr.indices]
        neighbor_or = np.bitwise_or.reduceat(gathered, starts)
        frontier = np.zeros(n, dtype=np.uint64)
        frontier[nonzero] = neighbor_or
        frontier &= ~visited
        if not frontier.any():
            return
        visited |= frontier
        yield frontier


def _pr3_closeness(graph, sample_size=None, rng=None):
    """The PR 3 estimator end to end: 64-source waves + unpackbits counts."""
    import numpy as np

    from repro.graphs import fast
    from repro.graphs.metrics import _select_nodes

    nodes = _select_nodes(graph, sample_size, rng)
    n = graph.number_of_nodes()
    csr = fast.csr_of(graph)
    indices = np.fromiter(
        (csr.index_of[node] for node in nodes), dtype=np.int64, count=len(nodes)
    )
    values = []
    for offset in range(0, indices.size, 64):
        chunk = indices[offset:offset + 64]
        batch = chunk.size
        level_counts = [
            np.unpackbits(
                frontier.view(np.uint8).reshape(frontier.size, 8),
                axis=1,
                bitorder="little",
            )[:, :batch].sum(axis=0, dtype=np.int64)
            for frontier in _pr3_wave(csr, chunk)
        ]
        reachable = [0] * batch
        totals = [0] * batch
        for depth, counts in enumerate(level_counts, start=1):
            for j in range(batch):
                newly = int(counts[j])
                reachable[j] += newly
                totals[j] += depth * newly
        for j in range(batch):
            if reachable[j] == 0:
                values.append(0.0)
            else:
                closeness = reachable[j] / totals[j]
                values.append(closeness * (reachable[j] / (n - 1)))
    return sum(values) / len(values)


def _pr3_diameter(graph, sample_size, rng):
    """The PR 3 sampled diameter: dense-only 64-source waves."""
    import numpy as np

    from repro.graphs import fast
    from repro.graphs.metrics import _select_nodes

    nodes = _select_nodes(graph, sample_size, rng)
    csr = fast.csr_of(graph)
    indices = np.fromiter(
        (csr.index_of[node] for node in nodes), dtype=np.int64, count=len(nodes)
    )
    best = 0
    for offset in range(0, indices.size, 64):
        chunk = indices[offset:offset + 64]
        best = max(best, sum(1 for _ in _pr3_wave(csr, chunk)))
    return float(best)


def run_full_closeness_benchmark(
    n=FULL_CLOSENESS_N, *, sample_size=None, repeats=2, emit=print
) -> dict:
    """Exact full-population closeness: PR 3 wave path vs the adaptive engine."""
    from repro.graphs import fast
    from repro.graphs.generators import k_regular_graph

    graph = k_regular_graph(n, K, seed=4000 + n)
    fast.csr_of(graph)  # shared warm mirror: the wave engines are what differ
    rng_seed = 11

    adaptive_seconds = float("inf")
    legacy_seconds = float("inf")
    adaptive = legacy = None
    for _ in range(repeats):
        started = time.perf_counter()
        adaptive = fast.average_closeness_centrality(
            graph, sample_size=sample_size, rng=random.Random(rng_seed)
        )
        adaptive_seconds = min(adaptive_seconds, time.perf_counter() - started)
        started = time.perf_counter()
        legacy = _pr3_closeness(
            graph, sample_size=sample_size, rng=random.Random(rng_seed)
        )
        legacy_seconds = min(legacy_seconds, time.perf_counter() - started)
        assert adaptive == legacy, (adaptive, legacy)
    speedup = legacy_seconds / adaptive_seconds if adaptive_seconds else float("inf")
    row = {
        "n": n,
        "k": K,
        "sources": n if sample_size is None else sample_size,
        "closeness": adaptive,
        "pr3_seconds": round(legacy_seconds, 6),
        "adaptive_seconds": round(adaptive_seconds, 6),
        "speedup": round(speedup, 2),
    }
    # One combined exact-path campaign on the same warm mirror: diameter and
    # ASPL ride along at 100k, and its closeness -- assembled from the
    # *accumulator* path rather than the closeness-only symmetric path --
    # must land on the very same value, a cross-engine identity check.
    started = time.perf_counter()
    combined = fast.full_path_metrics(graph)
    combined_seconds = time.perf_counter() - started
    if sample_size is None:
        assert combined["avg_closeness"] == adaptive, (combined, adaptive)
    row["full_path_campaign"] = {
        "diameter": combined["diameter"],
        "avg_path_length": combined["avg_path_length"],
        "avg_closeness": combined["avg_closeness"],
        "seconds": round(combined_seconds, 6),
    }
    emit(
        f"full-closeness n={n:>7,}  pr3={legacy_seconds:8.2f}s  "
        f"adaptive={adaptive_seconds:8.2f}s  speedup={speedup:7.1f}x  "
        f"(combined campaign {combined_seconds:.2f}s: "
        f"diameter={combined['diameter']:g}, aspl={combined['avg_path_length']:.6f})"
    )
    return row


def run_sparse_frontier_benchmark(
    n=SPARSE_FRONTIER_N, *, sample_size=SPARSE_FRONTIER_SAMPLE, emit=print
) -> dict:
    """Ring-graph sampled diameter: dense-only wave vs sparse-frontier dispatch."""
    from repro.graphs import fast
    from repro.graphs.generators import ring_graph

    graph = ring_graph(n)
    fast.csr_of(graph)
    started = time.perf_counter()
    adaptive = fast.diameter(
        graph, sample_size=sample_size, rng=random.Random(0), connected=True
    )
    adaptive_seconds = time.perf_counter() - started
    started = time.perf_counter()
    dense_only = _pr3_diameter(graph, sample_size, random.Random(0))
    dense_seconds = time.perf_counter() - started
    assert adaptive == dense_only, (adaptive, dense_only)
    speedup = dense_seconds / adaptive_seconds if adaptive_seconds else float("inf")
    row = {
        "n": n,
        "topology": "ring",
        "diameter_sample": sample_size,
        "diameter": adaptive,
        "dense_only_seconds": round(dense_seconds, 6),
        "adaptive_seconds": round(adaptive_seconds, 6),
        "speedup": round(speedup, 2),
    }
    emit(
        f"sparse-frontier ring n={n:>7,}  dense-only={dense_seconds:8.2f}s  "
        f"adaptive={adaptive_seconds:8.3f}s  speedup={speedup:7.1f}x"
    )
    return row


def _naive_full_path_metrics(graph):
    """Exact path metrics the pre-accumulator way: one BFS kernel per source.

    Per-node distance vectors are materialised source by source
    (``fast.bfs_distances``) and folded into the same exact integers the
    one-campaign accumulator path produces, with identical final float
    arithmetic -- the two must agree bit for bit.
    """
    from repro.graphs import fast

    n = graph.number_of_nodes()
    working, component_count = fast._working_component(graph)
    csr = fast.csr_of(working)
    live = fast.live_source_indices(csr)
    n_working = int(live.size)
    best = 0
    total = 0
    values = []
    for index in live:
        distances = fast.bfs_distances(csr, int(index))
        reached_mask = distances >= 0
        distance_sum = int(distances[reached_mask].sum())
        best = max(best, int(distances.max()))
        total += distance_sum
        reached = int(reached_mask.sum()) - 1
        if reached == 0:
            values.append(0.0)
        else:
            closeness = reached / distance_sum
            values.append(closeness * (reached / (n_working - 1)))
    pairs = n_working * (n_working - 1)
    return {
        "components": component_count,
        "largest_fraction": n_working / n if n else 0.0,
        "diameter": float(best),
        "avg_path_length": total / pairs if pairs else 0.0,
        "avg_closeness": sum(values) / n_working if n_working else 0.0,
    }


def run_full_path_metrics_benchmark(n=FULL_PATH_N, *, emit=print) -> dict:
    """Exact diameter+ASPL+closeness: naive per-source sweep vs one campaign."""
    from repro.graphs import fast
    from repro.graphs.generators import k_regular_graph

    graph = k_regular_graph(n, K, seed=5000 + n)
    fast.csr_of(graph)  # shared warm mirror: the sweep strategies are what differ
    started = time.perf_counter()
    campaign = fast.full_path_metrics(graph)
    campaign_seconds = time.perf_counter() - started
    started = time.perf_counter()
    naive = _naive_full_path_metrics(graph)
    naive_seconds = time.perf_counter() - started
    assert campaign == naive, (campaign, naive)
    speedup = naive_seconds / campaign_seconds if campaign_seconds else float("inf")
    row = {
        "n": n,
        "k": K,
        "sources": n,
        "diameter": campaign["diameter"],
        "avg_path_length": campaign["avg_path_length"],
        "avg_closeness": campaign["avg_closeness"],
        "naive_seconds": round(naive_seconds, 6),
        "campaign_seconds": round(campaign_seconds, 6),
        "speedup": round(speedup, 2),
    }
    emit(
        f"full-path-metrics n={n:>7,}  naive={naive_seconds:8.2f}s  "
        f"campaign={campaign_seconds:8.2f}s  speedup={speedup:7.1f}x"
    )
    return row


def run_sharded_path_smoke(n: int, workers: int, *, emit=print) -> dict:
    """Serial vs source-sharded exact path metrics: the merge must be exact.

    The CI smoke: a small full-population campaign fanned across ``workers``
    pool processes must merge its int64 accumulators to the *bit-identical*
    serial result (speedup at smoke sizes is noise on purpose; identity is
    the contract).
    """
    from repro.graphs import fast
    from repro.graphs.generators import k_regular_graph
    from repro.runner.executor import sharded_full_path_metrics

    graph = k_regular_graph(n, K, seed=6000 + n)
    serial = fast.full_path_metrics(graph)
    started = time.perf_counter()
    sharded = sharded_full_path_metrics(graph, workers=workers)
    sharded_seconds = time.perf_counter() - started
    assert sharded == serial, (serial, sharded)
    emit(
        f"sharded-path-smoke n={n:,} workers={workers}  "
        f"serial==parallel OK ({sharded_seconds:.2f}s)"
    )
    return {"n": n, "workers": workers, "identical": True}


def _soap_campaign_once(attack_cls, backend_name: str, n: int, seed: int = 3) -> float:
    """One timed SOAP campaign + benign summary on a fresh overlay."""
    from repro.core.ddsr import DDSROverlay
    from repro.graphs import backend

    with backend.using(backend_name):
        overlay = DDSROverlay.k_regular(n, K, seed=seed)
        chooser = random.Random(seed + 13)
        compromised = chooser.sample(overlay.nodes(), 1)
        attack = attack_cls(rng=random.Random(seed + 17))
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            started = time.perf_counter()
            result = attack.run_campaign(overlay, compromised)
            summary = attack_cls.benign_subgraph_components(overlay)
            elapsed = time.perf_counter() - started
        finally:
            if gc_was_enabled:
                gc.enable()
            gc.collect()
    assert result.neutralized and summary["nontrivial_components"] == 0
    return elapsed


def run_soap_benchmark(n=SOAP_N, *, repeats=SOAP_REPEATS, emit=print) -> dict:
    """Original SOAP implementation vs the vectorized campaign, full run."""
    from repro.adversary.soap import ReferenceSoapAttack, SoapAttack

    reference_seconds = min(
        _soap_campaign_once(ReferenceSoapAttack, "python", n) for _ in range(repeats)
    )
    fast_seconds = min(
        _soap_campaign_once(SoapAttack, "fast", n) for _ in range(repeats)
    )
    speedup = reference_seconds / fast_seconds if fast_seconds else float("inf")
    row = {
        "n": n,
        "k": K,
        "repeats": repeats,
        "workload": "full containment campaign + benign-subgraph summary "
        "(overlay construction excluded; identical on both sides)",
        "reference_seconds": round(reference_seconds, 6),
        "fast_seconds": round(fast_seconds, 6),
        "speedup": round(speedup, 2),
    }
    emit(
        f"soap     n={n:>7,}  reference={reference_seconds:8.3f}s  "
        f"fast={fast_seconds:8.4f}s  speedup={speedup:7.1f}x"
    )
    return row


def run_benchmark(sizes=SIZES, *, emit=print) -> dict:
    """All six workloads; returns this PR's trajectory entry."""
    return {
        "pr": PR_LABEL,
        "workload": "connected_components + sampled diameter "
        f"(sample={DIAMETER_SAMPLE}) on k-regular graphs (k={K}); "
        "batched multi-source BFS; SOAP campaign; full-population closeness "
        "(adaptive multi-word frontier engine vs PR 3 wave); ring-graph "
        "sparse-frontier diameter; exact full-population path metrics "
        "(one-campaign accumulators vs naive per-source sweep)",
        "timing": "best-of-repeats wall clock; fast timings include the "
        "UndirectedGraph->CSR conversion (cold cache); SOAP timed with GC off; "
        "wave-engine comparisons share one warm CSR mirror",
        "rows": run_kernel_benchmark(sizes, emit=emit),
        "batched_bfs": run_batched_bfs_benchmark(emit=emit),
        "soap_campaign": run_soap_benchmark(emit=emit),
        "full_closeness": run_full_closeness_benchmark(emit=emit),
        "sparse_frontier": run_sparse_frontier_benchmark(emit=emit),
        "full_path_metrics": run_full_path_metrics_benchmark(emit=emit),
    }


def write_report(entry: dict, path: Path = OUTPUT) -> None:
    """Append this PR's entry to the benchmark trajectory (migrating v1)."""
    runs = []
    if path.exists():
        previous = json.loads(path.read_text())
        if "runs" in previous:
            runs = previous["runs"]
        else:  # v1 layout: a single flat report from PR 2
            previous.pop("benchmark", None)
            previous["pr"] = "PR 2"
            runs = [previous]
    runs = [run for run in runs if run.get("pr") != entry.get("pr")]
    runs.append(entry)
    report = {"benchmark": "graph_kernels", "runs": runs}
    path.write_text(json.dumps(report, indent=2) + "\n")


def test_graph_kernel_speedup(benchmark):
    """All three speedup floors hold; append the trajectory entry."""
    from conftest import emit

    entry = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    write_report(entry)
    emit(
        "Graph-kernel backends — python vs fast (CSR), batched BFS, SOAP",
        json.dumps(entry, indent=2) + f"\nappended to {OUTPUT}",
    )
    at_20k = next(row for row in entry["rows"] if row["n"] == 20_000)
    assert at_20k["speedup"] >= SPEEDUP_FLOOR_AT_20K, (
        f"fast backend only {at_20k['speedup']}x at n=20k "
        f"(floor {SPEEDUP_FLOOR_AT_20K}x)"
    )
    # Every size must still benefit, even where fixed numpy costs loom larger.
    assert all(row["speedup"] > 1.0 for row in entry["rows"])
    batched_at_100k = next(
        row for row in entry["batched_bfs"] if row["n"] == 100_000
    )
    assert batched_at_100k["speedup"] >= BATCHED_SPEEDUP_FLOOR_AT_100K, (
        f"batched BFS only {batched_at_100k['speedup']}x at n=100k "
        f"(floor {BATCHED_SPEEDUP_FLOOR_AT_100K}x)"
    )
    soap = entry["soap_campaign"]
    assert soap["speedup"] >= SOAP_SPEEDUP_FLOOR, (
        f"vectorized SOAP campaign only {soap['speedup']}x at n={soap['n']} "
        f"(floor {SOAP_SPEEDUP_FLOOR}x)"
    )
    full = entry["full_closeness"]
    assert full["speedup"] >= FULL_CLOSENESS_SPEEDUP_FLOOR, (
        f"adaptive engine only {full['speedup']}x over the PR 3 wave on "
        f"full-population closeness at n={full['n']} "
        f"(floor {FULL_CLOSENESS_SPEEDUP_FLOOR}x)"
    )
    # Both engines asserted bit-identical inside the workload; pin the value
    # too so the 100k-node full-sample closeness has a golden on record.
    assert full["closeness"] == FULL_CLOSENESS_GOLDEN_100K, full["closeness"]
    # The combined campaign's exact 100k diameter/ASPL/closeness goldens
    # (closeness doubles as a cross-engine identity check at scale).
    campaign_100k = full["full_path_campaign"]
    for key, expected in FULL_PATH_GOLDEN_100K.items():
        assert campaign_100k[key] == expected, (key, campaign_100k[key])
    ring = entry["sparse_frontier"]
    assert ring["speedup"] >= SPARSE_FRONTIER_SPEEDUP_FLOOR, (
        f"sparse-frontier dispatch only {ring['speedup']}x over the "
        f"dense-only wave on the n={ring['n']} ring "
        f"(floor {SPARSE_FRONTIER_SPEEDUP_FLOOR}x)"
    )
    assert ring["diameter"] == ring["n"] // 2  # ring ground truth
    full_path = entry["full_path_metrics"]
    assert full_path["speedup"] >= FULL_PATH_SPEEDUP_FLOOR, (
        f"one-campaign exact path metrics only {full_path['speedup']}x over "
        f"the naive per-source sweep at n={full_path['n']} "
        f"(floor {FULL_PATH_SPEEDUP_FLOOR}x)"
    )
    # Both strategies asserted bit-identical inside the workload; pin the
    # values so the 20k exact diameter/ASPL/closeness have a golden on record.
    for key, expected in FULL_PATH_GOLDEN_20K.items():
        assert full_path[key] == expected, (key, full_path[key])


def main(argv=None) -> int:
    """CLI smoke mode: bounded sizes and a wall-clock sanity ceiling."""
    import argparse
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", default="1000", help="comma-separated graph sizes (default: 1000)"
    )
    parser.add_argument(
        "--soap-n",
        type=int,
        default=None,
        help="also smoke the SOAP-campaign workload at this size",
    )
    parser.add_argument(
        "--skip-batched",
        action="store_true",
        help="skip the batched multi-source BFS workload",
    )
    parser.add_argument(
        "--multiword-n",
        type=int,
        default=None,
        help="smoke the multi-word wave closeness comparison at this size",
    )
    parser.add_argument(
        "--multiword-sources",
        type=int,
        default=128,
        help="sampled sources for the multi-word smoke (>64 forces 2+ words)",
    )
    parser.add_argument(
        "--ring-n",
        type=int,
        default=None,
        help="smoke the ring-graph sparse-frontier diameter at this size",
    )
    parser.add_argument(
        "--full-path-n",
        type=int,
        default=None,
        help="smoke the exact path-metric pair (naive vs campaign) at this size",
    )
    parser.add_argument(
        "--shard-n",
        type=int,
        default=None,
        help="smoke the source-sharded exact path metrics at this size",
    )
    parser.add_argument(
        "--shard-workers",
        type=int,
        default=2,
        help="pool workers for the sharded smoke (default: 2)",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="fail when the whole run exceeds this wall-clock bound",
    )
    parser.add_argument(
        "--json", action="store_true", help="also append to BENCH_graph_kernels.json"
    )
    args = parser.parse_args(argv)
    sizes = tuple(int(size) for size in args.sizes.split(","))

    started = time.perf_counter()
    # CLI runs are smoke-sized; label them so --json can never replace the
    # canonical full-scale entry the pytest benchmark appends for this PR.
    entry = {
        "pr": f"{PR_LABEL} (cli smoke)",
        "rows": run_kernel_benchmark(sizes),
    }
    if not args.skip_batched:
        entry["batched_bfs"] = run_batched_bfs_benchmark(sizes=sizes)
    if args.soap_n:
        entry["soap_campaign"] = run_soap_benchmark(args.soap_n, repeats=1)
    if args.multiword_n:
        # Forces >64 sources through one multi-word wave and cross-checks the
        # PR 3 path bit for bit (speedups at smoke sizes are noise; identity
        # is the CI contract).
        from repro.graphs import backend as graph_backend

        with graph_backend.using_bfs_batch(max(128, args.multiword_sources)):
            entry["multiword_smoke"] = run_full_closeness_benchmark(
                args.multiword_n, sample_size=args.multiword_sources
            )
    if args.ring_n:
        entry["sparse_frontier"] = row = run_sparse_frontier_benchmark(args.ring_n)
        if row["speedup"] < 1.2:
            print(f"FAIL: ring sparse-frontier smoke speedup {row['speedup']}x < 1.2x")
            return 1
    if args.full_path_n:
        # Identity is the CI contract (the workload asserts naive == campaign
        # internally); smoke-size speedups are recorded but not gated.
        entry["full_path_metrics"] = run_full_path_metrics_benchmark(args.full_path_n)
    if args.shard_n:
        entry["sharded_path_smoke"] = run_sharded_path_smoke(
            args.shard_n, args.shard_workers
        )
    elapsed = time.perf_counter() - started
    if args.json:
        write_report(entry)
        print(f"appended: {OUTPUT}")
    print(f"total: {elapsed:.2f}s")
    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(f"FAIL: exceeded --max-seconds {args.max_seconds}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
