"""Botnet growth: recruiting new bots into a running overlay.

Section IV-B of the paper describes how newly infected hosts find the botnet:
the infecting bot hands over a probabilistic subset of its own peer list (each
entry included with probability ``p``), optionally topped up from hotlist
servers or an out-of-band channel, and the newcomer then peers with some of
those addresses, reports its key to the C&C and starts relaying.

:class:`RecruitmentCampaign` drives that process against a running
:class:`~repro.core.botnet.OnionBotnet`: each recruitment picks an infecting
bot, derives the newcomer's bootstrap peer list, wires the newcomer into the
DDSR overlay (respecting the degree bounds -- accepting peers prune as usual),
hosts its hidden service on the Tor model and enrolls it with the botmaster.
The growth experiments measure how the overlay's degree distribution, diameter
and command coverage evolve as the botnet scales up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.bootstrap import BootstrapStrategy, HardcodedPeerList
from repro.core.botnet import OnionBotnet
from repro.core.errors import BootstrapError, BotnetError


@dataclass
class RecruitmentResult:
    """Outcome of one growth campaign."""

    requested: int
    recruited: int
    failed: int
    new_labels: List[str] = field(default_factory=list)
    #: Number of peers each recruit started with.
    initial_degrees: List[int] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        """Fraction of recruitment attempts that produced a working bot."""
        if self.requested == 0:
            return 0.0
        return self.recruited / self.requested


@dataclass
class RecruitmentCampaign:
    """Grows a running botnet by recruiting new bots through bootstrap.

    Parameters
    ----------
    botnet:
        The running simulation to grow.
    strategy:
        Optional explicit bootstrap strategy for every recruit; when omitted,
        each recruit receives a probabilistic subset of its infector's peer
        list (the paper's hardcoded-list propagation with probability ``p``
        from :class:`~repro.core.config.OnionBotConfig`).
    target_peers:
        How many peers a newcomer tries to establish (defaults to the
        configured overlay degree, clamped to availability).
    """

    botnet: OnionBotnet
    strategy: Optional[BootstrapStrategy] = None
    target_peers: Optional[int] = None
    _recruit_counter: int = 0

    # ------------------------------------------------------------------
    def _next_label(self) -> str:
        existing = len(self.botnet.bots)
        label = f"bot-{existing + self._recruit_counter:05d}"
        while label in self.botnet.bots:
            self._recruit_counter += 1
            label = f"bot-{existing + self._recruit_counter:05d}"
        return label

    def _bootstrap_addresses(self, infector_label: str, count: int) -> List[str]:
        """The candidate peer addresses handed to a new recruit."""
        now = self.botnet.simulator.now
        rng = self.botnet.simulator.random.stream("recruitment")
        if self.strategy is not None:
            return self.strategy.candidate_peers(self._next_label(), count, rng)
        infector = self.botnet.bots[infector_label]
        parent_list = HardcodedPeerList(
            peers=sorted(infector.peer_addresses | {str(infector.onion_at(now))}),
            share_probability=self.botnet.config.peer_share_probability,
        )
        child = parent_list.child_list(rng)
        return child.candidate_peers("newcomer", count, rng)

    def _label_for_address(self, onion: str) -> Optional[str]:
        now = self.botnet.simulator.now
        for label, bot in self.botnet.bots.items():
            if bot.is_active and str(bot.onion_at(now)) == onion:
                return label
        return None

    # ------------------------------------------------------------------
    def recruit_one(self, infector_label: Optional[str] = None) -> str:
        """Recruit a single new bot and return its label.

        Raises :class:`BootstrapError` when no usable peer address could be
        obtained (e.g. every address in the inherited list already rotated or
        died) -- the newcomer never becomes part of the botnet in that case.
        """
        active = self.botnet.active_labels()
        if not active:
            raise BotnetError("cannot recruit into an empty botnet")
        rng = self.botnet.simulator.random.stream("recruitment")
        infector = infector_label if infector_label is not None else rng.choice(active)
        if infector not in self.botnet.bots or not self.botnet.bots[infector].is_active:
            raise BotnetError(f"infector {infector!r} is not an active bot")

        wanted = self.target_peers if self.target_peers is not None else self.botnet.config.degree
        wanted = max(1, min(wanted, len(active)))
        addresses = self._bootstrap_addresses(infector, wanted)
        peer_labels = []
        for onion in addresses:
            label = self._label_for_address(onion)
            if label is not None and label in self.botnet.overlay.graph:
                peer_labels.append(label)
        if not peer_labels:
            raise BootstrapError("no reachable peers obtained during rally")

        new_label = self._next_label()
        self._recruit_counter += 1
        bot = self.botnet._create_bot(new_label)
        self.botnet.overlay.add_node(new_label, peer_labels)
        self.botnet._host_bot_service(new_label)
        peers = {
            str(self.botnet.bots[peer].onion_at(self.botnet.simulator.now))
            for peer in self.botnet.overlay.peers(new_label)
        }
        report = bot.rally(peers, self.botnet.simulator.now)
        self.botnet.botmaster.enroll(new_label, report)
        self.botnet._sync_peer_lists()
        self.botnet.simulator.log(
            "botnet", "recruited", label=new_label, infector=infector, peers=len(peer_labels)
        )
        return new_label

    def recruit(self, count: int) -> RecruitmentResult:
        """Recruit up to ``count`` new bots, tolerating individual failures."""
        if count < 0:
            raise BotnetError(f"count must be non-negative, got {count}")
        result = RecruitmentResult(requested=count, recruited=0, failed=0)
        for _ in range(count):
            try:
                label = self.recruit_one()
            except (BootstrapError, BotnetError):
                result.failed += 1
                continue
            result.recruited += 1
            result.new_labels.append(label)
            result.initial_degrees.append(self.botnet.overlay.degree(label))
        return result

    # ------------------------------------------------------------------
    def growth_profile(self, waves: int, per_wave: int) -> List[Dict[str, float]]:
        """Grow the botnet in waves and record overlay health after each wave.

        Used by the growth benchmark: returns one row per wave with the active
        population, maximum degree, diameter and broadcast coverage.
        """
        from repro.graphs.backend import diameter as graph_diameter

        rows: List[Dict[str, float]] = []
        for wave in range(1, waves + 1):
            outcome = self.recruit(per_wave)
            stats = self.botnet.stats()
            coverage = self.botnet.broadcast_command(f"growth-probe-{wave}").coverage
            rows.append(
                {
                    "wave": float(wave),
                    "recruited": float(outcome.recruited),
                    "active_bots": float(stats.active_bots),
                    "max_degree": float(stats.max_degree),
                    "diameter": float(graph_diameter(self.botnet.overlay.graph)),
                    "broadcast_coverage": coverage,
                }
            )
        return rows
