#!/usr/bin/env python3
"""SOAP mitigation study: neutralizing a basic OnionBot, and what stops SOAP.

Walks through section VI-B and VII-A of the paper:

1. a defender captures one bot (honeypot) and learns its peers;
2. a SOAP campaign surrounds every reachable bot with low-degree clones until
   the whole botnet is contained;
3. the same campaign is re-run against a botnet that deploys proof-of-work
   peering admission, and against one that rate-limits peering -- showing the
   trade-off between adversarial resilience and self-repair flexibility.

Run with:  python examples/soap_mitigation_study.py
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.adversary import HoneypotOperator, SoapAttack  # noqa: E402
from repro.core import DDSROverlay  # noqa: E402
from repro.defenses import PowAdmission, RateLimitedAdmission  # noqa: E402
from repro.defenses.pow import PowParameters  # noqa: E402
from repro.defenses.rate_limit import RateLimitParameters  # noqa: E402


def campaign_summary(name: str, overlay: DDSROverlay, attack: SoapAttack) -> None:
    operator = HoneypotOperator(rng=random.Random(0))
    capture = operator.capture_from_overlay(overlay)
    print(f"\n--- {name} ---")
    print(f"  honeypot captured bot {capture.captured!r}, exposing {capture.exposure} peer addresses")
    result = attack.run_campaign(overlay, [capture.captured])
    print(f"  contained {len(result.contained)}/{result.total_benign} bots "
          f"({result.containment_fraction:.0%})")
    print(f"  clones created: {result.clones_created} "
          f"({result.clones_per_bot:.1f} per contained bot)")
    print(f"  peering requests rejected by the botnet: {result.requests_rejected}")
    if result.work_spent:
        print(f"  proof-of-work spent by the defender: {result.work_spent:,.0f} units")
    if result.time_spent:
        print(f"  waiting time imposed on the defender: {result.time_spent / 3600.0:.1f} hours")
    print(f"  botnet neutralized: {result.neutralized}")
    components = SoapAttack.benign_subgraph_components(overlay)
    print(f"  benign communication graph: {components['nontrivial_components']} usable components, "
          f"largest = {components['largest_component']} bot(s)")


def main() -> None:
    n, k = 200, 10

    # 1. Basic OnionBot: open peering admission -> fully neutralized.
    basic = DDSROverlay.k_regular(n, k, seed=1)
    campaign_summary("Basic OnionBot (open admission)", basic,
                     SoapAttack(rng=random.Random(1)))

    # 2. Proof-of-work admission (section VII-A): clone floods become too
    #    expensive once the per-target price escalates past the budget.
    pow_overlay = DDSROverlay.k_regular(n, k, seed=1)
    pow_admission = PowAdmission(PowParameters(base_work=1.0, escalation_factor=2.0,
                                               work_budget_per_clone=64.0))
    campaign_summary("OnionBot with proof-of-work peering", pow_overlay,
                     SoapAttack(rng=random.Random(1), admission=pow_admission))
    repair_probe = DDSROverlay.k_regular(n, k, seed=2)
    repair_probe.remove_fraction(0.3, rng=random.Random(3))
    print(f"  ...but the botnet's own repairs after a 30% takedown now cost "
          f"{pow_admission.repair_cost(repair_probe.stats.repair_edges_added):,.0f} work units")

    # 3. Rate-limited admission: SOAP still wins eventually, unless the
    #    defender's patience per clone is bounded.
    rl_overlay = DDSROverlay.k_regular(n, k, seed=1)
    rl_admission = RateLimitedAdmission(RateLimitParameters(base_delay=60.0, per_degree_delay=30.0,
                                                            max_acceptable_delay=10_000.0))
    campaign_summary("OnionBot with rate-limited peering (patient defender)", rl_overlay,
                     SoapAttack(rng=random.Random(1), admission=rl_admission))

    rl_overlay2 = DDSROverlay.k_regular(n, k, seed=1)
    rl_admission2 = RateLimitedAdmission(RateLimitParameters(base_delay=60.0, per_degree_delay=30.0,
                                                             max_acceptable_delay=10_000.0))
    campaign_summary("Same, but the defender only waits 24h total", rl_overlay2,
                     SoapAttack(rng=random.Random(1), admission=rl_admission2,
                                time_budget=24 * 3600.0))


if __name__ == "__main__":
    main()
