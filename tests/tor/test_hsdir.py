"""Tests for HSDir descriptor-ID arithmetic and ring placement."""

import hashlib

import pytest

from repro.crypto.keys import KeyPair
from repro.tor.consensus import DirectoryAuthority
from repro.tor.hsdir import (
    PERIOD_SECONDS,
    REPLICAS,
    SPREAD,
    descriptor_id,
    descriptor_ids,
    position_for_interception,
    responsible_hsdirs,
    ring_successors,
    secret_id_part,
    time_period,
)
from repro.tor.onion_address import service_identifier
from repro.tor.relay import Relay


def build_consensus(n_relays: int = 20, now: float = 0.0):
    authority = DirectoryAuthority()
    for index in range(n_relays):
        authority.register(
            Relay(
                nickname=f"r{index}",
                keypair=KeyPair.from_seed(f"hsdir-relay-{index}".encode()),
                joined_at=now - 30 * 3600.0,
            )
        )
    return authority.publish_consensus(now=now)


class TestTimePeriod:
    def test_changes_daily(self):
        assert time_period(0, 0) == 0
        assert time_period(PERIOD_SECONDS, 0) == 1

    def test_permanent_id_byte_staggers_rotation(self):
        # Just before midnight, a high id-byte service has already rotated.
        almost_midnight = PERIOD_SECONDS - 100
        assert time_period(almost_midnight, 0) == 0
        assert time_period(almost_midnight, 255) == 1

    def test_invalid_byte_rejected(self):
        with pytest.raises(ValueError):
            time_period(0, 256)


class TestDescriptorIds:
    def test_descriptor_id_is_sha1_output(self):
        identifier = service_identifier(KeyPair.from_seed(b"svc").public)
        assert len(descriptor_id(identifier, 0.0, 0)) == hashlib.sha1().digest_size

    def test_replicas_give_distinct_ids(self):
        identifier = service_identifier(KeyPair.from_seed(b"svc").public)
        ids = descriptor_ids(identifier, 0.0)
        assert len(ids) == REPLICAS
        assert len(set(ids)) == REPLICAS

    def test_ids_change_across_periods(self):
        identifier = service_identifier(KeyPair.from_seed(b"svc").public)
        today = descriptor_id(identifier, 0.0, 0)
        tomorrow = descriptor_id(identifier, float(PERIOD_SECONDS), 0)
        assert today != tomorrow

    def test_descriptor_cookie_changes_ids(self):
        identifier = service_identifier(KeyPair.from_seed(b"svc").public)
        without = descriptor_id(identifier, 0.0, 0)
        with_cookie = descriptor_id(identifier, 0.0, 0, descriptor_cookie=b"secret")
        assert without != with_cookie

    def test_invalid_replica_rejected(self):
        with pytest.raises(ValueError):
            secret_id_part(0.0, 0, REPLICAS)

    def test_empty_identifier_rejected(self):
        with pytest.raises(ValueError):
            descriptor_id(b"", 0.0, 0)


class TestRingPlacement:
    def test_ring_successors_wrap_around(self):
        consensus = build_consensus(5)
        ring = consensus.hsdir_ring()
        # A point beyond the largest fingerprint wraps to the start of the ring.
        beyond = b"\xff" * 20
        successors = ring_successors(ring, beyond, 2)
        assert successors[0] is ring[0]
        assert successors[1] is ring[1]

    def test_ring_successors_empty_ring(self):
        assert ring_successors([], b"\x00" * 20, 3) == []

    def test_responsible_hsdirs_count(self):
        consensus = build_consensus(20)
        identifier = service_identifier(KeyPair.from_seed(b"svc").public)
        responsible = responsible_hsdirs(consensus, identifier, 0.0)
        # 2 replicas x 3 spread = 6 (deduplicated, so can be slightly fewer).
        assert 4 <= len(responsible) <= REPLICAS * SPREAD

    def test_responsible_hsdirs_follow_descriptor_id(self):
        consensus = build_consensus(20)
        ring = consensus.hsdir_ring()
        identifier = service_identifier(KeyPair.from_seed(b"svc").public)
        point = descriptor_id(identifier, 0.0, 0)
        responsible = responsible_hsdirs(consensus, identifier, 0.0)
        expected_first = ring_successors(ring, point, 1)[0]
        assert responsible[0].fingerprint == expected_first.fingerprint

    def test_client_and_service_agree_on_hsdirs(self):
        """Anyone who knows the onion address computes the same HSDir set."""
        consensus = build_consensus(30)
        identifier = service_identifier(KeyPair.from_seed(b"svc").public)
        a = [entry.fingerprint for entry in responsible_hsdirs(consensus, identifier, 5000.0)]
        b = [entry.fingerprint for entry in responsible_hsdirs(consensus, identifier, 5000.0)]
        assert a == b

    def test_small_ring_deduplicates(self):
        consensus = build_consensus(2)
        identifier = service_identifier(KeyPair.from_seed(b"svc").public)
        responsible = responsible_hsdirs(consensus, identifier, 0.0)
        fingerprints = [entry.fingerprint for entry in responsible]
        assert len(fingerprints) == len(set(fingerprints)) <= 2


class TestInterceptionPositioning:
    def test_crafted_fingerprint_becomes_first_responsible(self):
        consensus = build_consensus(20)
        identifier = service_identifier(KeyPair.from_seed(b"victim").public)
        crafted = position_for_interception(consensus, identifier, 0.0)
        assert crafted is not None
        point = descriptor_id(identifier, 0.0, 0)
        assert point < crafted
        # Inserting a relay at the crafted position would make it the
        # immediate successor of the descriptor ID.
        ring = consensus.hsdir_ring()
        incumbent = ring_successors(ring, point, 1)[0]
        assert crafted <= incumbent.fingerprint
