"""Plain-text reporting helpers.

The benchmarks regenerate the paper's tables and figure series as text; these
helpers keep the rendering consistent (aligned columns, fixed float formats)
so EXPERIMENTS.md and the bench output read the same way.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned, pipe-separated text table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    lines = []
    header_line = " | ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths[: len(headers)]))
    for row in rendered_rows:
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float]) -> str:
    """Render one figure series as ``name: (x, y) (x, y) ...``."""
    pairs = " ".join(f"({_format_cell(x)}, {_format_cell(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def render_result_rows(rows: Sequence[Mapping[str, object]]) -> str:
    """Render a list of homogeneous dicts as a table (keys become headers)."""
    if not rows:
        return "(no rows)"
    headers: List[str] = list(rows[0].keys())
    return format_table(headers, [[row.get(header, "") for header in headers] for row in rows])
