"""Tests for the parameter-sweep helper."""

from repro.analysis.sweep import parameter_sweep


def runner(a: int, b: str):
    return {"result": a * 10, "tag": f"{a}-{b}"}


class TestParameterSweep:
    def test_covers_cartesian_product(self):
        sweep = parameter_sweep(runner, {"a": [1, 2], "b": ["x", "y"]})
        assert len(sweep.rows) == 4
        assert sweep.parameter_names == ["a", "b"]

    def test_rows_merge_parameters_and_results(self):
        sweep = parameter_sweep(runner, {"a": [3], "b": ["z"]})
        row = sweep.rows[0]
        assert row == {"a": 3, "b": "z", "result": 30, "tag": "3-z"}

    def test_filter(self):
        sweep = parameter_sweep(runner, {"a": [1, 2], "b": ["x", "y"]})
        matched = sweep.filter(a=2)
        assert len(matched) == 2
        assert all(row["a"] == 2 for row in matched)

    def test_column(self):
        sweep = parameter_sweep(runner, {"a": [1, 2], "b": ["x"]})
        assert sweep.column("result") == [10, 20]
