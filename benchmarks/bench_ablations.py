"""Ablation benchmarks for the design choices called out in DESIGN.md.

These do not correspond to a specific paper figure; they justify the DDSR
design decisions quantitatively:

* repair policy (clique vs ring vs single edge vs none);
* pruning victim selection (highest-degree vs random vs lowest-degree);
* SOAP clone degree announcement (low/clique degree vs truthful inflated
  degree -- implemented by pre-wiring clones together so their graph degree
  is high, which makes them the pruning victims and stalls the attack);
* DDSR vs a Kademlia-style structured overlay under mass takedown.

The repair-policy and pruning-policy ablations run through the
:mod:`repro.runner` subsystem (registered ``ablation-*`` scenarios swept via
:func:`repro.analysis.sweep.sweep_scenario`), so the same grid can be
re-executed from the CLI -- e.g.::

    python -m repro.runner sweep ablation-repair-policy \
        --grid policy=clique,ring,single-edge,none --trials 5 --workers 4
"""

from __future__ import annotations

import random

from conftest import emit

from repro.analysis.reporting import render_result_rows
from repro.analysis.sweep import sweep_scenario
from repro.baselines.kademlia import KademliaOverlay
from repro.core.ddsr import DDSROverlay
from repro.graphs.metrics import number_connected_components


def test_ablation_repair_policy(benchmark):
    """Clique repair keeps the overlay whole; weaker policies fragment sooner."""

    def run():
        return sweep_scenario(
            "ablation-repair-policy",
            {"policy": ["clique", "ring", "single-edge", "none"]},
            params={"n": 300, "k": 10, "fraction": 0.7},
            seed=100,
        ).rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation — repair policy under 70% gradual deletions", render_result_rows(rows))
    by_policy = {row["policy"]: row for row in rows}
    assert by_policy["clique"]["components"] == 1
    assert by_policy["none"]["components"] > by_policy["clique"]["components"]
    assert by_policy["clique"]["largest_component_fraction"] >= by_policy["single-edge"]["largest_component_fraction"]


def test_ablation_pruning_policy(benchmark):
    """Dropping the highest-degree peer preserves reachability best."""

    def run():
        return sweep_scenario(
            "ablation-pruning-policy",
            {"policy": ["highest-degree", "random", "lowest-degree"]},
            params={"n": 300, "k": 10, "fraction": 0.5},
            seed=101,
        ).rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation — pruning victim selection under 50% deletions", render_result_rows(rows))
    assert all(row["max_degree"] <= 15 for row in rows)
    best = max(rows, key=lambda row: row["largest_component_fraction"])
    assert best["policy"] in ("highest-degree", "random")


def test_ablation_soap_clone_degree_announcement(benchmark):
    """SOAP depends on clones *looking* low-degree; high-degree clones get pruned instead."""

    def run():
        from repro.adversary.soap import SoapAttack

        # Baseline: standard SOAP (clone degree 1 at acceptance time).
        low_overlay = DDSROverlay.k_regular(150, 10, seed=102)
        low_attack = SoapAttack(rng=random.Random(3))
        low = low_attack.contain_node(low_overlay, low_overlay.nodes()[0])

        # Ablation: clones pre-wired into a dense clique so their degree is
        # higher than the target's real peers; the target's pruning rule then
        # evicts the clones themselves.
        high_overlay = DDSROverlay.k_regular(150, 10, seed=102)
        target = high_overlay.nodes()[0]
        clones = [f"soap-clone-9{i:05d}" for i in range(40)]
        for clone in clones:
            high_overlay.graph.add_node(clone)
        for i, a in enumerate(clones):
            for b in clones[i + 1:]:
                high_overlay.graph.add_edge(a, b)
        displaced = 0
        for clone in clones:
            benign_before = sum(
                1 for peer in high_overlay.peers(target) if not str(peer).startswith("soap-clone")
            )
            high_overlay.graph.add_edge(clone, target)
            high_overlay.enforce_degree_bound(target)
            benign_after = sum(
                1 for peer in high_overlay.peers(target) if not str(peer).startswith("soap-clone")
            )
            displaced += max(0, benign_before - benign_after)
        high_contained = all(
            str(peer).startswith("soap-clone") for peer in high_overlay.peers(target)
        )
        return {
            "low_degree_clones_contained_target": low.contained,
            "low_degree_clones_used": low.clones_used,
            "high_degree_clones_contained_target": high_contained,
            "high_degree_clones_displaced_benign_peers": displaced,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation — SOAP clone degree announcement", render_result_rows([result]))
    assert result["low_degree_clones_contained_target"] is True
    assert result["high_degree_clones_contained_target"] is False


def test_ablation_ddsr_vs_kademlia_under_takedown(benchmark):
    """DDSR keeps a connected overlay with ~k peers; Kademlia keeps large tables
    and degrades lookup success under mass takedown."""

    def run():
        ddsr = DDSROverlay.k_regular(300, 10, seed=103)
        ddsr.remove_fraction(0.5, rng=random.Random(9))
        kademlia = KademliaOverlay.build(300, seed=103, bootstrap_contacts=24)
        healthy_rate = kademlia.lookup_success_rate(trials=80)
        kademlia.remove_fraction(0.5)
        degraded_rate = kademlia.lookup_success_rate(trials=80)
        return {
            "ddsr_components_after_50pct": number_connected_components(ddsr.graph),
            "ddsr_max_degree": ddsr.max_degree(),
            "kademlia_avg_routing_state": round(kademlia.average_routing_state(), 1),
            "kademlia_lookup_success_before": round(healthy_rate, 2),
            "kademlia_lookup_success_after": round(degraded_rate, 2),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation — DDSR vs Kademlia-style overlay", render_result_rows([result]))
    assert result["ddsr_components_after_50pct"] == 1
    assert result["ddsr_max_degree"] <= 15
    assert result["kademlia_avg_routing_state"] > 15
