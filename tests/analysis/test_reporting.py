"""Tests for the text reporting helpers."""

from repro.analysis.reporting import format_series, format_table, render_result_rows


class TestFormatTable:
    def test_headers_and_rows_are_aligned(self):
        table = format_table(["Name", "Value"], [["alpha", 1], ["b", 22.5]])
        lines = table.splitlines()
        assert lines[0].startswith("Name")
        assert "alpha" in lines[2]
        # Every row has the same column boundary.
        assert lines[0].index("|") == lines[2].index("|") == lines[3].index("|")

    def test_float_formatting(self):
        table = format_table(["x"], [[0.123456789]])
        assert "0.1235" in table

    def test_infinity_and_nan(self):
        table = format_table(["x"], [[float("inf")], [float("nan")]])
        assert "inf" in table
        assert "nan" in table

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table and "b" in table


class TestFormatSeries:
    def test_pairs_rendering(self):
        out = format_series("closeness", [0, 100], [0.5, 0.4])
        assert out.startswith("closeness:")
        assert "(0, 0.5)" in out
        assert "(100, 0.4)" in out


class TestRenderResultRows:
    def test_dict_rows(self):
        rows = [{"Botnet": "Miner", "Crypto": "none"}, {"Botnet": "Zeus", "Crypto": "XOR"}]
        out = render_result_rows(rows)
        assert "Botnet" in out
        assert "Zeus" in out

    def test_empty(self):
        assert render_result_rows([]) == "(no rows)"
