"""Tests for rate-limited peering admission."""

import random

import pytest

from repro.adversary.soap import SoapAttack
from repro.core.ddsr import DDSROverlay
from repro.defenses.rate_limit import RateLimitedAdmission, RateLimitParameters


class TestRateLimitParameters:
    def test_negative_delays_rejected(self):
        with pytest.raises(ValueError):
            RateLimitParameters(base_delay=-1.0)


class TestRateLimitedAdmission:
    def test_delay_grows_with_degree(self):
        params = RateLimitParameters(base_delay=10.0, per_degree_delay=5.0)
        admission = RateLimitedAdmission(params)
        overlay = DDSROverlay.k_regular(30, 4, seed=1)
        low = overlay.nodes()[0]
        assert admission.delay_for(low, overlay) == 10.0 + 5.0 * 4

    def test_delay_grows_with_request_backlog(self):
        admission = RateLimitedAdmission(RateLimitParameters(base_delay=1.0, per_degree_delay=1.0))
        overlay = DDSROverlay.k_regular(30, 4, seed=1)
        target = overlay.nodes()[0]
        first = admission(target, "c1", overlay)
        second = admission(target, "c2", overlay)
        assert second.delay_seconds > first.delay_seconds

    def test_requests_beyond_patience_rejected(self):
        params = RateLimitParameters(base_delay=100.0, per_degree_delay=50.0, max_acceptable_delay=200.0)
        admission = RateLimitedAdmission(params)
        overlay = DDSROverlay.k_regular(30, 8, seed=1)
        target = overlay.nodes()[0]
        decision = admission(target, "c1", overlay)
        # 100 + 50*8 = 500 > 200 -> rejected outright.
        assert not decision.accepted
        assert admission.total_rejected == 1

    def test_repair_delay_estimate(self):
        admission = RateLimitedAdmission(RateLimitParameters(base_delay=10.0, per_degree_delay=1.0))
        overlay = DDSROverlay.k_regular(30, 4, seed=1)
        assert admission.repair_delay(overlay, 0) == 0.0
        assert admission.repair_delay(overlay, 10) == pytest.approx((10.0 + 4.0) * 10)

    def test_reset_window(self):
        admission = RateLimitedAdmission(RateLimitParameters(base_delay=1.0, per_degree_delay=1.0))
        overlay = DDSROverlay.k_regular(30, 4, seed=1)
        target = overlay.nodes()[0]
        admission(target, "c1", overlay)
        admission.reset_window()
        assert admission.requests_seen == {}


class TestRateLimitAgainstSoap:
    def test_rate_limit_slows_soap_campaign(self):
        overlay = DDSROverlay.k_regular(60, 6, seed=2)
        admission = RateLimitedAdmission(
            RateLimitParameters(base_delay=60.0, per_degree_delay=30.0, max_acceptable_delay=10_000.0)
        )
        attack = SoapAttack(rng=random.Random(1), admission=admission)
        result = attack.run_campaign(overlay, [overlay.nodes()[0]])
        # The campaign still completes but the accumulated waiting time is
        # substantial -- hours of delay for a 60-bot network.
        assert result.neutralized
        assert result.time_spent > 3600.0

    def test_time_budget_makes_rate_limit_effective(self):
        overlay = DDSROverlay.k_regular(60, 6, seed=3)
        admission = RateLimitedAdmission(
            RateLimitParameters(base_delay=60.0, per_degree_delay=30.0, max_acceptable_delay=10_000.0)
        )
        attack = SoapAttack(
            rng=random.Random(2), admission=admission, time_budget=2 * 3600.0
        )
        result = attack.run_campaign(overlay, [overlay.nodes()[0]])
        assert not result.neutralized
