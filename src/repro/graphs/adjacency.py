"""Mutable undirected graph with neighbour-of-neighbour queries.

The DDSR (Dynamic Distributed Self-Repairing) construction in the paper is
defined over an undirected graph where every node additionally knows the
identities of its neighbours' neighbours.  This module provides that data
structure.  Node identifiers are arbitrary hashable objects -- the overlay
layer uses ``.onion`` address strings, the experiment harness uses integers.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

NodeId = Hashable

#: Capacity of the per-graph mutation delta log.  Derived representations
#: (the fast backend's CSR mirror, the runner pool's shared-memory mirrors)
#: replay the log to *patch* their cached arrays instead of rebuilding from
#: scratch; once more than this many primitive mutations accumulate between
#: the oldest consumer's synchronisation point and the present the log
#: overflows and every consumer falls back to a full rebuild.
DELTA_LOG_LIMIT = 8192

#: The delta-log consumer name used when none is given: the fast backend's
#: in-process CSR cache (:func:`repro.graphs.fast.csr_of`).
DEFAULT_DELTA_CONSUMER = "csr"


class GraphError(ValueError):
    """Raised for invalid graph operations (missing nodes, self-loops...)."""


class UndirectedGraph:
    """A simple undirected graph backed by adjacency sets.

    Self-loops are rejected; parallel edges collapse into a single edge.
    """

    def __init__(self, nodes: Iterable[NodeId] = (), edges: Iterable[Tuple[NodeId, NodeId]] = ()) -> None:
        self._adjacency: Dict[NodeId, Set[NodeId]] = {}
        #: Incremented on every structural change; derived representations
        #: (e.g. the fast backend's cached CSR arrays) key their caches on it.
        self._mutations: int = 0
        #: Bounded log of primitive mutations since the oldest consumer's
        #: :meth:`reset_delta_log`; ``None`` while disarmed (no consumer has
        #: synchronised yet -- the common case for graphs that never touch
        #: the fast backend, which then pay nothing) or after an overflow.
        self._delta_log: Optional[List[Tuple]] = None
        #: Per-consumer synchronisation marks: ``name -> (stamp, offset)``.
        #: ``offset`` indexes into :attr:`_delta_log`; entries before the
        #: oldest live offset are trimmed away on every reset.
        self._delta_marks: Dict[str, Tuple[int, int]] = {}
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    @property
    def mutation_stamp(self) -> int:
        """Counter of structural changes (nodes/edges added or removed)."""
        return self._mutations

    # ------------------------------------------------------------------
    # Mutation delta log (incremental CSR maintenance)
    # ------------------------------------------------------------------
    def delta_since(self, stamp: int, consumer: str = DEFAULT_DELTA_CONSUMER) -> Optional[List[Tuple]]:
        """The primitive mutations applied since ``stamp``, if fully logged.

        Returns ``None`` when the log cannot reconstruct the interval for
        ``consumer``: the log is disarmed (no :meth:`reset_delta_log` yet),
        it has overflowed :data:`DELTA_LOG_LIMIT`, or that consumer's mark
        was last reset at a different stamp than the caller's snapshot.
        Entries are ``("+n", node)``, ``("-n", node)``, ``("+e", u, v)`` and
        ``("-e", u, v)``, in application order (a node removal appears as
        its incident ``"-e"`` entries followed by one ``"-n"``).

        Consumers are independent: the fast backend's in-process CSR cache
        (the default) and the runner pool's shared-memory mirrors each keep
        their own mark, so one synchronising never invalidates the other.
        """
        log = self._delta_log
        if log is None:
            return None
        mark = self._delta_marks.get(consumer)
        if mark is None or mark[0] != stamp:
            return None
        return log[mark[1]:]

    def reset_delta_log(self, consumer: str = DEFAULT_DELTA_CONSUMER) -> None:
        """(Re)arm the delta log for ``consumer`` at the current stamp.

        Called by consumers (the fast backend's CSR cache, the runner pool's
        publication layer) right after they synchronise with the graph, so
        the log only ever spans the interval between the *oldest* consumer's
        snapshot and the present.  Until the first call the log stays
        disarmed and mutations cost nothing to record.
        """
        if self._delta_log is None:
            # Arming from scratch invalidates every stale mark: the entries
            # they pointed at are gone (never logged, or overflowed away).
            self._delta_log = []
            self._delta_marks = {consumer: (self._mutations, 0)}
            return
        self._delta_marks[consumer] = (self._mutations, len(self._delta_log))
        self._trim_delta_log()

    def drop_delta_consumer(self, consumer: str) -> None:
        """Forget ``consumer``'s mark (e.g. when a pool publication dies).

        With no consumers left the log disarms entirely, so mutations stop
        paying the logging cost until someone synchronises again.
        """
        self._delta_marks.pop(consumer, None)
        if not self._delta_marks:
            self._delta_log = None
        else:
            self._trim_delta_log()

    def _trim_delta_log(self) -> None:
        """Drop the log prefix no live mark can reach any more."""
        log = self._delta_log
        if log is None or not self._delta_marks:
            return
        cut = min(offset for _, offset in self._delta_marks.values())
        if cut:
            del log[:cut]
            self._delta_marks = {
                name: (stamp, offset - cut)
                for name, (stamp, offset) in self._delta_marks.items()
            }

    def _log(self, entry: Tuple) -> None:
        log = self._delta_log
        if log is not None:
            if len(log) < DELTA_LOG_LIMIT:
                log.append(entry)
            else:
                # Overflow disarms the log for *every* consumer: the window
                # is no longer reconstructable, so all marks die with it.
                self._delta_log = None
                self._delta_marks.clear()

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId) -> None:
        """Add ``node`` (no-op if already present)."""
        if node not in self._adjacency:
            self._adjacency[node] = set()
            self._mutations += 1
            if self._delta_log is not None:
                self._log(("+n", node))

    def add_edge(self, u: NodeId, v: NodeId) -> bool:
        """Add the undirected edge ``(u, v)``.

        Returns ``True`` when a new edge was created, ``False`` if it already
        existed.  Both endpoints are created if missing.
        """
        if u == v:
            raise GraphError(f"self-loops are not allowed: {u!r}")
        self.add_node(u)
        self.add_node(v)
        if v in self._adjacency[u]:
            return False
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._mutations += 1
        if self._delta_log is not None:
            self._log(("+e", u, v))
        return True

    def add_leaf(self, node: NodeId, anchor: NodeId) -> None:
        """Add a brand-new ``node`` with a single edge to existing ``anchor``.

        Exactly equivalent to ``add_node(node); add_edge(node, anchor)`` (the
        general path is taken if ``node`` already exists or ``anchor`` does
        not), but with one membership check instead of five -- this is the
        per-clone insertion step of the SOAP attack, executed hundreds of
        thousands of times per campaign.
        """
        adjacency = self._adjacency
        if node in adjacency or anchor not in adjacency or node == anchor:
            self.add_node(node)
            self.add_edge(node, anchor)
            return
        adjacency[node] = {anchor}
        adjacency[anchor].add(node)
        self._mutations += 2
        if self._delta_log is not None:
            self._log(("+n", node))
            self._log(("+e", node, anchor))

    def remove_edge(self, u: NodeId, v: NodeId) -> bool:
        """Remove the edge ``(u, v)`` if it exists.  Returns whether it did."""
        if u not in self._adjacency or v not in self._adjacency:
            return False
        if v not in self._adjacency[u]:
            return False
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._mutations += 1
        if self._delta_log is not None:
            self._log(("-e", u, v))
        return True

    def remove_node(self, node: NodeId) -> List[NodeId]:
        """Remove ``node`` and every incident edge.

        Returns the list of former neighbours (in sorted-by-repr order for
        determinism), which is exactly what the DDSR repair step needs.
        """
        if node not in self._adjacency:
            raise GraphError(f"node {node!r} not in graph")
        neighbors = sorted(self._adjacency[node], key=repr)
        for neighbor in neighbors:
            self._adjacency[neighbor].discard(node)
        del self._adjacency[node]
        self._mutations += 1
        if self._delta_log is not None:
            for neighbor in neighbors:
                self._log(("-e", node, neighbor))
            self._log(("-n", node))
        return neighbors

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Whether the undirected edge ``(u, v)`` is present."""
        return u in self._adjacency and v in self._adjacency[u]

    def nodes(self) -> List[NodeId]:
        """All node identifiers (in insertion order)."""
        return list(self._adjacency)

    def edges(self) -> List[Tuple[NodeId, NodeId]]:
        """Every edge exactly once."""
        seen: Set[Tuple[NodeId, NodeId]] = set()
        result: List[Tuple[NodeId, NodeId]] = []
        for u, neighbors in self._adjacency.items():
            for v in neighbors:
                key = (u, v) if repr(u) <= repr(v) else (v, u)
                if key in seen:
                    continue
                seen.add(key)
                result.append(key)
        return result

    def number_of_nodes(self) -> int:
        """Count of nodes."""
        return len(self._adjacency)

    def number_of_edges(self) -> int:
        """Count of undirected edges."""
        return sum(len(neighbors) for neighbors in self._adjacency.values()) // 2

    def neighbors(self, node: NodeId) -> Set[NodeId]:
        """A copy of the neighbour set of ``node``."""
        if node not in self._adjacency:
            raise GraphError(f"node {node!r} not in graph")
        return set(self._adjacency[node])

    def degree(self, node: NodeId) -> int:
        """Number of neighbours of ``node``."""
        if node not in self._adjacency:
            raise GraphError(f"node {node!r} not in graph")
        return len(self._adjacency[node])

    def degrees(self) -> Dict[NodeId, int]:
        """Mapping of every node to its degree."""
        return {node: len(neighbors) for node, neighbors in self._adjacency.items()}

    def max_degree(self) -> int:
        """Largest degree in the graph (0 for an empty graph)."""
        if not self._adjacency:
            return 0
        return max(len(neighbors) for neighbors in self._adjacency.values())

    def neighbors_of_neighbors(self, node: NodeId) -> Set[NodeId]:
        """The NoN set of ``node``: peers of peers, excluding the node itself.

        This is the "knowledge of Neighbors-of-Neighbor" the paper's DDSR
        construction relies on: each bot knows who its peers are peered with,
        so that when a peer disappears the survivors can immediately link up.
        """
        if node not in self._adjacency:
            raise GraphError(f"node {node!r} not in graph")
        result: Set[NodeId] = set()
        for neighbor in self._adjacency[node]:
            result.update(self._adjacency[neighbor])
        result.discard(node)
        result.difference_update(self._adjacency[node])
        return result

    def common_neighbors(self, u: NodeId, v: NodeId) -> Set[NodeId]:
        """Nodes adjacent to both ``u`` and ``v``."""
        if u not in self._adjacency or v not in self._adjacency:
            raise GraphError("both endpoints must be in the graph")
        return self._adjacency[u] & self._adjacency[v]

    def adjacency_view(self, node: NodeId) -> frozenset:
        """Immutable view of a node's neighbour set (no copy of the graph)."""
        if node not in self._adjacency:
            raise GraphError(f"node {node!r} not in graph")
        return frozenset(self._adjacency[node])

    # ------------------------------------------------------------------
    # Copy / iteration helpers
    # ------------------------------------------------------------------
    def copy(self) -> "UndirectedGraph":
        """A deep copy of the adjacency structure."""
        clone = UndirectedGraph()
        clone._adjacency = {node: set(neighbors) for node, neighbors in self._adjacency.items()}
        return clone

    def subgraph(self, nodes: Iterable[NodeId]) -> "UndirectedGraph":
        """The induced subgraph on ``nodes``.

        Node insertion order follows *this* graph's order, not the iteration
        order of ``nodes``: the sampled metric estimators draw sources from
        ``nodes()``, so the subgraph must be canonical for a given membership
        set no matter how the caller assembled it (e.g. both graph backends
        computing the same largest component by different algorithms).
        """
        keep = set(nodes)
        sub = UndirectedGraph()
        for node in self._adjacency:
            if node in keep:
                sub.add_node(node)
        for node in sub._adjacency:
            for neighbor in self._adjacency[node]:
                if neighbor in keep:
                    sub.add_edge(node, neighbor)
        return sub

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._adjacency)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UndirectedGraph(nodes={self.number_of_nodes()}, "
            f"edges={self.number_of_edges()})"
        )
