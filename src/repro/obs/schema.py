"""Validate telemetry reports against the checked-in JSON schema.

The report format is the contract between the runner's ``--telemetry``
output and everything downstream (CI artifact checks, the benchmark
trajectory's telemetry section, future reproducibility manifests), so it is
pinned by ``report_schema.json`` next to this module and validated with the
small self-contained checker below -- no third-party ``jsonschema``
dependency, only the subset of draft-07 the schema actually uses (``type``,
``const``, ``required``, ``properties``, ``additionalProperties``,
``minimum``).

Command line (the CI smoke runs exactly this)::

    python -m repro.obs.schema report.json            # validate, exit 0/1
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Mapping

#: The checked-in schema every report must satisfy.
SCHEMA_PATH = Path(__file__).resolve().parent / "report_schema.json"

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; JSON Schema keeps them distinct.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


class SchemaError(ValueError):
    """Raised (with every violation listed) when a document fails validation."""


def load_schema(path: Path = SCHEMA_PATH) -> Dict[str, Any]:
    """The schema document itself."""
    return json.loads(path.read_text(encoding="utf-8"))


def _check(value: Any, schema: Mapping[str, Any], where: str, errors: List[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[name](value) for name in allowed):
            errors.append(
                f"{where}: expected type {'/'.join(allowed)}, "
                f"got {type(value).__name__}"
            )
            return
    if "const" in schema and value != schema["const"]:
        errors.append(f"{where}: expected {schema['const']!r}, got {value!r}")
    minimum = schema.get("minimum")
    if minimum is not None and isinstance(value, (int, float)) and value < minimum:
        errors.append(f"{where}: {value} is below minimum {minimum}")
    if not isinstance(value, dict):
        return
    for name in schema.get("required", []):
        if name not in value:
            errors.append(f"{where}: missing required key {name!r}")
    properties = schema.get("properties", {})
    additional = schema.get("additionalProperties", True)
    for key, child in value.items():
        child_where = f"{where}.{key}" if where else key
        if key in properties:
            _check(child, properties[key], child_where, errors)
        elif isinstance(additional, Mapping):
            _check(child, additional, child_where, errors)
        elif additional is False:
            errors.append(f"{where}: unexpected key {key!r}")


def validate_report(report: Mapping[str, Any], schema: Mapping[str, Any] = None) -> None:
    """Raise :class:`SchemaError` listing every violation (silent when valid)."""
    if schema is None:
        schema = load_schema()
    errors: List[str] = []
    _check(report, schema, "report", errors)
    if errors:
        raise SchemaError("; ".join(errors))


def main(argv=None) -> int:
    """``python -m repro.obs.schema report.json [...]`` -- validate report files."""
    paths = list(sys.argv[1:] if argv is None else argv)
    if not paths:
        print("usage: python -m repro.obs.schema REPORT.json [...]", file=sys.stderr)
        return 2
    schema = load_schema()
    failures = 0
    for raw in paths:
        try:
            report = json.loads(Path(raw).read_text(encoding="utf-8"))
            validate_report(report, schema)
        except (OSError, json.JSONDecodeError, SchemaError) as error:
            print(f"{raw}: INVALID -- {error}", file=sys.stderr)
            failures += 1
        else:
            print(f"{raw}: valid {report.get('schema')}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
