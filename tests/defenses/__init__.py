"""Test package (prevents basename clashes across test directories)."""
