"""Tests for the bot life-cycle state machine."""

import pytest

from repro.core.errors import LifecycleError
from repro.core.lifecycle import BotStage, LifecycleMachine


class TestHappyPath:
    def test_full_lifecycle(self):
        machine = LifecycleMachine()
        machine.infect(1.0)
        machine.rally(2.0)
        machine.wait(3.0)
        machine.execute(4.0)
        machine.wait(5.0)
        machine.neutralize(6.0)
        assert machine.stage is BotStage.NEUTRALIZED
        assert machine.is_neutralized

    def test_history_records_transitions(self):
        machine = LifecycleMachine()
        machine.infect(1.0)
        machine.rally(2.0)
        assert machine.history == [(1.0, BotStage.INFECTION), (2.0, BotStage.RALLY)]
        assert machine.time_entered(BotStage.RALLY) == 2.0
        assert machine.time_entered(BotStage.EXECUTION) is None

    def test_waiting_bot_can_re_rally(self):
        machine = LifecycleMachine()
        machine.infect()
        machine.rally()
        machine.wait()
        machine.rally()
        assert machine.stage is BotStage.RALLY

    def test_is_active_states(self):
        machine = LifecycleMachine()
        assert not machine.is_active
        machine.infect()
        assert not machine.is_active
        machine.rally()
        assert machine.is_active
        machine.wait()
        assert machine.is_active
        machine.neutralize()
        assert not machine.is_active


class TestIllegalTransitions:
    def test_cannot_execute_before_waiting(self):
        machine = LifecycleMachine()
        machine.infect()
        with pytest.raises(LifecycleError):
            machine.execute()

    def test_cannot_rally_before_infection(self):
        with pytest.raises(LifecycleError):
            LifecycleMachine().rally()

    def test_neutralized_is_terminal(self):
        machine = LifecycleMachine()
        machine.infect()
        machine.neutralize()
        for action in (machine.infect, machine.rally, machine.wait, machine.execute):
            with pytest.raises(LifecycleError):
                action()

    def test_cannot_neutralize_before_creation_stage_changes(self):
        machine = LifecycleMachine()
        with pytest.raises(LifecycleError):
            machine.neutralize()

    def test_can_transition_predicate(self):
        machine = LifecycleMachine()
        assert machine.can_transition(BotStage.INFECTION)
        assert not machine.can_transition(BotStage.EXECUTION)
