"""Figure 5 -- DDSR vs normal graph: components, degree centrality, diameter.

Paper setup: 10-regular graphs of 5000 nodes (left column, 5a/5c/5e) and
15000 nodes (right column, 5b/5d/5f), incremental deletions of essentially the
whole population, comparing the self-repairing DDSR overlay against a normal
graph with no repair.

Expected shapes (paper): the DDSR overlay stays in a single connected
component until almost every node is gone (90--95 %), while the normal graph
shatters into many components after roughly 60 % deletions; DDSR's degree
centrality stays slightly above the normal graph's (bounded by pruning); the
DDSR diameter *decreases* as the network shrinks while the normal graph's
diameter grows until it partitions.

The benchmark regenerates both "columns" at reduced sizes (600 and 1200 nodes
by default) -- the qualitative comparison is identical.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.experiments import run_fig5_resilience
from repro.analysis.reporting import format_series

SMALL_N = 600
LARGE_N = 1200
CHECKPOINTS = 10
DIAMETER_SAMPLE = 24


def _render(result):
    return "\n".join(
        [
            format_series("DDSR components", result.deletions, result.ddsr_components),
            format_series("Normal components", result.deletions, result.normal_components),
            format_series("DDSR degree centrality", result.deletions, result.ddsr_degree_centrality),
            format_series("Normal degree centrality", result.deletions, result.normal_degree_centrality),
            format_series("DDSR diameter", result.deletions, result.ddsr_diameter),
            format_series("Normal diameter", result.deletions, result.normal_diameter),
        ]
    )


def _check_shapes(result):
    # 5a/5b: DDSR stays connected essentially to the end; the normal graph
    # fragments into many components.
    assert result.ddsr_stays_connected_until() >= 0.75
    assert max(result.normal_components) > 3 * max(result.ddsr_components)
    # 5c/5d: DDSR degree centrality stays bounded but slightly above normal.
    assert result.ddsr_degree_centrality[-2] >= result.normal_degree_centrality[-2]
    # 5e/5f: the DDSR diameter at the end is no larger than it was initially,
    # while the normal graph's diameter (largest component) grew or the graph
    # disintegrated into tiny fragments.
    assert result.ddsr_diameter[-2] <= result.ddsr_diameter[0] + 1


def test_fig5_left_column_small_network(benchmark):
    """Figures 5a/5c/5e: the 'small botnet' column (paper: n=5000)."""
    result = benchmark.pedantic(
        lambda: run_fig5_resilience(
            n=SMALL_N, k=10, checkpoints=CHECKPOINTS, diameter_sample=DIAMETER_SAMPLE,
            max_fraction=0.95, seed=50,
        ),
        rounds=1,
        iterations=1,
    )
    emit(f"Figure 5a/5c/5e — DDSR vs normal graph (n={SMALL_N}, k=10)", _render(result))
    _check_shapes(result)


def test_fig5_right_column_medium_network(benchmark):
    """Figures 5b/5d/5f: the 'medium botnet' column (paper: n=15000)."""
    result = benchmark.pedantic(
        lambda: run_fig5_resilience(
            n=LARGE_N, k=10, checkpoints=CHECKPOINTS, diameter_sample=DIAMETER_SAMPLE,
            max_fraction=0.95, seed=51,
        ),
        rounds=1,
        iterations=1,
    )
    emit(f"Figure 5b/5d/5f — DDSR vs normal graph (n={LARGE_N}, k=10)", _render(result))
    _check_shapes(result)
