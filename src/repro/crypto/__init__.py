"""Simulation-grade cryptographic models.

The OnionBots design depends on a handful of cryptographic *properties*:

* every hidden service has a keypair whose public-key hash is its identity
  (the ``.onion`` address);
* the botmaster's public key is embedded in every bot, bots report a per-bot
  symmetric key encrypted under it, and future addresses are derived from
  ``generateKey(PK_CC, H(K_B, i_p))``;
* commands are signed (and rental tokens are certificates over a renter key);
* relayed messages are padded to a fixed size and made indistinguishable from
  random bytes (Elligator-style encodings).

This package models those properties deterministically so that experiments are
reproducible and fast.  **None of it is real cryptography** -- keypairs are
hash-derived token objects, "encryption" is a keyed keystream built from
SHA-256, and the Elligator encoding is a behavioural stand-in.  The models are
sufficient to evaluate the protocol and the mitigations (which is all the paper
does) and deliberately unsuitable for protecting or attacking real traffic.
"""

from repro.crypto.keys import KeyPair, PublicKey, fingerprint
from repro.crypto.kdf import derive_period_key, hash_chain, kdf
from repro.crypto.signing import SignatureError, sign, verify
from repro.crypto.symmetric import SealedBox, open_sealed, seal
from repro.crypto.elligator import (
    decode_uniform,
    encode_uniform,
    looks_uniform,
)

__all__ = [
    "KeyPair",
    "PublicKey",
    "fingerprint",
    "kdf",
    "derive_period_key",
    "hash_chain",
    "sign",
    "verify",
    "SignatureError",
    "seal",
    "open_sealed",
    "SealedBox",
    "encode_uniform",
    "decode_uniform",
    "looks_uniform",
]
