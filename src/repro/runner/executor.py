"""Sharded execution of scenario specs: serial, process-parallel, cached.

The executor turns a :class:`~repro.runner.spec.ScenarioSpec` into its flat
work-unit schedule, serves whatever it can from the
:class:`~repro.runner.cache.ResultCache`, and computes the remainder either
in-process or on the invocation-wide persistent worker pool
(:mod:`repro.runner.pool`).  Three properties hold by construction:

* **determinism** -- every unit's seed is derived from the spec alone, and
  results are re-ordered by unit index before aggregation, so ``workers=N``
  is bit-identical to ``workers=1``;
* **incrementality** -- the cache is keyed per unit, so enlarging a grid or
  adding trials only computes the new units;
* **streaming aggregation** -- per-point Welford accumulators are fed as
  results arrive; memory is O(grid points x metrics), not O(trials).
"""

from __future__ import annotations

import importlib
import logging
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.telemetry import current as _telemetry
from repro.runner.cache import ResultCache
from repro.runner.registry import get_scenario, resolve_for_worker
from repro.runner.spec import ScenarioSpec, WorkUnit
from repro.runner.stats import MetricAggregator

ProgressFn = Callable[[str], None]

logger = logging.getLogger(__name__)

#: Work units handed to each pool submission; batching amortises pickling and
#: process round-trips for sweeps with many tiny units.
DEFAULT_SHARD_SIZE = 8

#: Execution-level override for source-sharded path-metric campaigns inside
#: scenarios (``resilience-at-scale``): how many pool workers each
#: full-population campaign fans its sources across.  An *environment* knob
#: rather than a scenario parameter on purpose -- parameters feed unit-seed
#: derivation and cache identity, and a pure performance knob must change
#: neither (the sharded merge is bit-identical to serial by construction).
PATH_WORKERS_ENV_VAR = "REPRO_PATH_WORKERS"


def path_workers_policy() -> int:
    """Workers for in-scenario sharded path-metric campaigns (default 1).

    Parses :data:`PATH_WORKERS_ENV_VAR`; an invalid value raises
    :class:`repro.core.errors.ConfigError` instead of silently running
    serial.
    """
    raw = os.environ.get(PATH_WORKERS_ENV_VAR, "").strip()
    if not raw:
        return 1
    from repro.core.errors import ConfigError

    try:
        value = int(raw)
    except ValueError:
        value = 0
    if value < 1:
        raise ConfigError(
            f"invalid {PATH_WORKERS_ENV_VAR}={raw!r}; expected a positive "
            "integer of pool workers"
        )
    return value


# ----------------------------------------------------------------------
# Worker-side entry points (top-level so they pickle under any start method)
# ----------------------------------------------------------------------
#: Worker-side flag: whether the parent had telemetry enabled when the pool
#: spun up.  When set, every shard runs under a fresh worker-local collector
#: whose snapshot rides back to the parent with the shard's results.
_WORKER_TELEMETRY = {"enabled": False}


def _worker_init(
    src_path: str, module: str, graph_backend: str, bfs_batch, telemetry: bool = False
) -> None:
    """Apply parent policies inside a worker (initializer or per-task).

    The persistent pool (:mod:`repro.runner.pool`) calls this per *task*
    with ``src_path=""``: the pool outlives any one campaign, so the
    parent's *resolved* graph-backend and wave-width policies are re-forced
    for every shard -- forced state set via ``backend.use()`` /
    ``use_bfs_batch()`` lives in process globals that ``spawn`` /
    ``forkserver`` children do not inherit, and the cache keys record the
    parent's policy, so workers must actually compute under it.  The
    parent's telemetry state is shipped the same way (a pure observation
    flag: it feeds no seed, parameter or cache key).  A scenario home
    module that fails to import raises
    :class:`~repro.core.errors.ConfigError` naming the module.
    """
    if src_path and src_path not in sys.path:
        sys.path.insert(0, src_path)
    from repro.graphs import backend
    from repro.runner import registry

    backend.use(graph_backend)
    backend.use_bfs_batch(bfs_batch)
    _WORKER_TELEMETRY["enabled"] = bool(telemetry)
    registry._ensure_builtins()
    if module and module != "__main__":
        try:
            importlib.import_module(module)
        except ImportError as error:
            # A broken scenario home must fail loudly *here*, naming the
            # module -- not later as a baffling unknown-scenario error when
            # the first shard tries to resolve its scenario.
            from repro.core.errors import ConfigError

            logger.exception(
                "scenario home module %r failed to import in a worker", module
            )
            raise ConfigError(
                f"scenario home module {module!r} failed to import in a "
                f"worker: {error}"
            ) from error


def run_unit(scenario_name: str, module: str, params: Mapping[str, Any], seed: int) -> Dict[str, float]:
    """Execute one work unit and return its flat metrics."""
    sc = resolve_for_worker(scenario_name, module)
    return sc.call(seed=seed, **params)


def _run_shard(
    scenario_name: str,
    module: str,
    shard: Sequence[Tuple[int, Mapping[str, Any], int]],
) -> Tuple[List[Tuple[int, Dict[str, float]]], Optional[Dict[str, Any]]]:
    """Execute a batch of ``(index, params, seed)`` units in one worker call.

    Returns ``(results, telemetry_snapshot)``; the snapshot is ``None``
    unless the parent enabled telemetry, in which case the shard ran under a
    fresh worker-local collector (per-unit ``runner.unit`` spans plus
    whatever the scenario's instrumented subsystems recorded) that the
    parent merges.  Collection is shard-scoped precisely so merging the
    returned snapshots can never double-count a long-lived worker.

    Each unit runs under a sub-unit checkpoint scope
    (:func:`repro.runner.journal.unit_scope`) and beats the parent
    watchdog when it finishes.  Both are process-local no-ops in a pool
    worker; they only bite when this function is the *degraded-serial
    fallback* running in the parent of a journaled campaign -- there, a
    long unit's path-metric checkpoints journal at shard granularity and
    feed the drain's hang deadline.
    """
    from repro.runner import journal as journal_mod
    from repro.runner import pool as pool_mod

    def one_unit(index: int, params: Mapping[str, Any], seed: int) -> Dict[str, float]:
        with journal_mod.unit_scope(index):
            metrics = run_unit(scenario_name, module, params, seed)
        pool_mod.watchdog_beat()
        return metrics

    if not _WORKER_TELEMETRY["enabled"]:
        return [
            (index, one_unit(index, params, seed))
            for index, params, seed in shard
        ], None
    from repro.obs import telemetry

    collector = telemetry.enable(label="worker-shard")
    try:
        results = []
        for index, params, seed in shard:
            with collector.span("runner.unit"):
                results.append((index, one_unit(index, params, seed)))
    finally:
        telemetry.disable()
    return results, collector.snapshot()


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class RunResult:
    """Everything one executed spec produced."""

    spec: ScenarioSpec
    #: One flat metric mapping per work unit, in unit (schedule) order.
    unit_metrics: List[Dict[str, float]] = field(default_factory=list)
    #: One aggregator per grid point, in grid order.
    aggregates: List[MetricAggregator] = field(default_factory=list)
    points: List[Dict[str, Any]] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    #: Cache entries that existed but could not be decoded: evicted and
    #: recomputed (a subset of ``cache_misses``), reported apart so a sweep
    #: with a rotting cache is visible in the run summary.
    cache_corrupt: int = 0
    workers: int = 1
    elapsed_seconds: float = 0.0
    #: Units replayed verbatim from the campaign journal (``--resume``).
    replayed: int = 0
    #: Where this campaign journaled its progress (``None`` when off).
    journal_path: Optional[str] = None
    #: Sub-unit checkpoint shards replayed from the journal instead of
    #: recomputed (``--resume`` re-entering a partially-finished unit).
    checkpoints_replayed: int = 0
    #: Fresh sub-unit checkpoint shards appended to the journal.
    checkpoints_recorded: int = 0

    def rows(self) -> List[Dict[str, Any]]:
        """One reporting/export row per grid point: params + aggregate metrics.

        The shape plugs directly into
        :func:`repro.analysis.reporting.render_result_rows` and
        :func:`repro.analysis.export.write_rows_csv`.
        """
        rows: List[Dict[str, Any]] = []
        for point, aggregate in zip(self.points, self.aggregates):
            row: Dict[str, Any] = dict(point)
            row["trials"] = aggregate.trials()
            row.update(aggregate.row())
            rows.append(row)
        return rows

    def metrics_for(self, **conditions: Any) -> List[Dict[str, float]]:
        """Per-trial metrics of every unit whose params match ``conditions``."""
        units = self.spec.work_units()
        return [
            self.unit_metrics[unit.index]
            for unit in units
            if all(unit.params.get(key) == value for key, value in conditions.items())
        ]

    def scalar(self, metric: str, **conditions: Any) -> float:
        """Mean of one metric over the matching grid points' trials."""
        matched = self.metrics_for(**conditions)
        if not matched:
            raise KeyError(f"no units match {conditions!r}")
        values = [metrics[metric] for metrics in matched]
        return sum(values) / len(values)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _repro_src_path() -> str:
    """The directory that must be on ``sys.path`` for ``import repro``."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _shards(
    pending: List[WorkUnit], shard_size: int
) -> List[List[Tuple[int, Mapping[str, Any], int]]]:
    """Chunk pending units into pickling-friendly ``(index, params, seed)`` shards."""
    flat = [(unit.index, dict(unit.params), unit.seed) for unit in pending]
    return [flat[start : start + shard_size] for start in range(0, len(flat), shard_size)]


def execute(
    spec: ScenarioSpec,
    *,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressFn] = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
    journal: Optional[Any] = None,
    resume: bool = False,
) -> RunResult:
    """Run every (grid point x trial) unit of ``spec`` and aggregate.

    ``workers=1`` runs in-process; ``workers>1`` shards the cache-miss units
    across a :class:`~concurrent.futures.ProcessPoolExecutor`.  Pass a
    :class:`ResultCache` to serve repeats from disk and persist fresh results.

    ``journal`` (a path) records every completed unit into an append-only
    :class:`~repro.runner.journal.CampaignJournal`; with ``resume=True`` the
    journal's recorded units are replayed verbatim first (header-validated
    against this spec and environment), so a campaign interrupted by a
    crash or ^C finishes with aggregates bit-identical to an uninterrupted
    run.  Journaled campaigns also checkpoint *inside* long units: exact
    path-metric checkpoints computed in the parent process journal their
    integer accumulators per shard (journal schema v2), and ``--resume``
    re-enters a partially-finished unit from its first incomplete
    checkpoint shard -- still bit-identical, because the accumulator
    merges are exact-integer and order-free.  ``resume=True`` without a
    journal raises :class:`~repro.core.errors.ConfigError`.

    ``KeyboardInterrupt`` mid-campaign tears the worker pools down
    deterministically (workers SIGKILLed, every ``repro-pool-*``
    shared-memory segment unlinked) before re-raising; serial in-parent
    units run under the parent watchdog (``REPRO_TASK_TIMEOUT``), whose
    :class:`~repro.runner.pool.ParentTimeoutError` gets the same teardown.
    Every exit path closes the journal, so whatever progress was recorded
    stays resumable.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    sc = get_scenario(spec.name)
    if sc.shard_size is not None:
        # Heavy at-scale scenarios cap their own shard width so a trial grid
        # fans out across every worker instead of queueing behind one shard
        # (results are unit-seeded, so sharding never affects values).
        shard_size = min(shard_size, sc.shard_size)
    sc.check_params(set(spec.params) | set(spec.grid))
    spec = spec.resolved(sc.defaults)
    units = spec.work_units()
    started = time.perf_counter()
    tel = _telemetry()
    if tel.enabled:
        tel.gauge("runner.scenario", spec.name)
        tel.gauge("runner.workers", workers)
        tel.gauge("runner.units", len(units))

    # Crash-safety bookkeeping: the journal records every completed unit as
    # it lands; --resume replays the recorded units verbatim (validated
    # against this resolved spec + environment) before touching the cache.
    from repro.core.errors import ConfigError
    from repro.runner import faults

    from repro.runner import journal as journal_mod

    jrnl = None
    replay: Dict[int, Dict[str, float]] = {}
    saved_checkpoints: Dict[Tuple[int, int], Dict[str, Any]] = {}
    if journal is not None:
        from repro.runner.journal import CampaignJournal, journal_header

        jrnl = CampaignJournal(journal)
        header = journal_header(spec, sc.version, len(units))
        if resume:
            replay = jrnl.resume_state(header)
            # Sub-unit checkpoint states of units the journal did NOT
            # finish: the replayed units above never recompute, so their
            # checkpoint records are dead weight -- only partial units
            # re-enter.
            saved_checkpoints = {
                key: value
                for key, value in jrnl.checkpoints.items()
                if key[0] not in replay
            }
        jrnl.open(header, resume=resume)
    elif resume:
        raise ConfigError(
            "resume requested but no journal given; pass a journal path "
            "(the CLI derives one under <cache-dir>/journals)"
        )

    # Streaming aggregation state: per-unit results are pushed into the
    # Welford accumulators as they land -- but strictly in unit schedule
    # order (an in-order drain over ``results``), never completion order.
    # That drain order is half of the parallel==serial guarantee (the other
    # half is spec-derived unit seeds); memory stays O(points x metrics).
    points = spec.points()
    aggregates = [MetricAggregator() for _ in points]
    results: Dict[int, Dict[str, float]] = {}
    drained = 0

    def drain_ready() -> None:
        nonlocal drained
        while drained < len(units):
            metrics = results.get(drained)
            if metrics is None:
                return
            aggregates[units[drained].point_index].push(metrics)
            drained += 1

    pending: List[WorkUnit] = []
    hits_before = cache.hits if cache else 0
    corrupt_before = cache.corrupt if cache else 0
    for unit in units:
        if unit.index in replay:
            # Journal replay wins over the cache: the record is the very
            # result this campaign already computed and merged once.
            results[unit.index] = replay[unit.index]
            continue
        cached = cache.get(unit, sc.version) if cache else None
        if cached is not None:
            results[unit.index] = cached
            if jrnl is not None:
                jrnl.record_unit(unit.index, cached)
        else:
            pending.append(unit)
    cache_hits = (cache.hits - hits_before) if cache else 0
    drain_ready()

    def finish_unit(unit_index: int, metrics: Dict[str, float]) -> None:
        results[unit_index] = metrics
        if cache is not None:
            cache.put(units[unit_index], sc.version, metrics)
        if jrnl is not None:
            jrnl.record_unit(unit_index, metrics)
        drain_ready()
        faults.fault_point("executor.unit")
        if progress is not None:
            progress(
                f"[{spec.name}] unit {unit_index + 1}/{len(units)} done "
                f"({len(results)}/{len(units)} complete)"
            )

    ckpt_replayed = 0
    ckpt_recorded = 0
    try:
        with journal_mod.campaign_checkpoints(jrnl, saved_checkpoints) as ckpt_ctx:
            try:
                if pending and workers == 1:
                    from repro.runner.pool import parent_deadline

                    for unit in pending:
                        # The unit scope lets in-parent path-metric
                        # checkpoints journal at shard granularity; the
                        # deadline bounds an in-parent hang the pool
                        # watchdog cannot see (there is no worker to kill).
                        with journal_mod.unit_scope(unit.index), parent_deadline(
                            f"work unit {unit.index} of scenario {spec.name!r}"
                        ):
                            with tel.span("runner.unit"):
                                metrics = sc.call(seed=unit.seed, **unit.params)
                        finish_unit(unit.index, metrics)
                elif pending:
                    shards = _shards(pending, shard_size)
                    max_workers = min(workers, len(shards))
                    if tel.enabled:
                        # The fan-out shape: shard count, effective width,
                        # pool size.
                        tel.gauge("runner.shards", len(shards))
                        tel.gauge("runner.shard_size", shard_size)
                        tel.gauge("runner.pool_workers", max_workers)
                    from repro.graphs import backend
                    from repro.runner.pool import get_pool

                    # Everything policy-like ships per task: the persistent
                    # pool outlives this campaign, so workers re-force the
                    # parent's resolved policies for every shard instead of
                    # baking them in at spin-up.
                    ctx = {
                        "module": sc.module,
                        "backend": backend.policy(),
                        "bfs_batch": backend.bfs_batch_policy(),
                        "telemetry": tel.enabled,
                    }

                    def on_shard(shard_results, shard_snapshot) -> None:
                        if shard_snapshot is not None:
                            tel.merge_snapshot(shard_snapshot)
                        for unit_index, metrics in shard_results:
                            finish_unit(unit_index, metrics)

                    get_pool(workers).run_unit_shards(ctx, spec.name, shards, on_shard)
            except KeyboardInterrupt:
                # Deterministic interruption: kill the pools (unlinking
                # every repro-pool-* shm segment) and leave the journal
                # resumable.
                from repro.runner.pool import shutdown_pools

                logger.warning(
                    "interrupted mid-campaign; terminating worker pools%s",
                    "" if jrnl is None else f" (resume with the journal at {jrnl.path})",
                )
                shutdown_pools(terminate=True)
                raise
            except Exception as error:
                from repro.runner.pool import ParentTimeoutError, shutdown_pools

                if isinstance(error, ParentTimeoutError):
                    # An in-parent hang blew REPRO_TASK_TIMEOUT: same
                    # deterministic teardown as ^C, then the distinct
                    # pool-failure exit path.
                    logger.warning(
                        "in-parent hang timed out mid-campaign; terminating "
                        "worker pools%s",
                        ""
                        if jrnl is None
                        else f" (resume with the journal at {jrnl.path})",
                    )
                    shutdown_pools(terminate=True)
                raise
            if ckpt_ctx is not None:
                ckpt_replayed = ckpt_ctx.shards_replayed
                ckpt_recorded = ckpt_ctx.shards_recorded

        drain_ready()
        ordered = [results[unit.index] for unit in units]
        if jrnl is not None:
            jrnl.finish()
    finally:
        # Whatever got us here -- success, ^C, a watchdog timeout, an
        # injected fault -- the journal ends up closed and resumable.
        if jrnl is not None:
            jrnl.close()

    elapsed = time.perf_counter() - started
    tel.record_span("runner.execute", elapsed)
    return RunResult(
        spec=spec,
        unit_metrics=ordered,
        aggregates=aggregates,
        points=points,
        cache_hits=cache_hits,
        cache_misses=len(pending),
        cache_corrupt=(cache.corrupt - corrupt_before) if cache else 0,
        workers=workers,
        elapsed_seconds=elapsed,
        replayed=len(replay),
        journal_path=str(jrnl.path) if jrnl is not None else None,
        checkpoints_replayed=ckpt_replayed,
        checkpoints_recorded=ckpt_recorded,
    )


def sharded_full_path_metrics(
    graph,
    *,
    workers: int = 1,
    shard_size: Optional[int] = None,
) -> Dict[str, float]:
    """Exact full-population path metrics with sources sharded across workers.

    The wave chunks of a full-population campaign are independent, so the
    source set of :func:`repro.graphs.fast.full_path_metrics` splits cleanly
    across a :class:`~concurrent.futures.ProcessPoolExecutor`: each worker
    accumulates its shard's exact int64 ``(ecc, totals)`` and the parent
    merges them (elementwise ``max`` / ``+``).  The accumulators are exact
    integers, so ``workers=N`` is **bit-identical** to ``workers=1`` -- no
    floating-point merge order to worry about.

    ``shard_size`` caps the sources per worker submission (default: an even
    ``ceil(sources / workers)`` split).  Requires the fast graph backend
    (numpy); the serial ``workers=1`` call is just
    ``fast.full_path_metrics(graph)``.

    ``workers > 1`` runs on the invocation-wide persistent pool
    (:func:`repro.runner.pool.get_pool`): the CSR arrays are published via
    shared memory once, consecutive checkpoints broadcast only delta
    patches (or re-attach after an overflow/compaction), and pool spin-up
    is paid once per invocation instead of once per checkpoint.

    Inside a journaled campaign's in-parent work unit
    (:func:`repro.runner.journal.active_unit_scope`), every completed shard
    journals its serialized accumulators under a checkpoint-scoped content
    hash, and a ``--resume`` re-run replays matching shards from the
    journal instead of recomputing them (``runner.journal.ckpt_replayed``)
    -- with ``workers=1`` the whole source set is one span, so the
    journaled path stays bit-identical to the plain serial call.
    """
    from repro.graphs import backend, fast
    from repro.runner import journal as journal_mod

    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if shard_size is not None and shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    if not backend.fast_available():
        raise backend.BackendError(
            "sharded full-population path metrics need the fast graph "
            "backend, but numpy is not importable"
        )
    scope = journal_mod.active_unit_scope()
    if workers == 1 and scope is None:
        return fast.full_path_metrics(graph)

    def fan_out(working, csr, sources):
        import numpy as np

        from repro.runner import faults
        from repro.runner import pool as pool_mod

        tel = _telemetry()
        faults.fault_point("executor.checkpoint")
        size = int(sources.size)
        per_shard = shard_size or -(-max(size, 1) // workers)
        spans = [
            (offset, min(offset + per_shard, size))
            for offset in range(0, size, per_shard)
        ]
        ecc = np.zeros(csr.n, dtype=np.int64)
        totals = np.zeros(csr.n, dtype=np.int64)
        if not spans:
            return ecc, totals

        # Sub-unit journaling: anchor this checkpoint to a content hash of
        # the exact CSR snapshot + source set, and pull whatever spans a
        # previous (interrupted) run already journaled for it.
        key = ""
        seq = 0
        saved_spans: Dict[Tuple[int, int], Any] = {}
        if scope is not None:
            key = fast.accumulator_state_key(csr, sources)
            seq, saved_spans = scope.begin_checkpoint(key)

        pending: List[int] = []
        replayed = 0
        for index, span in enumerate(spans):
            state = saved_spans.get(span)
            if state is not None:
                decoded = fast.deserialize_accumulators(state, csr.n)
                if decoded is not None:
                    np.maximum(ecc, decoded[0], out=ecc)
                    np.add(totals, decoded[1], out=totals)
                    replayed += 1
                    continue
                tel.count("runner.journal.ckpt_invalid")
                logger.warning(
                    "journaled checkpoint state for span %s failed to "
                    "decode; recomputing that shard",
                    span,
                )
            pending.append(index)
        if replayed and scope is not None:
            scope.note_replayed(replayed)
            pool_mod.watchdog_beat()

        # Completion order is irrelevant: integer max/sum merges are
        # associative and commutative *exactly*.
        def merge_shard(index: int, shard_ecc, shard_totals) -> None:
            if shard_ecc.shape != ecc.shape:
                raise RuntimeError(
                    "pool worker returned accumulators of shape "
                    f"{shard_ecc.shape}, expected {ecc.shape}: worker mirror "
                    "diverged from the parent CSR"
                )
            np.maximum(ecc, shard_ecc, out=ecc)
            np.add(totals, shard_totals, out=totals)
            if scope is not None:
                scope.record_shard(
                    seq,
                    key,
                    spans[index],
                    len(spans),
                    fast.serialize_accumulators(shard_ecc, shard_totals),
                )
            pool_mod.watchdog_beat()

        if not pending:
            # Every span replayed from the journal: the checkpoint is done
            # without touching the pool (or the wave engine) at all.
            return ecc, totals

        if workers == 1:
            for index in pending:
                start, stop = spans[index]
                shard_ecc, shard_totals = fast.accumulate_path_shard(
                    csr, sources[start:stop]
                )
                merge_shard(index, shard_ecc, shard_totals)
            return ecc, totals

        shards = [sources[spans[index][0]:spans[index][1]] for index in pending]
        if tel.enabled:
            tel.gauge("runner.path_workers", min(workers, len(shards)))
            tel.gauge("runner.path_shards", len(shards))
        ctx = {
            "backend": backend.policy(),
            "bfs_batch": backend.bfs_batch_policy(),
            "telemetry": tel.enabled,
        }

        def on_result(task_key, shard_ecc, shard_totals, shard_snapshot) -> None:
            if shard_snapshot is not None:
                tel.merge_snapshot(shard_snapshot)
            merge_shard(pending[task_key], shard_ecc, shard_totals)

        try:
            pool_mod.get_pool(workers).run_path_shards(
                working, csr, shards, ctx, on_result
            )
        except KeyboardInterrupt:
            logger.warning(
                "interrupted mid path-metric fan-out; terminating worker pools"
            )
            pool_mod.shutdown_pools(terminate=True)
            raise
        return ecc, totals

    return fast.full_path_metrics(graph, shard_runner=fan_out)


def run_scenario(
    name: str,
    *,
    params: Optional[Mapping[str, Any]] = None,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
    trials: int = 1,
    seed: int = 0,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressFn] = None,
    journal: Optional[Any] = None,
    resume: bool = False,
) -> RunResult:
    """Convenience wrapper: build the spec and execute it in one call."""
    spec = ScenarioSpec(
        name=name,
        params=dict(params or {}),
        grid={key: list(values) for key, values in (grid or {}).items()},
        trials=trials,
        seed=seed,
    )
    return execute(
        spec,
        workers=workers,
        cache=cache,
        progress=progress,
        journal=journal,
        resume=resume,
    )
