"""Graph substrate for the OnionBots reproduction.

The paper's entire quantitative evaluation (Figures 4, 5 and 6) is expressed in
graph-theoretic terms: closeness centrality, degree centrality, diameter,
connected components and partition thresholds of k-regular overlays subjected
to node deletions.  This package provides:

* :class:`~repro.graphs.adjacency.UndirectedGraph` -- a mutable adjacency-set
  graph with neighbour-of-neighbour (NoN) queries, the data structure the DDSR
  overlay is built on.
* :mod:`~repro.graphs.generators` -- k-regular, Erdos--Renyi and
  Barabasi--Albert generators plus conversion to/from ``networkx``.
* :mod:`~repro.graphs.metrics` -- our own BFS-based implementations of every
  metric the paper reports (cross-checked against ``networkx`` in the tests),
  including sampled estimators that make 5000--15000-node sweeps tractable.
* :mod:`~repro.graphs.fast` -- vectorized CSR (numpy) twins of every metric
  kernel, differential-tested to return results identical to ``metrics``.
* :mod:`~repro.graphs.backend` -- backend selection (``python`` / ``fast`` /
  ``auto`` by graph size, ``REPRO_GRAPH_BACKEND``) and the dispatchers the
  overlay, adversary and experiment layers call.
* :mod:`~repro.graphs.partition` -- connected-component and partition-threshold
  analysis used by Figure 6.
"""

from repro.graphs import backend

from repro.graphs.adjacency import GraphError, UndirectedGraph
from repro.graphs.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    from_networkx,
    k_regular_graph,
    ring_graph,
    to_networkx,
)
from repro.graphs.metrics import (
    average_closeness_centrality,
    average_degree_centrality,
    closeness_centrality,
    connected_components,
    degree_centrality,
    diameter,
    largest_component_fraction,
    number_connected_components,
    shortest_path_lengths_from,
)
from repro.graphs.partition import PartitionReport, analyze_partition, is_partitioned

__all__ = [
    "UndirectedGraph",
    "GraphError",
    "backend",
    "k_regular_graph",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "ring_graph",
    "to_networkx",
    "from_networkx",
    "closeness_centrality",
    "average_closeness_centrality",
    "degree_centrality",
    "average_degree_centrality",
    "diameter",
    "connected_components",
    "number_connected_components",
    "largest_component_fraction",
    "shortest_path_lengths_from",
    "PartitionReport",
    "analyze_partition",
    "is_partitioned",
]
