"""Tests for command-injection (hijack) attempts."""

from repro.adversary.hijack import HijackAttempt


class TestHijackAttempts:
    def test_unsigned_injection_rejected_by_every_bot(self, small_botnet):
        outcome = HijackAttempt().inject_unsigned(small_botnet)
        assert outcome.attempted == 16
        assert outcome.accepted == 0
        assert outcome.success_rate == 0.0

    def test_self_signed_injection_rejected(self, small_botnet):
        outcome = HijackAttempt().inject_self_signed(small_botnet)
        assert outcome.accepted == 0
        assert outcome.rejected == 16

    def test_replay_of_real_command_rejected(self, small_botnet):
        # Deliver a genuine command first, then replay it verbatim.
        original = small_botnet.botmaster.issue_broadcast(
            "report-status", now=small_botnet.simulator.now
        )
        for label in small_botnet.active_labels():
            small_botnet.bots[label].process_command(original, small_botnet.simulator.now)
        outcome = HijackAttempt().replay(small_botnet, original)
        assert outcome.accepted == 0
        assert outcome.technique == "replay"

    def test_outcomes_are_recorded(self, small_botnet):
        attempt = HijackAttempt()
        attempt.inject_unsigned(small_botnet)
        attempt.inject_self_signed(small_botnet)
        assert len(attempt.outcomes) == 2

    def test_empty_botnet_attempt(self, small_botnet):
        small_botnet.take_down(list(small_botnet.active_labels()))
        outcome = HijackAttempt().inject_unsigned(small_botnet)
        assert outcome.attempted == 0
        assert outcome.success_rate == 0.0
