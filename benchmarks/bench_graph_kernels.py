"""Graph-kernel backend benchmark: pure-Python BFS vs vectorized CSR.

Three workloads, written as one per-PR entry in the ``runs`` trajectory of
``BENCH_graph_kernels.json`` at the repository root:

* ``kernels`` -- connected components + sampled diameter on k-regular graphs
  at n in {1k, 5k, 20k, 100k}, python reference vs CSR backend (the PR-2
  workload, re-measured every PR to grow the trajectory);
* ``batched_bfs`` -- the sampled-diameter estimator run as one BFS kernel
  per source (the pre-batching fast path) vs the bit-packed multi-source
  wave that now backs diameter/ASPL/closeness;
* ``soap`` -- a full SOAP containment campaign plus benign-subgraph summary,
  original implementation (``ReferenceSoapAttack``, pure-Python metrics) vs
  the vectorized campaign over the CSR backend.

The fast timings are measured *cold*: the CSR cache is dropped before each
repetition, so the reported numbers include the UndirectedGraph -> CSR
conversion that a real checkpoint pays after a batch of deletions.  The SOAP
timings disable the cyclic GC inside the timed region (both sides equally;
the campaign's allocation burst otherwise dominates run-to-run noise).

Asserted contracts (the PR acceptance bars): fast >= 10x at n=20k on the
kernel pair, batched multi-source BFS >= 3x over the per-source loop at
n=100k, and the vectorized SOAP campaign >= 5x at n=20k.

Run directly for a quick smoke with a wall-clock bound (used by CI)::

    python benchmarks/bench_graph_kernels.py --sizes 1000 --soap-n 2000 --max-seconds 120
"""

from __future__ import annotations

import gc
import json
import random
import time
from pathlib import Path

SIZES = (1_000, 5_000, 20_000, 100_000)
K = 10
DIAMETER_SAMPLE = 32
#: Repetitions per (size, backend); the minimum is reported.
REPEATS = {1_000: 3, 5_000: 3, 20_000: 2, 100_000: 1}

BATCHED_SIZES = (20_000, 100_000)
SOAP_N = 20_000
SOAP_REPEATS = 3

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_graph_kernels.json"

SPEEDUP_FLOOR_AT_20K = 10.0
BATCHED_SPEEDUP_FLOOR_AT_100K = 3.0
SOAP_SPEEDUP_FLOOR = 5.0

#: Ordinal of this PR's entry in the ``runs`` trajectory.
PR_LABEL = "PR 3"


def _workload(module, graph, *, connected_components=True, diameter=True):
    """The benchmarked kernel pair, via one backend module."""
    results = {}
    if connected_components:
        results["components"] = module.number_connected_components(graph)
    if diameter:
        results["diameter"] = module.diameter(
            graph, sample_size=DIAMETER_SAMPLE, rng=random.Random(0)
        )
    return results


def _time_backend(module, graph, repeats: int, *, drop_csr_cache: bool = False):
    """``(best_seconds, workload_result)`` over ``repeats`` repetitions."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        if drop_csr_cache and hasattr(graph, "_csr_cache"):
            delattr(graph, "_csr_cache")
        started = time.perf_counter()
        result = _workload(module, graph)
        best = min(best, time.perf_counter() - started)
    return best, result


def run_kernel_benchmark(sizes=SIZES, *, emit=print) -> list:
    """Measure both backends at every size and return the report rows."""
    from repro.graphs import fast, metrics
    from repro.graphs.generators import k_regular_graph

    rows = []
    for n in sizes:
        repeats = REPEATS.get(n, 1)
        graph = k_regular_graph(n, K, seed=1000 + n)
        python_seconds, python_result = _time_backend(metrics, graph, repeats)
        fast_seconds, fast_result = _time_backend(fast, graph, repeats, drop_csr_cache=True)
        # Sanity: both backends agree on the benchmarked graph.
        assert python_result == fast_result
        speedup = python_seconds / fast_seconds if fast_seconds else float("inf")
        rows.append(
            {
                "n": n,
                "k": K,
                "edges": graph.number_of_edges(),
                "diameter_sample": DIAMETER_SAMPLE,
                "repeats": repeats,
                "python_seconds": round(python_seconds, 6),
                "fast_seconds": round(fast_seconds, 6),
                "speedup": round(speedup, 2),
            }
        )
        emit(
            f"kernels  n={n:>7,}  python={python_seconds:8.3f}s  "
            f"fast={fast_seconds:8.4f}s  speedup={speedup:7.1f}x"
        )
    return rows


def _per_source_diameter(csr, node_indices) -> float:
    """The pre-batching fast path: one BFS kernel launch per sampled source."""
    from repro.graphs import fast

    best = 0
    for index in node_indices:
        distances = fast.bfs_distances(csr, index)
        best = max(best, int(distances.max()))
    return float(best)


def run_batched_bfs_benchmark(sizes=BATCHED_SIZES, *, emit=print) -> list:
    """Per-source BFS loop vs the bit-packed multi-source wave (same sources)."""
    from repro.graphs import fast
    from repro.graphs.generators import k_regular_graph
    from repro.graphs.metrics import _select_nodes

    rows = []
    for n in sizes:
        graph = k_regular_graph(n, K, seed=2000 + n)
        csr = fast.csr_of(graph)
        nodes = _select_nodes(graph, DIAMETER_SAMPLE, random.Random(0))
        indices = [csr.index_of[node] for node in nodes]

        per_source_seconds = float("inf")
        batched_seconds = float("inf")
        for _ in range(2):
            started = time.perf_counter()
            per_source = _per_source_diameter(csr, indices)
            per_source_seconds = min(per_source_seconds, time.perf_counter() - started)
            started = time.perf_counter()
            batched = fast.diameter(
                graph, sample_size=DIAMETER_SAMPLE, rng=random.Random(0), connected=True
            )
            batched_seconds = min(batched_seconds, time.perf_counter() - started)
            assert batched == per_source
        speedup = per_source_seconds / batched_seconds if batched_seconds else float("inf")
        rows.append(
            {
                "n": n,
                "k": K,
                "sources": len(indices),
                "per_source_seconds": round(per_source_seconds, 6),
                "batched_seconds": round(batched_seconds, 6),
                "speedup": round(speedup, 2),
            }
        )
        emit(
            f"batched  n={n:>7,}  per-source={per_source_seconds:8.4f}s  "
            f"batched={batched_seconds:8.4f}s  speedup={speedup:7.1f}x"
        )
    return rows


def _soap_campaign_once(attack_cls, backend_name: str, n: int, seed: int = 3) -> float:
    """One timed SOAP campaign + benign summary on a fresh overlay."""
    from repro.core.ddsr import DDSROverlay
    from repro.graphs import backend

    with backend.using(backend_name):
        overlay = DDSROverlay.k_regular(n, K, seed=seed)
        chooser = random.Random(seed + 13)
        compromised = chooser.sample(overlay.nodes(), 1)
        attack = attack_cls(rng=random.Random(seed + 17))
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            started = time.perf_counter()
            result = attack.run_campaign(overlay, compromised)
            summary = attack_cls.benign_subgraph_components(overlay)
            elapsed = time.perf_counter() - started
        finally:
            if gc_was_enabled:
                gc.enable()
            gc.collect()
    assert result.neutralized and summary["nontrivial_components"] == 0
    return elapsed


def run_soap_benchmark(n=SOAP_N, *, repeats=SOAP_REPEATS, emit=print) -> dict:
    """Original SOAP implementation vs the vectorized campaign, full run."""
    from repro.adversary.soap import ReferenceSoapAttack, SoapAttack

    reference_seconds = min(
        _soap_campaign_once(ReferenceSoapAttack, "python", n) for _ in range(repeats)
    )
    fast_seconds = min(
        _soap_campaign_once(SoapAttack, "fast", n) for _ in range(repeats)
    )
    speedup = reference_seconds / fast_seconds if fast_seconds else float("inf")
    row = {
        "n": n,
        "k": K,
        "repeats": repeats,
        "workload": "full containment campaign + benign-subgraph summary "
        "(overlay construction excluded; identical on both sides)",
        "reference_seconds": round(reference_seconds, 6),
        "fast_seconds": round(fast_seconds, 6),
        "speedup": round(speedup, 2),
    }
    emit(
        f"soap     n={n:>7,}  reference={reference_seconds:8.3f}s  "
        f"fast={fast_seconds:8.4f}s  speedup={speedup:7.1f}x"
    )
    return row


def run_benchmark(sizes=SIZES, *, emit=print) -> dict:
    """All three workloads; returns this PR's trajectory entry."""
    return {
        "pr": PR_LABEL,
        "workload": "connected_components + sampled diameter "
        f"(sample={DIAMETER_SAMPLE}) on k-regular graphs (k={K}); "
        "batched multi-source BFS; SOAP campaign",
        "timing": "best-of-repeats wall clock; fast timings include the "
        "UndirectedGraph->CSR conversion (cold cache); SOAP timed with GC off",
        "rows": run_kernel_benchmark(sizes, emit=emit),
        "batched_bfs": run_batched_bfs_benchmark(emit=emit),
        "soap_campaign": run_soap_benchmark(emit=emit),
    }


def write_report(entry: dict, path: Path = OUTPUT) -> None:
    """Append this PR's entry to the benchmark trajectory (migrating v1)."""
    runs = []
    if path.exists():
        previous = json.loads(path.read_text())
        if "runs" in previous:
            runs = previous["runs"]
        else:  # v1 layout: a single flat report from PR 2
            previous.pop("benchmark", None)
            previous["pr"] = "PR 2"
            runs = [previous]
    runs = [run for run in runs if run.get("pr") != entry.get("pr")]
    runs.append(entry)
    report = {"benchmark": "graph_kernels", "runs": runs}
    path.write_text(json.dumps(report, indent=2) + "\n")


def test_graph_kernel_speedup(benchmark):
    """All three speedup floors hold; append the trajectory entry."""
    from conftest import emit

    entry = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    write_report(entry)
    emit(
        "Graph-kernel backends — python vs fast (CSR), batched BFS, SOAP",
        json.dumps(entry, indent=2) + f"\nappended to {OUTPUT}",
    )
    at_20k = next(row for row in entry["rows"] if row["n"] == 20_000)
    assert at_20k["speedup"] >= SPEEDUP_FLOOR_AT_20K, (
        f"fast backend only {at_20k['speedup']}x at n=20k "
        f"(floor {SPEEDUP_FLOOR_AT_20K}x)"
    )
    # Every size must still benefit, even where fixed numpy costs loom larger.
    assert all(row["speedup"] > 1.0 for row in entry["rows"])
    batched_at_100k = next(
        row for row in entry["batched_bfs"] if row["n"] == 100_000
    )
    assert batched_at_100k["speedup"] >= BATCHED_SPEEDUP_FLOOR_AT_100K, (
        f"batched BFS only {batched_at_100k['speedup']}x at n=100k "
        f"(floor {BATCHED_SPEEDUP_FLOOR_AT_100K}x)"
    )
    soap = entry["soap_campaign"]
    assert soap["speedup"] >= SOAP_SPEEDUP_FLOOR, (
        f"vectorized SOAP campaign only {soap['speedup']}x at n={soap['n']} "
        f"(floor {SOAP_SPEEDUP_FLOOR}x)"
    )


def main(argv=None) -> int:
    """CLI smoke mode: bounded sizes and a wall-clock sanity ceiling."""
    import argparse
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", default="1000", help="comma-separated graph sizes (default: 1000)"
    )
    parser.add_argument(
        "--soap-n",
        type=int,
        default=None,
        help="also smoke the SOAP-campaign workload at this size",
    )
    parser.add_argument(
        "--skip-batched",
        action="store_true",
        help="skip the batched multi-source BFS workload",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="fail when the whole run exceeds this wall-clock bound",
    )
    parser.add_argument(
        "--json", action="store_true", help="also append to BENCH_graph_kernels.json"
    )
    args = parser.parse_args(argv)
    sizes = tuple(int(size) for size in args.sizes.split(","))

    started = time.perf_counter()
    # CLI runs are smoke-sized; label them so --json can never replace the
    # canonical full-scale entry the pytest benchmark appends for this PR.
    entry = {
        "pr": f"{PR_LABEL} (cli smoke)",
        "rows": run_kernel_benchmark(sizes),
    }
    if not args.skip_batched:
        entry["batched_bfs"] = run_batched_bfs_benchmark(sizes=sizes)
    if args.soap_n:
        entry["soap_campaign"] = run_soap_benchmark(args.soap_n, repeats=1)
    elapsed = time.perf_counter() - started
    if args.json:
        write_report(entry)
        print(f"appended: {OUTPUT}")
    print(f"total: {elapsed:.2f}s")
    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(f"FAIL: exceeded --max-seconds {args.max_seconds}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
