"""Differential tests: the vectorized SOAP campaign vs the reference oracle.

:class:`~repro.adversary.soap.SoapAttack` replaces the original containment
loops with batched bookkeeping (incremental benign-peer views fed by pruning
victims, degree buckets, a deque FIFO, id-indexed flag arrays) and routes the
benign-subgraph summary over the CSR backend.
:class:`~repro.adversary.soap.ReferenceSoapAttack` preserves the original
implementation end to end.  Every test here runs both against identically
seeded overlays and asserts **equality of the full result objects** -- per
node results, timelines, rng-consuming tie-breaks, overlay stats, and the
final graph itself.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary.soap import ReferenceSoapAttack, SoapAttack
from repro.core.ddsr import DDSRConfig, DDSROverlay, PruningPolicy
from repro.defenses.pow import PowAdmission, PowParameters
from repro.defenses.rate_limit import RateLimitedAdmission, RateLimitParameters
from repro.graphs import backend


def _campaign(cls, *, n, k, seed, attack_kwargs=None, campaign_kwargs=None):
    overlay = DDSROverlay.k_regular(n, k, seed=seed)
    chooser = random.Random(seed + 13)
    compromised = chooser.sample(overlay.nodes(), 2)
    attack = cls(rng=random.Random(seed + 17), **(attack_kwargs or {}))
    result = attack.run_campaign(overlay, compromised, **(campaign_kwargs or {}))
    return overlay, attack, result


def _assert_overlays_identical(reference, vectorized):
    assert sorted(map(repr, reference.graph.nodes())) == sorted(
        map(repr, vectorized.graph.nodes())
    )
    assert set(map(frozenset, reference.graph.edges())) == set(
        map(frozenset, vectorized.graph.edges())
    )
    assert reference.stats.as_dict() == vectorized.stats.as_dict()


@pytest.mark.parametrize("n,k,seed", [(60, 6, 0), (120, 10, 7), (200, 8, 42)])
def test_campaign_identical_to_reference(n, k, seed):
    ref_overlay, ref_attack, ref = _campaign(ReferenceSoapAttack, n=n, k=k, seed=seed)
    opt_overlay, opt_attack, opt = _campaign(SoapAttack, n=n, k=k, seed=seed)
    assert opt == ref
    assert opt_attack.rng.getstate() == ref_attack.rng.getstate()
    _assert_overlays_identical(ref_overlay, opt_overlay)


def test_campaign_identical_under_pow_admission():
    admission = dict(
        attack_kwargs={
            "admission": PowAdmission(
                PowParameters(base_work=1.0, escalation_factor=2.0, work_budget_per_clone=8.0)
            )
        }
    )
    _, _, ref = _campaign(ReferenceSoapAttack, n=80, k=8, seed=3, **admission)
    admission["attack_kwargs"]["admission"] = PowAdmission(
        PowParameters(base_work=1.0, escalation_factor=2.0, work_budget_per_clone=8.0)
    )
    _, _, opt = _campaign(SoapAttack, n=80, k=8, seed=3, **admission)
    assert opt == ref
    assert opt.requests_rejected == ref.requests_rejected > 0


def test_campaign_identical_under_rate_limit():
    def kwargs():
        return {
            "attack_kwargs": {
                "admission": RateLimitedAdmission(
                    RateLimitParameters(
                        base_delay=30.0, per_degree_delay=20.0, max_acceptable_delay=400.0
                    )
                ),
                "time_budget": 30_000.0,
            }
        }

    _, _, ref = _campaign(ReferenceSoapAttack, n=60, k=6, seed=9, **kwargs())
    _, _, opt = _campaign(SoapAttack, n=60, k=6, seed=9, **kwargs())
    assert opt == ref


def test_campaign_identical_with_max_targets_and_budgets():
    extras = dict(campaign_kwargs={"max_targets": 11})
    _, _, ref = _campaign(
        ReferenceSoapAttack,
        n=90,
        k=8,
        seed=5,
        attack_kwargs={"work_budget": 40.0, "max_clones_per_node": 25},
        **extras,
    )
    _, _, opt = _campaign(
        SoapAttack,
        n=90,
        k=8,
        seed=5,
        attack_kwargs={"work_budget": 40.0, "max_clones_per_node": 25},
        **extras,
    )
    assert opt == ref


@pytest.mark.parametrize(
    "policy",
    [
        PruningPolicy.HIGHEST_DEGREE,
        PruningPolicy.LOWEST_DEGREE,
        PruningPolicy.RANDOM,
        PruningPolicy.NONE,
    ],
)
def test_contain_node_identical_across_pruning_policies(policy):
    """The inline bucket pruner (and its general-path fallback) match exactly."""

    def build():
        config = DDSRConfig(d_min=3, d_max=8, pruning_policy=policy)
        return DDSROverlay.k_regular(40, 6, config=config, seed=21)

    ref_overlay = build()
    opt_overlay = build()
    ref_attack = ReferenceSoapAttack(rng=random.Random(31))
    opt_attack = SoapAttack(rng=random.Random(31))
    for target in list(ref_overlay.nodes())[:10]:
        ref = ref_attack.contain_node(ref_overlay, target)
        opt = opt_attack.contain_node(opt_overlay, target)
        assert opt == ref
    _assert_overlays_identical(ref_overlay, opt_overlay)


@pytest.mark.parametrize(
    "policy",
    [
        PruningPolicy.HIGHEST_DEGREE,
        PruningPolicy.LOWEST_DEGREE,
        PruningPolicy.RANDOM,
        PruningPolicy.NONE,
    ],
)
def test_reference_pruner_anchored_to_ddsr(policy):
    """The oracle's pruning replica must track the *real* DDSR pruner.

    The differential tests compare ``SoapAttack`` against
    ``ReferenceSoapAttack``, whose ``_enforce_degree_bound_original`` (and,
    transitively, the vectorized attack's inline bucket pruner) re-implement
    ``DDSROverlay.enforce_degree_bound``.  This anchor catches drift: any
    change to DDSR's victim selection, stats accounting or forgetting rule
    must show up as a divergence here.
    """

    def build():
        config = DDSRConfig(d_min=3, d_max=6, pruning_policy=policy)
        overlay = DDSROverlay.k_regular(30, 5, config=config, seed=51)
        rng = random.Random(52)
        # Push several nodes over the bound the way SOAP does: extra edges.
        for node in list(overlay.nodes())[:8]:
            for _ in range(4):
                other = rng.choice([n for n in overlay.nodes() if n != node])
                overlay.graph.add_edge(node, other)
        overlay.rng = random.Random(53)
        return overlay

    ddsr_overlay = build()
    replica_overlay = build()
    for node in list(ddsr_overlay.nodes())[:8]:
        removed = ddsr_overlay.enforce_degree_bound(node)
        replica_removed = ReferenceSoapAttack._enforce_degree_bound_original(
            replica_overlay, node
        )
        assert replica_removed == removed
    _assert_overlays_identical(ddsr_overlay, replica_overlay)
    assert ddsr_overlay.rng.getstate() == replica_overlay.rng.getstate()


def test_inline_clone_minting_matches_new_clone():
    """contain_node inlines the clone-id format; it must track ``_new_clone``.

    A drift between the two would otherwise surface as a confusing overlay
    mismatch in the differential tests; this pins the format directly.
    """
    overlay = DDSROverlay.k_regular(12, 4, seed=61)
    attack = SoapAttack(rng=random.Random(62))
    attack.contain_node(overlay, overlay.nodes()[0])
    minted = sorted(node for node in overlay.nodes() if isinstance(node, str))
    assert minted, "containment should have minted clones"
    oracle = SoapAttack(rng=random.Random(0))
    expected = [oracle._new_clone() for _ in minted]
    assert minted == expected


def test_contain_node_missing_target_matches_reference():
    overlay = DDSROverlay.k_regular(20, 4, seed=1)
    ref = ReferenceSoapAttack(rng=random.Random(2)).contain_node(overlay, "ghost")
    opt = SoapAttack(rng=random.Random(2)).contain_node(overlay, "ghost")
    assert opt == ref
    assert not opt.contained


@pytest.mark.parametrize("graph_backend", ["python", "fast"])
def test_benign_subgraph_components_identical(graph_backend):
    """The induced CSR summary equals the subgraph walk on finished overlays."""
    pytest.importorskip("numpy")
    overlay, _, _ = _campaign(SoapAttack, n=90, k=8, seed=11)
    with backend.using("python"):
        reference = SoapAttack.benign_subgraph_components(overlay)
    with backend.using(graph_backend):
        assert SoapAttack.benign_subgraph_components(overlay) == reference


def test_benign_subgraph_components_mid_campaign():
    pytest.importorskip("numpy")
    overlay = DDSROverlay.k_regular(70, 6, seed=13)
    attack = SoapAttack(rng=random.Random(14))
    attack.run_campaign(overlay, [overlay.nodes()[0]], max_targets=8)
    with backend.using("python"):
        reference = SoapAttack.benign_subgraph_components(overlay)
    with backend.using("fast"):
        assert SoapAttack.benign_subgraph_components(overlay) == reference
