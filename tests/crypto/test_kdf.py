"""Tests for key derivation (address-rotation recipe)."""

import pytest

from repro.crypto.kdf import (
    combine,
    derive_group_key,
    derive_period_key,
    hash_chain,
    hmac_tag,
    kdf,
    period_token,
    verify_hmac,
)
from repro.crypto.keys import KeyPair


class TestKdf:
    def test_deterministic(self):
        assert kdf("ctx", b"a", b"b") == kdf("ctx", b"a", b"b")

    def test_domain_separation(self):
        assert kdf("ctx1", b"a") != kdf("ctx2", b"a")

    def test_length_framing_prevents_ambiguity(self):
        # (b"ab", b"c") must not collide with (b"a", b"bc").
        assert kdf("ctx", b"ab", b"c") != kdf("ctx", b"a", b"bc")

    def test_output_is_32_bytes(self):
        assert len(kdf("ctx", b"data")) == 32


class TestPeriodKeys:
    def test_period_token_changes_with_period(self):
        assert period_token(b"botkey", 0) != period_token(b"botkey", 1)

    def test_period_token_rejects_negative(self):
        with pytest.raises(ValueError):
            period_token(b"botkey", -1)

    def test_bot_and_cc_derive_identical_keypairs(self):
        """Both sides of the shared secret agree on every period's keypair."""
        botmaster = KeyPair.from_seed(b"cc")
        bot_key = b"bot-key-material"
        for period in range(5):
            bot_side = derive_period_key(botmaster.public, bot_key, period)
            cc_side = derive_period_key(botmaster.public, bot_key, period)
            assert bot_side == cc_side

    def test_period_keys_differ_across_periods(self):
        botmaster = KeyPair.from_seed(b"cc")
        keys = {derive_period_key(botmaster.public, b"k", period).public.material for period in range(10)}
        assert len(keys) == 10

    def test_period_keys_differ_across_bots(self):
        botmaster = KeyPair.from_seed(b"cc")
        a = derive_period_key(botmaster.public, b"bot-a", 3)
        b = derive_period_key(botmaster.public, b"bot-b", 3)
        assert a != b

    def test_group_key_is_per_group(self):
        botmaster = KeyPair.from_seed(b"cc")
        assert derive_group_key(botmaster.private, "ddos") != derive_group_key(botmaster.private, "spam")


class TestHashChainAndHmac:
    def test_hash_chain_length(self):
        chain = hash_chain(b"seed", 5)
        assert len(chain) == 5
        assert len(set(chain)) == 5

    def test_hash_chain_zero_length(self):
        assert hash_chain(b"seed", 0) == []

    def test_hash_chain_negative_rejected(self):
        with pytest.raises(ValueError):
            hash_chain(b"seed", -1)

    def test_hash_chain_is_forward_linked(self):
        import hashlib

        chain = hash_chain(b"seed", 3)
        assert chain[1] == hashlib.sha256(chain[0]).digest()

    def test_hmac_roundtrip(self):
        tag = hmac_tag(b"key", b"message")
        assert verify_hmac(b"key", b"message", tag)
        assert not verify_hmac(b"key", b"tampered", tag)
        assert not verify_hmac(b"other", b"message", tag)

    def test_combine_is_order_sensitive(self):
        assert combine([b"a", b"b"]) != combine([b"b", b"a"])
