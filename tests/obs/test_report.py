"""Report rendering, stable serialization, and schema validation."""

from __future__ import annotations

import json

import pytest

from repro.obs.report import (
    SCHEMA_ID,
    dumps_report,
    format_report,
    load_report,
    render_report,
    write_report,
)
from repro.obs.schema import SchemaError, load_schema, main as schema_main, validate_report
from repro.obs.telemetry import Collector


def _sample_collector() -> Collector:
    c = Collector(label="unit-test")
    c.count("wave.levels", 12)
    c.count("wave.dispatch.dense", 9)
    c.count("wave.dispatch.pull", 3)
    c.gauge("wave.popcount_backend", "native")
    c.record_span("runner.unit", 0.5)
    c.record_span("runner.unit", 1.5)
    c.section("sim", {"series": {"population": {"points": 4}}})
    return c


class TestRenderReport:
    def test_shape_and_schema_id(self):
        report = render_report(_sample_collector(), meta={"scenario": "s"})
        assert report["schema"] == SCHEMA_ID
        assert report["label"] == "unit-test"
        assert report["meta"] == {"scenario": "s"}
        assert report["counters"]["wave.levels"] == 12
        assert report["gauges"]["wave.popcount_backend"] == "native"
        assert report["sections"]["sim"]["series"]["population"]["points"] == 4

    def test_spans_gain_mean(self):
        report = render_report(_sample_collector())
        unit = report["spans"]["runner.unit"]
        assert unit["count"] == 2
        assert unit["mean_s"] == pytest.approx(1.0)
        assert unit["max_s"] == pytest.approx(1.5)

    def test_accepts_raw_snapshot(self):
        snapshot = _sample_collector().snapshot()
        report = render_report(snapshot)
        assert report["counters"]["wave.dispatch.dense"] == 9

    def test_dumps_is_deterministic(self):
        a = dumps_report(render_report(_sample_collector()))
        b = dumps_report(render_report(_sample_collector()))
        assert a == b
        assert a.endswith("\n")
        assert json.loads(a)["schema"] == SCHEMA_ID

    def test_write_load_round_trip(self, tmp_path):
        report = render_report(_sample_collector(), meta={"seed": 0})
        path = write_report(tmp_path / "nested" / "report.json", report)
        assert load_report(path) == report

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"schema": "someone-else/v9"}', encoding="utf-8")
        with pytest.raises(ValueError, match="not a repro.obs/report.v1"):
            load_report(path)
        path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(ValueError, match="not a telemetry report"):
            load_report(path)


class TestFormatReport:
    def test_summary_mentions_everything(self):
        text = format_report(render_report(_sample_collector(), meta={"trials": 2}))
        assert "label=unit-test" in text
        assert "meta.trials = 2" in text
        assert "runner.unit" in text
        assert "[wave]" in text  # counters grouped by subsystem
        assert "wave.dispatch.dense" in text
        assert "wave.popcount_backend" in text
        assert "sections: sim" in text

    def test_spans_sorted_by_total_time(self):
        c = Collector()
        c.record_span("small", 0.1)
        c.record_span("big", 9.0)
        text = format_report(render_report(c))
        assert text.index("big") < text.index("small")


class TestSchemaValidation:
    def test_rendered_report_is_valid(self):
        validate_report(render_report(_sample_collector(), meta={"workers": 2}))

    def test_empty_collector_report_is_valid(self):
        validate_report(render_report(Collector()))

    def test_missing_required_key_fails(self):
        report = render_report(_sample_collector())
        del report["counters"]
        with pytest.raises(SchemaError, match="counters"):
            validate_report(report)

    def test_wrong_schema_const_fails(self):
        report = render_report(_sample_collector())
        report["schema"] = "repro.obs/report.v2"
        with pytest.raises(SchemaError, match="schema"):
            validate_report(report)

    def test_non_integer_counter_fails(self):
        report = render_report(_sample_collector())
        report["counters"]["wave.levels"] = 1.5
        with pytest.raises(SchemaError, match="wave.levels"):
            validate_report(report)

    def test_unexpected_top_level_key_fails(self):
        report = render_report(_sample_collector())
        report["extra"] = 1
        with pytest.raises(SchemaError, match="extra"):
            validate_report(report)

    def test_negative_span_time_fails(self):
        report = render_report(_sample_collector())
        report["spans"]["runner.unit"]["total_s"] = -1.0
        with pytest.raises(SchemaError, match="minimum"):
            validate_report(report)

    def test_span_missing_stat_fails(self):
        report = render_report(_sample_collector())
        del report["spans"]["runner.unit"]["mean_s"]
        with pytest.raises(SchemaError, match="mean_s"):
            validate_report(report)

    def test_checked_in_schema_loads(self):
        schema = load_schema()
        assert schema["properties"]["schema"]["const"] == SCHEMA_ID

    def test_crash_safety_counters_and_journal_meta_validate(self):
        """The fault/retry/degradation counters and journal metadata are
        add-only: a report carrying all of them stays schema-valid."""
        c = Collector(label="chaos")
        for name in (
            "runner.fault.injected",
            "runner.watchdog.kill",
            "runner.retry",
            "runner.degraded_serial",
            "runner.pool.respawn",
            "runner.cache.write_failed",
        ):
            c.count(name, 2)
        report = render_report(
            c,
            meta={
                "journal": {
                    "path": "/tmp/c.jsonl",
                    "resumed": True,
                    "replayed": 5,
                    "units": 8,
                },
                "injected_faults": "pool.task=kill@2",
            },
        )
        validate_report(report)

    @pytest.mark.parametrize(
        "counter",
        ["runner.watchdog.kill", "runner.retry", "runner.degraded_serial"],
    )
    def test_non_integer_crash_safety_counter_fails(self, counter):
        c = Collector()
        c.count(counter)
        report = render_report(c)
        report["counters"][counter] = 0.5
        with pytest.raises(SchemaError, match=counter.replace(".", r"\.")):
            validate_report(report)

    def test_cli_validator_exit_codes(self, tmp_path, capsys):
        good = write_report(tmp_path / "good.json", render_report(Collector()))
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "repro.obs/report.v1"}', encoding="utf-8")
        assert schema_main([str(good)]) == 0
        assert "valid" in capsys.readouterr().out
        assert schema_main([str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err
        assert schema_main([]) == 2
