"""Decorator-based scenario registry.

A *scenario* is a plain function ``fn(*, seed, **params) -> Mapping[str, float]``
returning flat scalar metrics.  Registering it gives it a stable name the CLI,
the cache and the process-pool workers can all resolve:

    @scenario(
        name="soap-campaign",
        description="SOAP clone campaign against a fresh k-regular overlay",
        defaults={"n": 300, "k": 10},
    )
    def soap_campaign(*, seed: int, n: int, k: int) -> dict:
        ...

The built-in scenarios live in :mod:`repro.runner.scenarios` and are imported
lazily on first lookup, so importing light runner modules never drags in the
whole analysis stack (and cannot create an import cycle through
``repro.analysis``).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.runner.grid import check_params

MetricFn = Callable[..., Mapping[str, float]]

_BUILTIN_MODULE = "repro.runner.scenarios"


class ScenarioError(LookupError):
    """Raised when a scenario name cannot be resolved."""


@dataclass(frozen=True)
class Scenario:
    """One registered scenario: the function plus its metadata."""

    name: str
    fn: MetricFn
    description: str = ""
    defaults: Mapping[str, Any] = field(default_factory=dict)
    #: Bumped when the implementation changes in a result-affecting way; part
    #: of every cache key, so stale cached results are never served.
    version: str = "1"
    #: Module to import so process-pool workers can resolve the function.
    module: str = ""
    #: True for scenarios composing several subsystems (attack + defense +
    #: workload) that the flat ``run_*`` experiment API could not express.
    composed: bool = False
    #: Cap on work units per process-pool submission.  Heavy at-scale
    #: scenarios set ``1`` so a trial grid spreads across every worker
    #: instead of riding one shard; ``None`` keeps the executor default.
    shard_size: Optional[int] = None

    def accepted_params(self) -> Optional[set]:
        """Parameter names the function accepts, or ``None`` for ``**kwargs``."""
        import inspect

        parameters = inspect.signature(self.fn).parameters.values()
        if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters):
            return None
        return {p.name for p in parameters if p.name != "seed"}

    def check_params(self, names: "set[str]") -> None:
        """Raise a descriptive error for parameter names the fn would reject."""
        accepted = self.accepted_params()
        if accepted is None:
            return
        unknown = set(names) - accepted
        if unknown:
            raise ValueError(
                f"scenario {self.name!r} does not accept parameter(s) "
                f"{sorted(unknown)}; accepted: {sorted(accepted)}"
            )

    def call(self, *, seed: int, **params: Any) -> Dict[str, float]:
        """Invoke with defaults filled in; validate the flat metric mapping."""
        merged = dict(self.defaults)
        merged.update(params)
        result = self.fn(seed=seed, **merged)
        if not isinstance(result, Mapping):
            raise TypeError(
                f"scenario {self.name!r} must return a mapping of metrics, "
                f"got {type(result).__name__}"
            )
        metrics: Dict[str, float] = {}
        for key, value in result.items():
            if not isinstance(value, (int, float, bool)):
                raise TypeError(
                    f"scenario {self.name!r} metric {key!r} must be numeric, "
                    f"got {type(value).__name__}"
                )
            metrics[str(key)] = float(value)
        return metrics


_REGISTRY: Dict[str, Scenario] = {}
_builtins_loaded = False


def scenario(
    *,
    name: str,
    description: str = "",
    defaults: Optional[Mapping[str, Any]] = None,
    version: str = "1",
    composed: bool = False,
    shard_size: Optional[int] = None,
) -> Callable[[MetricFn], MetricFn]:
    """Register the decorated function as a named scenario."""
    defaults = dict(defaults or {})
    check_params(defaults)
    if shard_size is not None and shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")

    def decorator(fn: MetricFn) -> MetricFn:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} is already registered")
        doc_first_line = (fn.__doc__ or "").strip().splitlines()
        _REGISTRY[name] = Scenario(
            name=name,
            fn=fn,
            description=description or (doc_first_line[0] if doc_first_line else ""),
            defaults=defaults,
            version=version,
            module=fn.__module__,
            composed=composed,
            shard_size=shard_size,
        )
        return fn

    return decorator


def _ensure_builtins() -> None:
    global _builtins_loaded
    if not _builtins_loaded:
        _builtins_loaded = True
        importlib.import_module(_BUILTIN_MODULE)


def get_scenario(name: str) -> Scenario:
    """Resolve a scenario by name, importing the built-in module if needed."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise ScenarioError(f"unknown scenario {name!r}; known: {known}") from None


def resolve_for_worker(name: str, module: str) -> Scenario:
    """Resolve a scenario inside a pool worker, importing its home module.

    Under the default ``fork`` start method workers inherit the parent's
    registry; under ``spawn`` they start clean, so the defining module is
    imported first (``__main__``-defined scenarios then require ``fork``).
    """
    _ensure_builtins()
    if name not in _REGISTRY and module and module != "__main__":
        try:
            importlib.import_module(module)
        except ImportError as error:
            raise ScenarioError(
                f"cannot import module {module!r} defining scenario {name!r} "
                f"in this worker: {error}"
            ) from error
    return get_scenario(name)


def unregister(name: str) -> None:
    """Remove a scenario registered at runtime (test helper).

    Removing a *built-in* is permanent for the process: the scenarios module
    is already imported, so its ``@scenario`` decorators will not run again.
    """
    _REGISTRY.pop(name, None)


def scenario_names(*, composed_only: bool = False) -> List[str]:
    """Sorted names of every registered scenario."""
    _ensure_builtins()
    return sorted(
        name for name, sc in _REGISTRY.items() if sc.composed or not composed_only
    )


def all_scenarios() -> List[Scenario]:
    """Every registered scenario, sorted by name."""
    _ensure_builtins()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]
