"""HSDir interception (paper section VI-A).

Anyone who knows a hidden service's onion address can compute which relays
will be responsible for its descriptors at a given time.  A defender can
therefore craft relay identity keys whose fingerprints land immediately after
the descriptor IDs on the ring, wait the 25 hours needed to earn the HSDir
flag, and then refuse to serve the descriptors -- denying access to the bot.

The paper also lists the limits of this mitigation, which the model exposes:

* the defender needs the onion address *in advance* and 25+ hours of lead
  time, but bots rotate addresses every period, so interception must be
  re-planned for every bot and every period;
* each bot needs up to ``REPLICAS * SPREAD`` (six) crafted relays;
* injected relays disrupt the rest of the Tor network (tracked as a simple
  count of adversarial relays serving real descriptors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.tor.hsdir import REPLICAS, SPREAD, descriptor_id, responsible_hsdirs
from repro.tor.network import TorNetwork
from repro.tor.onion_address import OnionAddress
from repro.tor.relay import HSDIR_UPTIME_HOURS


@dataclass
class InterceptionResult:
    """Outcome of attempting to intercept one onion address."""

    target: str
    relays_injected: int
    lead_time_hours: float
    responsible_controlled: int
    responsible_total: int
    denial_achieved: bool

    @property
    def control_fraction(self) -> float:
        """Fraction of the target's responsible HSDirs under defender control."""
        if self.responsible_total == 0:
            return 0.0
        return self.responsible_controlled / self.responsible_total


@dataclass
class HsdirInterception:
    """Plans and executes HSDir interception against known onion addresses."""

    network: TorNetwork
    injected_fingerprints: List[bytes] = field(default_factory=list)

    # ------------------------------------------------------------------
    def plan_fingerprints(self, target: OnionAddress | str, at_time: Optional[float] = None) -> List[bytes]:
        """Fingerprints a defender should occupy to own every replica of ``target``.

        For each replica the defender needs ``SPREAD`` consecutive positions
        right after the descriptor ID; we derive them deterministically by
        incrementing the descriptor ID, which guarantees they sort directly
        behind it and ahead of any existing HSDir.
        """
        address = OnionAddress(str(target)) if not isinstance(target, OnionAddress) else target
        when = self.network.simulator.now if at_time is None else at_time
        identifier = address.identifier()
        fingerprints: List[bytes] = []
        for replica in range(REPLICAS):
            point = descriptor_id(identifier, when, replica)
            for offset in range(1, SPREAD + 1):
                value = (int.from_bytes(point, "big") + offset) % (1 << (8 * len(point)))
                fingerprints.append(value.to_bytes(len(point), "big"))
        return fingerprints

    def inject_relays(self, target: OnionAddress | str, at_time: Optional[float] = None) -> int:
        """Add adversarial relays positioned for ``target`` (not yet HSDirs).

        The relays join *now*; they only become useful once they have been up
        for 25 hours and a consensus has been published -- the caller advances
        simulated time (see :meth:`wait_for_flags`) to model the lead time.
        """
        fingerprints = self.plan_fingerprints(target, at_time)
        injected = 0
        for fingerprint in fingerprints:
            relay = self.network.add_relay(
                nickname=f"interceptor{len(self.injected_fingerprints) + injected:04d}",
                adversarial=True,
                fingerprint_seed=b"interceptor:" + fingerprint,
            )
            # Pin the crafted fingerprint: relays are keyed objects, so we
            # override the derived fingerprint by registering a shadow entry in
            # the authority keyed by the crafted bytes.  Simpler and exact: we
            # remove and re-add with a keypair whose fingerprint *is* crafted.
            self.network.authority.deregister(relay.fingerprint)
            relay.keypair = _FingerprintPinnedKeypair(fingerprint, relay.keypair)
            self.network.authority.register(relay)
            self.injected_fingerprints.append(fingerprint)
            injected += 1
        return injected

    def wait_for_flags(self) -> float:
        """Advance simulated time until the injected relays hold the HSDir flag.

        Returns the lead time (in hours) that elapsed -- at least the 25-hour
        uptime requirement plus the wait for the next consensus.
        """
        start = self.network.simulator.now
        lead_seconds = HSDIR_UPTIME_HOURS * 3600.0 + 3600.0
        self.network.simulator.run_for(lead_seconds)
        self.network.publish_consensus()
        return (self.network.simulator.now - start) / 3600.0

    def activate_censorship(self) -> None:
        """Make every injected relay refuse to serve stored descriptors."""
        for fingerprint in self.injected_fingerprints:
            self.network.set_censoring(fingerprint, True)

    # ------------------------------------------------------------------
    def intercept(self, target: OnionAddress | str) -> InterceptionResult:
        """Full interception flow: plan, inject, wait, censor, measure.

        Descriptor IDs move every 24 hours, so the fingerprints are planned for
        the time at which the injected relays will actually hold the HSDir
        flag (now + lead time), not for the current period.
        """
        address = OnionAddress(str(target)) if not isinstance(target, OnionAddress) else target
        lead_seconds = HSDIR_UPTIME_HOURS * 3600.0 + 3600.0
        injected = self.inject_relays(address, at_time=self.network.simulator.now + lead_seconds)
        lead_hours = self.wait_for_flags()
        self.activate_censorship()
        return self.measure(address, injected=injected, lead_hours=lead_hours)

    def measure(
        self,
        target: OnionAddress | str,
        *,
        injected: int = 0,
        lead_hours: float = 0.0,
    ) -> InterceptionResult:
        """Evaluate how much of the target's HSDir set the defender controls now."""
        address = OnionAddress(str(target)) if not isinstance(target, OnionAddress) else target
        responsible = responsible_hsdirs(
            self.network.consensus, address.identifier(), self.network.simulator.now
        )
        controlled = sum(1 for entry in responsible if entry.is_adversarial)
        denial = False
        if responsible:
            try:
                self.network.lookup_descriptor(address)
            except Exception:
                denial = True
        return InterceptionResult(
            target=str(address),
            relays_injected=injected,
            lead_time_hours=lead_hours,
            responsible_controlled=controlled,
            responsible_total=len(responsible),
            denial_achieved=denial,
        )

    def collateral_relays(self) -> int:
        """How many adversarial relays the defender had to run."""
        return len(self.injected_fingerprints)


class _FingerprintPinnedKeypair:
    """A keypair wrapper whose public fingerprint is pinned to crafted bytes.

    The relay's behaviour in the simulation only depends on its fingerprint,
    so pinning it is sufficient to model "finding the right public key" (the
    paper cites Shallot-style brute-forcing taking days of computation; we do
    not reproduce the brute force itself, only its result, and we account for
    the 25-hour flag delay which dominates the lead time anyway).
    """

    def __init__(self, fingerprint: bytes, inner) -> None:
        self._fingerprint = fingerprint
        self._inner = inner
        self.private = inner.private
        self.public = inner.public

    def public_fingerprint(self, length: int = 20) -> bytes:
        """The crafted fingerprint (padded/truncated to ``length`` bytes)."""
        if len(self._fingerprint) >= length:
            return self._fingerprint[:length]
        return self._fingerprint + b"\x00" * (length - len(self._fingerprint))


def interception_cost_estimate(bots: int, periods: int) -> Dict[str, float]:
    """Back-of-the-envelope defender cost of HSDir interception at scale.

    Each bot needs ``REPLICAS * SPREAD`` crafted relays per rotation period and
    25+ hours of lead time -- which is longer than the rotation period itself
    when bots rotate daily, the core reason the paper judges this mitigation
    insufficient against OnionBots.
    """
    relays_needed = bots * REPLICAS * SPREAD * periods
    return {
        "bots": float(bots),
        "periods": float(periods),
        "relays_needed": float(relays_needed),
        "lead_time_hours": HSDIR_UPTIME_HOURS,
        "lead_exceeds_daily_rotation": float(HSDIR_UPTIME_HOURS > 24.0),
    }
