"""Experiment runners reproducing every evaluation artifact of the paper.

Each ``run_*`` function regenerates the data behind one table or figure.  The
default parameters are sized to finish in seconds on a laptop; pass the
paper's parameters (``n=5000`` or ``15000``, ``fractions`` up to 0.95, etc.)
to reproduce the original scale.  Shapes -- which curve wins, where knees and
crossovers sit, the ~40 % partition threshold -- are preserved at the smaller
defaults; see EXPERIMENTS.md for measured-vs-paper comparisons.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adversary.soap import SoapAttack, SoapCampaignResult
from repro.baselines.normal_graph import NormalOverlay
from repro.core.botnet import OnionBotnet
from repro.core.ddsr import DDSRConfig, DDSROverlay, PruningPolicy, RepairPolicy
from repro.defenses.hsdir_takeover import HsdirInterception, InterceptionResult
from repro.defenses.pow import PowAdmission, PowParameters
from repro.defenses.superonion import SuperOnionNetwork, SuperOnionSurvivalResult
from repro.graphs.backend import (
    average_closeness_centrality,
    average_degree_centrality,
    diameter,
    number_connected_components,
)
from repro.sim.engine import Simulator
from repro.tor.network import TorNetwork, TorNetworkConfig
from repro.workloads.deletion import DeletionSchedule


# ----------------------------------------------------------------------
# Figure 3 -- repair walk-through on a small 3-regular graph
# ----------------------------------------------------------------------
@dataclass
class Fig3Result:
    """Trace of the self-repair walk-through (Figure 3)."""

    steps: List[Dict[str, float]] = field(default_factory=list)

    def final_connected(self) -> bool:
        """Whether the overlay stayed connected through every deletion."""
        return bool(self.steps) and self.steps[-1]["components"] == 1


def run_fig3_walkthrough(n: int = 12, k: int = 3, deletions: int = 8, seed: int = 0) -> Fig3Result:
    """Reproduce Figure 3: delete nodes one by one from a small 3-regular graph.

    The paper's figure removes nodes from a 12-node, 3-regular graph and shows
    the dashed repair edges keeping the survivors connected; the returned
    trace records, after every deletion, how many repair edges were added and
    that the overlay stayed connected.
    """
    overlay = DDSROverlay.k_regular(n, k, seed=seed)
    rng = random.Random(seed)
    result = Fig3Result()
    for step in range(deletions):
        nodes = overlay.nodes()
        if len(nodes) <= 2:
            break
        victim = rng.choice(nodes)
        edges_before = overlay.stats.repair_edges_added
        overlay.remove_node(victim)
        result.steps.append(
            {
                "step": float(step + 1),
                "survivors": float(len(overlay)),
                "repair_edges_added": float(overlay.stats.repair_edges_added - edges_before),
                "components": float(number_connected_components(overlay.graph)),
                "max_degree": float(overlay.max_degree()),
            }
        )
    return result


# ----------------------------------------------------------------------
# Figure 4 -- closeness / degree centrality, with and without pruning
# ----------------------------------------------------------------------
@dataclass
class Fig4Result:
    """One Figure 4 curve: a (degree, pruning) combination."""

    n: int
    degree: int
    pruning: bool
    deletions: List[int] = field(default_factory=list)
    closeness: List[float] = field(default_factory=list)
    degree_centrality: List[float] = field(default_factory=list)
    max_degree: List[int] = field(default_factory=list)

    def label(self) -> str:
        """Series label as it would appear in the figure legend."""
        suffix = "with pruning" if self.pruning else "without pruning"
        return f"deg = {self.degree} ({suffix})"


def run_fig4_centrality(
    *,
    n: int = 1000,
    degrees: Sequence[int] = (5, 10, 15),
    max_fraction: float = 0.3,
    checkpoints: int = 6,
    pruning: bool = True,
    seed: int = 0,
    closeness_sample: Optional[int] = 48,
) -> List[Fig4Result]:
    """Reproduce Figure 4 (a--d): centralities under incremental deletions.

    For each ``k`` in ``degrees`` a k-regular overlay of ``n`` nodes loses
    ``max_fraction`` of its nodes one at a time (repair after every deletion);
    average closeness and degree centrality are recorded at ``checkpoints``
    evenly spaced points.  ``pruning`` switches between the 4a/4c and 4b/4d
    variants.  The paper uses ``n=5000`` and 30 % deletions.

    ``closeness_sample=None`` computes the *exact* full-population closeness
    the figure actually plots: on the fast backend the multi-word frontier
    engine's symmetric per-node accumulation makes that affordable well past
    the paper's 5000 nodes (it is the default of the ``resilience-at-scale``
    runner scenario at 100k), while the sampled default keeps the pure-Python
    reference path quick for small-n sweeps.
    """
    results: List[Fig4Result] = []
    for degree in degrees:
        config = DDSRConfig(
            d_min=min(5, degree),
            d_max=max(15, degree),
            pruning_policy=PruningPolicy.HIGHEST_DEGREE if pruning else PruningPolicy.NONE,
        )
        overlay = DDSROverlay.k_regular(n, degree, config=config, seed=seed)
        schedule = DeletionSchedule.random(overlay.nodes(), max_fraction, seed=seed + degree)
        total = len(schedule)
        batch = max(1, total // checkpoints)
        result = Fig4Result(n=n, degree=degree, pruning=pruning)
        metric_rng = random.Random(seed + 1)

        def record(deleted: int) -> None:
            result.deletions.append(deleted)
            result.closeness.append(
                average_closeness_centrality(
                    overlay.graph, sample_size=closeness_sample, rng=metric_rng
                )
            )
            result.degree_centrality.append(average_degree_centrality(overlay.graph))
            result.max_degree.append(overlay.max_degree())

        record(0)
        deleted = 0
        for victims in schedule.batches(batch):
            deleted += overlay.remove_nodes(victims)
            record(deleted)
        results.append(result)
    return results


# ----------------------------------------------------------------------
# Figure 5 -- DDSR vs normal graph: components, degree centrality, diameter
# ----------------------------------------------------------------------
@dataclass
class Fig5Result:
    """The six Figure 5 series for one network size."""

    n: int
    k: int
    deletions: List[int] = field(default_factory=list)
    ddsr_components: List[int] = field(default_factory=list)
    normal_components: List[int] = field(default_factory=list)
    ddsr_degree_centrality: List[float] = field(default_factory=list)
    normal_degree_centrality: List[float] = field(default_factory=list)
    ddsr_diameter: List[float] = field(default_factory=list)
    normal_diameter: List[float] = field(default_factory=list)

    def ddsr_stays_connected_until(self) -> float:
        """Fraction of deletions up to which the DDSR overlay stayed connected."""
        if not self.deletions:
            return 0.0
        last_connected = 0
        for deleted, components in zip(self.deletions, self.ddsr_components):
            if components <= 1:
                last_connected = deleted
        return last_connected / self.n if self.n else 0.0

    def normal_partitions_at(self) -> Optional[float]:
        """Deletion fraction at which the normal graph first partitions."""
        for deleted, components in zip(self.deletions, self.normal_components):
            if components > 1 and deleted > 0:
                return deleted / self.n
        return None


def run_fig5_resilience(
    *,
    n: int = 1000,
    k: int = 10,
    max_fraction: float = 0.95,
    checkpoints: int = 12,
    seed: int = 0,
    diameter_sample: Optional[int] = 24,
) -> Fig5Result:
    """Reproduce Figure 5: DDSR vs normal graph under incremental deletions.

    Both overlays start from the *same* k-regular wiring and see the *same*
    victim schedule.  The paper uses ``n=5000`` (left column) and ``n=15000``
    (right column) with ``k=10``.
    """
    ddsr = DDSROverlay.k_regular(n, k, seed=seed)
    normal = NormalOverlay.matching(ddsr)
    schedule = DeletionSchedule.random(ddsr.nodes(), max_fraction, seed=seed + 7)
    total = len(schedule)
    batch = max(1, total // checkpoints)
    result = Fig5Result(n=n, k=k)
    metric_rng = random.Random(seed + 2)

    def record(deleted: int) -> None:
        result.deletions.append(deleted)
        ddsr_components = number_connected_components(ddsr.graph)
        normal_components = number_connected_components(normal.graph)
        result.ddsr_components.append(ddsr_components)
        result.normal_components.append(normal_components)
        result.ddsr_degree_centrality.append(average_degree_centrality(ddsr.graph))
        result.normal_degree_centrality.append(average_degree_centrality(normal.graph))
        # The component counts were just computed, so the diameter calls can
        # skip their own component scan when the graph is still connected.
        result.ddsr_diameter.append(
            diameter(
                ddsr.graph,
                sample_size=diameter_sample,
                rng=metric_rng,
                connected=ddsr_components == 1,
            )
        )
        result.normal_diameter.append(
            diameter(
                normal.graph,
                sample_size=diameter_sample,
                rng=metric_rng,
                connected=normal_components == 1,
            )
        )

    record(0)
    deleted = 0
    for victims in schedule.batches(batch):
        deleted += ddsr.remove_nodes(victims)
        normal.remove_nodes(victims)
        record(deleted)
    return result


def run_fig5_resilience_sweep(
    *,
    sizes: Sequence[int] = (600, 1200),
    k: int = 10,
    max_fraction: float = 0.95,
    checkpoints: int = 12,
    diameter_sample: int = 24,
    trials: int = 1,
    seed: int = 0,
    workers: int = 1,
    cache=None,
) -> List[Dict[str, float]]:
    """Both Figure 5 "columns" (and more) through the :mod:`repro.runner`.

    Executes the registered ``fig5-resilience`` scenario over a grid of
    network sizes -- sharded across ``workers`` processes, optionally served
    from a :class:`repro.runner.cache.ResultCache` -- and returns one
    aggregate row per size (scalar summary metrics; see
    :func:`repro.runner.scenarios.fig5_summary`).  Results are bit-identical
    for any worker count.
    """
    from repro.runner.executor import run_scenario

    result = run_scenario(
        "fig5-resilience",
        params={
            "k": k,
            "max_fraction": max_fraction,
            "checkpoints": checkpoints,
            "diameter_sample": diameter_sample,
        },
        grid={"n": [int(size) for size in sizes]},
        trials=trials,
        seed=seed,
        workers=workers,
        cache=cache,
    )
    return result.rows()


# ----------------------------------------------------------------------
# Figure 6 -- simultaneous-takedown partition threshold vs network size
# ----------------------------------------------------------------------
@dataclass
class Fig6Result:
    """Partition thresholds for a range of network sizes (Figure 6)."""

    k: int
    sizes: List[int] = field(default_factory=list)
    nodes_to_partition: List[int] = field(default_factory=list)
    fractions: List[float] = field(default_factory=list)

    def mean_fraction(self) -> float:
        """Average partition-threshold fraction across sizes (paper: ~0.4)."""
        if not self.fractions:
            return 0.0
        return sum(self.fractions) / len(self.fractions)


def run_fig6_partition_threshold(
    *,
    sizes: Sequence[int] = (200, 500, 1000, 2000),
    k: int = 10,
    seed: int = 0,
    resolution: float = 0.05,
    trials_per_fraction: int = 2,
    workers: int = 1,
    cache=None,
) -> Fig6Result:
    """Reproduce Figure 6: nodes that must be removed *at once* to partition.

    For each size a 10-regular graph is built and increasing random victim
    sets are removed simultaneously (no repair in between) until the survivors
    split.  The paper sweeps n = 1000 ... 15000 and finds the threshold to sit
    at roughly 40 % of the nodes; pass ``sizes=range(1000, 15001, 1000)`` to
    match it exactly.

    The per-size computations run through the :mod:`repro.runner` executor
    (the ``fig6-partition-threshold`` scenario), so ``workers > 1`` shards
    sizes across processes -- the paper-scale sweep is embarrassingly
    parallel -- and passing a :class:`repro.runner.cache.ResultCache` makes
    re-runs and extended sweeps incremental.  Output is independent of the
    worker count.
    """
    from repro.runner.executor import run_scenario

    sizes = [int(size) for size in sizes]
    run = run_scenario(
        "fig6-partition-threshold",
        params={"k": k, "resolution": resolution, "trials_per_fraction": trials_per_fraction},
        grid={"size": sizes},
        seed=seed,
        workers=workers,
        cache=cache,
    )
    result = Fig6Result(k=k)
    # With trials=1 the unit schedule order is exactly the grid (sizes) order.
    for size, metrics in zip(sizes, run.unit_metrics):
        result.sizes.append(size)
        result.fractions.append(metrics["fraction"])
        result.nodes_to_partition.append(int(metrics["nodes_to_partition"]))
    return result


# ----------------------------------------------------------------------
# SOAP campaign (Figure 7 / section VI-B)
# ----------------------------------------------------------------------
@dataclass
class SoapExperimentResult:
    """SOAP campaign outcome plus the benign-subgraph containment summary."""

    campaign: SoapCampaignResult
    benign_components: Dict[str, int]
    n: int
    k: int

    @property
    def neutralized(self) -> bool:
        """Whether the whole botnet ended up contained."""
        return self.campaign.neutralized


def run_soap_campaign(
    *,
    n: int = 300,
    k: int = 10,
    seed: int = 0,
    initial_compromised: int = 1,
    admission=None,
    max_targets: Optional[int] = None,
) -> SoapExperimentResult:
    """Run a full SOAP campaign against a fresh k-regular OnionBot overlay.

    ``admission`` accepts a peering-admission policy (PoW / rate limiting) to
    reproduce the section VII-A counter-countermeasure analysis; the default
    open admission reproduces the basic OnionBot, which SOAP fully neutralizes.
    """
    overlay = DDSROverlay.k_regular(n, k, seed=seed)
    rng = random.Random(seed + 13)
    compromised = rng.sample(overlay.nodes(), initial_compromised)
    attack_kwargs = {"rng": random.Random(seed + 17)}
    if admission is not None:
        attack_kwargs["admission"] = admission
    attack = SoapAttack(**attack_kwargs)
    campaign = attack.run_campaign(overlay, compromised, max_targets=max_targets)
    benign = SoapAttack.benign_subgraph_components(overlay)
    return SoapExperimentResult(campaign=campaign, benign_components=benign, n=n, k=k)


# ----------------------------------------------------------------------
# HSDir interception (section VI-A)
# ----------------------------------------------------------------------
@dataclass
class HsdirExperimentResult:
    """HSDir interception outcome, before and after the target rotates."""

    interception: InterceptionResult
    denial_before_rotation: bool
    reachable_after_rotation: bool
    relays_required: int


def run_hsdir_interception(*, relays: int = 40, seed: int = 0) -> HsdirExperimentResult:
    """Reproduce the HSDir-interception mitigation and its limitation.

    A bot's hidden service is targeted: the defender injects crafted relays,
    waits out the 25-hour flag delay, and censors the descriptors -- denying
    access to that address.  The bot then rotates to its next-period address
    (which the defender cannot predict without the bot key), and becomes
    reachable again, demonstrating why the paper considers this mitigation
    insufficient on its own.
    """
    simulator = Simulator(seed=seed)
    network = TorNetwork(simulator, TorNetworkConfig(num_relays=relays))
    network.bootstrap()

    from repro.core.addressing import AddressPlan
    from repro.crypto.kdf import kdf
    from repro.crypto.keys import KeyPair

    botmaster = KeyPair.from_seed(b"hsdir-experiment-botmaster")
    bot_key = kdf("onionbot.bot-key", b"hsdir-experiment-bot")
    plan = AddressPlan(botmaster_public=botmaster.public, bot_key=bot_key)

    host = network.host_service(plan.keypair_at(simulator.now), lambda payload, conn: b"ack")
    target_address = host.onion_address

    defender = HsdirInterception(network)
    interception = defender.intercept(target_address)
    # The bot republishes its descriptor for the (now censored) address.
    network.publish_descriptor(host)
    denial_before = False
    try:
        network.lookup_descriptor(target_address)
    except Exception:
        denial_before = True

    # The bot rotates to its next-period address and republishes.
    new_keypair = plan.keypair_at(simulator.now + 86400.0)
    simulator.run_for(86400.0)
    network.rotate_service_key(host, new_keypair)
    reachable_after = True
    try:
        network.lookup_descriptor(host.onion_address)
    except Exception:
        reachable_after = False

    return HsdirExperimentResult(
        interception=interception,
        denial_before_rotation=denial_before,
        reachable_after_rotation=reachable_after,
        relays_required=defender.collateral_relays(),
    )


# ----------------------------------------------------------------------
# SuperOnion vs SOAP (section VII / Figure 8)
# ----------------------------------------------------------------------
def run_superonion_vs_soap(
    *,
    hosts: int = 5,
    virtual_per_host: int = 3,
    peers_per_virtual: int = 2,
    rounds: int = 8,
    targets_per_round: int = 3,
    seed: int = 0,
) -> Tuple[SuperOnionSurvivalResult, SoapExperimentResult]:
    """Head-to-head: SuperOnion hosts vs a basic overlay of equal size under SOAP.

    Returns ``(superonion_result, basic_result)``: the SuperOnion network uses
    the Figure 8 parameters (n hosts x m virtual bots, i peers each) with its
    probe-and-recover loop, while the basic OnionBot overlay of ``hosts * m``
    nodes faces the same attacker without any recovery.
    """
    network = SuperOnionNetwork(
        hosts=hosts,
        virtual_per_host=virtual_per_host,
        peers_per_virtual=peers_per_virtual,
        seed=seed,
    )
    super_attack = SoapAttack(rng=random.Random(seed + 23))
    super_result = network.withstand_soap(
        super_attack, rounds=rounds, targets_per_round=targets_per_round
    )
    basic_result = run_soap_campaign(
        n=hosts * virtual_per_host,
        k=min(peers_per_virtual * 2, hosts * virtual_per_host - 1),
        seed=seed,
    )
    return super_result, basic_result


# ----------------------------------------------------------------------
# Proof-of-work trade-off (section VII-A)
# ----------------------------------------------------------------------
@dataclass
class PowTradeoffPoint:
    """One point of the PoW sweep: attack cost vs botnet recovery cost."""

    escalation_factor: float
    work_budget_per_clone: float
    containment_fraction: float
    clones_created: int
    attacker_work: float
    requests_rejected: int
    repair_work_cost: float


def run_pow_tradeoff(
    *,
    n: int = 200,
    k: int = 8,
    seed: int = 0,
    escalation_factors: Sequence[float] = (1.0, 1.5, 2.0, 3.0),
    work_budget_per_clone: float = 64.0,
) -> List[PowTradeoffPoint]:
    """Sweep the PoW escalation factor and measure both sides of the trade-off.

    Higher escalation makes SOAP containment stall (clone requests get
    rejected once the price exceeds the defender's per-clone budget) but also
    prices the botnet's own repair traffic; the repair cost column quantifies
    the "decreased flexibility and recoverability" the paper warns about.
    """
    points: List[PowTradeoffPoint] = []
    for factor in escalation_factors:
        admission = PowAdmission(
            PowParameters(
                base_work=1.0,
                escalation_factor=factor,
                work_budget_per_clone=work_budget_per_clone,
            )
        )
        result = run_soap_campaign(n=n, k=k, seed=seed, admission=admission)
        # Cost of self-repair under the same pricing: a 30 % gradual takedown.
        overlay = DDSROverlay.k_regular(n, k, seed=seed + 1)
        overlay.remove_fraction(0.3, rng=random.Random(seed + 2))
        repair_cost = admission.params.base_work * overlay.stats.repair_edges_added
        points.append(
            PowTradeoffPoint(
                escalation_factor=factor,
                work_budget_per_clone=work_budget_per_clone,
                containment_fraction=result.campaign.containment_fraction,
                clones_created=result.campaign.clones_created,
                attacker_work=result.campaign.work_spent,
                requests_rejected=result.campaign.requests_rejected,
                repair_work_cost=repair_cost,
            )
        )
    return points


# ----------------------------------------------------------------------
# Integrated botnet smoke experiment (used by examples and tests)
# ----------------------------------------------------------------------
def run_integrated_botnet(
    *,
    bots: int = 30,
    seed: int = 0,
    takedown_fraction: float = 0.2,
) -> Dict[str, float]:
    """End-to-end run of the full botnet simulation.

    Builds a botnet over the in-memory Tor network, broadcasts a command,
    takes down a fraction of the bots, rotates addresses, and broadcasts
    again -- returning the coverage numbers the integration tests assert on.
    """
    net = OnionBotnet(seed=seed)
    net.build(bots)
    first = net.broadcast_command("report-status")
    victims = net.active_labels()[: int(takedown_fraction * bots)]
    net.take_down(victims)
    net.advance_to_next_period()
    second = net.broadcast_command("report-status")
    stats = net.stats()
    return {
        "bots": float(bots),
        "coverage_before": first.coverage,
        "coverage_after": second.coverage,
        "active_after": float(stats.active_bots),
        "components_after": float(stats.connected_components),
        "max_degree_after": float(stats.max_degree),
    }
