"""Hidden Service Directory (HSDir) placement arithmetic.

Implements the descriptor-ID recipe the paper quotes verbatim from the Tor
rend-spec (section III):

.. code-block:: text

    descriptor-id  = H(Identifier || secret-id-part)
    secret-id-part = H(time-period || descriptor-cookie || replica)
    time-period    = (current-time + permanent-id-byte * 86400 / 256) / 86400

``H`` is SHA-1, ``Identifier`` is the 80-bit truncated SHA-1 of the service
public key, ``replica`` is 0 or 1, and each replica's descriptor is stored on
the 3 HSDirs whose fingerprints follow the descriptor ID on the fingerprint
ring (Figure 2) -- 6 responsible HSDirs in total.  Both the hidden service and
any client that knows the onion address can run this computation, which is why
an adversary who can craft relay fingerprints can position themselves as a
bot's HSDirs (section VI-A).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import List, Optional, Sequence

from repro.tor.consensus import ConsensusDocument, ConsensusEntry

#: Number of replicas (descriptor-ID variants) per hidden service.
REPLICAS = 2
#: Number of consecutive HSDirs storing each replica.
SPREAD = 3
#: Seconds per descriptor time period.
PERIOD_SECONDS = 86400


def time_period(current_time: float, permanent_id_byte: int) -> int:
    """The ``time-period`` value for a service at ``current_time``.

    ``permanent_id_byte`` is the first byte of the service identifier; it
    staggers the daily descriptor rotation so that not every service switches
    HSDirs at the same instant.
    """
    if not 0 <= permanent_id_byte <= 255:
        raise ValueError(f"permanent_id_byte must be a byte value, got {permanent_id_byte}")
    return int((int(current_time) + permanent_id_byte * PERIOD_SECONDS // 256) // PERIOD_SECONDS)


def secret_id_part(
    current_time: float,
    permanent_id_byte: int,
    replica: int,
    descriptor_cookie: bytes = b"",
) -> bytes:
    """``H(time-period || descriptor-cookie || replica)``."""
    if replica not in range(REPLICAS):
        raise ValueError(f"replica must be in 0..{REPLICAS - 1}, got {replica}")
    period = time_period(current_time, permanent_id_byte)
    hasher = hashlib.sha1()
    hasher.update(period.to_bytes(4, "big"))
    if descriptor_cookie:
        hasher.update(descriptor_cookie)
    hasher.update(bytes([replica]))
    return hasher.digest()


def descriptor_id(
    identifier: bytes,
    current_time: float,
    replica: int,
    descriptor_cookie: bytes = b"",
) -> bytes:
    """``H(Identifier || secret-id-part)`` -- a point on the fingerprint ring."""
    if len(identifier) == 0:
        raise ValueError("identifier must be non-empty")
    secret = secret_id_part(current_time, identifier[0], replica, descriptor_cookie)
    return hashlib.sha1(identifier + secret).digest()


def descriptor_ids(
    identifier: bytes,
    current_time: float,
    descriptor_cookie: bytes = b"",
) -> List[bytes]:
    """Descriptor IDs for every replica of a service at ``current_time``."""
    return [
        descriptor_id(identifier, current_time, replica, descriptor_cookie)
        for replica in range(REPLICAS)
    ]


def ring_successors(
    ring: Sequence[ConsensusEntry],
    point: bytes,
    count: int,
) -> List[ConsensusEntry]:
    """The ``count`` ring entries whose fingerprints follow ``point``.

    The ring wraps around: if the descriptor ID falls after the last
    fingerprint, storage resumes at the smallest fingerprint, exactly as in
    Figure 2 of the paper.
    """
    if not ring:
        return []
    fingerprints = [entry.fingerprint for entry in ring]
    start = bisect_right(fingerprints, point)
    selected: List[ConsensusEntry] = []
    for offset in range(min(count, len(ring))):
        selected.append(ring[(start + offset) % len(ring)])
    return selected


def responsible_hsdirs(
    consensus: ConsensusDocument,
    identifier: bytes,
    current_time: float,
    descriptor_cookie: bytes = b"",
    *,
    spread: int = SPREAD,
) -> List[ConsensusEntry]:
    """All HSDirs responsible for a service's descriptors right now.

    Returns up to ``REPLICAS * spread`` entries (duplicates removed while
    preserving order), i.e. the "6 responsible HSDirs" of the paper when the
    ring is large enough.
    """
    ring = consensus.hsdir_ring()
    responsible: List[ConsensusEntry] = []
    seen: set[bytes] = set()
    for replica_point in descriptor_ids(identifier, current_time, descriptor_cookie):
        for entry in ring_successors(ring, replica_point, spread):
            if entry.fingerprint in seen:
                continue
            seen.add(entry.fingerprint)
            responsible.append(entry)
    return responsible


def position_for_interception(
    consensus: ConsensusDocument,
    identifier: bytes,
    current_time: float,
    *,
    replica: int = 0,
) -> Optional[bytes]:
    """A fingerprint that would be chosen as the first responsible HSDir.

    Models the attack of Biryukov et al. cited in section VI-A: given a known
    onion identifier, a defender (or attacker) crafts a relay fingerprint that
    sorts immediately after the descriptor ID so that, once the relay earns the
    HSDir flag, it stores -- and can then refuse to serve -- the service's
    descriptor.  The returned fingerprint is the descriptor ID itself with its
    last byte nudged, guaranteeing placement directly after the ID and before
    the currently-first responsible HSDir (if any gap exists).
    """
    target = descriptor_id(identifier, current_time, replica)
    candidate = bytearray(target)
    # Nudge the last byte up by one (with carry) to land just after the point.
    for index in range(len(candidate) - 1, -1, -1):
        if candidate[index] != 0xFF:
            candidate[index] += 1
            break
        candidate[index] = 0
    else:  # pragma: no cover - astronomically unlikely all-0xFF digest
        return None
    crafted = bytes(candidate)
    ring = consensus.hsdir_ring()
    if ring:
        current_first = ring_successors(ring, target, 1)
        if current_first and not (target < crafted <= current_first[0].fingerprint):
            # There is no gap between the descriptor ID and the incumbent; the
            # crafted fingerprint still lands first because it is the immediate
            # successor of the ID, but double-check ordering to be explicit.
            if crafted > current_first[0].fingerprint:
                return current_first[0].fingerprint  # cannot do better than incumbent
    return crafted
