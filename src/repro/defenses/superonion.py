"""SuperOnionBots (paper section VII-B, Figure 8).

A SuperOnion construction fully exploits the decoupling Tor provides between a
physical host, its IP address and its onion addresses: each of the ``n``
physical hosts runs ``m`` virtual bots, and every virtual bot peers with ``i``
virtual bots of *other* hosts.  A single virtual bot is still susceptible to
SOAP containment, but the physical host survives as long as at least one of
its virtual bots is not contained.

To notice containment, every host periodically runs a connectivity self-probe:
each of its virtual bots floods a probe that should arrive at the host's other
``m - 1`` virtual bots through the overlay.  Because messages are encrypted
and indistinguishable -- and because the authorities are assumed legally unable
to *participate* in botnet activity by forwarding them -- defender clones do
not relay probes, so a contained virtual bot's probes silently vanish.  The
host then discards the soaped virtual bot and bootstraps a replacement using
peers learned from its still-healthy virtual bots.

This module implements the construction and the probe/recover loop so that the
SuperOnion-vs-SOAP arms race (``benchmarks/bench_superonion.py``) can be
simulated head-to-head against the basic OnionBot.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.adversary.soap import SoapAttack, is_clone
from repro.core.ddsr import DDSRConfig, DDSROverlay
from repro.graphs.metrics import shortest_path_lengths_from


def virtual_node_id(host_index: int, serial: int) -> str:
    """Identifier of a virtual bot: ``so-<host>-<serial>``."""
    return f"so-{host_index:04d}-{serial:04d}"


def host_of(node: str) -> Optional[int]:
    """Host index encoded in a virtual-node identifier (None for clones)."""
    if not isinstance(node, str) or not node.startswith("so-"):
        return None
    try:
        return int(node.split("-")[1])
    except (IndexError, ValueError):
        return None


@dataclass
class SuperOnionHost:
    """One physical host running ``m`` virtual bots."""

    host_index: int
    virtual_nodes: List[str] = field(default_factory=list)
    replacements_made: int = 0
    _serial: itertools.count = field(default_factory=lambda: itertools.count(0), repr=False)

    def new_virtual_node(self) -> str:
        """Mint the identifier for a fresh virtual bot on this host."""
        return virtual_node_id(self.host_index, next(self._serial))

    def probe(self, overlay: DDSROverlay) -> List[str]:
        """Return the virtual bots whose connectivity probes failed.

        A probe from virtual bot ``a`` succeeds when at least one sibling of
        ``a`` is reachable from it through benign (non-clone) overlay paths.
        With a single sibling set per host the check is symmetric, so a bot is
        flagged exactly when it is cut off from every sibling.
        """
        present = [node for node in self.virtual_nodes if node in overlay.graph]
        soaped: List[str] = []
        if len(present) <= 1:
            return [node for node in self.virtual_nodes if node not in present]
        benign_nodes = [node for node in overlay.nodes() if not is_clone(node)]
        benign_graph = overlay.graph.subgraph(benign_nodes)
        for node in self.virtual_nodes:
            if node not in benign_graph:
                soaped.append(node)
                continue
            reachable = shortest_path_lengths_from(benign_graph, node)
            siblings = [sibling for sibling in present if sibling != node]
            if not any(sibling in reachable for sibling in siblings):
                soaped.append(node)
        return soaped


@dataclass
class SuperOnionSurvivalResult:
    """Outcome of a SOAP campaign against a SuperOnion network."""

    rounds: int
    hosts_total: int
    hosts_surviving: int
    virtual_nodes_total: int
    virtual_nodes_soaped: int
    virtual_nodes_replaced: int
    clones_spent: int
    #: ``(round, fraction of hosts with at least one healthy virtual bot)``.
    survival_timeline: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def host_survival_fraction(self) -> float:
        """Fraction of physical hosts that remained in the botnet."""
        if self.hosts_total == 0:
            return 0.0
        return self.hosts_surviving / self.hosts_total


class SuperOnionNetwork:
    """Builds and operates a SuperOnion overlay (Figure 8's ``n``, ``m``, ``i``)."""

    def __init__(
        self,
        *,
        hosts: int = 5,
        virtual_per_host: int = 3,
        peers_per_virtual: int = 2,
        config: Optional[DDSRConfig] = None,
        seed: int = 0,
    ) -> None:
        if hosts < 2:
            raise ValueError(f"a SuperOnion network needs at least 2 hosts, got {hosts}")
        if virtual_per_host < 2:
            raise ValueError(
                f"each host needs at least 2 virtual bots to self-probe, got {virtual_per_host}"
            )
        self.hosts_count = hosts
        self.virtual_per_host = virtual_per_host
        self.peers_per_virtual = peers_per_virtual
        self.rng = random.Random(seed)
        self.config = config or DDSRConfig(d_min=1, d_max=max(6, peers_per_virtual * 3))
        self.overlay = DDSROverlay(config=self.config, rng=self.rng)
        self.hosts: Dict[int, SuperOnionHost] = {}
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        for host_index in range(self.hosts_count):
            host = SuperOnionHost(host_index=host_index)
            for _ in range(self.virtual_per_host):
                node = host.new_virtual_node()
                host.virtual_nodes.append(node)
                self.overlay.graph.add_node(node)
            self.hosts[host_index] = host
        # Wire each virtual bot to ``i`` virtual bots on *other* hosts.
        all_nodes = [
            (host_index, node)
            for host_index, host in self.hosts.items()
            for node in host.virtual_nodes
        ]
        for host_index, node in all_nodes:
            existing = self.overlay.peers(node)
            candidates = [
                other
                for other_host, other in all_nodes
                if other_host != host_index and other not in existing
            ]
            needed = max(0, self.peers_per_virtual - self.overlay.degree(node))
            if needed == 0 or not candidates:
                continue
            peers = self.rng.sample(candidates, min(needed, len(candidates)))
            for peer in peers:
                self.overlay.graph.add_edge(node, peer)

    # ------------------------------------------------------------------
    def virtual_nodes(self) -> List[str]:
        """Every live virtual bot across every host."""
        return [node for host in self.hosts.values() for node in host.virtual_nodes]

    def healthy_virtual_nodes(self, host: SuperOnionHost) -> List[str]:
        """Virtual bots of ``host`` that currently have a benign peer."""
        healthy = []
        for node in host.virtual_nodes:
            if node not in self.overlay.graph:
                continue
            if any(not is_clone(peer) for peer in self.overlay.peers(node)):
                healthy.append(node)
        return healthy

    def host_survives(self, host: SuperOnionHost) -> bool:
        """A host survives while at least one of its virtual bots is unsoaped."""
        return bool(self.healthy_virtual_nodes(host))

    # ------------------------------------------------------------------
    def probe_and_recover(self) -> Tuple[int, int]:
        """One maintenance round: every host probes and replaces soaped bots.

        Returns ``(soaped_detected, replaced)``.
        """
        soaped_detected = 0
        replaced = 0
        for host in self.hosts.values():
            failed = host.probe(self.overlay)
            soaped_detected += len(failed)
            for node in failed:
                if self._replace_virtual_node(host, node):
                    replaced += 1
        return soaped_detected, replaced

    def _replace_virtual_node(self, host: SuperOnionHost, node: str) -> bool:
        """Discard a soaped virtual bot and bootstrap a replacement."""
        # Gather bootstrap peers from the host's healthy virtual bots.
        peer_pool: Set[str] = set()
        for sibling in host.virtual_nodes:
            if sibling == node or sibling not in self.overlay.graph:
                continue
            peer_pool.update(
                peer for peer in self.overlay.peers(sibling) if not is_clone(peer)
            )
        peer_pool.discard(node)
        if not peer_pool:
            return False  # The host has lost all benign connectivity.
        if node in self.overlay.graph:
            # The soaped identity is abandoned (its onion address is simply
            # never used again); remove it without triggering repair so the
            # clones gain nothing.
            self.overlay.remove_node(node, repair=False)
        if node in host.virtual_nodes:
            host.virtual_nodes.remove(node)
        new_node = host.new_virtual_node()
        peers = self.rng.sample(
            sorted(peer_pool), min(self.peers_per_virtual, len(peer_pool))
        )
        self.overlay.add_node(new_node, peers)
        host.virtual_nodes.append(new_node)
        host.replacements_made += 1
        return True

    # ------------------------------------------------------------------
    def withstand_soap(
        self,
        attack: SoapAttack,
        *,
        rounds: int = 10,
        targets_per_round: int = 3,
    ) -> SuperOnionSurvivalResult:
        """Run an interleaved SOAP-vs-recovery campaign.

        Each round the attacker contains up to ``targets_per_round`` virtual
        bots it knows about, then every host runs its probe-and-recover cycle.
        The result records how host-level survival evolves -- the paper's
        claim is that the physical hosts remain in the botnet indefinitely as
        long as one virtual bot per host stays clean.
        """
        soaped_total = 0
        replaced_total = 0
        clones_spent = 0
        timeline: List[Tuple[int, float]] = []
        # The attacker starts knowing one random virtual bot's peers.
        start = self.rng.choice(self.virtual_nodes())
        known: Set[str] = {start}
        known.update(peer for peer in self.overlay.peers(start) if not is_clone(peer))

        for round_index in range(1, rounds + 1):
            # --- attacker phase -------------------------------------------------
            attacked = 0
            for target in list(known):
                if attacked >= targets_per_round:
                    break
                if target not in self.overlay.graph:
                    continue
                benign_peers = {
                    peer for peer in self.overlay.peers(target) if not is_clone(peer)
                }
                if not benign_peers:
                    continue  # already contained
                result = attack.contain_node(self.overlay, target)
                clones_spent += result.clones_used
                attacked += 1
                known.update(result.learned_addresses)
            # --- botnet maintenance phase --------------------------------------
            soaped, replaced = self.probe_and_recover()
            soaped_total += soaped
            replaced_total += replaced
            surviving = sum(1 for host in self.hosts.values() if self.host_survives(host))
            timeline.append((round_index, surviving / self.hosts_count))

        surviving = sum(1 for host in self.hosts.values() if self.host_survives(host))
        return SuperOnionSurvivalResult(
            rounds=rounds,
            hosts_total=self.hosts_count,
            hosts_surviving=surviving,
            virtual_nodes_total=self.hosts_count * self.virtual_per_host,
            virtual_nodes_soaped=soaped_total,
            virtual_nodes_replaced=replaced_total,
            clones_spent=clones_spent,
            survival_timeline=timeline,
        )
