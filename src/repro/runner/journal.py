"""Atomic per-campaign journals: crash-safe progress records and ``--resume``.

A journal is one append-only JSONL file per campaign.  The first line is a
**header** pinning everything that determines the campaign's output -- the
resolved spec hash, scenario name and version, master seed, trials, unit
count, and the active execution environment (graph backend / wave width /
popcount policy, the same knobs :meth:`repro.runner.spec.WorkUnit.key_material`
folds into cache keys).  Every completed work unit appends one
``{"unit": index, "metrics": {...}}`` record (flushed immediately, so a
SIGKILL mid-campaign loses at most the unit in flight), and a finished
campaign appends a ``{"complete": true}`` marker.

``python -m repro.runner run --resume`` replays the recorded units verbatim
-- JSON round-trips IEEE doubles exactly, and the executor drains results
in unit-schedule order either way -- so a resumed campaign's aggregates are
**bit-identical** to an uninterrupted run.  Resume refuses a journal whose
header does not match the current campaign (different spec, scenario
version, or execution environment) with a
:class:`~repro.core.errors.ConfigError` naming the mismatched fields.

Crash tolerance on load: a process killed mid-append can leave one
truncated trailing line; it is dropped (with a warning) and the unit simply
recomputes.  Anything undecodable *before* the end means real corruption
and fails loudly.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

logger = logging.getLogger(__name__)

#: Versioned identifier stamped into (and required from) every journal header.
JOURNAL_SCHEMA = "repro.runner/journal.v1"


def journal_header(spec, version: str, unit_count: int) -> Dict[str, Any]:
    """The header record for one campaign: identity plus execution env.

    ``spec`` must already be resolved against the scenario's defaults --
    the executor builds the header from the same spec its unit seeds derive
    from, so a default edit (new resolved hash) or a version bump can never
    replay stale results.
    """
    from repro.graphs import backend

    return {
        "journal": JOURNAL_SCHEMA,
        "scenario": spec.name,
        "version": version,
        "spec_hash": spec.spec_hash(),
        "seed": spec.seed,
        "trials": spec.trials,
        "units": unit_count,
        "graph_backend": backend.policy(),
        "bfs_batch": backend.bfs_batch_policy(),
        "popcount_lut": backend.popcount_lut_forced(),
    }


class CampaignJournal:
    """One campaign's append-only progress journal on disk."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = None

    # -- reading -------------------------------------------------------
    def _read(self) -> Tuple[Optional[Dict[str, Any]], Dict[int, Dict[str, float]], bool]:
        """Parse the file: ``(header, {unit_index: metrics}, complete)``.

        Tolerates exactly one undecodable *trailing* line (a crash between
        write and flush); earlier garbage raises ``ConfigError``.
        """
        from repro.core.errors import ConfigError

        header: Optional[Dict[str, Any]] = None
        units: Dict[int, Dict[str, float]] = {}
        complete = False
        lines = self.path.read_text(encoding="utf-8").splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines):
                    logger.warning(
                        "journal %s: dropping truncated trailing record "
                        "(crash mid-append); the unit will recompute",
                        self.path,
                    )
                    break
                raise ConfigError(
                    f"journal {self.path} is corrupt at line {lineno}; "
                    "delete it to start the campaign from scratch"
                ) from None
            if header is None:
                if not isinstance(record, dict) or record.get("journal") != JOURNAL_SCHEMA:
                    raise ConfigError(
                        f"journal {self.path} has no {JOURNAL_SCHEMA} header; "
                        "delete it to start the campaign from scratch"
                    )
                header = record
            elif record.get("complete"):
                complete = True
            elif "unit" in record:
                units[int(record["unit"])] = {
                    str(key): float(value)
                    for key, value in record.get("metrics", {}).items()
                }
        return header, units, complete

    def resume_state(self, header: Mapping[str, Any]) -> Dict[int, Dict[str, float]]:
        """Validate the on-disk journal against ``header`` and load its units.

        Raises ``ConfigError`` when there is nothing to resume or the
        journal belongs to a different campaign/environment.
        """
        from repro.core.errors import ConfigError

        if not self.path.exists():
            raise ConfigError(
                f"nothing to resume: no journal at {self.path} "
                "(run without --resume first)"
            )
        recorded, units, _complete = self._read()
        if recorded is None:
            raise ConfigError(
                f"nothing to resume: journal {self.path} has no readable header"
            )
        mismatched = sorted(
            key for key in header if recorded.get(key) != header[key]
        )
        if mismatched:
            detail = ", ".join(
                f"{key}: journal={recorded.get(key)!r} vs campaign={header[key]!r}"
                for key in mismatched
            )
            raise ConfigError(
                f"journal {self.path} does not match this campaign ({detail}); "
                "delete it or rerun without --resume"
            )
        total = int(header["units"])
        out_of_range = [index for index in units if not 0 <= index < total]
        if out_of_range:
            raise ConfigError(
                f"journal {self.path} records out-of-range unit(s) "
                f"{sorted(out_of_range)} for a {total}-unit campaign"
            )
        return units

    # -- writing -------------------------------------------------------
    def open(self, header: Mapping[str, Any], *, resume: bool = False) -> None:
        """Start journaling: fresh runs truncate and write the header,
        resumed runs append below the existing records."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume and self.path.exists():
            self._handle = self.path.open("a", encoding="utf-8")
            return
        self._handle = self.path.open("w", encoding="utf-8")
        self._append(header, fsync=True)

    def _append(self, record: Mapping[str, Any], *, fsync: bool = False) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        # Flush every record: a SIGKILLed parent then loses at most the
        # line being written, and the tolerant loader drops that one.
        self._handle.flush()
        if fsync:
            os.fsync(self._handle.fileno())

    def record_unit(self, index: int, metrics: Mapping[str, float]) -> None:
        """Append one completed unit's metrics."""
        self._append({"unit": index, "metrics": dict(metrics)})

    def finish(self) -> None:
        """Mark the campaign complete and close the file."""
        self._append({"complete": True}, fsync=True)
        self.close()

    def close(self) -> None:
        """Close the handle (idempotent; an unfinished journal stays resumable)."""
        if self._handle is not None:
            try:
                self._handle.flush()
            finally:
                self._handle.close()
                self._handle = None
