"""Adversary and defender-action models.

In the paper's framing the "adversary" of the botnet is the defender (ISPs,
law enforcement, researchers); this package models every action they can take
against an OnionBot deployment:

* :mod:`~repro.adversary.takedown` -- node-deletion strategies: incremental
  random cleanup, degree-targeted takedowns, and the simultaneous mass
  takedown of Figure 6.
* :mod:`~repro.adversary.mapping` -- crawling/mapping from captured bots, used
  to quantify how little of the botnet a defender can enumerate (section V-A).
* :mod:`~repro.adversary.honeypot` -- capturing bots to learn their peer lists.
* :mod:`~repro.adversary.hijack` -- attempts to inject unauthenticated or
  replayed commands (they fail; the counts quantify why).
* :mod:`~repro.adversary.soap` -- **SOAP**, the Sybil Onion Attack Protocol of
  section VI-B: surrounding each bot with low-degree clones until it is fully
  contained, then spreading outward until the botnet is neutralized.
"""

from repro.adversary.takedown import (
    GradualTakedown,
    RandomTakedown,
    SimultaneousTakedown,
    TakedownResult,
    TargetedDegreeTakedown,
)
from repro.adversary.mapping import CrawlResult, OverlayCrawler
from repro.adversary.honeypot import CaptureResult, HoneypotOperator
from repro.adversary.hijack import HijackAttempt, HijackOutcome
from repro.adversary.soap import SoapAttack, SoapCampaignResult, SoapNodeResult
from repro.adversary.traffic_analysis import (
    FlowFeatures,
    PassiveObserver,
    distinguishable,
    extract_features,
    message_classes_leak,
)

__all__ = [
    "RandomTakedown",
    "TargetedDegreeTakedown",
    "SimultaneousTakedown",
    "GradualTakedown",
    "TakedownResult",
    "OverlayCrawler",
    "CrawlResult",
    "HoneypotOperator",
    "CaptureResult",
    "HijackAttempt",
    "HijackOutcome",
    "SoapAttack",
    "SoapNodeResult",
    "SoapCampaignResult",
    "PassiveObserver",
    "FlowFeatures",
    "extract_features",
    "distinguishable",
    "message_classes_leak",
]
