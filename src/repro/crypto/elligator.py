"""Uniform-encoding model (Elligator stand-in).

The paper cites Elligator [52] as the mechanism that makes OnionBot messages
"indistinguishable from uniform random strings" so that relaying bots (and any
network observer inside Tor) cannot classify traffic.  For the simulation we
need the *property*, not the elliptic-curve construction: an encoding whose
output bytes pass simple uniformity checks and which round-trips losslessly.

``encode_uniform`` whitens the payload with a keystream derived from a random
prefix, so the output carries no plaintext structure; ``looks_uniform`` is the
statistical check used by the tests and by the message-indistinguishability
experiment in the Table I benchmark.
"""

from __future__ import annotations

import hashlib
import math
from collections import Counter
from typing import Sequence

_WHITEN_CONTEXT = b"repro.elligator-whiten"
_PREFIX_LENGTH = 16


def _whitening_stream(prefix: bytes, length: int) -> bytes:
    blocks: list[bytes] = []
    counter = 0
    while sum(len(block) for block in blocks) < length:
        blocks.append(
            hashlib.sha256(_WHITEN_CONTEXT + prefix + counter.to_bytes(4, "big")).digest()
        )
        counter += 1
    return b"".join(blocks)[:length]


def encode_uniform(payload: bytes, randomness: bytes) -> bytes:
    """Encode ``payload`` so the result looks like uniform random bytes.

    ``randomness`` supplies the 16-byte prefix (padded/truncated as needed);
    passing it explicitly keeps simulations deterministic.
    """
    prefix = hashlib.sha256(b"prefix" + randomness).digest()[:_PREFIX_LENGTH]
    stream = _whitening_stream(prefix, len(payload))
    body = bytes(p ^ s for p, s in zip(payload, stream))
    return prefix + body


def decode_uniform(encoded: bytes) -> bytes:
    """Invert :func:`encode_uniform`."""
    if len(encoded) < _PREFIX_LENGTH:
        raise ValueError("encoded blob too short to contain a whitening prefix")
    prefix = encoded[:_PREFIX_LENGTH]
    body = encoded[_PREFIX_LENGTH:]
    stream = _whitening_stream(prefix, len(body))
    return bytes(c ^ s for c, s in zip(body, stream))


def byte_entropy(data: bytes) -> float:
    """Shannon entropy of the byte distribution, in bits per byte (max 8)."""
    if not data:
        return 0.0
    counts = Counter(data)
    total = len(data)
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def looks_uniform(data: bytes, *, min_entropy: float = 7.0) -> bool:
    """Heuristic uniformity check used by tests and the Table I experiment.

    For blobs of a few hundred bytes a uniform source yields close to 8 bits
    of byte entropy; structured plaintext (ASCII command strings, JSON) sits
    far below 6.  The default threshold of 7.0 separates the two reliably at
    the message sizes the simulator uses.
    """
    if len(data) < 64:
        raise ValueError("uniformity check needs at least 64 bytes")
    return byte_entropy(data) >= min_entropy


def distinguishing_advantage(samples_a: Sequence[bytes], samples_b: Sequence[bytes]) -> float:
    """A crude distinguisher's advantage between two families of blobs.

    Uses mean byte-entropy as the discriminating statistic.  Values near 0
    mean the two families are indistinguishable to this observer; values near
    1 mean trivially separable.  The Table I benchmark uses this to contrast
    OnionBot envelopes with the plaintext/XOR framings of legacy botnets.
    """
    if not samples_a or not samples_b:
        raise ValueError("both sample families must be non-empty")
    mean_a = sum(byte_entropy(sample) for sample in samples_a) / len(samples_a)
    mean_b = sum(byte_entropy(sample) for sample in samples_b) / len(samples_b)
    return min(1.0, abs(mean_a - mean_b) / 8.0)
