#!/usr/bin/env python3
"""Takedown-resilience study: the Figure 4/5/6 experiments at laptop scale.

Regenerates, as text tables, the paper's three resilience results:

* Figure 4 -- average closeness/degree centrality under 30 % incremental
  deletions, with and without pruning (k = 5, 10, 15);
* Figure 5 -- DDSR vs a normal (non-repairing) graph: connected components,
  degree centrality and diameter as nodes are deleted;
* Figure 6 -- how many nodes must be removed *simultaneously* to partition the
  overlay (the paper finds ~40 %).

Pass ``--paper-scale`` to run closer to the published sizes (slower).

Run with:  python examples/takedown_resilience_study.py [--paper-scale]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import (  # noqa: E402
    format_series,
    run_fig4_centrality,
    run_fig5_resilience,
    run_fig6_partition_threshold,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true",
                        help="use sizes close to the paper's (much slower)")
    args = parser.parse_args()

    if args.paper_scale:
        fig4_n, fig5_n, fig6_sizes = 5000, 5000, tuple(range(1000, 8001, 1000))
        closeness_sample = 48
    else:
        fig4_n, fig5_n, fig6_sizes = 600, 600, (200, 400, 600, 800)
        closeness_sample = 40

    print("=" * 72)
    print(f"Figure 4 — centrality under 30% deletions (n={fig4_n})")
    print("=" * 72)
    for pruning in (False, True):
        label = "with pruning" if pruning else "without pruning"
        curves = run_fig4_centrality(
            n=fig4_n, degrees=(5, 10, 15), max_fraction=0.3, checkpoints=6,
            pruning=pruning, closeness_sample=closeness_sample, seed=1,
        )
        print(f"\n-- {label} --")
        for curve in curves:
            print(format_series(f"  closeness deg={curve.degree}", curve.deletions, curve.closeness))
            print(format_series(f"  degree-cent deg={curve.degree}", curve.deletions, curve.degree_centrality))
            print(f"  max degree observed (deg={curve.degree}): {max(curve.max_degree)}")

    print()
    print("=" * 72)
    print(f"Figure 5 — DDSR vs normal graph under deletions (n={fig5_n}, k=10)")
    print("=" * 72)
    fig5 = run_fig5_resilience(n=fig5_n, k=10, max_fraction=0.95, checkpoints=10,
                               diameter_sample=24, seed=2)
    print(format_series("  DDSR components  ", fig5.deletions, fig5.ddsr_components))
    print(format_series("  Normal components", fig5.deletions, fig5.normal_components))
    print(format_series("  DDSR diameter    ", fig5.deletions, fig5.ddsr_diameter))
    print(format_series("  Normal diameter  ", fig5.deletions, fig5.normal_diameter))
    print(f"\n  DDSR stays connected until ~{fig5.ddsr_stays_connected_until():.0%} of nodes are deleted")
    partition_at = fig5.normal_partitions_at()
    print(f"  Normal graph first partitions at ~{partition_at:.0%} deletions"
          if partition_at else "  Normal graph never partitioned in this run")

    print()
    print("=" * 72)
    print("Figure 6 — simultaneous deletions needed to partition (10-regular)")
    print("=" * 72)
    fig6 = run_fig6_partition_threshold(sizes=fig6_sizes, k=10, seed=3,
                                        resolution=0.05, trials_per_fraction=2)
    for size, count, fraction in zip(fig6.sizes, fig6.nodes_to_partition, fig6.fractions):
        print(f"  n={size:6d}: {count:6d} nodes ({fraction:.0%}) must be removed at once")
    print(f"\n  mean threshold fraction: {fig6.mean_fraction():.2f}  (paper: ~0.40)")


if __name__ == "__main__":
    main()
