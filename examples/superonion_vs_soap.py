#!/usr/bin/env python3
"""SuperOnionBots vs SOAP: the arms race of paper section VII.

Pits the SOAP containment campaign against two constructions of equal size:

* the basic OnionBot overlay, which SOAP fully neutralizes;
* a SuperOnion network (Figure 8: n hosts x m virtual bots, i peers each)
  whose hosts detect soaped virtual bots through connectivity self-probes and
  re-bootstrap them, keeping the physical botnet alive.

Run with:  python examples/superonion_vs_soap.py
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.adversary import SoapAttack  # noqa: E402
from repro.analysis import run_soap_campaign  # noqa: E402
from repro.defenses import SuperOnionNetwork  # noqa: E402


def main() -> None:
    hosts, virtual_per_host, peers_per_virtual = 8, 3, 2
    total_virtual = hosts * virtual_per_host

    print("--- Basic OnionBot under SOAP ---")
    basic = run_soap_campaign(n=total_virtual, k=4, seed=5)
    print(f"  bots: {basic.n}")
    print(f"  containment: {basic.campaign.containment_fraction:.0%} "
          f"(neutralized: {basic.campaign.neutralized})")
    print(f"  clones spent: {basic.campaign.clones_created}")

    print(f"\n--- SuperOnion (n={hosts}, m={virtual_per_host}, i={peers_per_virtual}) under SOAP ---")
    network = SuperOnionNetwork(
        hosts=hosts,
        virtual_per_host=virtual_per_host,
        peers_per_virtual=peers_per_virtual,
        seed=5,
    )
    attack = SoapAttack(rng=random.Random(5))
    result = network.withstand_soap(attack, rounds=10, targets_per_round=3)
    print(f"  physical hosts: {result.hosts_total}, virtual bots: {result.virtual_nodes_total}")
    print(f"  virtual bots soaped over the campaign: {result.virtual_nodes_soaped}")
    print(f"  virtual bots re-bootstrapped by their hosts: {result.virtual_nodes_replaced}")
    print(f"  clones spent by the defender: {result.clones_spent}")
    print(f"  hosts still in the botnet at the end: {result.hosts_surviving}/{result.hosts_total} "
          f"({result.host_survival_fraction:.0%})")
    print("  host survival per round:")
    for round_index, fraction in result.survival_timeline:
        bar = "#" * int(round(fraction * 40))
        print(f"    round {round_index:2d}: {fraction:5.0%} {bar}")

    print("\nTakeaway: containment that neutralizes the basic design only trims "
          "virtual bots of a SuperOnion deployment — the physical hosts keep "
          "re-bootstrapping, which is why the paper calls for detection work "
          "beyond SOAP for this construction.")


if __name__ == "__main__":
    main()
