"""Tests for relays and flag eligibility."""

from repro.crypto.keys import KeyPair
from repro.tor.relay import HSDIR_UPTIME_HOURS, Relay, RelayFlag


def make_relay(joined_at: float = 0.0, **kwargs) -> Relay:
    return Relay(
        nickname="test-relay",
        keypair=KeyPair.from_seed(b"relay-test"),
        joined_at=joined_at,
        **kwargs,
    )


class TestRelayIdentity:
    def test_fingerprint_is_20_bytes(self):
        assert len(make_relay().fingerprint) == 20

    def test_fingerprint_hex(self):
        relay = make_relay()
        assert relay.fingerprint_hex == relay.fingerprint.hex()

    def test_new_relay_is_online_and_running(self):
        relay = make_relay()
        assert relay.is_online
        assert relay.has_flag(RelayFlag.RUNNING)


class TestUptimeAndHsdir:
    def test_uptime_hours(self):
        relay = make_relay(joined_at=0.0)
        assert relay.uptime_hours(now=7200.0) == 2.0

    def test_hsdir_requires_25_hours(self):
        relay = make_relay(joined_at=0.0)
        just_under = (HSDIR_UPTIME_HOURS - 0.1) * 3600.0
        just_over = (HSDIR_UPTIME_HOURS + 0.1) * 3600.0
        assert not relay.qualifies_for_hsdir(just_under)
        assert relay.qualifies_for_hsdir(just_over)

    def test_offline_relay_never_qualifies(self):
        relay = make_relay(joined_at=0.0)
        relay.go_offline(now=30 * 3600.0)
        assert not relay.qualifies_for_hsdir(100 * 3600.0)
        assert relay.uptime_hours(100 * 3600.0) == 0.0

    def test_go_offline_strips_flags(self):
        relay = make_relay()
        relay.flags.add(RelayFlag.HSDIR)
        relay.go_offline(now=10.0)
        assert not relay.is_online
        assert not relay.has_flag(RelayFlag.RUNNING)
        assert not relay.has_flag(RelayFlag.HSDIR)

    def test_rejoin_resets_uptime(self):
        relay = make_relay(joined_at=0.0)
        relay.go_offline(now=30 * 3600.0)
        relay.rejoin(now=40 * 3600.0)
        assert relay.is_online
        # Only 1 hour of uptime since rejoining: not HSDir-eligible yet.
        assert not relay.qualifies_for_hsdir(41 * 3600.0)
        assert relay.qualifies_for_hsdir((40 + HSDIR_UPTIME_HOURS + 1) * 3600.0)
