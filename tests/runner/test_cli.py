"""Smoke tests for the ``python -m repro.runner`` CLI."""

import json

import pytest

from repro.runner.cli import (
    EXIT_CONFIG,
    EXIT_POOL,
    EXIT_TASK,
    EXIT_USAGE,
    main,
)


class TestList:
    def test_lists_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "soap-campaign" in out
        assert "soap-under-churn" in out

    def test_composed_only(self, capsys):
        assert main(["list", "--composed"]) == 0
        out = capsys.readouterr().out
        assert "soap-under-churn" in out
        assert "fig5-resilience" not in out


class TestRun:
    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["run", "nope", "--no-cache"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_with_overrides_and_outputs(self, tmp_path, capsys):
        json_out = tmp_path / "out.json"
        csv_out = tmp_path / "out.csv"
        code = main(
            [
                "run",
                "fig3-walkthrough",
                "--set", "n=12", "--set", "deletions=4",
                "--trials", "2",
                "--seed", "5",
                "--cache-dir", str(tmp_path / "cache"),
                "--quiet",
                "--json", str(json_out),
                "--csv", str(csv_out),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "final_connected" in out
        assert "2 unit(s)" in out
        payload = json.loads(json_out.read_text())
        assert payload["rows"][0]["trials"] == 2
        assert csv_out.read_text().startswith("n,")

    def test_second_invocation_is_cached(self, tmp_path, capsys):
        args = [
            "run", "fig3-walkthrough", "--seed", "5", "--quiet",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "[1 cached, 0 computed]" in capsys.readouterr().out

    def test_corrupt_entry_reported_in_summary(self, tmp_path, capsys):
        """A planted undecodable entry shows up as ``corrupt evicted``."""
        cache_dir = tmp_path / "cache"
        args = [
            "run", "fig3-walkthrough", "--seed", "5", "--quiet",
            "--cache-dir", str(cache_dir),
        ]
        assert main(args) == 0
        capsys.readouterr()
        victim = next(cache_dir.glob("*/*.json"))
        victim.write_bytes(b"\x80not json")
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "[0 cached, 1 computed, 1 corrupt evicted]" in out
        # The eviction repaired the cache: the next run is clean again.
        assert main(args) == 0
        assert "[1 cached, 0 computed]" in capsys.readouterr().out


class TestTelemetry:
    def _run_with_report(self, tmp_path, capsys, extra=()):
        report_path = tmp_path / "obs.json"
        args = [
            "run", "fig3-walkthrough", "--seed", "5", "--quiet", "--no-cache",
            "--telemetry", str(report_path), *extra,
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert f"wrote telemetry report {report_path}" in out
        return report_path, out

    def test_run_writes_schema_valid_report_with_meta(self, tmp_path, capsys):
        from repro.obs.report import load_report
        from repro.obs.schema import validate_report

        report_path, _ = self._run_with_report(tmp_path, capsys)
        report = load_report(report_path)
        validate_report(report)
        assert report["label"] == "runner:fig3-walkthrough"
        assert report["meta"]["scenario"] == "fig3-walkthrough"
        assert report["meta"]["seed"] == 5
        assert report["spans"]["runner.execute"]["count"] == 1
        assert report["spans"]["runner.unit"]["count"] == 1

    def test_collector_is_disabled_after_the_run(self, tmp_path, capsys):
        from repro.obs import telemetry

        self._run_with_report(tmp_path, capsys)
        assert not telemetry.enabled()

    def test_env_var_enables_collection(self, tmp_path, capsys, monkeypatch):
        from repro.obs import telemetry
        from repro.obs.report import load_report

        report_path = tmp_path / "env.json"
        monkeypatch.setenv(telemetry.ENV_VAR, str(report_path))
        assert main(["run", "fig3-walkthrough", "--quiet", "--no-cache"]) == 0
        capsys.readouterr()
        assert load_report(report_path)["meta"]["scenario"] == "fig3-walkthrough"

    def test_telemetry_results_match_dark_run(self, tmp_path, capsys):
        args = ["run", "fig3-walkthrough", "--seed", "5", "--quiet", "--no-cache"]
        assert main(args) == 0
        dark = capsys.readouterr().out
        _, lit = self._run_with_report(tmp_path, capsys)
        # Same table, same spec hash; only the report line is new.
        assert dark.splitlines()[0] in lit
        assert "spec hash" in dark
        assert dark[dark.index("spec hash"):].split()[2] in lit

    def test_pretty_print_subcommand(self, tmp_path, capsys):
        report_path, _ = self._run_with_report(tmp_path, capsys)
        assert main(["telemetry", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry report" in out
        assert "runner.execute" in out
        assert "meta.scenario = fig3-walkthrough" in out

    def test_pretty_print_rejects_invalid_reports(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "repro.obs/report.v1"}', encoding="utf-8")
        assert main(["telemetry", str(bad)]) == 2
        assert "invalid telemetry report" in capsys.readouterr().err
        assert main(["telemetry", str(tmp_path / "absent.json")]) == 2


class TestExitCodes:
    """Each failure class exits with its own documented code."""

    @pytest.fixture(autouse=True)
    def _clean_faults(self, monkeypatch):
        from repro.runner import faults
        from repro.runner.pool import shutdown_pools

        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        monkeypatch.delenv(faults.STATE_ENV_VAR, raising=False)
        faults.reset()
        yield
        shutdown_pools()
        faults.reset()

    def test_usage_error_is_2(self, capsys):
        assert main(["run", "nope", "--no-cache"]) == EXIT_USAGE
        capsys.readouterr()

    def test_malformed_fault_spec_is_3(self, capsys):
        code = main(
            ["run", "fig3-walkthrough", "--no-cache", "--quiet",
             "--inject-faults", "pool.task=explode"]
        )
        assert code == EXIT_CONFIG
        assert "config error" in capsys.readouterr().err

    def test_invalid_policy_env_is_3(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "soon")
        code = main(
            ["run", "fig3-walkthrough", "--no-cache", "--quiet",
             "--workers", "2"]
        )
        assert code == EXIT_CONFIG
        assert "REPRO_TASK_TIMEOUT" in capsys.readouterr().err

    def test_pool_failure_is_4(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_DEGRADED_SERIAL", "0")
        code = main(
            ["run", "fig3-walkthrough", "--no-cache", "--quiet",
             "--workers", "2",
             "--inject-faults", "pool.task=kill@1,pool.task=kill@2"]
        )
        assert code == EXIT_POOL
        assert "worker pool failed" in capsys.readouterr().err

    def test_task_failure_is_5(self, capsys):
        from repro.runner.registry import scenario, unregister

        @scenario(name="test-cli-raises", defaults={})
        def raises(*, seed: int):
            raise ValueError(f"boom seed={seed}")

        try:
            code = main(
                ["run", "test-cli-raises", "--no-cache", "--quiet",
                 "--trials", "2", "--workers", "2"]
            )
        finally:
            unregister("test-cli-raises")
        assert code == EXIT_TASK
        assert "task failed" in capsys.readouterr().err

    def test_resume_mismatch_is_3(self, tmp_path, capsys):
        journal = tmp_path / "j.jsonl"
        args = ["run", "fig3-walkthrough", "--no-cache", "--quiet",
                "--journal", str(journal)]
        assert main(args + ["--seed", "5"]) == 0
        capsys.readouterr()
        code = main(args + ["--seed", "6", "--resume"])
        assert code == EXIT_CONFIG
        assert "does not match this campaign" in capsys.readouterr().err


class TestJournalFlow:
    def test_cached_run_journals_under_the_cache_dir(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        args = ["run", "fig3-walkthrough", "--seed", "5", "--quiet",
                "--cache-dir", str(cache_dir)]
        assert main(args) == 0
        capsys.readouterr()
        journals = list((cache_dir / "journals").glob("*.jsonl"))
        assert len(journals) == 1
        # --resume replays the completed unit and reports it.
        assert main(args + ["--resume"]) == 0
        assert "1 replayed" in capsys.readouterr().out

    def test_no_journal_flag_disables_journaling(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        args = ["run", "fig3-walkthrough", "--seed", "5", "--quiet",
                "--cache-dir", str(cache_dir), "--no-journal"]
        assert main(args) == 0
        capsys.readouterr()
        assert not (cache_dir / "journals").exists()

    def test_telemetry_meta_records_journal_and_faults(self, tmp_path, capsys):
        from repro.obs.report import load_report
        from repro.obs.schema import validate_report
        from repro.runner import faults

        report_path = tmp_path / "obs.json"
        journal = tmp_path / "j.jsonl"
        args = ["run", "fig3-walkthrough", "--seed", "5", "--quiet",
                "--no-cache", "--journal", str(journal),
                "--telemetry", str(report_path),
                "--inject-faults", "cache.read=delay(0.001)@99"]
        try:
            assert main(args) == 0
        finally:
            faults.reset()
        capsys.readouterr()
        report = load_report(report_path)
        validate_report(report)
        assert report["meta"]["journal"] == {
            "path": str(journal),
            "resumed": False,
            "replayed": 0,
            "units": 1,
            "checkpoints_recorded": 0,
            "checkpoints_replayed": 0,
        }
        assert report["meta"]["injected_faults"] == "cache.read=delay(0.001)@99"


class TestJournalInspect:
    def _journal(self, tmp_path, capsys):
        journal = tmp_path / "j.jsonl"
        args = ["run", "fig3-walkthrough", "--seed", "5", "--quiet",
                "--no-cache", "--journal", str(journal)]
        assert main(args) == 0
        capsys.readouterr()
        return journal

    def test_valid_journal_exits_zero(self, tmp_path, capsys):
        journal = self._journal(tmp_path, capsys)
        assert main(["journal", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "fig3-walkthrough" in out
        assert "1/1 unit(s) (100.0%), complete" in out
        assert "would be accepted" in out

    def test_missing_journal_exits_config(self, tmp_path, capsys):
        assert main(["journal", str(tmp_path / "absent.jsonl")]) == EXIT_CONFIG
        assert "no such journal" in capsys.readouterr().err

    def test_corrupt_journal_exits_config(self, tmp_path, capsys):
        journal = self._journal(tmp_path, capsys)
        lines = journal.read_text().splitlines()
        lines.insert(1, "not json")
        lines.append(json.dumps({"unit": 0, "metrics": {}}))
        journal.write_text("\n".join(lines) + "\n")
        assert main(["journal", str(journal)]) == EXIT_CONFIG
        assert "invalid journal" in capsys.readouterr().err

    def test_environment_drift_refuses_resume(self, tmp_path, capsys, monkeypatch):
        from repro.graphs import backend

        journal = self._journal(tmp_path, capsys)
        monkeypatch.setenv(backend.ENV_VAR, "python")
        assert main(["journal", str(journal)]) == EXIT_CONFIG
        err = capsys.readouterr().err
        assert "graph_backend" in err
        assert "would be REFUSED" in err


class TestSweep:
    def test_sweep_grid_axes(self, tmp_path, capsys):
        code = main(
            [
                "sweep",
                "ablation-repair-policy",
                "--grid", "policy=clique,none",
                "--set", "n=60", "--set", "k=6",
                "--seed", "3",
                "--no-cache",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "clique" in out and "none" in out
        assert "2 unit(s)" in out
