"""Exception hierarchy for the OnionBot core."""

from __future__ import annotations


class BotnetError(RuntimeError):
    """Base class for every error raised by :mod:`repro.core`."""


class ConfigError(BotnetError):
    """A configuration knob (environment variable, policy value) is invalid.

    Raised instead of silently falling back to a default, so a typo like
    ``REPRO_BFS_BATCH=full`` or ``REPRO_GRAPH_BACKEND=numpy`` fails loudly at
    the first affected call rather than quietly degrading performance or
    routing metrics through an unintended backend.
    """


class BootstrapError(BotnetError):
    """A bot could not find any peers during the rally stage."""


class LifecycleError(BotnetError):
    """An invalid bot life-cycle transition was attempted."""


class MessageError(BotnetError):
    """A C&C message failed validation (format, signature, authorisation)."""


class RentalError(BotnetError):
    """A rental token or rented command failed verification."""


class OverlayError(BotnetError):
    """An invalid operation on the DDSR overlay (unknown node, bad degree bounds)."""
