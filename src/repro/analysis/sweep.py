"""Parameter sweeps, executed through the :mod:`repro.runner` subsystem.

Historically this module carried its own Cartesian-product loop; it is now a
thin facade over the runner: grid expansion comes from
:func:`repro.runner.grid.expand_grid`, and :func:`sweep_scenario` runs any
*registered* scenario through the sharded, cached executor (parallel workers,
per-unit deterministic seeding, streaming aggregation) while returning the
same row-oriented :class:`SweepResult` the ablation benchmarks consume.

:func:`parameter_sweep` remains for ad-hoc callables that are not registered
scenarios; it runs in-process and uncached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.runner.grid import expand_grid


@dataclass
class SweepResult:
    """All outcomes of a parameter sweep."""

    parameter_names: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def filter(self, **conditions: Any) -> List[Dict[str, Any]]:
        """Rows whose parameters match every given condition."""
        matched = []
        for row in self.rows:
            if all(row.get(key) == value for key, value in conditions.items()):
                matched.append(row)
        return matched

    def column(self, name: str) -> List[Any]:
        """Every value of one result/parameter column, in sweep order."""
        return [row.get(name) for row in self.rows]


def parameter_sweep(
    runner: Callable[..., Mapping[str, Any]],
    grid: Mapping[str, Sequence[Any]],
) -> SweepResult:
    """Run ``runner(**point)`` over the Cartesian product of ``grid``.

    The runner must return a mapping of result columns; the sweep merges those
    with the parameter values into one row per grid point.
    """
    names = list(grid)
    result = SweepResult(parameter_names=names)
    for point in expand_grid(grid):
        outcome = runner(**point)
        row = dict(point)
        row.update(outcome)
        result.rows.append(row)
    return result


def sweep_scenario(
    name: str,
    grid: Mapping[str, Sequence[Any]],
    *,
    params: Optional[Mapping[str, Any]] = None,
    trials: int = 1,
    seed: int = 0,
    workers: int = 1,
    cache: Optional[Any] = None,
) -> SweepResult:
    """Sweep a *registered* scenario through the parallel, cached executor.

    Returns one row per grid point: the point's parameters plus the
    aggregated metrics (plain metric name for single-trial sweeps,
    ``<metric>_mean`` / ``_std`` / ``_ci95`` with ``trials > 1``).
    """
    from repro.runner.executor import run_scenario

    result = run_scenario(
        name,
        params=params,
        grid=grid,
        trials=trials,
        seed=seed,
        workers=workers,
        cache=cache,
    )
    sweep = SweepResult(parameter_names=list(grid))
    sweep.rows = result.rows()
    return sweep
