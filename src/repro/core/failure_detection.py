"""Failure detection: how live bots notice dead peers and trigger repair.

The DDSR repair step (section IV-C) fires "when a node u_i is deleted" -- but
in a running botnet nobody announces their own death.  Bots therefore probe
their peers over Tor on a heartbeat schedule; a peer whose hidden service is
unreachable for several consecutive probes is presumed dead, its address is
forgotten, and the survivors run the usual repair-and-prune step using their
NoN knowledge.

:class:`FailureDetector` implements that loop on top of a running
:class:`~repro.core.botnet.OnionBotnet`.  It deliberately errs on the side of
caution (multiple missed probes before declaring death) because Tor-side
transients -- a censored HSDir, a relay that just went away -- would otherwise
trigger spurious repairs, and every repair leaks a little structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.botnet import OnionBotnet
from repro.tor.hidden_service import ServiceUnreachable


@dataclass
class SweepReport:
    """Outcome of one heartbeat sweep over the whole botnet."""

    probes_sent: int
    peers_unreachable: int
    peers_declared_dead: int
    repairs_triggered: int
    dead_labels: List[str] = field(default_factory=list)


@dataclass
class FailureDetector:
    """Heartbeat-driven peer failure detection and overlay repair.

    Parameters
    ----------
    botnet:
        The running botnet simulation to monitor.
    suspicion_threshold:
        Number of consecutive failed probes before a peer is declared dead.
    """

    botnet: OnionBotnet
    suspicion_threshold: int = 2
    #: Per-bot suspicion counters keyed by (observer label, suspected label).
    _suspicions: Dict[Tuple[str, str], int] = field(default_factory=dict)
    sweeps_performed: int = 0
    total_declared_dead: int = 0

    # ------------------------------------------------------------------
    def _label_for_onion(self, onion: str) -> Optional[str]:
        """Resolve a peer's onion address back to its simulation label.

        Bots themselves never learn labels; the detector only uses this to
        keep the shared overlay bookkeeping consistent with what every
        surviving bot would do locally.
        """
        now = self.botnet.simulator.now
        for label, bot in self.botnet.bots.items():
            if bot.is_active and str(bot.onion_at(now)) == onion:
                return label
        # Dead bots no longer rotate; check their last address too.
        for label, bot in self.botnet.bots.items():
            if str(bot.onion_at(now)) == onion:
                return label
        return None

    def _probe(self, observer_label: str, peer_onion: str) -> bool:
        """One heartbeat probe: can the observer reach the peer over Tor?"""
        try:
            self.botnet.tor.send_to(f"heartbeat:{observer_label}", peer_onion, b"heartbeat")
            return True
        except ServiceUnreachable:
            return False

    # ------------------------------------------------------------------
    def sweep(self) -> SweepReport:
        """Run one heartbeat round for every active bot.

        Unreachable peers accumulate suspicion; once a peer crosses the
        threshold from the point of view of *any* of its neighbours, it is
        declared dead: every neighbour forgets its address and the overlay
        runs the DDSR repair step for it.
        """
        self.sweeps_performed += 1
        probes = 0
        unreachable = 0
        declared: Set[str] = set()

        for label in self.botnet.active_labels():
            bot = self.botnet.bots[label]
            for peer_onion in sorted(bot.peer_addresses):
                probes += 1
                if self._probe(label, peer_onion):
                    self._suspicions.pop((label, peer_onion), None)
                    continue
                unreachable += 1
                count = self._suspicions.get((label, peer_onion), 0) + 1
                self._suspicions[(label, peer_onion)] = count
                if count >= self.suspicion_threshold:
                    peer_label = self._label_for_onion(peer_onion)
                    if peer_label is not None:
                        declared.add(peer_label)

        repairs = 0
        for dead_label in sorted(declared):
            repairs += self._declare_dead(dead_label)
        self.total_declared_dead += len(declared)
        return SweepReport(
            probes_sent=probes,
            peers_unreachable=unreachable,
            peers_declared_dead=len(declared),
            repairs_triggered=repairs,
            dead_labels=sorted(declared),
        )

    def _declare_dead(self, label: str) -> int:
        """Remove a dead peer from the overlay and let the survivors heal."""
        bot = self.botnet.bots.get(label)
        if bot is None:
            return 0
        if bot.is_active:
            # The host is actually alive but unreachable (e.g. every one of its
            # HSDirs is censored); from the overlay's point of view it is gone
            # either way -- it will have to re-bootstrap, as the paper's rally
            # stage allows.
            bot.neutralize(self.botnet.simulator.now)
        if label in self.botnet.overlay.graph:
            self.botnet.overlay.remove_node(label)
            repaired = 1
        else:
            repaired = 0
        # Drop stale suspicion counters about this peer.
        self._suspicions = {
            key: value for key, value in self._suspicions.items() if self._label_for_onion_key(key) != label
        }
        self.botnet._sync_peer_lists()
        self.botnet.simulator.log("botnet", "peer declared dead", label=label)
        return repaired

    def _label_for_onion_key(self, key: Tuple[str, str]) -> Optional[str]:
        return self._label_for_onion(key[1])

    # ------------------------------------------------------------------
    def run_periodic(self, interval: Optional[float] = None):
        """Register the sweep as a periodic simulator process and return it."""
        period = interval if interval is not None else self.botnet.config.heartbeat_interval
        return self.botnet.simulator.every(period, lambda: self.sweep(), name="failure-detector")
