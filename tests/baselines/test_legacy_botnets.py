"""Tests for the Table I legacy botnet profiles and sample messages."""

import pytest

from repro.baselines.legacy_botnets import (
    LEGACY_BOTNETS,
    ONIONBOT_PROFILE,
    all_profiles,
    message_lengths_vary,
    sample_message,
)
from repro.crypto.elligator import byte_entropy


class TestProfiles:
    def test_table1_families_present(self):
        names = [profile.name for profile in LEGACY_BOTNETS]
        assert names == ["Miner", "Storm", "ZeroAccess v1", "Zeus"]

    def test_table1_rows_match_paper(self):
        rows = {profile.name: profile.as_row() for profile in LEGACY_BOTNETS}
        assert rows["Miner"]["Crypto"] == "none"
        assert rows["Storm"]["Crypto"] == "XOR"
        assert rows["ZeroAccess v1"]["Signing"] == "RSA 512"
        assert rows["Zeus"]["Signing"] == "RSA 2048"
        assert all(row["Replay"] == "yes" for row in rows.values())

    def test_onionbot_profile_closes_the_gaps(self):
        assert ONIONBOT_PROFILE.replay_protected
        assert "Tor" in ONIONBOT_PROFILE.crypto
        assert ONIONBOT_PROFILE.as_row()["Replay"] == "no"

    def test_all_profiles_order(self):
        profiles = all_profiles()
        assert profiles[-1] is ONIONBOT_PROFILE
        assert len(profiles) == 5


class TestSampleMessages:
    def test_miner_messages_are_plaintext(self):
        message = sample_message("Miner", 1)
        assert b"ddos" in message
        assert byte_entropy(message) < 6.0

    def test_storm_xor_is_reversible_structure(self):
        message = sample_message("Storm", 1)
        assert b"ddos" not in message
        # Single-byte XOR preserves the byte-distribution shape: low entropy.
        assert byte_entropy(message) < 6.0

    def test_zeroaccess_rc4_like_looks_random(self):
        message = sample_message("ZeroAccess v1", 1)
        assert byte_entropy(message) > 6.0

    def test_zeus_chained_xor_obscures_plaintext(self):
        message = sample_message("Zeus", 1)
        assert b"ddos" not in message

    def test_messages_differ_per_serial(self):
        assert sample_message("Miner", 1) != sample_message("Miner", 2)

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            sample_message("Mirai")

    def test_legacy_framings_leak_plaintext_length(self):
        for profile in LEGACY_BOTNETS:
            assert message_lengths_vary(profile.name)
