"""Tor-level throttling mitigations and their collateral damage.

Section VI-A's "more long term approach involves making changes to Tor, such
as use of CAPTCHAs, throttling entry guards and reusing failed partial
circuits" -- the measures proposed by Hopper for the 2013 botnet-driven hidden
service load.  The paper judges them "limited in their preventive power, open
the door to censorship, degrade Tor's user experience, and not effective
against advanced botnets"; this module provides a simple quantitative model of
exactly that trade-off so the claim can be examined rather than asserted.

The model: hidden-service circuit creation requests arrive from two
populations -- bots (many small, frequent connections) and legitimate users.
A throttling policy admits a fraction of requests per source per hour (plus an
optional CAPTCHA-style proof that bots fail with some probability).  The
impact report contains both the reduction in bot C&C throughput and the
fraction of legitimate requests delayed or dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional
import random


@dataclass
class ThrottlingImpact:
    """Outcome of applying a throttling policy to a mixed request load."""

    bot_requests: int
    user_requests: int
    bot_admitted: int
    user_admitted: int
    policy: str

    @property
    def bot_block_rate(self) -> float:
        """Fraction of bot requests denied or delayed past usefulness."""
        if self.bot_requests == 0:
            return 0.0
        return 1.0 - self.bot_admitted / self.bot_requests

    @property
    def user_collateral_rate(self) -> float:
        """Fraction of legitimate requests harmed by the policy."""
        if self.user_requests == 0:
            return 0.0
        return 1.0 - self.user_admitted / self.user_requests

    @property
    def selectivity(self) -> float:
        """How much more the policy hurts bots than users (>1 is good).

        Returns ``inf`` when users are untouched but bots are blocked.
        """
        if self.user_collateral_rate == 0.0:
            return float("inf") if self.bot_block_rate > 0 else 1.0
        return self.bot_block_rate / self.user_collateral_rate


@dataclass
class GuardThrottling:
    """Entry-guard throttling / CAPTCHA admission model.

    Parameters
    ----------
    admitted_per_source_per_hour:
        Circuit-creation budget per source before further requests are dropped.
    captcha_enabled:
        Whether an interactive proof is demanded; bots fail it with
        ``captcha_bot_failure``, humans with ``captcha_user_failure``.
    """

    admitted_per_source_per_hour: int = 10
    captcha_enabled: bool = False
    captcha_bot_failure: float = 0.95
    captcha_user_failure: float = 0.05

    def evaluate(
        self,
        *,
        bot_sources: int,
        bot_requests_per_source: int,
        user_sources: int,
        user_requests_per_source: int,
        rng: Optional[random.Random] = None,
    ) -> ThrottlingImpact:
        """Apply the policy to one simulated hour of circuit requests."""
        rng = rng if rng is not None else random.Random(0)
        bot_requests = bot_sources * bot_requests_per_source
        user_requests = user_sources * user_requests_per_source

        bot_admitted = bot_sources * min(bot_requests_per_source, self.admitted_per_source_per_hour)
        user_admitted = user_sources * min(user_requests_per_source, self.admitted_per_source_per_hour)

        if self.captcha_enabled:
            bot_admitted = sum(
                1 for _ in range(bot_admitted) if rng.random() > self.captcha_bot_failure
            )
            user_admitted = sum(
                1 for _ in range(user_admitted) if rng.random() > self.captcha_user_failure
            )
        policy = (
            f"throttle<={self.admitted_per_source_per_hour}/h"
            + (", captcha" if self.captcha_enabled else "")
        )
        return ThrottlingImpact(
            bot_requests=bot_requests,
            user_requests=user_requests,
            bot_admitted=bot_admitted,
            user_admitted=user_admitted,
            policy=policy,
        )

    def effect_on_onionbots(self, commands_per_day: int) -> float:
        """Fraction of a low-rate OnionBot C&C schedule that still gets through.

        OnionBots need very few circuits (one command flood per day easily
        fits under any per-source budget that does not also break ordinary
        hidden-service usage), which is why throttling barely affects them.
        """
        per_hour = commands_per_day / 24.0
        if per_hour <= self.admitted_per_source_per_hour:
            return 1.0
        return self.admitted_per_source_per_hour / per_hour
