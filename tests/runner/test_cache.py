"""Tests for the on-disk unit-result cache and its keying."""

import pytest

from repro.runner.cache import ResultCache
from repro.runner.spec import ScenarioSpec


def unit_of(spec: ScenarioSpec, index: int = 0):
    return spec.work_units()[index]


class TestCacheKeying:
    def test_key_is_stable_across_spec_rebuilds(self):
        a = unit_of(ScenarioSpec(name="s", params={"n": 10}, trials=2, seed=5))
        b = unit_of(ScenarioSpec(name="s", params={"n": 10}, trials=2, seed=5))
        assert a.cache_key("1") == b.cache_key("1")

    def test_key_changes_with_every_spec_ingredient(self):
        base = ScenarioSpec(name="s", params={"n": 10}, trials=1, seed=5)
        key = unit_of(base).cache_key("1")
        variants = [
            ScenarioSpec(name="other", params={"n": 10}, trials=1, seed=5),
            ScenarioSpec(name="s", params={"n": 11}, trials=1, seed=5),
            ScenarioSpec(name="s", params={"n": 10, "k": 3}, trials=1, seed=5),
            ScenarioSpec(name="s", params={"n": 10}, trials=1, seed=6),
        ]
        for variant in variants:
            assert unit_of(variant).cache_key("1") != key
        # A scenario-version bump also invalidates.
        assert unit_of(base).cache_key("2") != key
        # Trial index distinguishes units of the same point.
        multi = ScenarioSpec(name="s", params={"n": 10}, trials=2, seed=5)
        assert multi.work_units()[0].cache_key("1") != multi.work_units()[1].cache_key("1")

    def test_spec_hash_covers_grid(self):
        a = ScenarioSpec(name="s", grid={"n": [1, 2]}).spec_hash()
        b = ScenarioSpec(name="s", grid={"n": [1, 3]}).spec_hash()
        assert a != b

    def test_key_covers_graph_backend_policy(self):
        """A python-backend result must never be served to a fast invocation."""
        from repro.graphs import backend

        unit = unit_of(ScenarioSpec(name="s", params={"n": 10}))
        with backend.using("python"):
            python_key = unit.cache_key("1")
        with backend.using("fast"):
            fast_key = unit.cache_key("1")
        with backend.using("auto"):
            auto_key = unit.cache_key("1")
        assert len({python_key, fast_key, auto_key}) == 3
        # The policy is stable, so re-deriving under the same policy hits.
        with backend.using("python"):
            assert unit.cache_key("1") == python_key

    def test_key_covers_backend_env_var(self, monkeypatch):
        from repro.graphs import backend

        unit = unit_of(ScenarioSpec(name="s", params={"n": 10}))
        default_key = unit.cache_key("1")
        monkeypatch.setenv(backend.ENV_VAR, "python")
        assert unit.cache_key("1") != default_key

    def test_key_covers_bfs_batch_override(self, monkeypatch):
        from repro.graphs import backend

        unit = unit_of(ScenarioSpec(name="s", params={"n": 10}))
        auto_key = unit.cache_key("1")
        with backend.using_bfs_batch(128):
            forced_key = unit.cache_key("1")
        assert forced_key != auto_key
        monkeypatch.setenv(backend.BFS_BATCH_ENV_VAR, "128")
        assert unit.cache_key("1") == forced_key  # env and forced agree
        monkeypatch.setenv(backend.BFS_BATCH_ENV_VAR, "256")
        assert unit.cache_key("1") != forced_key

    def test_key_covers_popcount_lut_flag(self, monkeypatch):
        from repro.graphs import backend

        unit = unit_of(ScenarioSpec(name="s", params={"n": 10}))
        # Pin both states explicitly: the ambient environment may already
        # force the LUT (the dedicated CI job runs this suite that way).
        monkeypatch.setenv(backend.POPCOUNT_LUT_ENV_VAR, "0")
        native_key = unit.cache_key("1")
        monkeypatch.setenv(backend.POPCOUNT_LUT_ENV_VAR, "1")
        assert unit.cache_key("1") != native_key
        monkeypatch.delenv(backend.POPCOUNT_LUT_ENV_VAR)
        assert unit.cache_key("1") == native_key  # unset == explicit off

    def test_invalid_backend_env_raises_not_silently_falls_back(self, monkeypatch):
        import pytest

        from repro.core.errors import ConfigError
        from repro.graphs import backend

        unit = unit_of(ScenarioSpec(name="s", params={"n": 10}))
        monkeypatch.setenv(backend.ENV_VAR, "numpy")
        with pytest.raises(ConfigError, match="REPRO_GRAPH_BACKEND"):
            unit.cache_key("1")
        monkeypatch.delenv(backend.ENV_VAR)
        monkeypatch.setenv(backend.BFS_BATCH_ENV_VAR, "full")
        with pytest.raises(ConfigError, match="REPRO_BFS_BATCH"):
            unit.cache_key("1")


class TestCacheStorage:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        unit = unit_of(ScenarioSpec(name="s", params={"n": 10}))
        assert cache.get(unit, "1") is None
        assert cache.misses == 1
        cache.put(unit, "1", {"metric": 1.5})
        assert cache.get(unit, "1") == {"metric": 1.5}
        assert cache.hits == 1
        assert cache.entry_count() == 1

    def test_version_bump_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        unit = unit_of(ScenarioSpec(name="s", params={"n": 10}))
        cache.put(unit, "1", {"metric": 1.0})
        assert cache.get(unit, "2") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        unit = unit_of(ScenarioSpec(name="s", params={"n": 10}))
        path = cache.put(unit, "1", {"metric": 1.0})
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(unit, "1") is None

    def test_non_numeric_metric_value_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        unit = unit_of(ScenarioSpec(name="s", params={"n": 10}))
        path = cache.put(unit, "1", {"metric": 1.0})
        path.write_text(
            path.read_text(encoding="utf-8").replace("1.0", "null"), encoding="utf-8"
        )
        assert cache.get(unit, "1") is None

    def test_corrupt_entry_counted_apart_and_evicted(self, tmp_path, caplog):
        """Corrupt entries are not misses: counted, logged, removed from disk."""
        import logging

        cache = ResultCache(tmp_path)
        unit = unit_of(ScenarioSpec(name="s", params={"n": 10}))
        path = cache.put(unit, "1", {"metric": 1.0})
        path.write_text("{not json", encoding="utf-8")
        with caplog.at_level(logging.WARNING, logger="repro.runner.cache"):
            assert cache.get(unit, "1") is None
        assert cache.corrupt == 1
        assert cache.misses == 0 and cache.hits == 0
        assert not path.exists()  # evicted, so the recompute can replace it
        assert any("evicted corrupt cache entry" in r.message for r in caplog.records)
        # The slot now behaves as an ordinary (countable) miss...
        assert cache.get(unit, "1") is None
        assert cache.misses == 1
        # ...and a recompute fills it back in cleanly.
        cache.put(unit, "1", {"metric": 2.0})
        assert cache.get(unit, "1") == {"metric": 2.0}
        assert (cache.hits, cache.misses, cache.corrupt) == (1, 1, 1)

    def test_malformed_metrics_mapping_counts_as_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        unit = unit_of(ScenarioSpec(name="s", params={"n": 10}))
        path = cache.put(unit, "1", {"metric": 1.0})
        path.write_text(
            path.read_text(encoding="utf-8").replace("1.0", "null"), encoding="utf-8"
        )
        assert cache.get(unit, "1") is None
        assert cache.corrupt == 1 and cache.misses == 0
        assert not path.exists()

    def test_outcomes_mirrored_into_telemetry(self, tmp_path):
        from repro.obs import telemetry

        cache = ResultCache(tmp_path)
        unit = unit_of(ScenarioSpec(name="s", params={"n": 10}))
        with telemetry.collecting() as collector:
            cache.get(unit, "1")  # miss
            path = cache.put(unit, "1", {"metric": 1.0})
            cache.get(unit, "1")  # hit
            path.write_text("{not json", encoding="utf-8")
            cache.get(unit, "1")  # corrupt (evicted)
        counters = collector.snapshot()["counters"]
        assert counters["runner.cache.miss"] == 1
        assert counters["runner.cache.hit"] == 1
        assert counters["runner.cache.corrupt_evicted"] == 1

    def test_clear_by_scenario(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(unit_of(ScenarioSpec(name="a")), "1", {"m": 1.0})
        cache.put(unit_of(ScenarioSpec(name="b")), "1", {"m": 2.0})
        assert cache.clear("a") == 1
        assert cache.entry_count() == 1
        assert cache.clear() == 1
        assert cache.entry_count() == 0

    def test_clear_uses_same_sanitized_directory_as_put(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        unit = unit_of(ScenarioSpec(name="weird/name .."))
        path = cache.put(unit, "1", {"m": 1.0})
        assert (tmp_path / "cache") in path.parents
        assert cache.clear("weird/name ..") == 1
        assert cache.get(unit, "1") is None

    def test_dotty_scenario_name_cannot_escape_cache_root(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        (tmp_path / "outside.json").write_text("{}", encoding="utf-8")
        unit = unit_of(ScenarioSpec(name=".."))
        path = cache.put(unit, "1", {"m": 1.0})
        assert (tmp_path / "cache") in path.parents
        cache.clear("..")
        assert (tmp_path / "outside.json").exists()


class TestUnreadableEntries:
    """Only "not found" is a miss; any other OSError is counted apart."""

    def test_unreadable_entry_is_not_a_miss_and_not_evicted(self, tmp_path, caplog):
        import logging

        cache = ResultCache(tmp_path)
        unit = unit_of(ScenarioSpec(name="s", params={"n": 10}))
        path = cache.path_for(unit, "1")
        # A directory squatting on the entry path raises IsADirectoryError
        # (an OSError that is not FileNotFoundError) on open -- the same
        # failure class as EACCES/EMFILE, but reproducible when the test
        # suite runs as root.
        path.mkdir(parents=True)
        with caplog.at_level(logging.WARNING, logger="repro.runner.cache"):
            assert cache.get(unit, "1") is None
        assert cache.unreadable == 1
        assert (cache.hits, cache.misses, cache.corrupt) == (0, 0, 0)
        assert path.exists()  # never evicted: the bytes may be fine
        assert any("unreadable cache entry" in r.message for r in caplog.records)

    def test_unreadable_mirrored_into_telemetry(self, tmp_path):
        from repro.obs import telemetry

        cache = ResultCache(tmp_path)
        unit = unit_of(ScenarioSpec(name="s", params={"n": 10}))
        cache.path_for(unit, "1").mkdir(parents=True)
        with telemetry.collecting() as collector:
            cache.get(unit, "1")
        counters = collector.snapshot()["counters"]
        assert counters["runner.cache.unreadable"] == 1
        assert "runner.cache.miss" not in counters


class TestCrashedWriteTemps:
    """``put`` crashes between mkstemp and os.replace leave ``.tmp-*`` files."""

    @staticmethod
    def _plant_stale_temp(cache, unit):
        path = cache.put(unit, "1", {"m": 1.0})
        stale = path.parent / ".tmp-deadbeef.json"
        stale.write_text('{"half": ', encoding="utf-8")
        return path, stale

    def test_simulated_crash_mid_put_leaves_only_a_dot_temp(self, tmp_path, monkeypatch):
        import os as _os

        cache = ResultCache(tmp_path)
        unit = unit_of(ScenarioSpec(name="s", params={"n": 10}))

        def crash(src, dst):
            raise KeyboardInterrupt  # the worker died right here

        monkeypatch.setattr("repro.runner.cache.os.replace", crash)
        with pytest.raises(KeyboardInterrupt):
            cache.put(unit, "1", {"m": 1.0})
        monkeypatch.undo()
        # The atomic-write contract held: no entry appeared...
        assert cache.entry_count() == 0
        # ...and put()'s own BaseException cleanup already removed the temp,
        # so the sweep below is for the harder crash (SIGKILL) where even
        # that handler never ran.
        assert list(cache.root.glob("*/.tmp-*")) == []

    def test_entry_count_ignores_stale_temps(self, tmp_path):
        cache = ResultCache(tmp_path)
        unit = unit_of(ScenarioSpec(name="s", params={"n": 10}))
        self._plant_stale_temp(cache, unit)
        # Whether pathlib's glob matches dotfiles varies by version; an
        # orphaned temp must never masquerade as a cached result either way.
        assert cache.entry_count() == 1

    def test_clear_sweeps_stale_temps_without_counting_them(self, tmp_path):
        cache = ResultCache(tmp_path)
        unit = unit_of(ScenarioSpec(name="s", params={"n": 10}))
        path, stale = self._plant_stale_temp(cache, unit)
        assert cache.clear() == 1  # the real entry, not the temp
        assert not path.exists()
        assert not stale.exists()

    def test_clear_by_scenario_sweeps_that_directory_only(self, tmp_path):
        cache = ResultCache(tmp_path)
        unit_a = unit_of(ScenarioSpec(name="a"))
        unit_b = unit_of(ScenarioSpec(name="b"))
        _, stale_a = self._plant_stale_temp(cache, unit_a)
        _, stale_b = self._plant_stale_temp(cache, unit_b)
        assert cache.clear("a") == 1
        assert not stale_a.exists()
        assert stale_b.exists()
