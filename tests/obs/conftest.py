"""Obs-suite fixtures: never leak an active collector across tests."""

from __future__ import annotations

import pytest

from repro.obs import telemetry


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Guarantee every test starts and ends with telemetry disabled."""
    telemetry.disable()
    yield
    telemetry.disable()
