"""Tests for the structured trace log."""

from repro.sim.trace import TraceLog


class TestTraceLog:
    def test_record_and_filter_by_category(self):
        log = TraceLog()
        log.record(1.0, "tor", "relay joined", nickname="relay1")
        log.record(2.0, "botnet", "built")
        assert log.count(category="tor") == 1
        assert log.count(category="botnet") == 1
        assert len(log) == 2

    def test_filter_by_message_substring(self):
        log = TraceLog()
        log.record(1.0, "tor", "descriptor published")
        log.record(2.0, "tor", "descriptor lookup failed")
        assert log.count(message_contains="published") == 1

    def test_filter_with_predicate(self):
        log = TraceLog()
        log.record(1.0, "x", "a", value=1)
        log.record(2.0, "x", "b", value=2)
        matches = log.filter(predicate=lambda entry: entry.details.get("value") == 2)
        assert len(matches) == 1
        assert matches[0].message == "b"

    def test_last_with_and_without_category(self):
        log = TraceLog()
        log.record(1.0, "a", "first")
        log.record(2.0, "b", "second")
        assert log.last().message == "second"
        assert log.last("a").message == "first"
        assert log.last("missing") is None

    def test_disabled_log_records_nothing(self):
        log = TraceLog(enabled=False)
        assert log.record(1.0, "x", "ignored") is None
        assert len(log) == 0

    def test_max_entries_discards_oldest(self):
        log = TraceLog(max_entries=5)
        for index in range(10):
            log.record(float(index), "x", f"entry-{index}")
        assert len(log) == 5
        assert log.filter()[0].message == "entry-5"

    def test_clear(self):
        log = TraceLog()
        log.record(1.0, "x", "a")
        log.clear()
        assert len(log) == 0

    def test_entry_matches_helper(self):
        log = TraceLog()
        entry = log.record(1.0, "cat", "hello world")
        assert entry.matches("cat", "hello")
        assert not entry.matches("other", None)
        assert not entry.matches(None, "absent")
