#!/usr/bin/env python3
"""Takedown-resilience study: the Figure 4/5/6 experiments at laptop scale.

Regenerates, as text tables, the paper's three resilience results:

* Figure 4 -- average closeness/degree centrality under 30 % incremental
  deletions, with and without pruning (k = 5, 10, 15), swept through the
  ``fig4-centrality`` runner scenario;
* Figure 5 -- DDSR vs a normal (non-repairing) graph, both network-size
  columns as one runner grid over ``n``;
* Figure 6 -- how many nodes must be removed *simultaneously* to partition the
  overlay (the paper finds ~40 %), one runner work unit per network size.

Everything executes through :mod:`repro.runner`: pass ``--workers N`` to
shard the work units across processes (results are bit-identical to serial),
and re-run the script to watch the on-disk result cache serve every unit
instantly.  ``--fresh`` bypasses the cache; ``--paper-scale`` runs closer to
the published sizes (slower).

Run with:  python examples/takedown_resilience_study.py [--workers N] [--paper-scale]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import (  # noqa: E402
    render_result_rows,
    run_fig5_resilience_sweep,
    run_fig6_partition_threshold,
    sweep_scenario,
)
from repro.runner import ResultCache  # noqa: E402


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true",
                        help="use sizes close to the paper's (much slower)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the runner (1 = in-process)")
    parser.add_argument("--cache-dir", default=".repro-cache",
                        help="result cache directory (re-runs are near-instant)")
    parser.add_argument("--fresh", action="store_true",
                        help="bypass the result cache")
    args = parser.parse_args()

    if args.paper_scale:
        fig4_n, fig5_sizes, fig6_sizes = 5000, (5000, 15000), tuple(range(1000, 8001, 1000))
        closeness_sample = 48
    else:
        fig4_n, fig5_sizes, fig6_sizes = 600, (600, 1200), (200, 400, 600, 800)
        closeness_sample = 40

    cache = None if args.fresh else ResultCache(args.cache_dir)

    print("=" * 72)
    print(f"Figure 4 — centrality under 30% deletions (n={fig4_n})")
    print("=" * 72)
    fig4 = sweep_scenario(
        "fig4-centrality",
        {"degree": [5, 10, 15], "pruning": [False, True]},
        params={
            "n": fig4_n,
            "max_fraction": 0.3,
            "checkpoints": 6,
            "closeness_sample": closeness_sample,
        },
        seed=1,
        workers=args.workers,
        cache=cache,
    )
    print(render_result_rows(fig4.rows))

    print()
    print("=" * 72)
    print(f"Figure 5 — DDSR vs normal graph under deletions (n={fig5_sizes}, k=10)")
    print("=" * 72)
    fig5_rows = run_fig5_resilience_sweep(
        sizes=fig5_sizes, k=10, max_fraction=0.95, checkpoints=10,
        diameter_sample=24, seed=2, workers=args.workers, cache=cache,
    )
    print(render_result_rows(fig5_rows))
    for row in fig5_rows:
        partition = row["normal_partition_fraction"]
        print(f"\n  n={row['n']}: DDSR stays connected until "
              f"~{row['ddsr_stays_connected_until']:.0%} of nodes are deleted;"
              + (f" normal graph first partitions at ~{partition:.0%}"
                 if partition >= 0 else " normal graph never partitioned"))

    print()
    print("=" * 72)
    print("Figure 6 — simultaneous deletions needed to partition (10-regular)")
    print("=" * 72)
    fig6 = run_fig6_partition_threshold(
        sizes=fig6_sizes, k=10, seed=3, resolution=0.05, trials_per_fraction=2,
        workers=args.workers, cache=cache,
    )
    for size, count, fraction in zip(fig6.sizes, fig6.nodes_to_partition, fig6.fractions):
        print(f"  n={size:6d}: {count:6d} nodes ({fraction:.0%}) must be removed at once")
    print(f"\n  mean threshold fraction: {fig6.mean_fraction():.2f}  (paper: ~0.40)")

    if cache is not None:
        print(f"\n[runner] cache at {args.cache_dir}: "
              f"{cache.hits} unit(s) served from disk, {cache.misses} computed "
              f"(re-run this script and watch it go to 100% hits)")


if __name__ == "__main__":
    main()
