"""Streaming aggregation of per-trial metrics.

The executor feeds each finished work unit's metrics straight into a
:class:`MetricAggregator`, so a sweep with thousands of trials never has to
hold more than one row per (grid point, metric) in memory.  Variance uses
Welford's online algorithm; independent shards can be combined with
:meth:`StreamingStat.merge` (Chan et al.'s parallel update), which the
determinism tests exercise against the serial path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping

#: Two-sided 97.5 % normal quantile, for 95 % confidence intervals.
_Z95 = 1.959963984540054


@dataclass
class StreamingStat:
    """Welford mean/variance accumulator for one metric."""

    count: int = 0
    mean: float = 0.0
    #: Sum of squared deviations from the running mean (``M2`` in Welford).
    m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def push(self, value: float) -> None:
        """Fold one observation into the running moments."""
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def merge(self, other: "StreamingStat") -> None:
        """Fold another accumulator in (parallel Welford update)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count, self.mean, self.m2 = other.count, other.mean, other.m2
            self.minimum, self.maximum = other.minimum, other.maximum
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two observations)."""
        if self.count < 2:
            return 0.0
        return self.m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.count < 1:
            return 0.0
        return self.std / math.sqrt(self.count)

    @property
    def ci95(self) -> float:
        """Half-width of the normal-approximation 95 % confidence interval."""
        return _Z95 * self.stderr

    def as_dict(self) -> Dict[str, float]:
        """Summary row fragment for reporting/export."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "std": self.std,
            "ci95": self.ci95,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }


class MetricAggregator:
    """Per-metric streaming stats for one grid point."""

    def __init__(self) -> None:
        self._stats: Dict[str, StreamingStat] = {}
        self._order: List[str] = []

    def push(self, metrics: Mapping[str, float]) -> None:
        """Fold one trial's flat metric mapping in."""
        for name, value in metrics.items():
            if name not in self._stats:
                self._stats[name] = StreamingStat()
                self._order.append(name)
            self._stats[name].push(float(value))

    def merge(self, other: "MetricAggregator") -> None:
        """Fold another aggregator (e.g. a shard's) in."""
        for name in other._order:
            if name not in self._stats:
                self._stats[name] = StreamingStat()
                self._order.append(name)
            self._stats[name].merge(other._stats[name])

    def metric_names(self) -> List[str]:
        """Metric names in first-seen order."""
        return list(self._order)

    def stat(self, name: str) -> StreamingStat:
        """The accumulator for one metric."""
        return self._stats[name]

    def trials(self) -> int:
        """Number of observations folded in (max across metrics)."""
        return max((stat.count for stat in self._stats.values()), default=0)

    def row(self, *, prefix_sep: str = "_") -> Dict[str, float]:
        """Flatten to ``{metric}_mean`` / ``{metric}_std`` / ... columns.

        With a single observation per metric only the mean column is emitted
        (a lone trial has no spread worth reporting).
        """
        flat: Dict[str, float] = {}
        for name in self._order:
            stat = self._stats[name]
            if stat.count <= 1:
                flat[name] = stat.mean
            else:
                flat[f"{name}{prefix_sep}mean"] = stat.mean
                flat[f"{name}{prefix_sep}std"] = stat.std
                flat[f"{name}{prefix_sep}ci95"] = stat.ci95
        return flat


def summarize_trials(rows: Iterable[Mapping[str, float]]) -> MetricAggregator:
    """Aggregate an iterable of flat metric mappings."""
    aggregator = MetricAggregator()
    for row in rows:
        aggregator.push(row)
    return aggregator
