"""Tests for the per-figure experiment runners (small-scale sanity runs)."""

import pytest

from repro.analysis.experiments import (
    run_fig3_walkthrough,
    run_fig4_centrality,
    run_fig5_resilience,
    run_fig6_partition_threshold,
    run_hsdir_interception,
    run_integrated_botnet,
    run_pow_tradeoff,
    run_soap_campaign,
    run_superonion_vs_soap,
)


class TestFig3:
    def test_walkthrough_stays_connected(self):
        result = run_fig3_walkthrough(n=12, k=3, deletions=8, seed=1)
        assert result.final_connected()
        assert all(step["components"] == 1 for step in result.steps)
        assert any(step["repair_edges_added"] > 0 for step in result.steps)


class TestFig4:
    def test_one_curve_per_degree(self):
        results = run_fig4_centrality(n=150, degrees=(5, 10), checkpoints=3, closeness_sample=20)
        assert [r.degree for r in results] == [5, 10]
        assert all(len(r.deletions) == len(r.closeness) == len(r.degree_centrality) for r in results)

    def test_pruning_bounds_max_degree(self):
        with_pruning = run_fig4_centrality(
            n=150, degrees=(10,), checkpoints=3, pruning=True, closeness_sample=20
        )[0]
        without = run_fig4_centrality(
            n=150, degrees=(10,), checkpoints=3, pruning=False, closeness_sample=20
        )[0]
        assert max(with_pruning.max_degree) <= 15
        assert max(without.max_degree) > 15

    def test_closeness_remains_stable_under_deletions(self):
        result = run_fig4_centrality(n=200, degrees=(10,), checkpoints=4, closeness_sample=30)[0]
        assert result.closeness[-1] > 0.3
        assert result.label().startswith("deg = 10")


class TestFig5:
    def test_ddsr_vs_normal_divergence(self):
        result = run_fig5_resilience(n=200, k=10, checkpoints=8, diameter_sample=16, max_fraction=0.9)
        # DDSR stays in one component far longer than the normal graph.
        assert result.ddsr_stays_connected_until() > 0.5
        assert max(result.normal_components) > max(result.ddsr_components)
        # Normal graph eventually partitions.
        assert result.normal_partitions_at() is not None

    def test_series_lengths_match(self):
        result = run_fig5_resilience(n=120, k=10, checkpoints=4, diameter_sample=10)
        n_points = len(result.deletions)
        assert (
            len(result.ddsr_components)
            == len(result.normal_components)
            == len(result.ddsr_diameter)
            == len(result.normal_diameter)
            == n_points
        )


class TestFig6:
    def test_threshold_is_substantial_for_10_regular(self):
        result = run_fig6_partition_threshold(sizes=(150, 300), k=10, trials_per_fraction=1)
        assert len(result.fractions) == 2
        assert all(fraction >= 0.2 for fraction in result.fractions)
        assert result.mean_fraction() >= 0.2
        assert result.nodes_to_partition[0] == int(round(result.fractions[0] * 150))


class TestSoapExperiment:
    def test_basic_onionbot_is_neutralized(self):
        result = run_soap_campaign(n=80, k=6, seed=1)
        assert result.neutralized
        assert result.benign_components["nontrivial_components"] == 0

    def test_max_targets_partial_campaign(self):
        result = run_soap_campaign(n=80, k=6, seed=1, max_targets=3)
        assert not result.neutralized


class TestHsdirExperiment:
    def test_denial_then_escape_by_rotation(self):
        result = run_hsdir_interception(relays=30, seed=2)
        assert result.denial_before_rotation
        assert result.reachable_after_rotation
        assert result.relays_required == 6


class TestSuperOnionExperiment:
    def test_superonion_survives_where_basic_falls(self):
        super_result, basic_result = run_superonion_vs_soap(
            hosts=5, virtual_per_host=3, rounds=5, targets_per_round=2, seed=3
        )
        assert basic_result.neutralized
        assert super_result.host_survival_fraction > 0.0


class TestPowTradeoff:
    def test_escalation_reduces_containment(self):
        points = run_pow_tradeoff(n=60, k=6, escalation_factors=(1.0, 2.0), seed=4)
        by_factor = {point.escalation_factor: point for point in points}
        assert by_factor[1.0].containment_fraction == pytest.approx(1.0)
        assert by_factor[2.0].containment_fraction < by_factor[1.0].containment_fraction
        assert by_factor[2.0].requests_rejected > 0


class TestIntegratedBotnet:
    def test_end_to_end_coverage(self):
        result = run_integrated_botnet(bots=12, seed=5, takedown_fraction=0.25)
        assert result["coverage_before"] == 1.0
        assert result["coverage_after"] == 1.0
        assert result["components_after"] == 1.0
