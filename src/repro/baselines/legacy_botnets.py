"""Legacy botnet families and their (lack of) cryptographic protection.

Table I of the paper summarises, from Rossow et al.'s "P2PWNED" study, how
little cryptography deployed P2P botnets used: Miner sent plaintext, Storm
XOR-ed its traffic, ZeroAccess v1 used RC4 with 512-bit RSA signing, Zeus used
a chained XOR with 2048-bit RSA signing -- and all of them were vulnerable to
replay.  OnionBot, by contrast, carries every message inside Tor/SSL with
per-link keys, signs commands with the botmaster key and rejects replays via
nonces.

Besides the static comparison rows, this module produces *representative wire
messages* for each family (plaintext, XOR-obfuscated, RC4-like) so the
Table I benchmark can empirically contrast their distinguishability with the
uniform-looking OnionBot envelopes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class BotnetProfile:
    """One row of Table I plus the properties the benchmark checks."""

    name: str
    crypto: str
    signing: str
    replay_protected: bool
    transport: str
    architecture: str

    def as_row(self) -> Dict[str, str]:
        """Rendering used by the Table I report."""
        return {
            "Botnet": self.name,
            "Crypto": self.crypto,
            "Signing": self.signing,
            "Replay": "no" if self.replay_protected else "yes",
        }


#: The four legacy families of Table I (replay column: "yes" = replay possible).
LEGACY_BOTNETS: List[BotnetProfile] = [
    BotnetProfile(
        name="Miner",
        crypto="none",
        signing="none",
        replay_protected=False,
        transport="plaintext HTTP",
        architecture="peer-to-peer",
    ),
    BotnetProfile(
        name="Storm",
        crypto="XOR",
        signing="none",
        replay_protected=False,
        transport="Overnet/Stormnet UDP",
        architecture="peer-to-peer",
    ),
    BotnetProfile(
        name="ZeroAccess v1",
        crypto="RC4",
        signing="RSA 512",
        replay_protected=False,
        transport="custom TCP",
        architecture="peer-to-peer",
    ),
    BotnetProfile(
        name="Zeus",
        crypto="chained XOR",
        signing="RSA 2048",
        replay_protected=False,
        transport="custom TCP/UDP",
        architecture="peer-to-peer",
    ),
]

#: The OnionBot row the paper's design implies (section IV-E).
ONIONBOT_PROFILE = BotnetProfile(
    name="OnionBot",
    crypto="Tor + SSL, per-link keys",
    signing="botmaster key (+ rental tokens)",
    replay_protected=True,
    transport="Tor hidden services, fixed-size cells",
    architecture="self-healing peer-to-peer (DDSR)",
)


def all_profiles() -> List[BotnetProfile]:
    """Every Table I row, legacy families first, OnionBot last."""
    return [*LEGACY_BOTNETS, ONIONBOT_PROFILE]


# ----------------------------------------------------------------------
# Representative wire messages for the distinguishability experiment
# ----------------------------------------------------------------------
_SAMPLE_COMMAND = (
    b'{"cmd": "ddos", "target": "host%d.example.com", "port": 80, "duration": 3600,'
    b' "id": "%d", "group": "all"}'
)


def _plaintext_message(serial: int) -> bytes:
    return _SAMPLE_COMMAND % (serial, serial)


def _xor_message(serial: int, key: int = 0x42) -> bytes:
    return bytes(byte ^ key for byte in _plaintext_message(serial))


def _chained_xor_message(serial: int, key: int = 0x37) -> bytes:
    output = bytearray()
    previous = key
    for byte in _plaintext_message(serial):
        value = byte ^ previous
        output.append(value)
        previous = value
    return bytes(output)


def _rc4_like_message(serial: int, key: bytes = b"zeroaccess-key") -> bytes:
    """A keystream cipher stand-in for RC4 (hash-counter keystream).

    Statistically this looks random, like real RC4 output, which is exactly
    what the distinguishability experiment should reflect: ZeroAccess traffic
    is *not* separable by byte entropy, it was identified by its fixed message
    sizes and plaintext-length preservation instead (which the experiment also
    reports via the length column).
    """
    plaintext = _plaintext_message(serial)
    stream = bytearray()
    counter = 0
    while len(stream) < len(plaintext):
        stream.extend(hashlib.sha256(key + counter.to_bytes(4, "big")).digest())
        counter += 1
    return bytes(p ^ s for p, s in zip(plaintext, stream))


def sample_message(profile_name: str, serial: int = 0) -> bytes:
    """A representative C&C wire message for the named botnet family."""
    generators = {
        "Miner": _plaintext_message,
        "Storm": _xor_message,
        "ZeroAccess v1": _rc4_like_message,
        "Zeus": _chained_xor_message,
    }
    if profile_name not in generators:
        raise KeyError(f"no sample-message generator for {profile_name!r}")
    return generators[profile_name](serial)


def message_lengths_vary(profile_name: str, count: int = 16) -> bool:
    """Whether the family's message length tracks the plaintext length.

    Every legacy family preserves plaintext length (a usable traffic
    signature); OnionBot envelopes are constant-size.
    """
    lengths = {
        len(sample_message(profile_name, serial))
        for serial in range(1, count * 1000, 997)
    }
    return len(lengths) > 1  # legacy framings all leak the plaintext length
