"""Hidden-service descriptors.

A descriptor is what a hidden service publishes to its responsible HSDirs and
what a client fetches in step 3 of Figure 1: it names the service's current
introduction points and is signed by the service key.  Descriptors expire and
are republished every 24 hours (or whenever the intro-point set changes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.signing import Signature, sign, verify
from repro.tor.onion_address import OnionAddress, onion_address_from_public_key, service_identifier

#: Descriptors are considered stale after this many seconds.
DESCRIPTOR_LIFETIME = 86400.0


@dataclass
class HiddenServiceDescriptor:
    """A published hidden-service descriptor."""

    service_key: PublicKey
    introduction_points: List[bytes]
    published_at: float
    descriptor_cookie: bytes = b""
    signature: Optional[Signature] = None
    version: int = field(default=2)

    @property
    def identifier(self) -> bytes:
        """The 80-bit service identifier this descriptor belongs to."""
        return service_identifier(self.service_key)

    @property
    def onion_address(self) -> OnionAddress:
        """The onion address the descriptor serves."""
        return onion_address_from_public_key(self.service_key)

    def is_fresh(self, now: float, lifetime: float = DESCRIPTOR_LIFETIME) -> bool:
        """Whether the descriptor is still within its validity window."""
        return now - self.published_at <= lifetime

    # ------------------------------------------------------------------
    # Signing
    # ------------------------------------------------------------------
    def signing_payload(self) -> bytes:
        """Canonical byte serialization covered by the signature."""
        parts = [
            b"hs-descriptor v%d" % self.version,
            self.service_key.material,
            b"".join(sorted(self.introduction_points)),
            int(self.published_at).to_bytes(8, "big"),
            self.descriptor_cookie,
        ]
        return b"|".join(parts)

    def signed_by(self, keypair: KeyPair) -> "HiddenServiceDescriptor":
        """Return a copy of this descriptor signed with ``keypair``."""
        if keypair.public.material != self.service_key.material:
            raise ValueError("descriptor must be signed by the service's own keypair")
        signature = sign(keypair, self.signing_payload())
        return HiddenServiceDescriptor(
            service_key=self.service_key,
            introduction_points=list(self.introduction_points),
            published_at=self.published_at,
            descriptor_cookie=self.descriptor_cookie,
            signature=signature,
            version=self.version,
        )

    def verify_signature(self) -> bool:
        """Whether the descriptor's signature is present and valid."""
        if self.signature is None:
            return False
        return verify(self.service_key, self.signing_payload(), self.signature)
