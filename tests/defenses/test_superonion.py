"""Tests for the SuperOnionBot construction."""

import random

import pytest

from repro.adversary.soap import SoapAttack, is_clone
from repro.defenses.superonion import SuperOnionNetwork, host_of, virtual_node_id


class TestConstruction:
    def test_figure8_parameters(self):
        network = SuperOnionNetwork(hosts=5, virtual_per_host=3, peers_per_virtual=2, seed=1)
        assert len(network.virtual_nodes()) == 15
        # Every virtual node peers only with virtual nodes of other hosts.
        for node in network.virtual_nodes():
            owner = host_of(node)
            for peer in network.overlay.peers(node):
                assert host_of(peer) != owner

    def test_every_virtual_node_has_enough_peers(self):
        network = SuperOnionNetwork(hosts=6, virtual_per_host=3, peers_per_virtual=2, seed=2)
        assert all(network.overlay.degree(node) >= 2 for node in network.virtual_nodes())

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SuperOnionNetwork(hosts=1)
        with pytest.raises(ValueError):
            SuperOnionNetwork(hosts=3, virtual_per_host=1)

    def test_virtual_node_id_roundtrip(self):
        node = virtual_node_id(7, 3)
        assert host_of(node) == 7
        assert host_of("soap-clone-000001") is None


class TestProbeAndRecover:
    def test_healthy_network_detects_nothing(self):
        network = SuperOnionNetwork(hosts=4, virtual_per_host=3, seed=3)
        soaped, replaced = network.probe_and_recover()
        assert soaped == 0
        assert replaced == 0

    def test_soaped_virtual_node_is_detected_and_replaced(self):
        network = SuperOnionNetwork(hosts=5, virtual_per_host=3, peers_per_virtual=2, seed=4)
        attack = SoapAttack(rng=random.Random(0))
        victim = network.virtual_nodes()[0]
        result = attack.contain_node(network.overlay, victim)
        assert result.contained
        soaped, replaced = network.probe_and_recover()
        assert soaped >= 1
        assert replaced >= 1
        # The replacement is a fresh virtual node with benign peers.
        owner = network.hosts[host_of(victim)]
        assert victim not in owner.virtual_nodes
        assert all(
            any(not is_clone(peer) for peer in network.overlay.peers(node))
            for node in owner.virtual_nodes
            if node in network.overlay.graph
        )

    def test_host_survives_while_one_virtual_node_is_clean(self):
        network = SuperOnionNetwork(hosts=4, virtual_per_host=3, peers_per_virtual=2, seed=5)
        host = network.hosts[0]
        attack = SoapAttack(rng=random.Random(1))
        attack.contain_node(network.overlay, host.virtual_nodes[0])
        assert network.host_survives(host)


class TestSurvivalUnderSoap:
    def test_superonion_outlives_basic_onionbot(self):
        network = SuperOnionNetwork(hosts=6, virtual_per_host=3, peers_per_virtual=2, seed=6)
        attack = SoapAttack(rng=random.Random(2))
        result = network.withstand_soap(attack, rounds=6, targets_per_round=2)
        # The paper's claim: hosts keep re-bootstrapping virtual nodes, so the
        # physical botnet survives the SOAP campaign.
        assert result.host_survival_fraction >= 0.5
        assert result.virtual_nodes_replaced >= 1
        assert len(result.survival_timeline) == 6

    def test_survival_timeline_fractions_are_valid(self):
        network = SuperOnionNetwork(hosts=4, virtual_per_host=3, seed=7)
        attack = SoapAttack(rng=random.Random(3))
        result = network.withstand_soap(attack, rounds=3, targets_per_round=1)
        assert all(0.0 <= fraction <= 1.0 for _, fraction in result.survival_timeline)
        assert result.hosts_total == 4
