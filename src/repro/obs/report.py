"""Render a collected telemetry run to a stable JSON document + text summary.

The JSON report is the per-run provenance artifact the reproducibility
tooling attaches to: a fixed five-map shape (``meta`` / ``counters`` /
``gauges`` / ``spans`` / ``sections``) under a versioned ``schema``
identifier, serialized with sorted keys so equal content is byte-equal.
``python -m repro.obs.schema report.json`` validates a saved report against
the checked-in schema (``report_schema.json``); ``python -m repro.runner
telemetry report.json`` pretty-prints one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

#: Versioned identifier stamped into (and required from) every report.
SCHEMA_ID = "repro.obs/report.v1"


def render_report(
    collector_or_snapshot: Any, *, meta: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """Build the canonical report document from a collector (or snapshot).

    ``meta`` carries caller-supplied provenance (scenario name, spec hash,
    workers, elapsed seconds, ...); span stats gain a derived ``mean_s`` so
    readers never divide by zero themselves.
    """
    snapshot = (
        collector_or_snapshot.snapshot()
        if hasattr(collector_or_snapshot, "snapshot")
        else dict(collector_or_snapshot)
    )
    spans: Dict[str, Dict[str, float]] = {}
    for name, stats in snapshot.get("spans", {}).items():
        count = int(stats["count"])
        total = float(stats["total_s"])
        spans[name] = {
            "count": count,
            "total_s": total,
            "max_s": float(stats["max_s"]),
            "mean_s": total / count if count else 0.0,
        }
    return {
        "schema": SCHEMA_ID,
        "label": str(snapshot.get("label", "")),
        "meta": dict(meta or {}),
        "counters": {str(k): int(v) for k, v in snapshot.get("counters", {}).items()},
        "gauges": dict(snapshot.get("gauges", {})),
        "spans": spans,
        "sections": dict(snapshot.get("sections", {})),
    }


def dumps_report(report: Mapping[str, Any]) -> str:
    """Serialize a report deterministically (sorted keys, 2-space indent)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def write_report(path: Union[str, Path], report: Mapping[str, Any]) -> Path:
    """Write the stable JSON document to ``path`` (parents created)."""
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(dumps_report(report), encoding="utf-8")
    return target


def load_report(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a saved report, checking the schema identifier."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or payload.get("schema") != SCHEMA_ID:
        raise ValueError(
            f"{path}: not a {SCHEMA_ID} telemetry report "
            f"(schema={payload.get('schema')!r})"
            if isinstance(payload, dict)
            else f"{path}: not a telemetry report object"
        )
    return payload


# ----------------------------------------------------------------------
# Human-readable summary
# ----------------------------------------------------------------------
def _grouped(names) -> Dict[str, list]:
    """Group dotted names by their first segment, preserving sort order."""
    groups: Dict[str, list] = {}
    for name in sorted(names):
        groups.setdefault(name.split(".", 1)[0], []).append(name)
    return groups


def format_report(report: Mapping[str, Any]) -> str:
    """A terminal-friendly text summary of one report.

    Spans sort by total time (where the wall-clock went), counters group by
    subsystem prefix (``wave.*``, ``csr.*``, ``runner.*``, ...), gauges and
    section names are listed verbatim.
    """
    lines = [f"telemetry report  label={report.get('label') or '-'}"]
    meta = report.get("meta", {})
    for key in sorted(meta):
        lines.append(f"  meta.{key} = {meta[key]}")
    spans = report.get("spans", {})
    if spans:
        lines.append("")
        lines.append(
            f"  {'span':<40} {'count':>8} {'total_s':>10} {'mean_s':>10} {'max_s':>10}"
        )
        by_total = sorted(spans.items(), key=lambda item: -item[1]["total_s"])
        for name, stats in by_total:
            lines.append(
                f"  {name:<40} {stats['count']:>8} {stats['total_s']:>10.4f} "
                f"{stats['mean_s']:>10.6f} {stats['max_s']:>10.6f}"
            )
    counters = report.get("counters", {})
    if counters:
        lines.append("")
        for group, names in _grouped(counters).items():
            lines.append(f"  [{group}]")
            for name in names:
                lines.append(f"    {name:<42} {counters[name]:>12}")
    gauges = report.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("  gauges:")
        for name in sorted(gauges):
            lines.append(f"    {name:<42} {gauges[name]}")
    sections = report.get("sections", {})
    if sections:
        lines.append("")
        lines.append("  sections: " + ", ".join(sorted(sections)))
    return "\n".join(lines) + "\n"
