"""Figure 3 -- node removal and self-repair in a 3-regular, 12-node graph.

The paper's Figure 3 walks through eight deletions on a small 3-regular graph,
showing the dashed repair edges keeping the survivors connected.  The
benchmark regenerates that trace (plus a larger variant) and reports, per
deletion, the repair edges added and the component count.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.experiments import run_fig3_walkthrough
from repro.analysis.reporting import render_result_rows


def test_fig3_walkthrough_paper_scale(benchmark):
    """The exact Figure 3 scenario: n=12, k=3, eight deletions."""
    result = benchmark(lambda: run_fig3_walkthrough(n=12, k=3, deletions=8, seed=0))
    emit("Figure 3 — repair walk-through (n=12, k=3)", render_result_rows(result.steps))
    assert result.final_connected()


def test_fig3_walkthrough_larger_graph(benchmark):
    """Same walk-through on a 60-node graph (repair behaviour is size-independent)."""
    result = benchmark(lambda: run_fig3_walkthrough(n=60, k=4, deletions=30, seed=1))
    emit(
        "Figure 3 (extended) — repair walk-through (n=60, k=4)",
        render_result_rows(result.steps[-5:]),
    )
    assert result.final_connected()
