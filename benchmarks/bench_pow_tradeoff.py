"""Section VII-A -- proof-of-work / rate-limiting vs SOAP: the trade-off.

"Although such actions increase the adversarial resilience of the network,
they also decrease the flexibility and the recoverability of the network."
The benchmark sweeps the PoW escalation factor and the rate-limit patience and
reports both sides: how far SOAP containment gets (and what it costs the
defender) versus how much extra work/delay the botnet's own self-repair pays.
"""

from __future__ import annotations

import random

from conftest import emit

from repro.adversary.soap import SoapAttack
from repro.analysis.experiments import run_pow_tradeoff
from repro.analysis.reporting import render_result_rows
from repro.core.ddsr import DDSROverlay
from repro.defenses.rate_limit import RateLimitedAdmission, RateLimitParameters


def test_pow_escalation_tradeoff(benchmark):
    """Sweep the PoW escalation factor: SOAP containment vs repair cost."""
    points = benchmark.pedantic(
        lambda: run_pow_tradeoff(
            n=200, k=10, seed=90, escalation_factors=(1.0, 1.5, 2.0, 3.0), work_budget_per_clone=64.0
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        {
            "escalation": point.escalation_factor,
            "containment_fraction": round(point.containment_fraction, 3),
            "clones_created": point.clones_created,
            "attacker_work": round(point.attacker_work),
            "requests_rejected": point.requests_rejected,
            "botnet_repair_work": round(point.repair_work_cost),
        }
        for point in points
    ]
    emit("PoW admission trade-off (section VII-A)", render_result_rows(rows))
    by_factor = {row["escalation"]: row for row in rows}
    assert by_factor[1.0]["containment_fraction"] == 1.0
    assert by_factor[3.0]["containment_fraction"] < 0.5
    # The botnet pays for its own repairs under the same pricing.
    assert all(row["botnet_repair_work"] > 0 for row in rows)


def test_rate_limit_tradeoff(benchmark):
    """Rate limiting: SOAP slows down, but so does legitimate self-repair."""

    def run():
        rows = []
        for patience, label in ((10_000.0, "patient defender"), (1_800.0, "30-minute budget per clone")):
            overlay = DDSROverlay.k_regular(150, 8, seed=91)
            admission = RateLimitedAdmission(
                RateLimitParameters(base_delay=60.0, per_degree_delay=30.0, max_acceptable_delay=patience)
            )
            attack = SoapAttack(rng=random.Random(1), admission=admission, time_budget=48 * 3600.0)
            result = attack.run_campaign(overlay, [overlay.nodes()[0]])
            repair_overlay = DDSROverlay.k_regular(150, 8, seed=92)
            repair_overlay.remove_fraction(0.3, rng=random.Random(2))
            rows.append(
                {
                    "policy": label,
                    "containment_fraction": round(result.containment_fraction, 3),
                    "attack_delay_hours": round(result.time_spent / 3600.0, 1),
                    "repair_delay_hours": round(
                        admission.repair_delay(repair_overlay, repair_overlay.stats.repair_edges_added)
                        / 3600.0,
                        1,
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Rate-limit admission trade-off (section VII-A)", render_result_rows(rows))
    assert rows[0]["attack_delay_hours"] > 1.0
    assert all(row["repair_delay_hours"] > 0 for row in rows)
