"""Takedown strategies against the overlay.

The paper's resilience evaluation (section V-B, Figures 4--6) deletes nodes in
two regimes:

* **incremental / gradual** -- nodes are removed one at a time (cleanup,
  seizures), giving the DDSR overlay the chance to run its repair step after
  every deletion;
* **simultaneous** -- a coordinated mass takedown (e.g. DoSing many hidden
  services at once) removes a whole set before any repair can happen; Figure 6
  shows roughly 40 % of the nodes must go at once to partition the overlay.

Each strategy here produces the victim sequence and applies it to a
:class:`~repro.core.ddsr.DDSROverlay`, returning a :class:`TakedownResult`
with the partition/degree statistics the experiments plot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence

from repro.core.ddsr import DDSROverlay

NodeId = Hashable


@dataclass
class TakedownResult:
    """Outcome of a takedown campaign against an overlay."""

    strategy: str
    victims: List[NodeId]
    surviving_nodes: int
    connected_components: int
    largest_component_fraction: float
    max_degree: int
    repairs_performed: int
    #: ``{diameter, avg_path_length, avg_closeness}`` of the surviving
    #: largest component; populated only when the strategy was asked to
    #: record path metrics (``GradualTakedown(path_metrics=True)``).
    path_metrics: Optional[dict] = None

    @property
    def removed(self) -> int:
        """Number of nodes removed by the campaign."""
        return len(self.victims)

    @property
    def partitioned(self) -> bool:
        """Whether the surviving overlay split into multiple components."""
        return self.connected_components > 1


def _summarize(strategy: str, overlay: DDSROverlay, victims: List[NodeId]) -> TakedownResult:
    components, largest_fraction = overlay.connectivity_summary()
    return TakedownResult(
        strategy=strategy,
        victims=victims,
        surviving_nodes=overlay.graph.number_of_nodes(),
        connected_components=components,
        largest_component_fraction=largest_fraction,
        max_degree=overlay.max_degree(),
        repairs_performed=overlay.stats.repairs_performed,
    )


@dataclass
class RandomTakedown:
    """Remove uniformly random nodes one at a time (repair runs in between)."""

    count: int
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    def execute(self, overlay: DDSROverlay) -> TakedownResult:
        """Run the campaign against ``overlay`` (mutating it)."""
        victims: List[NodeId] = []
        for _ in range(self.count):
            nodes = overlay.nodes()
            if not nodes:
                break
            victim = self.rng.choice(nodes)
            overlay.remove_node(victim)
            victims.append(victim)
        return _summarize("random", overlay, victims)


@dataclass
class TargetedDegreeTakedown:
    """Always remove the current highest-degree node (hub-targeted cleanup).

    The per-victim candidate search runs through
    :func:`repro.graphs.backend.top_degree_nodes`: at paper scale that is a
    masked argmax over the CSR degree array, kept fresh between victims by
    the incremental delta patching instead of a full mirror rebuild.  The
    candidate list (and therefore the rng draw) is identical on both
    backends.
    """

    count: int
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    def execute(self, overlay: DDSROverlay) -> TakedownResult:
        """Run the campaign against ``overlay`` (mutating it)."""
        from repro.graphs.backend import top_degree_nodes

        victims: List[NodeId] = []
        for _ in range(self.count):
            candidates = top_degree_nodes(overlay.graph)
            if not candidates:
                break
            victim = self.rng.choice(candidates)
            overlay.remove_node(victim)
            victims.append(victim)
        return _summarize("targeted-degree", overlay, victims)


@dataclass
class SimultaneousTakedown:
    """Remove a whole set of nodes at once, before any repair can run.

    ``allow_post_repair`` controls whether the survivors get to heal *after*
    the mass removal (the paper's Figure 6 measures partitioning immediately,
    i.e. with no time to self-repair).
    """

    fraction: float
    rng: random.Random = field(default_factory=lambda: random.Random(0))
    allow_post_repair: bool = False

    def execute(self, overlay: DDSROverlay) -> TakedownResult:
        """Run the mass takedown against ``overlay`` (mutating it)."""
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")
        nodes = overlay.nodes()
        count = int(round(self.fraction * len(nodes)))
        victims = self.rng.sample(nodes, count) if count else []
        neighbor_sets = []
        for victim in victims:
            neighbors = overlay.remove_node(victim, repair=False)
            neighbor_sets.append(neighbors)
        if self.allow_post_repair:
            overlay.repair_after_mass_removal(neighbor_sets)
        return _summarize("simultaneous", overlay, list(victims))


@dataclass
class GradualTakedown:
    """Remove a fraction of nodes one at a time, recording metrics along the way.

    ``checkpoints`` gives the number of intermediate measurements; the caller
    receives one :class:`TakedownResult` per checkpoint, which is how the
    Figure 4/5 curves are produced.

    ``path_metrics=True`` additionally records the largest component's
    diameter, average shortest path length and average closeness at every
    checkpoint (``metric_sample`` sources for the path estimators, exact
    full-population closeness) -- affordable even at 100k-node scale now
    that the checkpoints ride the adaptive multi-word frontier engine.
    ``metric_sample=None`` upgrades every checkpoint to **exact**
    full-population path metrics: diameter, ASPL and closeness all come from
    one wave campaign per checkpoint
    (:func:`repro.graphs.backend.full_path_metrics`), no sampling anywhere.
    ``path_workers > 1`` then shards each exact campaign's sources across
    the invocation-wide persistent worker pool
    (:mod:`repro.runner.pool`) -- consecutive checkpoints reuse the same
    pool and shared-memory CSR publication, and the merged int64
    accumulators keep every checkpoint bit-identical to serial.
    """

    fraction: float
    checkpoints: int = 10
    rng: random.Random = field(default_factory=lambda: random.Random(0))
    path_metrics: bool = False
    metric_sample: Optional[int] = 32
    metric_rng: Optional[random.Random] = None
    path_workers: int = 1

    def _checkpoint(self, overlay: DDSROverlay, removed: List[NodeId]) -> TakedownResult:
        if not self.path_metrics:
            return _summarize("gradual", overlay, removed)
        # One component scan serves both the summary fields and the path
        # metrics (path_metric_summary reports the same component counts
        # _summarize would recompute).
        summary = overlay.path_metric_summary(
            sample_size=self.metric_sample,
            rng=self.metric_rng,
            path_workers=self.path_workers,
        )
        return TakedownResult(
            strategy="gradual",
            victims=removed,
            surviving_nodes=overlay.graph.number_of_nodes(),
            connected_components=summary["components"],
            largest_component_fraction=summary["largest_fraction"],
            max_degree=overlay.max_degree(),
            repairs_performed=overlay.stats.repairs_performed,
            path_metrics={
                "diameter": summary["diameter"],
                "avg_path_length": summary["avg_path_length"],
                "avg_closeness": summary["avg_closeness"],
            },
        )

    def execute_with_checkpoints(self, overlay: DDSROverlay) -> List[TakedownResult]:
        """Run the campaign, returning one summary per checkpoint."""
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")
        if self.checkpoints < 1:
            raise ValueError(f"checkpoints must be >= 1, got {self.checkpoints}")
        nodes = overlay.nodes()
        total_victims = int(round(self.fraction * len(nodes)))
        victims = self.rng.sample(nodes, total_victims) if total_victims else []
        per_checkpoint = max(1, total_victims // self.checkpoints) if total_victims else 1
        results: List[TakedownResult] = []
        removed: List[NodeId] = []
        for index, victim in enumerate(victims, start=1):
            if victim in overlay.graph:
                overlay.remove_node(victim)
                removed.append(victim)
            if index % per_checkpoint == 0 or index == total_victims:
                results.append(self._checkpoint(overlay, list(removed)))
        if not results:
            results.append(self._checkpoint(overlay, list(removed)))
        return results

    def execute(self, overlay: DDSROverlay) -> TakedownResult:
        """Run the campaign and return only the final summary."""
        return self.execute_with_checkpoints(overlay)[-1]


def victim_schedule(
    nodes: Sequence[NodeId],
    fraction: float,
    rng: Optional[random.Random] = None,
) -> List[NodeId]:
    """A reusable random victim ordering covering ``fraction`` of ``nodes``."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    chooser = rng if rng is not None else random.Random(0)
    count = int(round(fraction * len(nodes)))
    return chooser.sample(list(nodes), count) if count else []
