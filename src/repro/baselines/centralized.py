"""Centralized C&C baseline.

"In the centralized architecture the bots contact the C&C servers to receive
instructions ... However, it is limited by a single point of failure.  Such
botnets can be disrupted by taking down or blocking access to the C&C server"
(paper section II).  This baseline exists so the resilience benchmarks can
show the contrast quantitatively: one takedown of the right node collapses a
centralized botnet, whereas a DDSR overlay shrugs off large fractions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Set


@dataclass
class CentralizedTakedownResult:
    """Outcome of a takedown campaign against a centralized botnet."""

    bots_total: int
    bots_remaining: int
    cc_servers_total: int
    cc_servers_remaining: int
    operational: bool

    @property
    def surviving_fraction(self) -> float:
        """Fraction of bots still able to receive commands."""
        if self.bots_total == 0:
            return 0.0
        return (self.bots_remaining if self.operational else 0) / self.bots_total


@dataclass
class CentralizedBotnet:
    """Bots that all depend on a small set of C&C servers."""

    bots: Set[str] = field(default_factory=set)
    cc_servers: Set[str] = field(default_factory=set)

    @classmethod
    def build(cls, n_bots: int, n_servers: int = 1) -> "CentralizedBotnet":
        """Create ``n_bots`` bots pointed at ``n_servers`` C&C servers."""
        if n_bots < 1 or n_servers < 1:
            raise ValueError("need at least one bot and one C&C server")
        return cls(
            bots={f"bot-{index:05d}" for index in range(n_bots)},
            cc_servers={f"cc-{index:02d}" for index in range(n_servers)},
        )

    @property
    def operational(self) -> bool:
        """The botnet works only while at least one C&C server is reachable."""
        return bool(self.cc_servers) and bool(self.bots)

    def reachable_bots(self) -> int:
        """Bots able to receive commands right now."""
        return len(self.bots) if self.operational else 0

    # ------------------------------------------------------------------
    def take_down_bots(self, count: int, rng: Optional[random.Random] = None) -> int:
        """Clean up ``count`` individual bots (barely dents a centralized botnet)."""
        rng = rng if rng is not None else random.Random(0)
        victims = rng.sample(sorted(self.bots), min(count, len(self.bots)))
        self.bots.difference_update(victims)
        return len(victims)

    def take_down_cc(self, count: int = 1, rng: Optional[random.Random] = None) -> int:
        """Seize ``count`` C&C servers (the defender's winning move here)."""
        rng = rng if rng is not None else random.Random(0)
        victims = rng.sample(sorted(self.cc_servers), min(count, len(self.cc_servers)))
        self.cc_servers.difference_update(victims)
        return len(victims)

    def summarize(self, original_bots: int, original_servers: int) -> CentralizedTakedownResult:
        """Snapshot after whatever takedowns have been applied."""
        return CentralizedTakedownResult(
            bots_total=original_bots,
            bots_remaining=len(self.bots),
            cc_servers_total=original_servers,
            cc_servers_remaining=len(self.cc_servers),
            operational=self.operational,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def takedown_comparison(n_bots: int, seed: int = 0) -> List[CentralizedTakedownResult]:
        """Effect of (a) removing 40 % of bots vs (b) removing the single C&C.

        Returned in that order; used by the Figure 6 benchmark's commentary to
        contrast the ~40 % simultaneous-takedown threshold of the DDSR overlay
        with the single-node fragility of the centralized design.
        """
        rng = random.Random(seed)
        scenario_a = CentralizedBotnet.build(n_bots, 1)
        scenario_a.take_down_bots(int(0.4 * n_bots), rng)
        result_a = scenario_a.summarize(n_bots, 1)

        scenario_b = CentralizedBotnet.build(n_bots, 1)
        scenario_b.take_down_cc(1, rng)
        result_b = scenario_b.summarize(n_bots, 1)
        return [result_a, result_b]
