"""Tests for graph generators."""

import networkx as nx
import pytest

from repro.graphs.adjacency import GraphError
from repro.graphs.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    from_networkx,
    k_regular_graph,
    relabel,
    ring_graph,
    to_networkx,
)
from repro.graphs.metrics import number_connected_components


class TestKRegular:
    def test_every_node_has_degree_k(self):
        graph = k_regular_graph(100, 6, seed=1)
        assert all(graph.degree(node) == 6 for node in graph.nodes())

    def test_paper_parameters_small_scale(self):
        for k in (5, 10, 15):
            graph = k_regular_graph(200, k, seed=k)
            assert graph.number_of_nodes() == 200
            assert all(graph.degree(node) == k for node in graph.nodes())

    def test_deterministic_for_seed(self):
        a = k_regular_graph(60, 4, seed=3)
        b = k_regular_graph(60, 4, seed=3)
        assert sorted(map(sorted, a.edges())) == sorted(map(sorted, b.edges()))

    def test_odd_product_rejected(self):
        with pytest.raises(GraphError):
            k_regular_graph(5, 3)

    def test_k_must_be_less_than_n(self):
        with pytest.raises(GraphError):
            k_regular_graph(5, 5)

    def test_zero_degree_graph(self):
        graph = k_regular_graph(10, 0)
        assert graph.number_of_edges() == 0

    def test_usually_connected_at_k_ten(self):
        graph = k_regular_graph(300, 10, seed=5)
        assert number_connected_components(graph) == 1


class TestOtherGenerators:
    def test_erdos_renyi_edge_count_reasonable(self):
        graph = erdos_renyi_graph(100, 0.1, seed=1)
        expected = 0.1 * 100 * 99 / 2
        assert 0.5 * expected < graph.number_of_edges() < 1.5 * expected

    def test_erdos_renyi_p_bounds(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(10, 1.5)

    def test_barabasi_albert_min_degree(self):
        graph = barabasi_albert_graph(100, 3, seed=2)
        assert graph.number_of_nodes() == 100
        assert all(graph.degree(node) >= 3 for node in graph.nodes() if node > 3)

    def test_barabasi_albert_invalid_m(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(10, 0)

    def test_ring_graph(self):
        graph = ring_graph(5)
        assert graph.number_of_edges() == 5
        assert all(graph.degree(node) == 2 for node in graph.nodes())

    def test_ring_too_small(self):
        with pytest.raises(GraphError):
            ring_graph(2)


class TestNetworkxConversion:
    def test_roundtrip_preserves_structure(self):
        graph = k_regular_graph(50, 4, seed=7)
        back = from_networkx(to_networkx(graph))
        assert back.number_of_nodes() == graph.number_of_nodes()
        assert back.number_of_edges() == graph.number_of_edges()

    def test_from_networkx_drops_self_loops(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge(1, 1)
        nx_graph.add_edge(1, 2)
        graph = from_networkx(nx_graph)
        assert graph.number_of_edges() == 1

    def test_relabel(self):
        graph = ring_graph(3)
        mapped = relabel(graph, {0: "a", 1: "b", 2: "c"})
        assert set(mapped.nodes()) == {"a", "b", "c"}
        assert mapped.has_edge("a", "b")
