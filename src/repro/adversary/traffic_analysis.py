"""Passive traffic analysis against botnet wire formats.

The stealth argument of sections IV-D and V rests on two properties of
OnionBot traffic: every message is the same fixed size, and its bytes are
indistinguishable from uniform randomness, so a relaying bot or network
observer learns nothing about source, destination, or nature.  Legacy botnets
(Table I) fail both properties, which is exactly how behavioural detectors
such as BotFinder or DISCLOSURE fingerprint their C&C channels.

This module models a passive observer who collects wire blobs and tries to
(1) characterise a single flow and (2) distinguish two flows from each other.
It is used by the Table I benchmark and by the mapping/stealth example.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Sequence

from repro.crypto.elligator import byte_entropy


@dataclass(frozen=True)
class FlowFeatures:
    """Features a passive observer can extract from a sequence of messages."""

    samples: int
    mean_length: float
    length_stdev: float
    distinct_lengths: int
    mean_entropy: float
    min_entropy: float

    @property
    def constant_size(self) -> bool:
        """Whether every observed message had the same wire size."""
        return self.distinct_lengths <= 1

    @property
    def looks_encrypted(self) -> bool:
        """Whether the payload bytes are high-entropy (ciphertext-like).

        The threshold is length-aware: a short uniform-random message cannot
        reach 8 bits/byte of empirical entropy (at most ``log2(length)``), so
        the bar is 90 % of the maximum achievable for the observed sizes.
        """
        import math

        achievable = math.log2(min(max(self.mean_length, 2.0), 256.0))
        return self.min_entropy >= 0.9 * achievable


def extract_features(messages: Sequence[bytes]) -> FlowFeatures:
    """Compute :class:`FlowFeatures` over a batch of observed messages."""
    if not messages:
        raise ValueError("cannot extract features from an empty flow")
    lengths = [len(message) for message in messages]
    entropies = [byte_entropy(message) for message in messages]
    return FlowFeatures(
        samples=len(messages),
        mean_length=statistics.fmean(lengths),
        length_stdev=statistics.pstdev(lengths) if len(lengths) > 1 else 0.0,
        distinct_lengths=len(set(lengths)),
        mean_entropy=statistics.fmean(entropies),
        min_entropy=min(entropies),
    )


@dataclass
class PassiveObserver:
    """A network observer collecting wire blobs from one or more flows."""

    collected: List[bytes] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.collected is None:
            self.collected = []

    def observe(self, blob: bytes) -> None:
        """Record one observed message."""
        self.collected.append(bytes(blob))

    def observe_many(self, blobs: Sequence[bytes]) -> None:
        """Record a batch of observed messages."""
        for blob in blobs:
            self.observe(blob)

    def report(self) -> FlowFeatures:
        """Feature summary of everything observed so far."""
        return extract_features(self.collected)

    def classify(self) -> str:
        """Best-effort classification of the observed flow.

        Returns one of ``"plaintext-like"``, ``"obfuscated-variable-size"``
        (ciphertext-looking but size-leaking, e.g. RC4-framed legacy traffic)
        or ``"uniform-fixed-size"`` (the OnionBot / Tor-cell profile, which is
        also what benign Tor traffic looks like -- i.e. unclassifiable).
        """
        features = self.report()
        if not features.looks_encrypted:
            return "plaintext-like"
        if not features.constant_size:
            return "obfuscated-variable-size"
        return "uniform-fixed-size"


def distinguishable(flow_a: Sequence[bytes], flow_b: Sequence[bytes]) -> bool:
    """Whether a passive observer can tell two flows apart.

    Uses the two features the paper cares about -- size leakage and byte
    entropy.  Two flows are considered distinguishable when their feature
    summaries differ materially in either dimension.
    """
    features_a = extract_features(flow_a)
    features_b = extract_features(flow_b)
    if features_a.constant_size != features_b.constant_size:
        return True
    if abs(features_a.mean_length - features_b.mean_length) > max(
        8.0, 0.05 * max(features_a.mean_length, features_b.mean_length)
    ):
        return True
    return abs(features_a.mean_entropy - features_b.mean_entropy) > 0.5


def message_classes_leak(flows: Sequence[Sequence[bytes]]) -> bool:
    """Whether *any* pair of message classes is mutually distinguishable.

    The OnionBot requirement (section IV-D) is that broadcast, directed,
    group and maintenance messages all look identical to relaying bots; this
    helper checks an arbitrary collection of per-class flows for leaks.
    """
    for index, flow_a in enumerate(flows):
        for flow_b in flows[index + 1:]:
            if distinguishable(flow_a, flow_b):
                return True
    return False
