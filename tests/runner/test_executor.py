"""Tests for the sharded executor: determinism, caching, aggregation."""

import pytest

from repro.runner.cache import ResultCache
from repro.runner.executor import execute, run_scenario
from repro.runner.registry import scenario, unregister
from repro.runner.spec import ScenarioSpec

#: A fast scenario exercised throughout: ablation on a small overlay.
FAST = dict(params={"n": 60, "k": 6, "fraction": 0.5}, seed=9)


class TestSerialExecution:
    def test_grid_times_trials_units_in_schedule_order(self):
        result = run_scenario(
            "ablation-repair-policy",
            grid={"policy": ["clique", "none"]},
            trials=3,
            **FAST,
        )
        assert len(result.unit_metrics) == 6
        assert len(result.points) == 2
        assert [point["policy"] for point in result.points] == ["clique", "none"]
        assert all(aggregate.trials() == 3 for aggregate in result.aggregates)

    def test_rows_merge_params_and_aggregate_metrics(self):
        result = run_scenario(
            "ablation-repair-policy", grid={"policy": ["clique"]}, trials=2, **FAST
        )
        row = result.rows()[0]
        assert row["policy"] == "clique"
        assert row["trials"] == 2
        assert "components_mean" in row and "components_ci95" in row

    def test_scalar_lookup(self):
        result = run_scenario(
            "ablation-repair-policy", grid={"policy": ["clique", "none"]}, **FAST
        )
        clique = result.scalar("components", policy="clique")
        none = result.scalar("components", policy="none")
        assert none >= clique
        with pytest.raises(KeyError):
            result.scalar("components", policy="missing")

    def test_seed_changes_results_worker_count_does_not(self):
        a = run_scenario("ablation-repair-policy", grid={"policy": ["none"]},
                         params=FAST["params"], seed=1)
        b = run_scenario("ablation-repair-policy", grid={"policy": ["none"]},
                         params=FAST["params"], seed=2)
        assert a.unit_metrics != b.unit_metrics


class TestParallelDeterminism:
    def test_parallel_results_bit_identical_to_serial(self):
        spec = ScenarioSpec(
            name="ablation-repair-policy",
            params=FAST["params"],
            grid={"policy": ["clique", "ring", "none"]},
            trials=2,
            seed=FAST["seed"],
        )
        serial = execute(spec, workers=1)
        parallel = execute(spec, workers=3, shard_size=1)
        assert parallel.unit_metrics == serial.unit_metrics
        assert parallel.rows() == serial.rows()

    def test_composed_scenario_parallel_matches_serial(self):
        kwargs = dict(
            grid={"join_rate": [1.0, 4.0]},
            params={"n": 60, "k": 6, "hours": 3.0},
            trials=2,
            seed=21,
        )
        serial = run_scenario("soap-under-churn", workers=1, **kwargs)
        parallel = run_scenario("soap-under-churn", workers=4, **kwargs)
        assert parallel.unit_metrics == serial.unit_metrics

    def test_at_scale_trial_grid_parallel_matches_serial(self):
        """soap-admission-grid shards one unit per submission, bit-identically."""
        kwargs = dict(
            grid={"admission": ["open", "pow"]},
            params={"n": 150, "k": 8},
            trials=2,
            seed=33,
        )
        serial = run_scenario("soap-admission-grid", workers=1, **kwargs)
        parallel = run_scenario("soap-admission-grid", workers=4, **kwargs)
        assert parallel.unit_metrics == serial.unit_metrics
        assert parallel.rows() == serial.rows()

    def test_worker_init_applies_parent_policies(self):
        """Workers re-force the parent's resolved backend/wave policies.

        Forced state set via ``backend.use()`` lives in process globals that
        spawn/forkserver children never inherit; the initializer must apply
        it so results are computed under the policy the cache key records.
        """
        pytest.importorskip("numpy")
        from repro.graphs import backend
        from repro.runner.executor import _worker_init

        previous = backend.use(None)
        previous_batch = backend.use_bfs_batch(None)
        try:
            _worker_init("", "", "python", 128)
            assert backend.policy() == "python"
            assert backend.bfs_batch_policy() == 128
        finally:
            backend.use(previous)
            backend.use_bfs_batch(previous_batch)

    def test_forced_backend_parallel_matches_serial(self):
        """The parallel==serial guarantee holds under a forced backend too."""
        pytest.importorskip("numpy")
        from repro.graphs import backend

        kwargs = dict(grid={"policy": ["clique", "none"]}, trials=2, **FAST)
        with backend.using("python"):
            serial = run_scenario("ablation-repair-policy", workers=1, **kwargs)
            parallel = run_scenario("ablation-repair-policy", workers=2, **kwargs)
        assert parallel.unit_metrics == serial.unit_metrics

    def test_scenario_shard_size_hint_caps_executor_sharding(self):
        """A heavy scenario's shard_size=1 hint splits shards unit-per-worker."""
        from repro.runner import executor as executor_module
        from repro.runner.registry import get_scenario

        assert get_scenario("soap-admission-grid").shard_size == 1
        assert get_scenario("soap-at-scale").shard_size == 1
        assert get_scenario("resilience-at-scale").shard_size == 1
        observed = []
        original = executor_module._shards

        def recording(pending, shard_size):
            observed.append(shard_size)
            return original(pending, shard_size)

        executor_module._shards = recording
        try:
            run_scenario(
                "soap-admission-grid",
                params={"n": 120, "k": 6},
                trials=3,
                seed=5,
                workers=2,
            )
            run_scenario(
                "ablation-repair-policy", workers=2, trials=3, **FAST
            )
        finally:
            executor_module._shards = original
        # Hinted scenario: forced to 1 unit per shard; unhinted: default (8).
        assert observed[0] == 1
        assert observed[1] == executor_module.DEFAULT_SHARD_SIZE

    def test_shard_size_hint_validation(self):
        from repro.runner.registry import scenario as register

        with pytest.raises(ValueError):
            register(name="bad-shard-hint", shard_size=0)


class TestCaching:
    def test_second_run_served_entirely_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_scenario(
            "ablation-repair-policy", grid={"policy": ["clique", "none"]},
            trials=2, cache=cache, **FAST,
        )
        second = run_scenario(
            "ablation-repair-policy", grid={"policy": ["clique", "none"]},
            trials=2, cache=cache, **FAST,
        )
        assert first.cache_misses == 4 and first.cache_hits == 0
        assert second.cache_hits == 4 and second.cache_misses == 0
        assert second.unit_metrics == first.unit_metrics

    def test_extended_sweep_only_computes_new_units(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_scenario("ablation-repair-policy", grid={"policy": ["clique"]},
                     cache=cache, **FAST)
        extended = run_scenario(
            "ablation-repair-policy", grid={"policy": ["clique", "ring"]},
            cache=cache, **FAST,
        )
        assert extended.cache_hits == 1
        assert extended.cache_misses == 1

    def test_corrupt_entry_surfaces_in_run_result(self, tmp_path):
        """A planted undecodable entry is evicted, recomputed, and reported."""
        cache = ResultCache(tmp_path)
        first = run_scenario(
            "ablation-repair-policy", grid={"policy": ["clique", "none"]},
            trials=1, cache=cache, **FAST,
        )
        assert first.cache_corrupt == 0
        victim = next(tmp_path.glob("*/*.json"))
        victim.write_bytes(b"\x80not json")
        second = run_scenario(
            "ablation-repair-policy", grid={"policy": ["clique", "none"]},
            trials=1, cache=cache, **FAST,
        )
        assert second.cache_corrupt == 1
        assert second.cache_hits == 1 and second.cache_misses == 1
        assert second.unit_metrics == first.unit_metrics
        # The eviction let the recompute repair the entry in place.
        third = run_scenario(
            "ablation-repair-policy", grid={"policy": ["clique", "none"]},
            trials=1, cache=cache, **FAST,
        )
        assert third.cache_corrupt == 0 and third.cache_hits == 2

    def test_explicit_default_value_hits_same_entry_as_omitted(self, tmp_path):
        # Cache keys are derived from the *resolved* parameter set, so
        # passing a parameter at its registered default is the same run.
        cache = ResultCache(tmp_path)
        run_scenario("fig3-walkthrough", seed=4, cache=cache)
        explicit = run_scenario("fig3-walkthrough", params={"n": 12}, seed=4, cache=cache)
        assert explicit.cache_hits == 1 and explicit.cache_misses == 0

    def test_backend_switch_misses_cache(self, tmp_path):
        """A run cached under the python backend is recomputed under fast."""
        import pytest

        pytest.importorskip("numpy")
        from repro.graphs import backend

        cache = ResultCache(tmp_path)
        with backend.using("python"):
            first = run_scenario(
                "ablation-repair-policy", grid={"policy": ["clique"]},
                cache=cache, **FAST,
            )
            repeat = run_scenario(
                "ablation-repair-policy", grid={"policy": ["clique"]},
                cache=cache, **FAST,
            )
        assert first.cache_misses == 1 and repeat.cache_hits == 1
        with backend.using("fast"):
            switched = run_scenario(
                "ablation-repair-policy", grid={"policy": ["clique"]},
                cache=cache, **FAST,
            )
        assert switched.cache_hits == 0 and switched.cache_misses == 1
        # The backends are bit-identical, so the recomputed values agree --
        # but that is the contract under test elsewhere, not a cache property.
        assert switched.unit_metrics == first.unit_metrics

    def test_param_change_misses_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_scenario("ablation-repair-policy", grid={"policy": ["clique"]},
                     cache=cache, **FAST)
        changed = run_scenario(
            "ablation-repair-policy", grid={"policy": ["clique"]},
            params={"n": 70, "k": 6, "fraction": 0.5}, seed=FAST["seed"], cache=cache,
        )
        assert changed.cache_hits == 0 and changed.cache_misses == 1


class TestShardedPathMetrics:
    """Source-sharded exact full-population path metrics: serial == parallel."""

    def test_sharded_bit_identical_to_serial(self):
        pytest.importorskip("numpy")
        from repro.graphs import fast
        from repro.graphs.generators import k_regular_graph
        from repro.runner.executor import sharded_full_path_metrics

        graph = k_regular_graph(600, 8, seed=41)
        serial = fast.full_path_metrics(graph)
        for workers in (2, 3):
            assert sharded_full_path_metrics(graph, workers=workers) == serial
        # An uneven explicit shard size changes the split, never the result.
        assert sharded_full_path_metrics(graph, workers=2, shard_size=97) == serial

    def test_sharded_on_partitioned_graph(self):
        pytest.importorskip("numpy")
        import random

        from repro.graphs import fast, metrics
        from repro.graphs.generators import k_regular_graph
        from repro.runner.executor import sharded_full_path_metrics

        graph = k_regular_graph(300, 6, seed=43)
        rng = random.Random(44)
        for victim in rng.sample(graph.nodes(), 120):
            graph.remove_node(victim)
        expected = metrics.full_path_metrics(graph)
        assert fast.full_path_metrics(graph) == expected
        assert sharded_full_path_metrics(graph, workers=2) == expected

    def test_sharded_through_overlay_summary(self):
        pytest.importorskip("numpy")
        from repro.core.ddsr import DDSROverlay
        from repro.graphs import backend

        overlay = DDSROverlay.k_regular(500, 8, seed=45)
        with backend.using("fast"):
            serial = overlay.path_metric_summary()
            parallel = overlay.path_metric_summary(path_workers=2)
        assert parallel == serial

    def test_path_workers_env_does_not_perturb_scenario_results(self, monkeypatch):
        """REPRO_PATH_WORKERS is an execution knob: same seeds, same values.

        Regression for the original design where ``path_workers`` was a
        scenario *parameter* -- parameters feed unit-seed derivation, so the
        'performance' knob silently reran a different experiment.
        """
        pytest.importorskip("numpy")
        from repro.runner.executor import PATH_WORKERS_ENV_VAR

        kwargs = dict(
            params={"n": 300, "checkpoints": 2}, trials=1, seed=7, workers=1
        )
        serial = run_scenario("resilience-at-scale", **kwargs)
        monkeypatch.setenv(PATH_WORKERS_ENV_VAR, "2")
        sharded = run_scenario("resilience-at-scale", **kwargs)
        assert sharded.unit_metrics == serial.unit_metrics
        assert sharded.spec.spec_hash() == serial.spec.spec_hash()

    def test_path_workers_env_validation(self, monkeypatch):
        from repro.core.errors import ConfigError
        from repro.runner.executor import (
            PATH_WORKERS_ENV_VAR,
            path_workers_policy,
        )

        assert path_workers_policy() == 1
        monkeypatch.setenv(PATH_WORKERS_ENV_VAR, "3")
        assert path_workers_policy() == 3
        for bad in ("0", "-2", "two", "1.5"):
            monkeypatch.setenv(PATH_WORKERS_ENV_VAR, bad)
            with pytest.raises(ConfigError, match="REPRO_PATH_WORKERS"):
                path_workers_policy()

    def test_sharded_validates_workers_and_shard_size(self):
        pytest.importorskip("numpy")
        from repro.graphs.generators import k_regular_graph
        from repro.runner.executor import sharded_full_path_metrics

        graph = k_regular_graph(50, 4, seed=46)
        with pytest.raises(ValueError, match="workers"):
            sharded_full_path_metrics(graph, workers=0)
        with pytest.raises(ValueError, match="shard_size"):
            sharded_full_path_metrics(graph, workers=2, shard_size=0)


class TestValidation:
    def test_rejects_bad_worker_count(self):
        spec = ScenarioSpec(name="ablation-repair-policy")
        with pytest.raises(ValueError, match="workers"):
            execute(spec, workers=0)

    def test_rejects_param_grid_overlap(self):
        with pytest.raises(ValueError, match="both params and grid"):
            ScenarioSpec(name="s", params={"n": 1}, grid={"n": [1, 2]})

    def test_rejects_non_primitive_params(self):
        with pytest.raises(TypeError, match="JSON primitive"):
            ScenarioSpec(name="s", params={"policy": object()})

    def test_one_shot_iterable_sizes_accepted_by_fig6(self):
        from repro.analysis.experiments import run_fig6_partition_threshold

        result = run_fig6_partition_threshold(
            sizes=(s for s in (60, 80)), k=6, seed=3, trials_per_fraction=1
        )
        assert result.sizes == [60, 80]
        assert len(result.fractions) == 2

    def test_registered_scenario_runs_through_executor(self):
        @scenario(name="test-exec-inline", defaults={"bias": 10})
        def inline(*, seed: int, bias: int):
            return {"value": float(seed % 1000 + bias)}

        try:
            result = run_scenario("test-exec-inline", trials=2, seed=3)
            assert len(result.unit_metrics) == 2
            # Distinct trials get distinct derived seeds.
            assert result.unit_metrics[0] != result.unit_metrics[1]
        finally:
            unregister("test-exec-inline")
