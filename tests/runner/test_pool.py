"""Pool-lifecycle tests: persistence, shm publication, and failure paths.

The persistent pool's hard contracts, each locked by a differential or a
failure injection:

* consecutive campaigns and checkpoints reuse one executor (a single
  ``runner.pool_spinup`` span) and one shared-memory publication (attach
  once, then delta patches);
* pooled results are bit-identical to serial, including across graph
  mutations between checkpoints;
* a killed worker is respawned exactly once and only unmerged shards are
  retried; a second kill or a raising task surfaces with the failing
  shard's unit context;
* no ``/dev/shm`` segment with the pool prefix survives a close, a kill,
  or the published graph's death.
"""

from __future__ import annotations

import gc
import glob
import os
import signal

import pytest

np = pytest.importorskip("numpy")

from repro.graphs import backend, fast
from repro.graphs.generators import k_regular_graph
from repro.obs import telemetry
from repro.runner import pool as pool_mod
from repro.runner.executor import run_scenario, sharded_full_path_metrics
from repro.runner.pool import (
    SHM_PREFIX,
    PoolError,
    PoolTaskError,
    WorkerPool,
    get_pool,
    shutdown_pools,
)
from repro.runner.registry import scenario, unregister


def _pool_segments():
    """Live ``/dev/shm`` segments created by the pool (leak audit)."""
    return glob.glob(f"/dev/shm/{SHM_PREFIX}*")


@pytest.fixture(autouse=True)
def _fresh_pools():
    """Each test starts from cold pools and must leak no segments."""
    shutdown_pools()
    yield
    shutdown_pools()
    gc.collect()
    assert _pool_segments() == []


class TestPoolLifecycle:
    def test_get_pool_is_persistent_and_recreated_after_close(self):
        first = get_pool(2)
        assert get_pool(2) is first
        first.close()
        second = get_pool(2)
        assert second is not first
        assert not second.closed

    def test_closed_pool_refuses_work(self):
        pool = WorkerPool(2)
        pool.close()
        with pytest.raises(PoolError, match="closed"):
            pool.publish_csr(k_regular_graph(20, 4, seed=0), object())

    def test_one_spinup_span_across_campaigns_and_checkpoints(self):
        """Two unit campaigns and two path campaigns: one executor spin-up."""
        graph = k_regular_graph(300, 6, seed=7)
        kwargs = dict(params={"n": 60, "hours": 3}, trials=2, workers=2)
        with telemetry.collecting() as collector:
            run_scenario("soap-under-churn", seed=0, **kwargs)
            run_scenario("soap-under-churn", seed=1, **kwargs)
            with backend.using("fast"):
                sharded_full_path_metrics(graph, workers=2)
                graph.remove_node(0)
                sharded_full_path_metrics(graph, workers=2)
        snap = collector.snapshot()
        assert snap["spans"]["runner.pool_spinup"]["count"] == 1


class TestSharedMemoryPublication:
    def test_checkpoints_reuse_publication_via_delta_patches(self):
        """Attach once, then ship only index-space patches; all bit-identical."""
        graph = k_regular_graph(500, 6, seed=11)
        expected, got = [], []
        with telemetry.collecting() as collector:
            with backend.using("fast"):
                for victims in ((), (3, 77), (141, 200, 250)):
                    for victim in victims:
                        graph.remove_node(victim)
                    got.append(sharded_full_path_metrics(graph, workers=2))
        # Serial ground truth computed afterwards on an identical replica.
        replica = k_regular_graph(500, 6, seed=11)
        with backend.using("fast"):
            for victims in ((), (3, 77), (141, 200, 250)):
                for victim in victims:
                    replica.remove_node(victim)
                expected.append(fast.full_path_metrics(replica))
        assert got == expected
        counters = collector.snapshot()["counters"]
        assert counters["runner.pool.publish_attach"] == 1
        assert counters["runner.pool.publish_patch"] == 2
        assert counters.get("runner.pool.publish_reattach", 0) == 0
        # Warm workers patched their mirrors instead of re-attaching.
        assert counters["runner.pool.shm_patch"] >= 2
        assert counters["runner.pool.bytes_shipped"] > 0

    def test_compaction_forces_reattach_not_a_wrong_patch(self):
        """A rebuilt CSR (new epoch, same graph) must re-ship the arrays."""
        graph = k_regular_graph(400, 6, seed=13)
        with telemetry.collecting() as collector:
            with backend.using("fast"):
                first = sharded_full_path_metrics(graph, workers=2)
                graph.remove_node(5)
                # Simulate a cache-dropping compaction: the next csr_of()
                # rebuilds from scratch in a fresh index space.
                if hasattr(graph, "_csr_cache"):
                    delattr(graph, "_csr_cache")
                second = sharded_full_path_metrics(graph, workers=2)
                serial = fast.full_path_metrics(graph)
        assert second == serial
        assert first != second
        counters = collector.snapshot()["counters"]
        assert counters["runner.pool.publish_reattach"] == 1
        assert counters.get("runner.pool.publish_patch", 0) == 0

    def test_segments_released_when_published_graph_dies(self):
        """The weakref finalizer unlinks /dev/shm before the pool closes."""
        graph = k_regular_graph(300, 6, seed=17)
        with backend.using("fast"):
            sharded_full_path_metrics(graph, workers=2)
        assert _pool_segments() != []
        del graph
        gc.collect()
        assert _pool_segments() == []

    def test_close_unlinks_segments_while_graph_still_alive(self):
        graph = k_regular_graph(300, 6, seed=19)
        with backend.using("fast"):
            sharded_full_path_metrics(graph, workers=2)
        assert _pool_segments() != []
        shutdown_pools()
        assert _pool_segments() == []
        # The pool also released its delta-log consumer mark on the graph.
        assert all(
            not name.startswith("pool:") for name in graph._delta_marks
        )


def _register_kamikaze(name: str, kills: str = "once"):
    """A scenario whose worker SIGKILLs itself (``once`` or ``always``)."""

    @scenario(name=name, defaults={"marker": "", "bias": 0})
    def kamikaze(*, seed: int, marker: str, bias: int):
        if kills == "always" or not os.path.exists(marker):
            if kills == "once":
                with open(marker, "w", encoding="utf-8"):
                    pass
            os.kill(os.getpid(), signal.SIGKILL)
        return {"value": float(seed % 1000 + bias)}

    return kamikaze


class TestFailurePaths:
    def test_killed_worker_respawns_and_retries_only_unfinished(self, tmp_path):
        """First attempt dies mid-campaign; the respawned pool completes it."""
        _register_kamikaze("test-pool-kamikaze", kills="once")
        try:
            marker = str(tmp_path / "survived")
            with telemetry.collecting() as collector:
                result = run_scenario(
                    "test-pool-kamikaze",
                    params={"marker": marker, "bias": 7},
                    trials=2,
                    seed=3,
                    workers=2,
                )
            serial = run_scenario(
                "test-pool-kamikaze",
                params={"marker": marker, "bias": 7},
                trials=2,
                seed=3,
            )
            assert result.unit_metrics == serial.unit_metrics
            assert collector.snapshot()["counters"]["runner.pool.respawn"] == 1
        finally:
            unregister("test-pool-kamikaze")

    def test_repeatedly_killed_worker_raises_pool_error_with_context(
        self, tmp_path, monkeypatch
    ):
        # Degraded-serial would run the kamikaze *in-parent* (killing the
        # test process); disable it to reach the fail-fast PoolError path.
        monkeypatch.setenv("REPRO_DEGRADED_SERIAL", "0")
        _register_kamikaze("test-pool-kamikaze-always", kills="always")
        try:
            with pytest.raises(PoolError, match="unfinished"):
                run_scenario(
                    "test-pool-kamikaze-always",
                    params={"marker": str(tmp_path / "never")},
                    trials=2,
                    seed=3,
                    workers=2,
                )
        finally:
            unregister("test-pool-kamikaze-always")
        # The broken executor left nothing behind.
        shutdown_pools()
        assert _pool_segments() == []

    def test_raising_task_surfaces_unit_context_and_cause(self):
        @scenario(name="test-pool-raises", defaults={"bias": 0})
        def raises(*, seed: int, bias: int):
            raise ValueError(f"boom seed={seed}")

        try:
            with pytest.raises(PoolTaskError) as excinfo:
                run_scenario(
                    "test-pool-raises",
                    params={"bias": 2},
                    trials=2,
                    seed=5,
                    workers=2,
                )
            message = str(excinfo.value)
            assert "test-pool-raises" in message
            assert "(index, params, seed)" in message
            assert "'bias': 2" in message
            assert isinstance(excinfo.value.__cause__, ValueError)
        finally:
            unregister("test-pool-raises")

    def test_killed_idle_worker_does_not_poison_path_campaign(self):
        """Kill a pool worker between checkpoints: respawn, same numbers."""
        graph = k_regular_graph(400, 6, seed=23)
        with backend.using("fast"):
            serial = fast.full_path_metrics(graph)
            first = sharded_full_path_metrics(graph, workers=2)
            assert first == serial
            pool = get_pool(2)
            victim = next(iter(pool._executor._processes.values()))
            os.kill(victim.pid, signal.SIGKILL)
            second = sharded_full_path_metrics(graph, workers=2)
        assert second == serial
        shutdown_pools()
        assert _pool_segments() == []


class TestCheckpointedTakedownDifferential:
    def test_gradual_takedown_pooled_checkpoints_bit_identical(self):
        """GradualTakedown(path_workers=2) == path_workers=1, every checkpoint."""
        from repro.adversary.takedown import GradualTakedown
        from repro.core.ddsr import DDSROverlay
        import random

        def run(path_workers: int):
            overlay = DDSROverlay.k_regular(150, 8, seed=1)
            strategy = GradualTakedown(
                fraction=0.2,
                checkpoints=3,
                rng=random.Random(4),
                path_metrics=True,
                metric_sample=None,
                path_workers=path_workers,
            )
            with backend.using("fast"):
                return strategy.execute_with_checkpoints(overlay)

        pooled = run(2)
        serial = run(1)
        assert len(pooled) == len(serial) >= 3
        for lit, dark in zip(pooled, serial):
            assert lit.path_metrics == dark.path_metrics
            assert lit.connected_components == dark.connected_components
            assert lit.largest_component_fraction == dark.largest_component_fraction
