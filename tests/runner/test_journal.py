"""Campaign journals: crash-tolerant parsing, header pinning, bit-identical resume."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import ConfigError
from repro.obs import telemetry
from repro.runner import faults
from repro.runner import journal as journal_mod
from repro.runner.cache import ResultCache
from repro.runner.executor import execute, run_scenario
from repro.runner.journal import (
    JOURNAL_SCHEMA,
    JOURNAL_SCHEMA_V1,
    STATE_LIMIT_ENV_VAR,
    CampaignJournal,
    journal_header,
)
from repro.runner.pool import shutdown_pools
from repro.runner.registry import get_scenario
from repro.runner.spec import ScenarioSpec


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    monkeypatch.delenv(faults.STATE_ENV_VAR, raising=False)
    faults.reset()
    yield
    shutdown_pools()
    faults.reset()


def _spec(**overrides):
    kwargs = dict(
        name="fig3-walkthrough", params={}, grid={}, trials=3, seed=5
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


def _header(spec=None, units=3):
    spec = spec or _spec()
    sc = get_scenario(spec.name)
    return journal_header(spec.resolved(sc.defaults), sc.version, units)


class TestJournalFile:
    def test_roundtrip_header_units_complete(self, tmp_path):
        path = tmp_path / "j.jsonl"
        header = _header()
        journal = CampaignJournal(path)
        journal.open(header)
        journal.record_unit(0, {"m": 1.5})
        journal.record_unit(2, {"m": -0.25})
        journal.finish()
        recorded, units, complete = CampaignJournal(path)._read()
        assert recorded == json.loads(json.dumps(header))
        assert units == {0: {"m": 1.5}, 2: {"m": -0.25}}
        assert complete

    def test_header_pins_identity_and_environment(self):
        header = _header()
        assert header["journal"] == JOURNAL_SCHEMA
        for key in (
            "scenario", "version", "spec_hash", "seed", "trials", "units",
            "graph_backend", "bfs_batch", "popcount_lut",
        ):
            assert key in header

    def test_truncated_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.open(_header())
        journal.record_unit(0, {"m": 1.0})
        journal.close()
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"unit": 1, "metr')  # crash mid-append
        replay = CampaignJournal(path).resume_state(_header())
        assert replay == {0: {"m": 1.0}}

    def test_mid_file_corruption_fails_loudly(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.open(_header())
        journal.record_unit(0, {"m": 1.0})
        journal.close()
        lines = path.read_text().splitlines()
        lines.insert(1, "not json")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigError, match="corrupt at line 2"):
            CampaignJournal(path).resume_state(_header())

    def test_resume_without_a_journal_file(self, tmp_path):
        with pytest.raises(ConfigError, match="nothing to resume"):
            CampaignJournal(tmp_path / "absent.jsonl").resume_state(_header())

    def test_header_mismatch_names_the_fields(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.open(_header(_spec(seed=5)))
        journal.close()
        with pytest.raises(ConfigError, match="seed"):
            CampaignJournal(path).resume_state(_header(_spec(seed=6)))

    def test_missing_header_fails(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"unit": 0, "metrics": {}}\n{"unit": 1, "metrics": {}}\n')
        with pytest.raises(ConfigError, match="header"):
            CampaignJournal(path).resume_state(_header())

    def test_out_of_range_unit_fails(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.open(_header(units=3))
        journal.record_unit(7, {"m": 1.0})
        journal.close()
        with pytest.raises(ConfigError, match="out-of-range"):
            CampaignJournal(path).resume_state(_header(units=3))


STATE = {"ecc": "ZWNj", "totals": "dG90"}  # opaque to the journal layer


class TestJournalV2:
    def test_v1_journal_still_resumes(self, tmp_path):
        """A PR 8 journal (v1 schema tag, unit records only) replays under
        the v2 loader -- it just carries no checkpoint state."""
        path = tmp_path / "j.jsonl"
        header = dict(_header())
        header["journal"] = JOURNAL_SCHEMA_V1
        with path.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            handle.write(json.dumps({"unit": 1, "metrics": {"m": 2.0}}) + "\n")
        journal = CampaignJournal(path)
        replay = journal.resume_state(_header())
        assert replay == {1: {"m": 2.0}}
        assert journal.checkpoints == {}

    def test_unknown_schema_is_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        header = dict(_header())
        header["journal"] = "repro.runner/journal.v99"
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(ConfigError, match="header"):
            CampaignJournal(path).resume_state(_header())

    def test_checkpoint_record_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.open(_header())
        assert journal.record_checkpoint_shard(0, 0, "k0", (0, 5), 2, STATE)
        assert journal.record_checkpoint_shard(0, 0, "k0", (5, 9), 2, STATE)
        assert journal.record_checkpoint_shard(0, 1, "k1", (0, 9), 1, STATE)
        journal.close()
        reader = CampaignJournal(path)
        reader._read()
        assert sorted(reader.checkpoints) == [(0, 0), (0, 1)]
        entry = reader.checkpoints[(0, 0)]
        assert entry["key"] == "k0"
        assert sorted(entry["spans"]) == [(0, 5), (5, 9)]
        assert entry["spans"][(0, 5)] == STATE

    def test_conflicting_checkpoint_key_later_record_wins(self, tmp_path):
        """Re-journaled checkpoints of a re-run (different graph snapshot,
        new content key) replace the stale state wholesale."""
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.open(_header())
        journal.record_checkpoint_shard(0, 0, "old", (0, 5), 2, STATE)
        journal.record_checkpoint_shard(0, 0, "new", (5, 9), 2, STATE)
        journal.close()
        reader = CampaignJournal(path)
        reader._read()
        entry = reader.checkpoints[(0, 0)]
        assert entry["key"] == "new"
        assert sorted(entry["spans"]) == [(5, 9)]

    def test_malformed_checkpoint_record_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.open(_header())
        journal.record_unit(0, {"m": 1.0})
        journal.close()
        with path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps({"ckpt": 0, "seq": 0, "key": "k"}) + "\n")
            handle.write(json.dumps({"unit": 1, "metrics": {"m": 2.0}}) + "\n")
        reader = CampaignJournal(path)
        _, units, _ = reader._read()
        # The broken ckpt record vanished; everything around it survived.
        assert reader.checkpoints == {}
        assert sorted(units) == [0, 1]

    def test_oversized_state_is_not_written(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STATE_LIMIT_ENV_VAR, "4")
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.open(_header())
        with telemetry.collecting() as collector:
            assert not journal.record_checkpoint_shard(0, 0, "k", (0, 5), 1, STATE)
        journal.close()
        assert collector.snapshot()["counters"]["runner.journal.ckpt_oversize"] == 1
        reader = CampaignJournal(path)
        reader._read()
        assert reader.checkpoints == {}

    def test_invalid_state_limit_is_a_config_error(self, monkeypatch):
        monkeypatch.setenv(STATE_LIMIT_ENV_VAR, "zero")
        with pytest.raises(ConfigError, match=STATE_LIMIT_ENV_VAR):
            journal_mod.state_limit_policy()

    def test_refused_append_degrades_writes(self, tmp_path):
        """The first OSError on append warns, counts, and stops journaling;
        later appends are silent no-ops (ResultCache.put posture)."""
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        faults.install("journal.write=oserror@2")
        with telemetry.collecting() as collector:
            journal.open(_header())       # append 1: the header
            journal.record_unit(0, {"m": 1.0})  # append 2: refused
            journal.record_unit(1, {"m": 2.0})  # already degraded: no-op
        faults.install("")
        assert journal.write_failed
        assert collector.snapshot()["counters"]["runner.journal.write_failed"] == 1
        _, units, _ = CampaignJournal(path)._read()
        assert units == {}

    def test_open_resume_verifies_the_on_disk_header(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.open(_header(_spec(seed=5)))
        journal.close()
        with pytest.raises(ConfigError, match="cannot resume into journal"):
            CampaignJournal(path).open(_header(_spec(seed=6)), resume=True)

    def test_open_resume_refuses_a_headerless_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("")
        with pytest.raises(ConfigError, match="no readable header"):
            CampaignJournal(path).open(_header(), resume=True)

    def test_out_of_range_checkpoint_is_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.open(_header(units=3))
        journal.record_checkpoint_shard(7, 0, "k", (0, 5), 1, STATE)
        journal.close()
        reader = CampaignJournal(path)
        replay = reader.resume_state(_header(units=3))
        assert replay == {}
        assert reader.checkpoints == {}


class TestInspect:
    def test_inspect_a_complete_campaign(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.open(_header(units=3))
        journal.record_unit(0, {"m": 1.0})
        journal.record_checkpoint_shard(1, 0, "k", (0, 5), 1, STATE)
        journal.record_unit(1, {"m": 2.0})
        journal.record_unit(2, {"m": 3.0})
        journal.finish()
        info = journal_mod.inspect(path)
        assert info["schema"] == JOURNAL_SCHEMA
        assert info["units_total"] == 3
        assert info["units_complete"] == 3
        assert info["percent_complete"] == 100.0
        assert info["complete"]
        assert info["checkpoints"] == 1
        assert info["checkpoint_shards"] == 1
        assert info["environment_mismatches"] == []
        assert info["resumable"]

    def test_inspect_missing_or_corrupt(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            journal_mod.inspect(tmp_path / "absent.jsonl")
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        journal.open(_header())
        journal.close()
        lines = path.read_text().splitlines()
        lines.insert(1, "not json")
        lines.append(json.dumps({"unit": 0, "metrics": {}}))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigError, match="corrupt"):
            journal_mod.inspect(path)

    def test_inspect_flags_environment_drift(self, tmp_path):
        path = tmp_path / "j.jsonl"
        header = dict(_header(units=3))
        header["graph_backend"] = "something-else"
        path.write_text(json.dumps(header) + "\n")
        info = journal_mod.inspect(path)
        assert info["environment_mismatches"] == ["graph_backend"]
        assert not info["resumable"]


class TestExecutorIntegration:
    def test_resume_without_journal_path_is_a_config_error(self):
        with pytest.raises(ConfigError, match="no journal given"):
            execute(_spec(), resume=True)

    def test_fresh_run_journals_every_unit(self, tmp_path):
        path = tmp_path / "j.jsonl"
        result = execute(_spec(), journal=path)
        assert result.journal_path == str(path)
        assert result.replayed == 0
        _, units, complete = CampaignJournal(path)._read()
        assert sorted(units) == [0, 1, 2]
        assert complete

    def test_complete_journal_replays_fully_and_bit_identically(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = execute(_spec(), journal=path)
        second = execute(_spec(), journal=path, resume=True)
        assert second.replayed == 3
        assert second.unit_metrics == first.unit_metrics
        assert [a.row() for a in second.aggregates] == [
            a.row() for a in first.aggregates
        ]

    def test_interrupt_then_resume_is_bit_identical(self, tmp_path):
        baseline = run_scenario("soap-campaign", params={"n": 30}, trials=6, seed=3)
        path = tmp_path / "j.jsonl"
        spec = ScenarioSpec(
            name="soap-campaign", params={"n": 30}, grid={}, trials=6, seed=3
        )
        faults.install("executor.unit=interrupt@3")
        with pytest.raises(KeyboardInterrupt):
            execute(spec, workers=2, journal=path, shard_size=1)
        faults.install("")
        _, units, complete = CampaignJournal(path)._read()
        assert len(units) == 3 and not complete
        resumed = execute(spec, workers=2, journal=path, shard_size=1, resume=True)
        assert resumed.replayed == 3
        assert resumed.unit_metrics == baseline.unit_metrics

    def test_cache_hits_are_journaled_for_later_resume(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        execute(_spec(), cache=cache)  # warm the cache, no journal
        path = tmp_path / "j.jsonl"
        warm = execute(_spec(), cache=cache, journal=path)
        assert warm.cache_hits == 3
        # Every cache-served unit landed in the journal too.
        resumed = execute(_spec(), journal=path, resume=True)
        assert resumed.replayed == 3
        assert resumed.unit_metrics == warm.unit_metrics

    def test_journal_mismatch_on_resume_propagates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        execute(_spec(seed=5), journal=path)
        with pytest.raises(ConfigError, match="does not match this campaign"):
            execute(_spec(seed=6), journal=path, resume=True)

    def test_fresh_run_truncates_a_stale_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        execute(_spec(seed=5), journal=path)
        execute(_spec(seed=6), journal=path)  # no --resume: start over
        header, units, complete = CampaignJournal(path)._read()
        assert header["seed"] == 6
        assert sorted(units) == [0, 1, 2]
        assert complete
