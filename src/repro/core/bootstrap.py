"""Bootstrap (rally-stage) strategies, paper section IV-B.

A newly infected bot must find existing members of the overlay.  The paper
weighs four approaches and concludes that OnionBots would combine hardcoded
peer lists and hotlists (because onion addresses rotate, blacklisting the
entries is ineffective) while random probing of the ``.onion`` namespace is
computationally hopeless (the address space has :math:`32^{16}` names).  This
module implements all four so that the trade-offs can be exercised and so the
full botnet simulation can be configured with any of them.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.errors import BootstrapError

#: Size of the v2 onion namespace: 16 base32 characters.
ONION_ADDRESS_SPACE = 32 ** 16


class BootstrapStrategy(ABC):
    """Interface every bootstrap mechanism implements."""

    @abstractmethod
    def candidate_peers(self, requester: str, count: int, rng: random.Random) -> List[str]:
        """Return up to ``count`` peer addresses for ``requester`` to contact."""

    def describe(self) -> str:
        """Human-readable name used in reports."""
        return type(self).__name__


@dataclass
class HardcodedPeerList(BootstrapStrategy):
    """A peer list baked into the bot at infection time.

    When an infected bot recruits another host, it forwards a subset of its
    own list: each entry is included independently with probability
    ``share_probability`` (the ``p`` of section IV-B).
    """

    peers: List[str]
    share_probability: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.share_probability <= 1.0:
            raise BootstrapError(
                f"share_probability must be in [0, 1], got {self.share_probability}"
            )

    def candidate_peers(self, requester: str, count: int, rng: random.Random) -> List[str]:
        """Peers from the hardcoded list (excluding the requester itself)."""
        available = [peer for peer in self.peers if peer != requester]
        if not available:
            return []
        if count >= len(available):
            return list(available)
        return rng.sample(available, count)

    def child_list(self, rng: random.Random) -> "HardcodedPeerList":
        """The peer list passed on to a newly recruited bot."""
        subset = [peer for peer in self.peers if rng.random() < self.share_probability]
        if not subset and self.peers:
            subset = [rng.choice(self.peers)]
        return HardcodedPeerList(peers=subset, share_probability=self.share_probability)

    def update(self, new_peers: Iterable[str]) -> None:
        """Merge freshly learned addresses into the list (deduplicated)."""
        known = set(self.peers)
        for peer in new_peers:
            if peer not in known:
                self.peers.append(peer)
                known.add(peer)

    def forget(self, stale_peers: Iterable[str]) -> None:
        """Drop rotated-away addresses from the list."""
        stale = set(stale_peers)
        self.peers = [peer for peer in self.peers if peer not in stale]


@dataclass
class Hotlist(BootstrapStrategy):
    """A set of query servers ("webcaches"), each knowing a subset of peers.

    A defender that captures one bot only learns the hotlist servers in that
    bot's subset, and each server only exposes part of the peer population.
    """

    servers: Dict[str, List[str]] = field(default_factory=dict)
    servers_per_bot: int = 2

    def add_server(self, name: str, peers: Sequence[str]) -> None:
        """Register (or replace) a hotlist server with its peer subset."""
        self.servers[name] = list(peers)

    def publish(self, server: str, peer: str) -> None:
        """Add a peer address to one server's subset."""
        if server not in self.servers:
            self.servers[server] = []
        if peer not in self.servers[server]:
            self.servers[server].append(peer)

    def candidate_peers(self, requester: str, count: int, rng: random.Random) -> List[str]:
        """Query a random subset of servers and merge their answers."""
        if not self.servers:
            return []
        names = list(self.servers)
        chosen = rng.sample(names, min(self.servers_per_bot, len(names)))
        merged: List[str] = []
        seen = set()
        for name in chosen:
            for peer in self.servers[name]:
                if peer != requester and peer not in seen:
                    merged.append(peer)
                    seen.add(peer)
        if count >= len(merged):
            return merged
        return rng.sample(merged, count)

    def exposure_if_server_seized(self, server: str) -> float:
        """Fraction of all known peers revealed if ``server`` is seized."""
        all_peers = {peer for peers in self.servers.values() for peer in peers}
        if not all_peers:
            return 0.0
        revealed = set(self.servers.get(server, []))
        return len(revealed) / len(all_peers)


@dataclass
class OutOfBandChannel(BootstrapStrategy):
    """Peer lists published through an external side channel.

    Models "use a peer-to-peer network such as BitTorrent ... or social
    networks" as an abstract bulletin board: the botmaster posts address lists
    under opaque labels, bots fetch the latest post.  A defender able to read
    the channel sees exactly what the bots see -- which is why the posted
    addresses are rotated like all others.
    """

    posts: List[List[str]] = field(default_factory=list)
    channel_name: str = "out-of-band"

    def publish(self, peers: Sequence[str]) -> None:
        """Post a fresh peer list to the channel."""
        self.posts.append(list(peers))

    def latest(self) -> List[str]:
        """The most recently posted peer list (empty if none)."""
        return list(self.posts[-1]) if self.posts else []

    def candidate_peers(self, requester: str, count: int, rng: random.Random) -> List[str]:
        """Fetch peers from the latest post."""
        peers = [peer for peer in self.latest() if peer != requester]
        if count >= len(peers):
            return peers
        return rng.sample(peers, count)


@dataclass(frozen=True)
class RandomProbingEstimate:
    """Feasibility analysis of random ``.onion`` probing (it is not feasible).

    The expected number of probes to hit *any* of ``population`` listening
    bots in a namespace of ``address_space`` equals
    ``address_space / population`` -- around :math:`10^{21}` probes for even a
    million-bot population, which at any realistic probe rate exceeds the age
    of the universe.  The class exists so the experiment suite can print the
    paper's argument quantitatively rather than assert it.
    """

    population: int
    probes_per_second: float = 1000.0
    address_space: int = ONION_ADDRESS_SPACE

    @property
    def expected_probes(self) -> float:
        """Expected number of probes before the first hit."""
        if self.population <= 0:
            return float("inf")
        return self.address_space / self.population

    @property
    def expected_seconds(self) -> float:
        """Expected time to the first hit at ``probes_per_second``."""
        if self.probes_per_second <= 0:
            return float("inf")
        return self.expected_probes / self.probes_per_second

    @property
    def expected_years(self) -> float:
        """Expected time to the first hit, in years."""
        return self.expected_seconds / (365.25 * 24 * 3600)


def estimate_random_probe_expected_attempts(population: int) -> float:
    """Expected probes for random bootstrap against ``population`` bots."""
    return RandomProbingEstimate(population=population).expected_probes


class CompositeBootstrap(BootstrapStrategy):
    """The paper's envisioned combination: hardcoded list first, hotlist backup."""

    def __init__(self, primary: BootstrapStrategy, fallback: Optional[BootstrapStrategy] = None) -> None:
        self.primary = primary
        self.fallback = fallback

    def candidate_peers(self, requester: str, count: int, rng: random.Random) -> List[str]:
        """Ask the primary strategy, topping up from the fallback if short."""
        peers = self.primary.candidate_peers(requester, count, rng)
        if len(peers) < count and self.fallback is not None:
            extra = self.fallback.candidate_peers(requester, count - len(peers), rng)
            seen = set(peers)
            peers.extend(peer for peer in extra if peer not in seen)
        return peers

    def describe(self) -> str:
        """Human-readable name used in reports."""
        fallback = self.fallback.describe() if self.fallback else "none"
        return f"CompositeBootstrap(primary={self.primary.describe()}, fallback={fallback})"
