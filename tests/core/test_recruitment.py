"""Tests for botnet growth through recruitment."""

import pytest

from repro.core.bootstrap import Hotlist
from repro.core.botnet import OnionBotnet
from repro.core.errors import BotnetError
from repro.core.recruitment import RecruitmentCampaign
from repro.graphs.metrics import number_connected_components


@pytest.fixture
def botnet() -> OnionBotnet:
    net = OnionBotnet(seed=66)
    net.build(12)
    return net


class TestRecruitOne:
    def test_new_bot_joins_overlay_and_tor(self, botnet):
        campaign = RecruitmentCampaign(botnet)
        label = campaign.recruit_one()
        assert label in botnet.bots
        assert label in botnet.overlay.graph
        assert botnet.overlay.degree(label) >= 1
        assert botnet.bots[label].is_active
        # Its hidden service is reachable and the C&C knows its key.
        assert botnet.tor.service(botnet.onion_of(label)) is not None
        assert botnet.botmaster.knows(label)

    def test_recruit_from_specific_infector(self, botnet):
        infector = botnet.active_labels()[0]
        campaign = RecruitmentCampaign(botnet)
        label = campaign.recruit_one(infector_label=infector)
        # The newcomer's peers come from the infector's neighbourhood (its
        # peers plus the infector itself).
        allowed = set(botnet.overlay.peers(infector)) | {infector}
        assert set(botnet.overlay.peers(label)) <= allowed | {label}

    def test_recruit_from_unknown_infector_rejected(self, botnet):
        with pytest.raises(BotnetError):
            RecruitmentCampaign(botnet).recruit_one(infector_label="ghost")

    def test_degree_bounds_respected_after_recruits(self, botnet):
        campaign = RecruitmentCampaign(botnet)
        for _ in range(10):
            campaign.recruit_one()
        assert botnet.overlay.degree_bounds_satisfied()

    def test_labels_are_unique(self, botnet):
        campaign = RecruitmentCampaign(botnet)
        labels = {campaign.recruit_one() for _ in range(5)}
        assert len(labels) == 5


class TestRecruitMany:
    def test_batch_recruitment(self, botnet):
        campaign = RecruitmentCampaign(botnet)
        result = campaign.recruit(8)
        assert result.recruited == 8
        assert result.success_rate == 1.0
        assert botnet.stats().active_bots == 20
        assert number_connected_components(botnet.overlay.graph) == 1

    def test_commands_reach_recruits(self, botnet):
        RecruitmentCampaign(botnet).recruit(6)
        report = botnet.broadcast_command("report-status")
        assert report.coverage == 1.0
        assert report.total_active == 18

    def test_negative_count_rejected(self, botnet):
        with pytest.raises(BotnetError):
            RecruitmentCampaign(botnet).recruit(-1)

    def test_zero_count(self, botnet):
        result = RecruitmentCampaign(botnet).recruit(0)
        assert result.requested == 0
        assert result.success_rate == 0.0

    def test_custom_bootstrap_strategy(self, botnet):
        hotlist = Hotlist(servers_per_bot=1)
        hotlist.add_server(
            "cache-a", [botnet.onion_of(label) for label in botnet.active_labels()[:5]]
        )
        campaign = RecruitmentCampaign(botnet, strategy=hotlist, target_peers=3)
        label = campaign.recruit_one()
        assert botnet.overlay.degree(label) >= 1

    def test_growth_profile_rows(self, botnet):
        campaign = RecruitmentCampaign(botnet)
        rows = campaign.growth_profile(waves=3, per_wave=4)
        assert len(rows) == 3
        assert rows[-1]["active_bots"] == 24
        assert all(row["broadcast_coverage"] == 1.0 for row in rows)
        assert all(row["max_degree"] <= botnet.config.d_max for row in rows)


class TestGrowthAfterTakedown:
    def test_botnet_regrows_after_partial_takedown(self, botnet):
        """Takedowns and re-recruitment interleave without breaking the overlay."""
        botnet.take_down(botnet.active_labels()[:4])
        campaign = RecruitmentCampaign(botnet)
        result = campaign.recruit(6)
        assert result.recruited == 6
        stats = botnet.stats()
        assert stats.active_bots == 14
        assert stats.connected_components == 1
        assert botnet.broadcast_command("noop").coverage == 1.0
