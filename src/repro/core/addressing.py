"""Periodic ``.onion`` address rotation (paper section IV-D).

At rally time a bot generates a symmetric key ``K_B`` and reports it to the
C&C encrypted under the botmaster's hard-coded public key.  From then on both
sides can independently compute the bot's identity keypair for any period
``i_p`` as ``generateKey(PK_CC, H(K_B, i_p))`` -- so the bot keeps moving to
fresh onion addresses while the botmaster can always find it, and a defender
who captured yesterday's address learns nothing about tomorrow's.

This module provides the rotation schedule both the bots and the botmaster use,
plus an :class:`AddressPlan` that precomputes a window of future addresses
(what the C&C consults when it wants to contact a specific bot "anytime").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.crypto.kdf import derive_period_key
from repro.crypto.keys import KeyPair, PublicKey
from repro.sim.clock import SECONDS_PER_DAY
from repro.tor.onion_address import OnionAddress, onion_address_from_public_key


def period_index_for(time_seconds: float, period_seconds: float = float(SECONDS_PER_DAY)) -> int:
    """Index of the rotation period containing ``time_seconds``."""
    if period_seconds <= 0:
        raise ValueError(f"period must be positive, got {period_seconds}")
    if time_seconds < 0:
        raise ValueError(f"time must be non-negative, got {time_seconds}")
    return int(time_seconds // period_seconds)


def keypair_for_period(
    botmaster_public: PublicKey,
    bot_key: bytes,
    period_index: int,
) -> KeyPair:
    """The bot's hidden-service keypair during period ``period_index``."""
    return derive_period_key(botmaster_public, bot_key, period_index)


def current_onion_address(
    botmaster_public: PublicKey,
    bot_key: bytes,
    time_seconds: float,
    period_seconds: float = float(SECONDS_PER_DAY),
) -> OnionAddress:
    """The bot's onion address at simulated time ``time_seconds``."""
    index = period_index_for(time_seconds, period_seconds)
    keypair = keypair_for_period(botmaster_public, bot_key, index)
    return onion_address_from_public_key(keypair)


def onion_schedule(
    botmaster_public: PublicKey,
    bot_key: bytes,
    start_period: int,
    periods: int,
) -> List[OnionAddress]:
    """The bot's onion addresses for ``periods`` consecutive periods."""
    if periods < 0:
        raise ValueError(f"periods must be non-negative, got {periods}")
    return [
        onion_address_from_public_key(
            keypair_for_period(botmaster_public, bot_key, start_period + offset)
        )
        for offset in range(periods)
    ]


@dataclass
class AddressPlan:
    """Precomputed rotation plan for one bot, as maintained by the C&C.

    The botmaster learns ``K_B`` once (from the rally-stage key report) and
    can then reach the bot in any period without further interaction.
    """

    botmaster_public: PublicKey
    bot_key: bytes
    period_seconds: float = float(SECONDS_PER_DAY)

    def keypair_at(self, time_seconds: float) -> KeyPair:
        """The bot's keypair at ``time_seconds``."""
        return keypair_for_period(
            self.botmaster_public,
            self.bot_key,
            period_index_for(time_seconds, self.period_seconds),
        )

    def address_at(self, time_seconds: float) -> OnionAddress:
        """The bot's onion address at ``time_seconds``."""
        return onion_address_from_public_key(self.keypair_at(time_seconds))

    def addresses_between(self, start_seconds: float, end_seconds: float) -> List[OnionAddress]:
        """Every address the bot will use in ``[start_seconds, end_seconds]``."""
        if end_seconds < start_seconds:
            raise ValueError("end time must not precede start time")
        first = period_index_for(start_seconds, self.period_seconds)
        last = period_index_for(end_seconds, self.period_seconds)
        return onion_schedule(self.botmaster_public, self.bot_key, first, last - first + 1)

    def window(self, time_seconds: float, periods_ahead: int = 7) -> Dict[int, OnionAddress]:
        """Mapping of period index -> address for the next ``periods_ahead`` periods."""
        start = period_index_for(time_seconds, self.period_seconds)
        return {
            start + offset: onion_address_from_public_key(
                keypair_for_period(self.botmaster_public, self.bot_key, start + offset)
            )
            for offset in range(periods_ahead + 1)
        }
