"""Tests for the centralized C&C baseline."""

import random

import pytest

from repro.baselines.centralized import CentralizedBotnet


class TestCentralizedBotnet:
    def test_build(self):
        botnet = CentralizedBotnet.build(100, 2)
        assert len(botnet.bots) == 100
        assert len(botnet.cc_servers) == 2
        assert botnet.operational

    def test_invalid_build(self):
        with pytest.raises(ValueError):
            CentralizedBotnet.build(0)

    def test_bot_takedown_barely_matters(self):
        botnet = CentralizedBotnet.build(100)
        botnet.take_down_bots(40, random.Random(0))
        assert botnet.operational
        assert botnet.reachable_bots() == 60

    def test_cc_takedown_kills_everything(self):
        botnet = CentralizedBotnet.build(100)
        botnet.take_down_cc(1)
        assert not botnet.operational
        assert botnet.reachable_bots() == 0

    def test_multiple_cc_servers_require_multiple_takedowns(self):
        botnet = CentralizedBotnet.build(100, n_servers=3)
        botnet.take_down_cc(2)
        assert botnet.operational
        botnet.take_down_cc(1)
        assert not botnet.operational

    def test_summary_reports(self):
        botnet = CentralizedBotnet.build(50)
        botnet.take_down_cc(1)
        summary = botnet.summarize(50, 1)
        assert summary.bots_remaining == 50
        assert summary.cc_servers_remaining == 0
        assert summary.surviving_fraction == 0.0

    def test_takedown_comparison_contrast(self):
        """40% bot cleanup leaves a working botnet; one C&C seizure ends it."""
        bots_scenario, cc_scenario = CentralizedBotnet.takedown_comparison(1000)
        assert bots_scenario.operational
        assert bots_scenario.surviving_fraction == pytest.approx(0.6)
        assert not cc_scenario.operational
        assert cc_scenario.surviving_fraction == 0.0
