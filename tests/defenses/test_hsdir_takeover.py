"""Tests for the HSDir interception mitigation."""

import pytest

from repro.crypto.keys import KeyPair
from repro.defenses.hsdir_takeover import HsdirInterception, interception_cost_estimate
from repro.sim.engine import Simulator
from repro.tor.hidden_service import ServiceUnreachable
from repro.tor.hsdir import REPLICAS, SPREAD
from repro.tor.network import TorNetwork, TorNetworkConfig


@pytest.fixture
def network() -> TorNetwork:
    simulator = Simulator(seed=5)
    net = TorNetwork(simulator, TorNetworkConfig(num_relays=30))
    net.bootstrap()
    return net


def host_service(network: TorNetwork, seed: bytes = b"victim-service"):
    return network.host_service(KeyPair.from_seed(seed), lambda payload, conn: b"ack")


class TestPlanning:
    def test_plan_produces_six_fingerprints(self, network):
        host = host_service(network)
        defender = HsdirInterception(network)
        fingerprints = defender.plan_fingerprints(host.onion_address)
        assert len(fingerprints) == REPLICAS * SPREAD
        assert all(len(fp) == 20 for fp in fingerprints)

    def test_injected_relays_are_not_hsdirs_immediately(self, network):
        host = host_service(network)
        defender = HsdirInterception(network)
        defender.inject_relays(host.onion_address)
        network.publish_consensus()
        result = defender.measure(host.onion_address)
        assert result.responsible_controlled == 0


class TestInterception:
    def test_full_interception_denies_access(self, network):
        host = host_service(network)
        defender = HsdirInterception(network)
        result = defender.intercept(host.onion_address)
        # After the 25-hour wait the original descriptor has also expired; the
        # service republishes, but its responsible HSDirs are now adversarial
        # and censoring, so clients cannot fetch the descriptor.
        network.publish_descriptor(host)
        assert result.relays_injected == REPLICAS * SPREAD
        assert result.lead_time_hours >= 25.0
        assert result.responsible_controlled > 0
        with pytest.raises(ServiceUnreachable):
            network.lookup_descriptor(host.onion_address)

    def test_rotation_escapes_interception(self, network):
        host = host_service(network)
        defender = HsdirInterception(network)
        defender.intercept(host.onion_address)
        # The bot rotates to a fresh keypair the defender could not predict.
        new_address = network.rotate_service_key(host, KeyPair.from_seed(b"next-period"))
        assert network.lookup_descriptor(new_address) is not None

    def test_collateral_relay_count(self, network):
        host = host_service(network)
        defender = HsdirInterception(network)
        defender.intercept(host.onion_address)
        assert defender.collateral_relays() == REPLICAS * SPREAD


class TestCostEstimate:
    def test_cost_scales_with_bots_and_periods(self):
        small = interception_cost_estimate(bots=10, periods=1)
        large = interception_cost_estimate(bots=1000, periods=7)
        assert large["relays_needed"] > small["relays_needed"]
        assert small["relays_needed"] == 10 * REPLICAS * SPREAD

    def test_lead_time_exceeds_daily_rotation(self):
        estimate = interception_cost_estimate(bots=1, periods=1)
        assert estimate["lead_exceeds_daily_rotation"] == 1.0
