"""Tests for the SOAP (Sybil Onion Attack Protocol) mitigation."""

import random

from repro.adversary.soap import AdmissionDecision, SoapAttack, is_clone, open_admission
from repro.core.ddsr import DDSRConfig, DDSROverlay


def overlay(n: int = 120, k: int = 8, seed: int = 0) -> DDSROverlay:
    return DDSROverlay.k_regular(n, k, seed=seed)


class TestCloneIdentifiers:
    def test_is_clone_detects_minted_names(self):
        attack = SoapAttack()
        clone = attack._new_clone()
        assert is_clone(clone)
        assert not is_clone("bot-00001")
        assert not is_clone(42)

    def test_open_admission_accepts_for_free(self):
        decision = open_admission("target", "clone", DDSROverlay())
        assert decision.accepted and decision.work_required == 0.0


class TestContainSingleNode:
    def test_target_ends_up_with_only_clone_peers(self):
        target_overlay = overlay()
        attack = SoapAttack(rng=random.Random(1))
        victim = target_overlay.nodes()[0]
        result = attack.contain_node(target_overlay, victim)
        assert result.contained
        assert all(is_clone(peer) for peer in target_overlay.peers(victim))
        assert result.benign_peers_displaced >= 8

    def test_clones_needed_tracks_initial_degree(self):
        target_overlay = overlay(k=6)
        attack = SoapAttack(rng=random.Random(2))
        victim = target_overlay.nodes()[0]
        result = attack.contain_node(target_overlay, victim)
        # At least one clone per displaced benign neighbour.
        assert result.clones_used >= 6

    def test_target_degree_stays_within_bound(self):
        target_overlay = overlay()
        attack = SoapAttack(rng=random.Random(3))
        victim = target_overlay.nodes()[0]
        attack.contain_node(target_overlay, victim)
        assert target_overlay.degree(victim) <= target_overlay.config.d_max

    def test_learned_addresses_are_the_targets_former_peers(self):
        target_overlay = overlay()
        victim = target_overlay.nodes()[0]
        before = target_overlay.peers(victim)
        attack = SoapAttack(rng=random.Random(4))
        result = attack.contain_node(target_overlay, victim)
        assert result.learned_addresses == before

    def test_containing_missing_node_is_a_noop(self):
        attack = SoapAttack()
        result = attack.contain_node(overlay(), "ghost")
        assert not result.contained
        assert result.clones_used == 0

    def test_rejecting_admission_stalls_containment(self):
        def always_reject(_target, _requester, _overlay) -> AdmissionDecision:
            return AdmissionDecision(accepted=False)

        target_overlay = overlay()
        attack = SoapAttack(rng=random.Random(5), admission=always_reject, max_clones_per_node=20)
        victim = target_overlay.nodes()[0]
        result = attack.contain_node(target_overlay, victim)
        assert not result.contained
        assert result.clones_used == 0
        assert result.requests_rejected > 0


class TestCampaign:
    def test_full_campaign_neutralizes_basic_onionbot(self):
        target_overlay = overlay(n=100, k=8)
        attack = SoapAttack(rng=random.Random(1))
        result = attack.run_campaign(target_overlay, [target_overlay.nodes()[0]])
        assert result.neutralized
        assert result.containment_fraction == 1.0
        assert result.clones_created > 100

    def test_benign_subgraph_is_shattered_after_campaign(self):
        target_overlay = overlay(n=80, k=6)
        attack = SoapAttack(rng=random.Random(2))
        attack.run_campaign(target_overlay, [target_overlay.nodes()[0]])
        summary = SoapAttack.benign_subgraph_components(target_overlay)
        assert summary["nontrivial_components"] == 0
        assert summary["largest_component"] == 1

    def test_timeline_is_monotone(self):
        target_overlay = overlay(n=60, k=6)
        attack = SoapAttack(rng=random.Random(3))
        result = attack.run_campaign(target_overlay, [target_overlay.nodes()[0]])
        fractions = [fraction for _, fraction in result.timeline]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_max_targets_limits_campaign(self):
        target_overlay = overlay(n=100, k=8)
        attack = SoapAttack(rng=random.Random(4))
        result = attack.run_campaign(
            target_overlay, [target_overlay.nodes()[0]], max_targets=5
        )
        assert not result.neutralized
        assert 0 < result.containment_fraction < 1.0

    def test_work_budget_limits_campaign(self):
        def unit_cost(_target, _requester, _overlay) -> AdmissionDecision:
            return AdmissionDecision(accepted=True, work_required=1.0)

        target_overlay = overlay(n=100, k=8)
        attack = SoapAttack(rng=random.Random(5), admission=unit_cost, work_budget=50.0)
        result = attack.run_campaign(target_overlay, [target_overlay.nodes()[0]])
        assert not result.neutralized
        assert result.work_spent <= 60.0

    def test_compromised_nodes_count_as_contained(self):
        target_overlay = overlay(n=40, k=4)
        attack = SoapAttack(rng=random.Random(6))
        start = target_overlay.nodes()[0]
        result = attack.run_campaign(target_overlay, [start], max_targets=0)
        assert start in result.contained

    def test_clones_per_bot_statistic(self):
        target_overlay = overlay(n=60, k=6)
        attack = SoapAttack(rng=random.Random(7))
        result = attack.run_campaign(target_overlay, [target_overlay.nodes()[0]])
        assert result.clones_per_bot >= 1.0
