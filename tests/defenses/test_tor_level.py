"""Tests for Tor-level throttling mitigations."""

import random

from repro.defenses.tor_level import GuardThrottling


class TestGuardThrottling:
    def test_throttling_blocks_heavy_bot_load(self):
        policy = GuardThrottling(admitted_per_source_per_hour=10)
        impact = policy.evaluate(
            bot_sources=100,
            bot_requests_per_source=100,
            user_sources=100,
            user_requests_per_source=5,
        )
        assert impact.bot_block_rate > 0.8
        assert impact.user_collateral_rate == 0.0
        assert impact.selectivity == float("inf")

    def test_throttling_hurts_heavy_legitimate_users_too(self):
        policy = GuardThrottling(admitted_per_source_per_hour=3)
        impact = policy.evaluate(
            bot_sources=10,
            bot_requests_per_source=50,
            user_sources=10,
            user_requests_per_source=10,
        )
        assert impact.user_collateral_rate > 0.5

    def test_captcha_blocks_bots_with_some_user_collateral(self):
        policy = GuardThrottling(admitted_per_source_per_hour=1000, captcha_enabled=True)
        impact = policy.evaluate(
            bot_sources=50,
            bot_requests_per_source=10,
            user_sources=50,
            user_requests_per_source=10,
            rng=random.Random(0),
        )
        assert impact.bot_block_rate > 0.8
        assert 0.0 < impact.user_collateral_rate < 0.2
        assert impact.selectivity > 1.0

    def test_policy_label_mentions_captcha(self):
        policy = GuardThrottling(captcha_enabled=True)
        impact = policy.evaluate(
            bot_sources=1, bot_requests_per_source=1, user_sources=1, user_requests_per_source=1
        )
        assert "captcha" in impact.policy

    def test_onionbots_low_rate_cc_unaffected(self):
        """The paper's point: OnionBot C&C traffic is far below any sane threshold."""
        policy = GuardThrottling(admitted_per_source_per_hour=10)
        assert policy.effect_on_onionbots(commands_per_day=4) == 1.0

    def test_extreme_throttling_would_be_needed_to_hurt_onionbots(self):
        policy = GuardThrottling(admitted_per_source_per_hour=1)
        assert policy.effect_on_onionbots(commands_per_day=240) < 1.0

    def test_zero_load_edge_cases(self):
        policy = GuardThrottling()
        impact = policy.evaluate(
            bot_sources=0, bot_requests_per_source=0, user_sources=0, user_requests_per_source=0
        )
        assert impact.bot_block_rate == 0.0
        assert impact.user_collateral_rate == 0.0
        assert impact.selectivity == 1.0
