"""Vectorized CSR graph kernels (the ``fast`` backend).

The pure-Python BFS metrics in :mod:`repro.graphs.metrics` are the readable
reference implementation, but they dominate the runtime of every resilience
sweep once networks grow past a few thousand nodes.  This module provides a
compressed-sparse-row (CSR) mirror of :class:`~repro.graphs.adjacency.
UndirectedGraph` -- two numpy arrays, ``indptr`` and ``indices`` -- plus
vectorized kernels over it:

* frontier-based BFS (distances, eccentricity, closeness),
* batched multi-source BFS: up to 64 sources advance together as one
  bit-packed ``uint64`` frontier per node (one gather +
  ``bitwise_or.reduceat`` per level), which is what the sampled diameter /
  average-shortest-path / closeness estimators run on,
* connected components via min-label propagation with pointer jumping
  (Shiloach--Vishkin style, O(m log n) total work),
* masked component summaries for the Figure 6 simultaneous-deletion sweeps
  (no Python-side subgraph construction per victim set).

Every public function takes the same arguments as its ``metrics`` twin and is
required -- and tested, in ``tests/graphs/test_backend_equivalence.py`` -- to
return **identical** results: exact for integer metrics, bit-identical for
float ones (the float expressions deliberately mirror the reference
implementation's evaluation order, and sampled estimators consume a shared
``random.Random`` in exactly the same way).

The CSR mirror is cached on the graph object, keyed on the graph's mutation
stamp.  On a stamp mismatch the cache first tries to *patch* the previous
snapshot from the graph's bounded mutation delta log
(:data:`repro.graphs.adjacency.DELTA_LOG_LIMIT`): removed nodes become
*ghost* indices masked out by an ``alive`` overlay, new nodes are appended,
and the edge arrays are rebuilt with pure numpy array surgery.  Only when
the log has overflowed -- or ghosts outnumber live nodes -- does it fall
back to the full Python-loop rebuild, so DDSR repair loops and SOAP clone
insertions that interleave small mutation bursts with metric reads pay an
O(m) numpy patch instead of an O(m) Python reconstruction.
"""

from __future__ import annotations

import random
import sys
from itertools import chain
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graphs.adjacency import GraphError, UndirectedGraph
from repro.graphs.metrics import _select_nodes

NodeId = Hashable

_CSR_CACHE_ATTR = "_csr_cache"

#: Sources per bit-packed multi-source BFS wave (one bit per source in a
#: ``uint64`` word); larger batches are processed in chunks of this size.
BFS_BATCH = 64

#: A patched CSR keeps ghost (removed-node) indices in its arrays.  Once the
#: ghosts outnumber ``max(GHOST_SLACK, live nodes)`` the next synchronisation
#: rebuilds from scratch to compact the index space.
GHOST_SLACK = 1024


class CSRGraph:
    """Immutable CSR snapshot of an :class:`UndirectedGraph`.

    ``nodes`` preserves the graph's insertion order (``graph.nodes()``), so
    index ``i`` everywhere below refers to ``nodes[i]``.  Each undirected edge
    appears twice in ``indices`` (once per direction).

    A snapshot produced by incremental patching (:func:`csr_of` after small
    mutations) may contain *ghost* entries: indices whose node has been
    removed from the graph.  ``alive`` is then a boolean mask over the index
    space (``None`` means every index is live).  Ghosts have degree zero --
    no live node keeps an edge to them -- so BFS-style kernels need no
    special handling; kernels that enumerate or count nodes filter through
    the mask.  ``nodes`` keeps a placeholder at ghost positions (the removed
    id), but ghosts are dropped from ``index_of``.
    """

    __slots__ = ("nodes", "index_of", "indptr", "indices", "alive")

    def __init__(
        self,
        nodes: List[NodeId],
        index_of: Dict[NodeId, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        alive: Optional[np.ndarray] = None,
    ) -> None:
        self.nodes = nodes
        self.index_of = index_of
        self.indptr = indptr
        self.indices = indices
        self.alive = alive

    @property
    def n(self) -> int:
        """Size of the index space (live nodes plus ghosts)."""
        return len(self.nodes)

    @property
    def ghost_count(self) -> int:
        """Number of ghost (removed but not yet compacted) indices."""
        if self.alive is None:
            return 0
        return self.n - int(self.alive.sum())

    def degrees(self) -> np.ndarray:
        """Degree of every index, in index order (ghosts have degree 0)."""
        return np.diff(self.indptr)


def build_csr(graph: UndirectedGraph) -> CSRGraph:
    """Convert ``graph`` into a fresh :class:`CSRGraph` (no caching)."""
    adjacency = graph._adjacency
    nodes = list(adjacency)
    n = len(nodes)
    degrees = np.fromiter(
        (len(adjacency[node]) for node in nodes), dtype=np.int64, count=n
    )
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    total = int(indptr[-1])
    if nodes == list(range(n)):
        # Contiguous integer labels (every generator's output): neighbour ids
        # are already CSR indices, so skip the per-edge dict lookups.
        index_of = {node: node for node in nodes}
        flat = chain.from_iterable(adjacency[node] for node in nodes)
    else:
        index_of = {node: i for i, node in enumerate(nodes)}
        flat = (
            index_of[neighbor]
            for node in nodes
            for neighbor in adjacency[node]
        )
    indices = np.fromiter(flat, dtype=np.int32, count=total)
    return CSRGraph(nodes, index_of, indptr, indices)


def _apply_delta(csr: CSRGraph, ops: Sequence[Tuple], graph: UndirectedGraph) -> Optional[CSRGraph]:
    """Patch ``csr`` into a snapshot of ``graph`` using the mutation log.

    Returns ``None`` when the delta cannot be applied cleanly (a node id
    removed and re-added within the window, log/graph inconsistencies, or
    ghost pressure past the compaction threshold) -- the caller then falls
    back to :func:`build_csr`.  Edge presence is settled against the *graph*
    (ground truth), so the log only needs to say which edges were touched.
    """
    node_added: List[NodeId] = []
    node_added_set: Set[NodeId] = set()
    node_removed: Set[NodeId] = set()
    touched_edges: Set[frozenset] = set()
    for op in ops:
        kind = op[0]
        if kind == "+e" or kind == "-e":
            touched_edges.add(frozenset((op[1], op[2])))
        elif kind == "+n":
            node = op[1]
            if node in node_removed:
                return None  # removed-then-re-added id: index reuse is hairy
            if node not in node_added_set:
                node_added_set.add(node)
                node_added.append(node)
        else:  # "-n"
            node = op[1]
            if node in node_added_set:
                return None  # added-then-removed within the window
            node_removed.add(node)

    ghost_count = csr.ghost_count + len(node_removed)
    live_count = graph.number_of_nodes()
    if ghost_count > max(GHOST_SLACK, live_count):
        return None  # compact via a full rebuild

    nodes = list(csr.nodes)
    index_of = dict(csr.index_of)
    n_old = csr.n
    alive = (
        csr.alive.copy()
        if csr.alive is not None
        else np.ones(n_old, dtype=bool)
    )
    if node_added:
        # A logged "+n" may target an id that was already live in the old
        # snapshot (``add_node`` only logs real insertions, but an id ghosted
        # in an *earlier* window can legitimately return): give it a fresh
        # appended index; the stale ghost entry stays masked out.
        appended = [node for node in node_added if node not in index_of]
        if len(appended) != len(node_added):
            return None  # log/graph disagreement: play it safe
        for node in appended:
            index_of[node] = len(nodes)
            nodes.append(node)
        alive = np.concatenate([alive, np.ones(len(appended), dtype=bool)])
    for node in node_removed:
        position = index_of.pop(node, None)
        if position is None:
            return None
        alive[position] = False

    removals: List[Tuple[int, int]] = []
    additions: List[Tuple[int, int]] = []
    old_index_of = csr.index_of
    old_indptr = csr.indptr
    old_indices = csr.indices
    for key in touched_edges:
        u, v = tuple(key)
        iu = old_index_of.get(u)
        iv = old_index_of.get(v)
        was_present = False
        if iu is not None and iv is not None:
            segment = old_indices[old_indptr[iu]:old_indptr[iu + 1]]
            was_present = bool((segment == iv).any())
        present_now = graph.has_edge(u, v)
        if present_now and not was_present:
            additions.append((index_of[u], index_of[v]))
        elif was_present and not present_now:
            removals.append((iu, iv))

    n_new = len(nodes)
    keep = np.ones(old_indices.size, dtype=bool)
    for iu, iv in removals:
        for a, b in ((iu, iv), (iv, iu)):
            start, end = old_indptr[a], old_indptr[a + 1]
            slots = np.flatnonzero(old_indices[start:end] == b)
            if slots.size == 0:
                return None  # log/snapshot disagreement
            keep[start + slots[0]] = False

    src = np.repeat(np.arange(n_old, dtype=np.int64), np.diff(old_indptr))[keep]
    dst = old_indices[keep].astype(np.int64, copy=False)
    if additions:
        add = np.asarray(additions, dtype=np.int64)
        src = np.concatenate([src, add[:, 0], add[:, 1]])
        dst = np.concatenate([dst, add[:, 1], add[:, 0]])
    order = np.argsort(src, kind="stable")
    indices = dst[order].astype(np.int32, copy=False)
    new_degrees = np.bincount(src, minlength=n_new)
    indptr = np.zeros(n_new + 1, dtype=np.int64)
    np.cumsum(new_degrees, out=indptr[1:])
    return CSRGraph(nodes, index_of, indptr, indices, alive=alive)


def csr_of(graph: UndirectedGraph) -> CSRGraph:
    """The cached CSR mirror of ``graph``, patched or rebuilt after mutations.

    On a mutation-stamp mismatch the cached snapshot is patched from the
    graph's delta log when the log covers the interval (see
    :func:`_apply_delta`); otherwise the mirror is rebuilt from scratch.
    Either way the log is reset, so it only ever spans "since the cache last
    synchronised".
    """
    stamp = graph.mutation_stamp
    cached = getattr(graph, _CSR_CACHE_ATTR, None)
    if cached is not None and cached[0] == stamp:
        return cached[1]
    csr: Optional[CSRGraph] = None
    if cached is not None:
        ops = graph.delta_since(cached[0])
        if ops is not None:
            csr = _apply_delta(cached[1], ops, graph)
    if csr is None:
        csr = build_csr(graph)
    graph.reset_delta_log()
    setattr(graph, _CSR_CACHE_ATTR, (stamp, csr))
    return csr


# ----------------------------------------------------------------------
# Core kernels
# ----------------------------------------------------------------------
def _gather_neighbors(csr: CSRGraph, frontier: np.ndarray) -> np.ndarray:
    """Concatenation of every frontier node's neighbour list (with duplicates)."""
    starts = csr.indptr[frontier]
    counts = csr.indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int32)
    exclusive = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=exclusive[1:])
    positions = np.repeat(starts - exclusive, counts) + np.arange(total, dtype=np.int64)
    return csr.indices[positions]


def bfs_distances(csr: CSRGraph, source_index: int) -> np.ndarray:
    """BFS distances (``-1`` for unreachable) from one node index."""
    distances = np.full(csr.n, -1, dtype=np.int64)
    distances[source_index] = 0
    frontier = np.array([source_index], dtype=np.int64)
    mask = np.zeros(csr.n, dtype=bool)
    depth = 0
    while frontier.size:
        candidates = _gather_neighbors(csr, frontier)
        if candidates.size == 0:
            break
        mask[:] = False
        mask[candidates] = True
        mask &= distances < 0
        frontier = np.flatnonzero(mask)
        depth += 1
        distances[frontier] = depth
    return distances


# ----------------------------------------------------------------------
# Batched multi-source BFS (bit-packed frontiers)
# ----------------------------------------------------------------------
def _batched_wave(csr: CSRGraph, sources: np.ndarray):
    """Advance up to 64 BFS sources at once, yielding one packed frontier per level.

    Source ``j`` of the batch occupies bit ``j`` of a ``uint64`` word per
    node; one level advances *all* sources with a single neighbour gather and
    a ``bitwise_or.reduceat`` over the CSR segments -- no per-source Python
    loop, no (B, n) frontier matrix.  The frontier yielded for level
    ``d >= 1`` has bit ``j`` set at node ``v`` iff source ``j`` first reached
    ``v`` at distance ``d``.
    """
    batch = sources.size
    if batch == 0:
        return
    if batch > BFS_BATCH:
        raise ValueError(f"at most {BFS_BATCH} sources per wave, got {batch}")
    n = csr.n
    bits = np.left_shift(np.uint64(1), np.arange(batch, dtype=np.uint64))
    visited = np.zeros(n, dtype=np.uint64)
    np.bitwise_or.at(visited, sources, bits)
    frontier = visited.copy()

    degrees = np.diff(csr.indptr)
    nonzero = np.flatnonzero(degrees > 0)
    starts = csr.indptr[nonzero]
    if csr.indices.size == 0:
        return
    while True:
        gathered = frontier[csr.indices]
        neighbor_or = np.bitwise_or.reduceat(gathered, starts)
        frontier = np.zeros(n, dtype=np.uint64)
        frontier[nonzero] = neighbor_or
        frontier &= ~visited
        if not frontier.any():
            return
        visited |= frontier
        yield frontier


def _frontier_bits(frontier: np.ndarray, batch: int) -> np.ndarray:
    """``(n, batch)`` 0/1 matrix of a packed frontier's per-source bits.

    Bit ``j`` of each ``uint64`` word must land in column ``j``, so the words
    are viewed as little-endian bytes; big-endian hosts byteswap first (a
    copy, but those hosts are rare and correctness beats zero-copy there).
    """
    if sys.byteorder == "big":  # pragma: no cover - exercised on s390x etc.
        frontier = frontier.byteswap()
    unpacked = np.unpackbits(
        frontier.view(np.uint8).reshape(frontier.size, 8), axis=1, bitorder="little"
    )
    return unpacked[:, :batch]


def _frontier_bit_counts(frontier: np.ndarray, batch: int) -> np.ndarray:
    """Per-source popcount of a packed frontier: ``(batch,)`` int64 counts."""
    return _frontier_bits(frontier, batch).sum(axis=0, dtype=np.int64)


def _batched_level_counts(csr: CSRGraph, sources: np.ndarray) -> List[np.ndarray]:
    """Per-level newly-visited counts for up to 64 BFS sources at once.

    Returns one ``(B,)`` int64 array per BFS level ``d >= 1``: entry ``j`` is
    the number of nodes source ``j`` first reached at distance ``d``.
    Everything the sampled estimators need (eccentricity, distance sums,
    reachable counts) derives from these counts, so distances are never
    materialised.
    """
    batch = sources.size
    return [
        _frontier_bit_counts(frontier, batch)
        for frontier in _batched_wave(csr, sources)
    ]


def _batched_source_indices(csr: CSRGraph, nodes: Sequence[NodeId]) -> np.ndarray:
    index_of = csr.index_of
    return np.fromiter(
        (index_of[node] for node in nodes), dtype=np.int64, count=len(nodes)
    )


def bfs_distances_batch(csr: CSRGraph, sources: np.ndarray) -> np.ndarray:
    """BFS distances (``-1`` unreachable) from many sources: a ``(B, n)`` matrix.

    Runs the same bit-packed wave as :func:`_batched_level_counts` in chunks
    of :data:`BFS_BATCH` sources, materialising per-level distance rows.  Use
    the count-based estimators when only aggregates are needed; this is the
    kernel behind :func:`shortest_path_lengths_from_many`.
    """
    sources = np.asarray(sources, dtype=np.int64)
    total = sources.size
    n = csr.n
    distances = np.full((total, n), -1, dtype=np.int32)
    for offset in range(0, total, BFS_BATCH):
        chunk = sources[offset:offset + BFS_BATCH]
        batch = chunk.size
        rows = distances[offset:offset + batch]
        rows[np.arange(batch), chunk] = 0
        for depth, frontier in enumerate(_batched_wave(csr, chunk), start=1):
            rows[_frontier_bits(frontier, batch).T.astype(bool)] = depth
    return distances


def shortest_path_lengths_from_many(
    graph: UndirectedGraph, sources: Sequence[NodeId]
) -> List[Dict[NodeId, int]]:
    """Batched :func:`shortest_path_lengths_from`: one distance dict per source."""
    csr = csr_of(graph)
    for source in sources:
        if source not in csr.index_of:
            raise GraphError(f"source {source!r} not in graph")
    if not sources:
        return []
    distances = bfs_distances_batch(csr, _batched_source_indices(csr, sources))
    nodes = csr.nodes
    result = []
    for row in distances:
        reached = np.flatnonzero(row >= 0)
        result.append({nodes[int(i)]: int(row[i]) for i in reached})
    return result


def _chunked_level_counts(
    csr: CSRGraph, nodes: Sequence[NodeId]
) -> Iterable[Tuple[int, List[np.ndarray]]]:
    """Yield ``(chunk_size, per-level counts)`` for sources in wave chunks."""
    indices = _batched_source_indices(csr, nodes)
    for offset in range(0, indices.size, BFS_BATCH):
        chunk = indices[offset:offset + BFS_BATCH]
        yield chunk.size, _batched_level_counts(csr, chunk)


def _component_labels(
    n: int, indptr: np.ndarray, indices: np.ndarray
) -> np.ndarray:
    """Component label (minimum member index) for every node.

    Min-label propagation over the CSR neighbour segments
    (``np.minimum.reduceat``) alternated with pointer jumping; converges in
    O(log n) outer rounds even on path/ring graphs.
    """
    labels = np.arange(n, dtype=np.int64)
    if n == 0 or indices.size == 0:
        return labels
    degrees = np.diff(indptr)
    nonzero = np.flatnonzero(degrees > 0)
    starts = indptr[nonzero]
    while True:
        neighbor_min = np.minimum.reduceat(labels[indices], starts)
        proposal = labels.copy()
        proposal[nonzero] = np.minimum(labels[nonzero], neighbor_min)
        while True:
            hopped = proposal[proposal]
            if np.array_equal(hopped, proposal):
                break
            proposal = hopped
        if np.array_equal(proposal, labels):
            return labels
        labels = proposal


def component_labels(graph: UndirectedGraph) -> np.ndarray:
    """Component label per node, aligned with ``graph.nodes()`` order.

    On a delta-patched CSR the ghost (removed-node) rows are masked out, so
    the array always has exactly ``graph.number_of_nodes()`` entries.  Labels
    are minimum member *indices* into the mirror's index space: equal label
    means same component; the values themselves are not node ids.
    """
    return _live_labels(graph)


# ----------------------------------------------------------------------
# metrics.py twins
# ----------------------------------------------------------------------
def shortest_path_lengths_from(graph: UndirectedGraph, source: NodeId) -> Dict[NodeId, int]:
    """BFS distances from ``source`` to every reachable node (including itself)."""
    csr = csr_of(graph)
    if source not in csr.index_of:
        raise GraphError(f"source {source!r} not in graph")
    distances = bfs_distances(csr, csr.index_of[source])
    reached = np.flatnonzero(distances >= 0)
    nodes = csr.nodes
    return {nodes[int(i)]: int(distances[i]) for i in reached}


def closeness_centrality(graph: UndirectedGraph, node: NodeId) -> float:
    """Normalised closeness centrality of ``node`` (reference-identical)."""
    n = graph.number_of_nodes()
    if n <= 1:
        return 0.0
    csr = csr_of(graph)
    if node not in csr.index_of:
        raise GraphError(f"source {node!r} not in graph")
    distances = bfs_distances(csr, csr.index_of[node])
    reached = distances >= 0
    reachable = int(reached.sum()) - 1
    if reachable == 0:
        return 0.0
    total = int(distances[reached].sum())
    closeness = reachable / total
    return closeness * (reachable / (n - 1))


def average_closeness_centrality(
    graph: UndirectedGraph,
    *,
    sample_size: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> float:
    """Mean closeness centrality over all nodes (or a deterministic sample).

    All sampled sources run as bit-packed multi-source BFS waves; the
    per-source closeness values are reassembled from per-level visit counts
    with exactly the reference's integer-then-float arithmetic (and summed in
    the same source order), so the result stays bit-identical.
    """
    nodes = _select_nodes(graph, sample_size, rng)
    if not nodes:
        return 0.0
    n = graph.number_of_nodes()
    if n <= 1:
        return 0.0
    csr = csr_of(graph)
    values: List[float] = []
    for batch, level_counts in _chunked_level_counts(csr, nodes):
        reachable = [0] * batch
        totals = [0] * batch
        for depth, counts in enumerate(level_counts, start=1):
            for j in range(batch):
                newly = int(counts[j])
                reachable[j] += newly
                totals[j] += depth * newly
        for j in range(batch):
            if reachable[j] == 0:
                values.append(0.0)
            else:
                closeness = reachable[j] / totals[j]
                values.append(closeness * (reachable[j] / (n - 1)))
    return sum(values) / len(values)


def degree_centrality(graph: UndirectedGraph, node: NodeId) -> float:
    """Degree of ``node`` normalised by ``n - 1``."""
    n = graph.number_of_nodes()
    if n <= 1:
        return 0.0
    return graph.degree(node) / (n - 1)


def average_degree_centrality(graph: UndirectedGraph) -> float:
    """Mean degree centrality over every node."""
    n = graph.number_of_nodes()
    if n <= 1:
        return 0.0
    csr = csr_of(graph)
    total_degree = int(csr.indptr[-1])
    return (total_degree / n) / (n - 1)


def _grouped_components(labels: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Unique labels (ascending == discovery order) and their member indices."""
    order = np.argsort(labels, kind="stable")
    sorted_labels = labels[order]
    boundaries = np.flatnonzero(np.diff(sorted_labels)) + 1
    groups = np.split(order, boundaries)
    unique = sorted_labels[np.concatenate(([0], boundaries))] if labels.size else sorted_labels
    return unique, groups


def connected_components(graph: UndirectedGraph) -> List[Set[NodeId]]:
    """All connected components as sets of nodes, reference-identical order.

    The reference implementation discovers components by scanning
    ``graph.nodes()`` and stable-sorts by size (descending).  A component's
    label is its minimum node *index*, so ascending label order *is* discovery
    order; the same stable size sort then reproduces the exact list order.
    Ghost indices of a patched CSR are masked out first -- live indices keep
    their relative (insertion) order, so the ordering argument still holds.
    """
    if graph.number_of_nodes() == 0:
        return []
    csr = csr_of(graph)
    labels = _component_labels(csr.n, csr.indptr, csr.indices)
    nodes = csr.nodes
    if csr.alive is None:
        _, groups = _grouped_components(labels)
        members = [[int(i) for i in group] for group in groups]
    else:
        live = np.flatnonzero(csr.alive)
        _, groups = _grouped_components(labels[live])
        members = [[int(live[i]) for i in group] for group in groups]
    sizes = np.fromiter((len(group) for group in members), dtype=np.int64, count=len(members))
    order = np.argsort(-sizes, kind="stable")
    return [{nodes[i] for i in members[int(g)]} for g in order]


def _live_labels(graph: UndirectedGraph) -> np.ndarray:
    """Component labels restricted to live (non-ghost) indices."""
    csr = csr_of(graph)
    labels = _component_labels(csr.n, csr.indptr, csr.indices)
    if csr.alive is None:
        return labels
    return labels[csr.alive]


def number_connected_components(graph: UndirectedGraph) -> int:
    """Count of connected components (0 for an empty graph)."""
    if graph.number_of_nodes() == 0:
        return 0
    return len(np.unique(_live_labels(graph)))


def component_summary(graph: UndirectedGraph) -> Tuple[int, int]:
    """``(component_count, largest_component_size)`` in one kernel run."""
    if graph.number_of_nodes() == 0:
        return 0, 0
    _, counts = np.unique(_live_labels(graph), return_counts=True)
    return len(counts), int(counts.max())


def largest_component_fraction(graph: UndirectedGraph) -> float:
    """Fraction of surviving nodes inside the largest connected component."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0.0
    _, largest = component_summary(graph)
    return largest / n


def eccentricity(graph: UndirectedGraph, node: NodeId) -> int:
    """Largest BFS distance from ``node`` within its component."""
    csr = csr_of(graph)
    if node not in csr.index_of:
        raise GraphError(f"source {node!r} not in graph")
    distances = bfs_distances(csr, csr.index_of[node])
    return int(distances.max()) if distances.size else 0


def largest_component_subgraph(graph: UndirectedGraph) -> UndirectedGraph:
    """``graph`` when connected, else the induced largest-component subgraph."""
    if graph.number_of_nodes() == 0:
        return graph
    return _working_component(graph)[0]


def _working_component(graph: UndirectedGraph) -> Tuple[UndirectedGraph, int]:
    """``(graph-or-largest-component-subgraph, component_count)``.

    Mirrors the reference implementations exactly: the subgraph is built with
    the same ``UndirectedGraph.subgraph(set)`` call on an equal component set
    (largest, ties broken by discovery order), so node insertion order -- and
    therefore sampled-source selection -- is identical.
    """
    csr = csr_of(graph)
    labels = _component_labels(csr.n, csr.indptr, csr.indices)
    live_labels = labels if csr.alive is None else labels[csr.alive]
    unique, counts = np.unique(live_labels, return_counts=True)
    if len(unique) <= 1:
        return graph, len(unique)
    # ``unique`` ascends by label == discovery order; argmax keeps the first
    # (discovery-order) component among equal-size ties, like the reference's
    # stable size sort.
    winner = unique[int(np.argmax(counts))]
    in_winner = labels == winner
    if csr.alive is not None:
        in_winner &= csr.alive
    nodes = csr.nodes
    members = {nodes[int(i)] for i in np.flatnonzero(in_winner)}
    return graph.subgraph(members), len(unique)


def diameter(
    graph: UndirectedGraph,
    *,
    sample_size: Optional[int] = None,
    rng: Optional[random.Random] = None,
    largest_component_only: bool = True,
    connected: Optional[bool] = None,
) -> float:
    """Diameter of the graph (see :func:`repro.graphs.metrics.diameter`)."""
    if graph.number_of_nodes() == 0:
        return 0.0
    if connected:
        working = graph
    else:
        working, component_count = _working_component(graph)
        if component_count > 1 and not largest_component_only:
            return float("inf")
    csr = csr_of(working)
    nodes = _select_nodes(working, sample_size, rng)
    best = 0
    # A source's eccentricity is the last level at which its packed frontier
    # still advanced, so the batched wave's level count *is* the chunk's max
    # -- no per-level count extraction needed at all.
    indices = _batched_source_indices(csr, nodes)
    for offset in range(0, indices.size, BFS_BATCH):
        chunk = indices[offset:offset + BFS_BATCH]
        best = max(best, sum(1 for _ in _batched_wave(csr, chunk)))
    return float(best)


def average_shortest_path_length(
    graph: UndirectedGraph,
    *,
    sample_size: Optional[int] = None,
    rng: Optional[random.Random] = None,
    connected: Optional[bool] = None,
) -> float:
    """Mean pairwise distance inside the largest component (sampled sources)."""
    if graph.number_of_nodes() <= 1:
        return 0.0
    working = graph if connected else _working_component(graph)[0]
    csr = csr_of(working)
    nodes = _select_nodes(working, sample_size, rng)
    total = 0
    pairs = 0
    for _batch, level_counts in _chunked_level_counts(csr, nodes):
        for depth, counts in enumerate(level_counts, start=1):
            newly = int(counts.sum())
            total += depth * newly
            pairs += newly
    if pairs == 0:
        return 0.0
    return total / pairs


def degree_histogram(graph: UndirectedGraph) -> Dict[int, int]:
    """Mapping of degree value -> number of nodes with that degree."""
    if graph.number_of_nodes() == 0:
        return {}
    csr = csr_of(graph)
    degrees = csr.degrees()
    if csr.alive is not None:
        degrees = degrees[csr.alive]
    values, counts = np.unique(degrees, return_counts=True)
    return {int(value): int(count) for value, count in zip(values, counts)}


def top_degree_nodes(graph: UndirectedGraph) -> List[NodeId]:
    """All maximum-degree nodes, sorted by ``repr`` (empty for an empty graph).

    One masked argmax over the CSR degree array instead of a Python dict
    scan; with the incremental delta patching this keeps the hub-targeted
    takedown's per-victim candidate search cheap even while the overlay
    mutates between victims.
    """
    if graph.number_of_nodes() == 0:
        return []
    csr = csr_of(graph)
    degrees = csr.degrees()
    if csr.alive is None:
        top = int(degrees.max())
        winners = np.flatnonzero(degrees == top)
    else:
        live = np.flatnonzero(csr.alive)
        live_degrees = degrees[live]
        top = int(live_degrees.max())
        winners = live[np.flatnonzero(live_degrees == top)]
    nodes = csr.nodes
    return sorted((nodes[int(i)] for i in winners), key=repr)


def induced_component_summary(
    graph: UndirectedGraph, keep_nodes: Sequence[NodeId]
) -> Tuple[int, int, int, int]:
    """``(surviving, components, largest, isolated)`` of an induced subgraph.

    Builds a compact CSR of the subgraph induced on ``keep_nodes`` straight
    from the adjacency sets -- one pass over the kept nodes' neighbour lists
    -- and labels components on it.  Unlike
    :func:`partition_summary_after_removal` it never mirrors the *full*
    graph, which matters when the kept set is a small minority: a finished
    SOAP campaign leaves several clones per bot, so the benign subgraph is an
    order of magnitude smaller than the overlay.
    """
    adjacency = graph._adjacency
    # dict.fromkeys: drop duplicates while keeping first-occurrence order, so
    # a repeated id cannot leave an edge-less phantom row behind.
    keep = [node for node in dict.fromkeys(keep_nodes) if node in adjacency]
    n = len(keep)
    if n == 0:
        return 0, 0, 0, 0
    index = {node: i for i, node in enumerate(keep)}
    src: List[int] = []
    dst: List[int] = []
    for i, node in enumerate(keep):
        for peer in adjacency[node]:
            j = index.get(peer)
            if j is not None:
                src.append(i)
                dst.append(j)
    # ``src`` is already nondecreasing (built in index order): no sort needed.
    indices = np.asarray(dst, dtype=np.int32)
    degrees = np.bincount(np.asarray(src, dtype=np.int64), minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    labels = _component_labels(n, indptr, indices)
    _, counts = np.unique(labels, return_counts=True)
    return n, len(counts), int(counts.max()), int((counts == 1).sum())


# ----------------------------------------------------------------------
# Masked kernels (Figure 6 simultaneous-deletion sweeps)
# ----------------------------------------------------------------------
def partition_summary_after_removal(
    graph: UndirectedGraph, victims: Sequence[NodeId]
) -> Tuple[int, int, int, int]:
    """``(surviving, components, largest, isolated)`` after removing ``victims``.

    Computes the survivors' component structure directly on a masked CSR --
    no per-victim-set Python subgraph construction -- which is what makes the
    100k-node partition-threshold sweep tractable.
    """
    csr = csr_of(graph)
    keep = np.ones(csr.n, dtype=bool) if csr.alive is None else csr.alive.copy()
    for victim in victims:
        index = csr.index_of.get(victim)
        if index is not None:
            keep[index] = False
    surviving = int(keep.sum())
    if surviving == 0:
        return 0, 0, 0, 0
    # Filter to surviving-endpoint edges and rebuild a compact CSR over the
    # original index space (removed nodes simply keep zero degree).
    src = np.repeat(np.arange(csr.n, dtype=np.int64), csr.degrees())
    dst = csr.indices.astype(np.int64, copy=False)
    edge_keep = keep[src] & keep[dst]
    fsrc = src[edge_keep]
    fdst = dst[edge_keep]
    order = np.argsort(fsrc, kind="stable")
    findices = fdst[order]
    fdegrees = np.bincount(fsrc, minlength=csr.n)
    findptr = np.zeros(csr.n + 1, dtype=np.int64)
    np.cumsum(fdegrees, out=findptr[1:])
    labels = _component_labels(csr.n, findptr, findices)
    _, counts = np.unique(labels[keep], return_counts=True)
    components = len(counts)
    largest = int(counts.max())
    isolated = int((counts == 1).sum())
    return surviving, components, largest, isolated
