"""Tests for named random streams."""

import pytest

from repro.sim.rng import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_differs_by_name(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_differs_by_master(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")


class TestRandomStreams:
    def test_same_stream_returns_same_generator(self):
        streams = RandomStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_streams_are_independent(self):
        streams = RandomStreams(0)
        # Drawing from one stream must not perturb another.
        before = RandomStreams(0).stream("b").random()
        streams.stream("a").random()
        streams.stream("a").random()
        after = streams.stream("b").random()
        assert before == after

    def test_reproducible_across_instances(self):
        a = RandomStreams(5).stream("overlay").randint(0, 10**9)
        b = RandomStreams(5).stream("overlay").randint(0, 10**9)
        assert a == b

    def test_spawn_creates_independent_family(self):
        parent = RandomStreams(1)
        child_a = parent.spawn("rep-1")
        child_b = parent.spawn("rep-2")
        assert child_a.master_seed != child_b.master_seed
        assert child_a.stream("x").random() != child_b.stream("x").random()

    def test_choice_empty_population_raises(self):
        with pytest.raises(IndexError):
            RandomStreams(0).choice("s", [])

    def test_sample_too_large_raises(self):
        with pytest.raises(ValueError):
            RandomStreams(0).sample("s", [1, 2, 3], 4)

    def test_sample_returns_distinct_elements(self):
        sample = RandomStreams(0).sample("s", range(100), 10)
        assert len(sample) == len(set(sample)) == 10

    def test_shuffled_preserves_multiset(self):
        population = list(range(50))
        shuffled = RandomStreams(0).shuffled("s", population)
        assert sorted(shuffled) == population
        assert shuffled != population  # overwhelmingly likely for 50 elements

    def test_uniform_within_bounds(self):
        streams = RandomStreams(0)
        values = [streams.uniform("u", 2.0, 3.0) for _ in range(100)]
        assert all(2.0 <= value <= 3.0 for value in values)

    def test_randint_within_bounds(self):
        streams = RandomStreams(0)
        values = [streams.randint("i", 5, 9) for _ in range(100)]
        assert all(5 <= value <= 9 for value in values)

    def test_random_bytes_length_and_determinism(self):
        a = RandomStreams(3).random_bytes("k", 32)
        b = RandomStreams(3).random_bytes("k", 32)
        assert len(a) == 32
        assert a == b
