"""Tests for events and the deterministic event queue."""

from repro.sim.events import EventQueue


class TestEventQueueOrdering:
    def test_pops_in_timestamp_order(self):
        queue = EventQueue()
        fired = []
        queue.push(3.0, lambda: fired.append("c"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(2.0, lambda: fired.append("b"))
        for event in queue.drain():
            event.action()
        assert fired == ["a", "b", "c"]

    def test_same_timestamp_preserves_insertion_order(self):
        queue = EventQueue()
        order = []
        for label in "abcde":
            queue.push(5.0, (lambda tag: (lambda: order.append(tag)))(label))
        for event in queue.drain():
            event.action()
        assert order == list("abcde")

    def test_priority_breaks_timestamp_ties(self):
        queue = EventQueue()
        order = []
        queue.push(5.0, lambda: order.append("low"), priority=10)
        queue.push(5.0, lambda: order.append("high"), priority=-10)
        for event in queue.drain():
            event.action()
        assert order == ["high", "low"]

    def test_peek_time_reports_next_event(self):
        queue = EventQueue()
        queue.push(7.0, lambda: None)
        queue.push(4.0, lambda: None)
        assert queue.peek_time() == 4.0

    def test_peek_time_empty_returns_none(self):
        assert EventQueue().peek_time() is None


class TestCancellation:
    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        keep = queue.push(1.0, lambda: fired.append("keep"))
        drop = queue.push(2.0, lambda: fired.append("drop"))
        queue.cancel(drop)
        for event in queue.drain():
            event.action()
        assert fired == ["keep"]
        assert keep.cancelled is False

    def test_len_reflects_live_events(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        queue.cancel(first)
        assert len(queue) == 1

    def test_double_cancel_does_not_underflow(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.cancel(event)
        queue.cancel(event)
        assert len(queue) == 0

    def test_clear_empties_queue(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.clear()
        assert not queue
        assert queue.pop() is None

    def test_bool_protocol(self):
        queue = EventQueue()
        assert not queue
        queue.push(1.0, lambda: None)
        assert queue
