"""Export experiment results to CSV / JSON for external plotting.

The benchmarks print their regenerated series as text; research users usually
also want machine-readable artifacts to feed into their own plotting pipeline.
These helpers write dataclass-based experiment results (Fig4Result,
Fig5Result, ...) and plain series to disk without any third-party dependency.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of experiment objects into JSON-compatible data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {key: _jsonable(item) for key, item in dataclasses.asdict(value).items()}
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, float) and (value != value or value in (float("inf"), float("-inf"))):
        return str(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_json(path: str | Path, result: Any) -> Path:
    """Serialize any experiment result (dataclass, dict, list) to JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(_jsonable(result), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target


def write_series_csv(
    path: str | Path,
    columns: Mapping[str, Sequence[Any]],
) -> Path:
    """Write aligned series as CSV columns.

    ``columns`` maps header -> sequence of values; every sequence must have
    the same length.  Example::

        write_series_csv("fig5.csv", {
            "deleted": result.deletions,
            "ddsr_components": result.ddsr_components,
            "normal_components": result.normal_components,
        })
    """
    if not columns:
        raise ValueError("at least one column is required")
    lengths = {len(values) for values in columns.values()}
    if len(lengths) != 1:
        raise ValueError(f"all columns must have the same length, got {sorted(lengths)}")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    headers = list(columns)
    with target.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in zip(*(columns[header] for header in headers)):
            writer.writerow(row)
    return target


def write_rows_csv(path: str | Path, rows: Iterable[Mapping[str, Any]]) -> Path:
    """Write a list of homogeneous dict rows (e.g. Table I) as CSV."""
    rows = list(rows)
    if not rows:
        raise ValueError("at least one row is required")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    headers = list(rows[0])
    with target.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=headers)
        writer.writeheader()
        for row in rows:
            writer.writerow({key: row.get(key, "") for key in headers})
    return target


def export_fig4(results: Sequence[Any], directory: str | Path) -> list[Path]:
    """Write one CSV per Figure 4 curve plus a combined JSON."""
    directory = Path(directory)
    written: list[Path] = []
    for curve in results:
        suffix = "pruning" if curve.pruning else "no-pruning"
        written.append(
            write_series_csv(
                directory / f"fig4_deg{curve.degree}_{suffix}.csv",
                {
                    "deleted": curve.deletions,
                    "closeness": curve.closeness,
                    "degree_centrality": curve.degree_centrality,
                    "max_degree": curve.max_degree,
                },
            )
        )
    written.append(write_json(directory / "fig4.json", list(results)))
    return written


def export_fig5(result: Any, directory: str | Path) -> list[Path]:
    """Write the six Figure 5 series as one CSV plus a JSON."""
    directory = Path(directory)
    written = [
        write_series_csv(
            directory / f"fig5_n{result.n}.csv",
            {
                "deleted": result.deletions,
                "ddsr_components": result.ddsr_components,
                "normal_components": result.normal_components,
                "ddsr_degree_centrality": result.ddsr_degree_centrality,
                "normal_degree_centrality": result.normal_degree_centrality,
                "ddsr_diameter": result.ddsr_diameter,
                "normal_diameter": result.normal_diameter,
            },
        ),
        write_json(directory / f"fig5_n{result.n}.json", result),
    ]
    return written


def export_fig6(result: Any, directory: str | Path) -> list[Path]:
    """Write the Figure 6 threshold sweep as CSV plus JSON."""
    directory = Path(directory)
    return [
        write_series_csv(
            directory / "fig6.csv",
            {
                "size": result.sizes,
                "nodes_to_partition": result.nodes_to_partition,
                "fraction": result.fractions,
            },
        ),
        write_json(directory / "fig6.json", result),
    ]
