"""Key-derivation functions used by the address-rotation scheme.

Section IV-D of the paper: after infection each bot generates a symmetric key
``K_B`` and reports it to the C&C encrypted under the hard-coded botmaster
public key.  Afterwards the bot "periodically changes its .onion address based
on a new private key generated using the recipe ``generateKey(PK_CC,
H(K_B, i_p))``", where ``i_p`` is the index of the period (e.g. the day).
Because both sides know ``K_B`` and the period index, the C&C can always
recompute where every bot will be listening -- without any on-the-wire
coordination.  :func:`derive_period_key` implements that recipe on top of the
simulated keypairs.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Iterable

from repro.crypto.keys import KeyPair, PublicKey


def kdf(context: str, *parts: bytes) -> bytes:
    """Domain-separated hash of ``parts`` (32 bytes).

    ``context`` provides domain separation so that, e.g., address-rotation
    keys can never collide with group keys derived from the same material.
    """
    hasher = hashlib.sha256()
    hasher.update(context.encode("utf-8"))
    for part in parts:
        hasher.update(len(part).to_bytes(4, "big"))
        hasher.update(part)
    return hasher.digest()


def period_token(bot_key: bytes, period_index: int) -> bytes:
    """``H(K_B, i_p)`` from the paper's recipe."""
    if period_index < 0:
        raise ValueError(f"period index must be non-negative, got {period_index}")
    return kdf("onionbot.period", bot_key, period_index.to_bytes(8, "big"))


def derive_period_key(
    botmaster_public: PublicKey,
    bot_key: bytes,
    period_index: int,
) -> KeyPair:
    """``generateKey(PK_CC, H(K_B, i_p))``: the bot's keypair for a period.

    Both the bot (holder of ``K_B``) and the botmaster (who received ``K_B``
    at rally time) can run this and thus agree on the bot's next ``.onion``
    address without communicating.
    """
    token = period_token(bot_key, period_index)
    seed = kdf("onionbot.period-key", botmaster_public.material, token)
    return KeyPair.from_seed(seed)


def derive_group_key(botmaster_private: bytes, group_name: str) -> bytes:
    """A symmetric group key the botmaster can hand to a subset of bots."""
    return kdf("onionbot.group-key", botmaster_private, group_name.encode("utf-8"))


def hash_chain(seed: bytes, length: int) -> list[bytes]:
    """A forward hash chain (used by rate-limiting / PoW ticket models)."""
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    chain: list[bytes] = []
    current = seed
    for _ in range(length):
        current = hashlib.sha256(current).digest()
        chain.append(current)
    return chain


def hmac_tag(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 tag (used by the simulated link-authentication checks)."""
    return hmac.new(key, message, hashlib.sha256).digest()


def verify_hmac(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time verification of :func:`hmac_tag`."""
    return hmac.compare_digest(hmac_tag(key, message), tag)


def combine(parts: Iterable[bytes]) -> bytes:
    """Order-sensitive combination of byte strings into one digest."""
    return kdf("onionbot.combine", *list(parts))
