"""The Dynamic Distributed Self-Repairing (DDSR) overlay.

Paper section IV-C.  Each bot maintains a small peer list (its graph
neighbours) *and* knows the identities of its neighbours' neighbours (NoN).
Three mechanisms keep the overlay healthy:

* **Repairing** -- when a node ``u`` disappears, every pair of its neighbours
  ``(v, w)`` forms the edge ``(v, w)`` unless it already exists.  This is
  possible precisely because the survivors already knew each other through
  their NoN view of ``u``.
* **Pruning** -- repairs inflate degrees, so each neighbour of the deleted node
  drops its highest-degree peer (random tie-break) until its own degree is back
  within ``[d_min, d_max]``.
* **Forgetting** -- pruned peers' ``.onion`` addresses are forgotten, and bots
  periodically rotate addresses, so captured peer lists decay quickly.

The class below is a *pure graph* object -- node identifiers are whatever the
caller uses (integers in the resilience experiments, onion addresses in the
full botnet simulation).  It is deliberately independent of the Tor model so
the Figure 4/5/6 sweeps can run on thousands of nodes quickly.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set

from repro.core.errors import OverlayError
from repro.graphs.adjacency import UndirectedGraph
from repro.graphs.generators import k_regular_graph

NodeId = Hashable


class RepairPolicy(enum.Enum):
    """How the neighbours of a deleted node reconnect.

    ``CLIQUE`` is the paper's algorithm; the others are ablations used by the
    design-choice benchmarks, and ``NONE`` turns the overlay into the "normal
    graph" baseline of Figures 5 and 6.
    """

    CLIQUE = "clique"
    RING = "ring"
    SINGLE_EDGE = "single-edge"
    NONE = "none"


class PruningPolicy(enum.Enum):
    """Which peer an over-degree node drops first."""

    HIGHEST_DEGREE = "highest-degree"
    LOWEST_DEGREE = "lowest-degree"
    RANDOM = "random"
    NONE = "none"


@dataclass
class OverlayStats:
    """Counters describing the overlay's maintenance activity."""

    nodes_removed: int = 0
    repairs_performed: int = 0
    repair_edges_added: int = 0
    prune_operations: int = 0
    prune_edges_removed: int = 0
    addresses_forgotten: int = 0
    nodes_joined: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict snapshot for reports."""
        return {
            "nodes_removed": self.nodes_removed,
            "repairs_performed": self.repairs_performed,
            "repair_edges_added": self.repair_edges_added,
            "prune_operations": self.prune_operations,
            "prune_edges_removed": self.prune_edges_removed,
            "addresses_forgotten": self.addresses_forgotten,
            "nodes_joined": self.nodes_joined,
        }


@dataclass
class DDSRConfig:
    """Degree bounds and policies for a DDSR overlay."""

    d_min: int = 5
    d_max: int = 15
    repair_policy: RepairPolicy = RepairPolicy.CLIQUE
    pruning_policy: PruningPolicy = PruningPolicy.HIGHEST_DEGREE
    forgetting_enabled: bool = True

    def __post_init__(self) -> None:
        if self.d_min < 0:
            raise OverlayError(f"d_min must be >= 0, got {self.d_min}")
        if self.d_max < self.d_min:
            raise OverlayError(f"d_max ({self.d_max}) must be >= d_min ({self.d_min})")


class DDSROverlay:
    """A self-healing peer-to-peer overlay following the paper's DDSR rules."""

    def __init__(
        self,
        graph: Optional[UndirectedGraph] = None,
        *,
        config: Optional[DDSRConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.graph = graph if graph is not None else UndirectedGraph()
        self.config = config or DDSRConfig()
        self.rng = rng if rng is not None else random.Random(0)
        self.stats = OverlayStats()
        #: Addresses the overlay has "forgotten" (pruned or removed peers).
        self.forgotten: Set[NodeId] = set()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def k_regular(
        cls,
        n: int,
        k: int,
        *,
        config: Optional[DDSRConfig] = None,
        seed: int = 0,
    ) -> "DDSROverlay":
        """Build an overlay wired as a random k-regular graph on ``n`` nodes.

        Mirrors the paper's experimental setup ("we simulate the node deletion
        process in a k-regular graph (k = 5, 10, 15) of 5000 nodes").
        """
        rng = random.Random(seed)
        graph = k_regular_graph(n, k, rng=rng)
        if config is None:
            config = DDSRConfig(d_min=min(5, k), d_max=max(15, k))
        return cls(graph, config=config, rng=rng)

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple],
        *,
        config: Optional[DDSRConfig] = None,
        seed: int = 0,
    ) -> "DDSROverlay":
        """Build an overlay from an explicit edge list (used by small examples)."""
        graph = UndirectedGraph(edges=edges)
        return cls(graph, config=config, rng=random.Random(seed))

    # ------------------------------------------------------------------
    # Queries (delegation to the underlying graph)
    # ------------------------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        return node in self.graph

    def __len__(self) -> int:
        return len(self.graph)

    def nodes(self) -> List[NodeId]:
        """Surviving node identifiers."""
        return self.graph.nodes()

    def peers(self, node: NodeId) -> Set[NodeId]:
        """The peer list of ``node``."""
        return self.graph.neighbors(node)

    def degree(self, node: NodeId) -> int:
        """Current degree of ``node``."""
        return self.graph.degree(node)

    def neighbors_of_neighbors(self, node: NodeId) -> Set[NodeId]:
        """The NoN knowledge of ``node``."""
        return self.graph.neighbors_of_neighbors(node)

    def knows(self, node: NodeId, other: NodeId) -> bool:
        """Whether ``node`` currently knows ``other``'s address.

        A bot knows its peers and its peers' peers; everything else -- in
        particular pruned/forgotten addresses -- is unknown to it.  This is the
        property both the stealth analysis (section V-A) and the SOAP attack
        rely on.
        """
        if node not in self.graph or other not in self.graph:
            return False
        if self.graph.has_edge(node, other):
            return True
        return other in self.graph.neighbors_of_neighbors(node)

    # ------------------------------------------------------------------
    # Membership changes
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, peers: Sequence[NodeId] = ()) -> None:
        """Join a new node and connect it to ``peers`` (existing nodes only).

        Each accepting peer applies the normal pruning rule afterwards, so a
        join can never push an existing bot past ``d_max``.
        """
        if node in self.graph:
            raise OverlayError(f"node {node!r} already in overlay")
        self.graph.add_node(node)
        accepted: list[NodeId] = []
        for peer in peers:
            if peer not in self.graph:
                raise OverlayError(f"cannot peer with unknown node {peer!r}")
            if peer == node:
                continue
            self.graph.add_edge(node, peer)
            accepted.append(peer)
        if self.config.pruning_policy is not PruningPolicy.NONE:
            for peer in accepted:
                if peer in self.graph:
                    self._prune_node(peer)
        self.stats.nodes_joined += 1

    def add_edge(self, u: NodeId, v: NodeId) -> bool:
        """Create a peering between two existing nodes."""
        if u not in self.graph or v not in self.graph:
            raise OverlayError("both endpoints must already be overlay members")
        return self.graph.add_edge(u, v)

    def remove_node(self, node: NodeId, *, repair: bool = True) -> List[NodeId]:
        """Delete ``node`` (takedown / cleanup) and run the self-healing steps.

        Returns the list of former neighbours.  ``repair=False`` models a
        *simultaneous* mass-takedown where survivors get no chance to heal
        before the next deletion (Figure 6's scenario); the caller then invokes
        :meth:`repair_after_mass_removal` once, afterwards, if desired.
        """
        if node not in self.graph:
            raise OverlayError(f"node {node!r} not in overlay")
        neighbors = self.graph.remove_node(node)
        self.stats.nodes_removed += 1
        if self.config.forgetting_enabled:
            self.forgotten.add(node)
            self.stats.addresses_forgotten += 1
        if repair and self.config.repair_policy is not RepairPolicy.NONE:
            self._repair(neighbors)
            self._prune(neighbors)
        return neighbors

    def remove_nodes(self, nodes: Iterable[NodeId], *, repair: bool = True) -> int:
        """Delete several nodes sequentially (each followed by its repair)."""
        count = 0
        for node in nodes:
            if node in self.graph:
                self.remove_node(node, repair=repair)
                count += 1
        return count

    def remove_fraction(
        self,
        fraction: float,
        *,
        repair: bool = True,
        rng: Optional[random.Random] = None,
    ) -> List[NodeId]:
        """Delete a random ``fraction`` of surviving nodes, one at a time."""
        if not 0.0 <= fraction <= 1.0:
            raise OverlayError(f"fraction must be in [0, 1], got {fraction}")
        chooser = rng if rng is not None else self.rng
        nodes = self.graph.nodes()
        count = int(round(fraction * len(nodes)))
        victims = chooser.sample(nodes, count) if count else []
        self.remove_nodes(victims, repair=repair)
        return victims

    # ------------------------------------------------------------------
    # Self-healing internals
    # ------------------------------------------------------------------
    def _repair(self, former_neighbors: Sequence[NodeId]) -> int:
        """Reconnect the survivors of a deletion according to the repair policy."""
        survivors = [node for node in former_neighbors if node in self.graph]
        if len(survivors) < 2:
            return 0
        added = 0
        policy = self.config.repair_policy
        if policy is RepairPolicy.CLIQUE:
            for index, u in enumerate(survivors):
                for v in survivors[index + 1:]:
                    if self.graph.add_edge(u, v):
                        added += 1
        elif policy is RepairPolicy.RING:
            ordered = sorted(survivors, key=repr)
            for index, u in enumerate(ordered):
                v = ordered[(index + 1) % len(ordered)]
                if u != v and self.graph.add_edge(u, v):
                    added += 1
        elif policy is RepairPolicy.SINGLE_EDGE:
            u, v = self.rng.sample(survivors, 2)
            if self.graph.add_edge(u, v):
                added += 1
        self.stats.repairs_performed += 1
        self.stats.repair_edges_added += added
        return added

    def _prune(self, affected: Sequence[NodeId]) -> int:
        """Bring every affected node's degree back within ``[d_min, d_max]``."""
        if self.config.pruning_policy is PruningPolicy.NONE:
            return 0
        removed = 0
        for node in affected:
            if node not in self.graph:
                continue
            removed += self._prune_node(node)
        return removed

    def _prune_node(self, node: NodeId, victims: Optional[List[NodeId]] = None) -> int:
        """Prune ``node``'s peer list until its degree is at most ``d_max``.

        When ``victims`` is given, every pruned peer is appended to it (used
        by the SOAP attack to track benign-peer displacement without
        rescanning the peer list after every clone insertion).
        """
        removed = 0
        adjacency = self.graph._adjacency
        d_max = self.config.d_max
        while len(adjacency[node]) > d_max:
            victim = self._select_prune_victim(node)
            if victim is None:
                break
            # Never prune an edge whose removal would drop the *victim* below
            # d_min if we can avoid it; the paper's rule is purely
            # degree-of-victim driven, so this only reorders tie-breaks.
            self.graph.remove_edge(node, victim)
            removed += 1
            if victims is not None:
                victims.append(victim)
            self.stats.prune_operations += 1
            self.stats.prune_edges_removed += 1
            if self.config.forgetting_enabled:
                # Both endpoints forget each other's address (section IV-C).
                self.stats.addresses_forgotten += 1
        return removed

    def _select_prune_victim(self, node: NodeId) -> Optional[NodeId]:
        """Pick which peer ``node`` drops, according to the pruning policy.

        The degree-driven policies single-pass the (uncopied) adjacency set
        instead of materialising a peer->degree dict: pruning runs once per
        SOAP clone insertion, so this is one of the campaign's hottest lines.
        The rng tie-break is unchanged -- candidates are sorted by ``repr``
        before the draw, so candidate collection order cannot matter.
        """
        adjacency = self.graph._adjacency
        policy = self.config.pruning_policy
        if policy is PruningPolicy.RANDOM:
            peers = list(self.graph.neighbors(node))
            if not peers:
                return None
            return self.rng.choice(peers)
        highest = policy is PruningPolicy.HIGHEST_DEGREE
        extreme: Optional[int] = None
        candidates: List[NodeId] = []
        for peer in adjacency[node]:
            degree = len(adjacency[peer])
            if not highest:
                degree = -degree
            if extreme is None or degree > extreme:
                extreme = degree
                candidates = [peer]
            elif degree == extreme:
                candidates.append(peer)
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        return self.rng.choice(sorted(candidates, key=repr))

    def enforce_degree_bound(self, node: NodeId) -> int:
        """Apply the pruning rule to one node until its degree is within bounds.

        This is the behaviour a bot runs whenever its peer list grows past
        ``d_max`` -- after a repair, or after accepting a new peering request
        (which is exactly the step the SOAP attack exploits: the newly accepted
        low-degree clone survives pruning while a real peer is dropped).
        Returns the number of edges removed.
        """
        if node not in self.graph:
            raise OverlayError(f"node {node!r} not in overlay")
        if self.config.pruning_policy is PruningPolicy.NONE:
            return 0
        return self._prune_node(node)

    def enforce_degree_bound_collect(self, node: NodeId) -> List[NodeId]:
        """:meth:`enforce_degree_bound`, but returning the pruned peers.

        Same pruning decisions and rng consumption; only the bookkeeping
        differs.  The SOAP containment loop uses the victim list to update
        its benign-peer view incrementally instead of rescanning the
        target's peer list after every accepted clone.
        """
        if node not in self.graph:
            raise OverlayError(f"node {node!r} not in overlay")
        victims: List[NodeId] = []
        if self.config.pruning_policy is not PruningPolicy.NONE:
            self._prune_node(node, victims)
        return victims

    def repair_after_mass_removal(self, former_neighbor_sets: Iterable[Sequence[NodeId]]) -> int:
        """Run repair+prune for a batch of deletions that happened at once."""
        added = 0
        affected: Set[NodeId] = set()
        for neighbors in former_neighbor_sets:
            added += self._repair(list(neighbors))
            affected.update(node for node in neighbors if node in self.graph)
        self._prune(sorted(affected, key=repr))
        return added

    # ------------------------------------------------------------------
    # Invariant checks (used by tests and assertions in experiments)
    # ------------------------------------------------------------------
    def degree_bounds_satisfied(self) -> bool:
        """Whether every surviving node's degree is at most ``d_max``.

        ``d_min`` is a soft bound -- the paper notes it "is only applicable as
        long as there are enough surviving nodes in the network" -- so only the
        upper bound is a hard invariant after pruning.
        """
        return all(
            self.graph.degree(node) <= self.config.d_max for node in self.graph.nodes()
        )

    def max_degree(self) -> int:
        """Largest degree among surviving nodes."""
        return self.graph.max_degree()

    def connectivity_summary(self) -> "tuple[int, float]":
        """``(component_count, largest_component_fraction)`` of the overlay.

        Routed through :mod:`repro.graphs.backend`, so paper-scale sweeps get
        the vectorized CSR kernels while small overlays keep the pure-Python
        reference path.
        """
        from repro.graphs.backend import component_summary

        n = self.graph.number_of_nodes()
        if n == 0:
            return 0, 0.0
        components, largest = component_summary(self.graph)
        return components, largest / n

    def path_metric_summary(
        self,
        *,
        sample_size: "Optional[int]" = None,
        rng: "Optional[random.Random]" = None,
        closeness_sample: "Optional[int]" = None,
        path_workers: int = 1,
    ) -> "dict":
        """Path metrics of the overlay's largest component, in one extraction.

        Returns ``{components, largest_fraction, diameter, avg_path_length,
        avg_closeness}``.  With ``sample_size=None`` (and the default
        ``closeness_sample=None``) every metric is **exact**: diameter, ASPL
        and closeness all come from one full-population wave campaign
        (:func:`repro.graphs.backend.full_path_metrics` -- per-node
        eccentricity max and distance sums accumulated as the waves advance),
        affordable even at 100k nodes on the fast backend.  ``path_workers >
        1`` additionally shards the campaign's sources across a process pool
        (:func:`repro.runner.executor.sharded_full_path_metrics`); the merged
        int64 accumulators make the parallel result bit-identical to serial.
        A forced/auto-resolved *python* backend wins over ``path_workers``:
        sharding is a fast-backend facility, and an explicit reference-path
        request (or a graph below the auto threshold, where pool startup
        dwarfs the campaign) runs the serial reference instead -- the values
        are identical either way.

        With a ``sample_size`` the component is extracted once and both path
        estimators run with ``connected=True`` on sampled sources;
        ``closeness_sample`` then still defaults to the full population.
        All values are identical across graph backends.
        """
        from repro.graphs import backend

        graph = self.graph
        n = graph.number_of_nodes()
        if n == 0:
            return {
                "components": 0,
                "largest_fraction": 0.0,
                "diameter": 0.0,
                "avg_path_length": 0.0,
                "avg_closeness": 0.0,
            }
        if sample_size is None and closeness_sample is None:
            if backend.resolve_for(graph) == "fast":
                from repro.runner.executor import sharded_full_path_metrics
                from repro.runner.journal import active_unit_scope

                # The sharded path also carries sub-unit checkpoint
                # journaling: inside a journaled campaign's in-parent unit
                # it is taken even serially, so every exact checkpoint
                # journals (and can replay) its accumulator shards.
                if path_workers > 1 or active_unit_scope() is not None:
                    return sharded_full_path_metrics(graph, workers=path_workers)
            return backend.full_path_metrics(graph)
        components, largest = backend.component_summary(graph)
        working = (
            graph if components == 1 else backend.largest_component_subgraph(graph)
        )
        return {
            "components": components,
            "largest_fraction": largest / n,
            "diameter": backend.diameter(
                working, sample_size=sample_size, rng=rng, connected=True
            ),
            "avg_path_length": backend.average_shortest_path_length(
                working, sample_size=sample_size, rng=rng, connected=True
            ),
            "avg_closeness": backend.average_closeness_centrality(
                working, sample_size=closeness_sample, rng=rng
            ),
        }

    def snapshot(self) -> UndirectedGraph:
        """A deep copy of the current overlay graph (for offline analysis)."""
        return self.graph.copy()
