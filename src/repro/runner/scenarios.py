"""Built-in scenario registrations.

Two families live here:

* **wrappers** around the per-figure ``run_*`` experiment functions in
  :mod:`repro.analysis.experiments`, flattening their rich result objects
  into the scalar metrics the runner aggregates and caches;
* **composed scenarios** (``composed=True``) that cross subsystem boundaries
  the flat ``run_*`` API never could: SOAP under background churn,
  SuperOnion recovery under combined seizure + SOAP pressure, and HSDir
  interception against a botnet that keeps recruiting while the defender's
  relays wait out the 25-hour flag delay.

Every scenario is a pure function of ``(seed, **params)`` returning flat
``{metric: float}`` -- that contract is what makes results cacheable and the
parallel executor bit-identical to the serial one.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Optional

from repro.runner.registry import scenario
from repro.sim.rng import RandomStreams, derive_seed


# ======================================================================
# Wrappers around the per-figure experiment runners
# ======================================================================
@scenario(
    name="fig3-walkthrough",
    description="Figure 3: self-repair walk-through on a small 3-regular graph",
    defaults={"n": 12, "k": 3, "deletions": 8},
)
def fig3_walkthrough(*, seed: int, n: int, k: int, deletions: int) -> Dict[str, float]:
    from repro.analysis.experiments import run_fig3_walkthrough

    result = run_fig3_walkthrough(n=n, k=k, deletions=deletions, seed=seed)
    return {
        "steps": float(len(result.steps)),
        "final_connected": float(result.final_connected()),
        "survivors": result.steps[-1]["survivors"] if result.steps else float(n),
        "repair_edges_total": sum(step["repair_edges_added"] for step in result.steps),
        "max_degree": max((step["max_degree"] for step in result.steps), default=0.0),
    }


@scenario(
    name="fig4-centrality",
    description="Figure 4: centrality under incremental deletions (one degree curve)",
    defaults={
        "n": 300,
        "degree": 10,
        "pruning": True,
        "max_fraction": 0.3,
        "checkpoints": 4,
        "closeness_sample": 32,
    },
)
def fig4_centrality(
    *,
    seed: int,
    n: int,
    degree: int,
    pruning: bool,
    max_fraction: float,
    checkpoints: int,
    closeness_sample: int,
) -> Dict[str, float]:
    from repro.analysis.experiments import run_fig4_centrality

    curve = run_fig4_centrality(
        n=n,
        degrees=(degree,),
        max_fraction=max_fraction,
        checkpoints=checkpoints,
        pruning=pruning,
        seed=seed,
        closeness_sample=closeness_sample,
    )[0]
    return {
        "initial_closeness": curve.closeness[0],
        "final_closeness": curve.closeness[-1],
        "closeness_drop": curve.closeness[0] - curve.closeness[-1],
        "final_degree_centrality": curve.degree_centrality[-1],
        "max_degree_observed": float(max(curve.max_degree)),
    }


def fig5_summary(result) -> Dict[str, float]:
    """Flatten a :class:`~repro.analysis.experiments.Fig5Result` to metrics.

    ``normal_partition_fraction`` is -1.0 when the normal graph never
    partitioned in the run (a sentinel keeps the metric aggregatable).
    """
    partition_at = result.normal_partitions_at()
    return {
        "ddsr_stays_connected_until": result.ddsr_stays_connected_until(),
        "normal_partition_fraction": -1.0 if partition_at is None else partition_at,
        "max_ddsr_components": float(max(result.ddsr_components)),
        "max_normal_components": float(max(result.normal_components)),
        "ddsr_final_degree_centrality": result.ddsr_degree_centrality[-2],
        "normal_final_degree_centrality": result.normal_degree_centrality[-2],
        "ddsr_initial_diameter": result.ddsr_diameter[0],
        "ddsr_late_diameter": result.ddsr_diameter[-2],
    }


@scenario(
    name="fig5-resilience",
    description="Figure 5: DDSR vs normal graph under incremental deletions",
    defaults={
        "n": 300,
        "k": 10,
        "max_fraction": 0.95,
        "checkpoints": 10,
        "diameter_sample": 24,
    },
)
def fig5_resilience(
    *,
    seed: int,
    n: int,
    k: int,
    max_fraction: float,
    checkpoints: int,
    diameter_sample: int,
) -> Dict[str, float]:
    from repro.analysis.experiments import run_fig5_resilience

    result = run_fig5_resilience(
        n=n,
        k=k,
        max_fraction=max_fraction,
        checkpoints=checkpoints,
        seed=seed,
        diameter_sample=diameter_sample,
    )
    return fig5_summary(result)


@scenario(
    name="fig6-partition-threshold",
    description="Figure 6: simultaneous-takedown partition threshold for one size",
    defaults={"size": 500, "k": 10, "resolution": 0.05, "trials_per_fraction": 2},
)
def fig6_partition_threshold(
    *, seed: int, size: int, k: int, resolution: float, trials_per_fraction: int
) -> Dict[str, float]:
    from repro.graphs.generators import k_regular_graph
    from repro.graphs.partition import minimum_partition_fraction

    rng = random.Random(seed)
    graph = k_regular_graph(size, k, rng=rng)
    fraction = minimum_partition_fraction(
        graph, rng=rng, resolution=resolution, trials_per_fraction=trials_per_fraction
    )
    return {
        "fraction": fraction,
        "nodes_to_partition": float(int(round(fraction * size))),
    }


@scenario(
    name="soap-campaign",
    description="SOAP clone campaign against a fresh k-regular OnionBot overlay",
    defaults={"n": 150, "k": 10, "initial_compromised": 1, "max_targets": None},
)
def soap_campaign(
    *, seed: int, n: int, k: int, initial_compromised: int, max_targets: Optional[int]
) -> Dict[str, float]:
    from repro.analysis.experiments import run_soap_campaign

    result = run_soap_campaign(
        n=n, k=k, seed=seed, initial_compromised=initial_compromised, max_targets=max_targets
    )
    return {
        "containment_fraction": result.campaign.containment_fraction,
        "neutralized": float(result.neutralized),
        "clones_created": float(result.campaign.clones_created),
        "clones_per_bot": result.campaign.clones_per_bot,
        "work_spent": result.campaign.work_spent,
        "requests_rejected": float(result.campaign.requests_rejected),
        "benign_nontrivial_components": float(
            result.benign_components["nontrivial_components"]
        ),
    }


@scenario(
    name="pow-tradeoff",
    description="PoW admission trade-off: one escalation-factor point",
    defaults={"n": 120, "k": 8, "escalation_factor": 2.0, "work_budget_per_clone": 64.0},
)
def pow_tradeoff(
    *, seed: int, n: int, k: int, escalation_factor: float, work_budget_per_clone: float
) -> Dict[str, float]:
    from repro.analysis.experiments import run_pow_tradeoff

    point = run_pow_tradeoff(
        n=n,
        k=k,
        seed=seed,
        escalation_factors=(escalation_factor,),
        work_budget_per_clone=work_budget_per_clone,
    )[0]
    return {
        "containment_fraction": point.containment_fraction,
        "clones_created": float(point.clones_created),
        "attacker_work": point.attacker_work,
        "requests_rejected": float(point.requests_rejected),
        "repair_work_cost": point.repair_work_cost,
    }


@scenario(
    name="hsdir-interception",
    description="HSDir interception of one hidden service, then key rotation",
    defaults={"relays": 40},
)
def hsdir_interception(*, seed: int, relays: int) -> Dict[str, float]:
    from repro.analysis.experiments import run_hsdir_interception

    result = run_hsdir_interception(relays=relays, seed=seed)
    return {
        "denial_before_rotation": float(result.denial_before_rotation),
        "reachable_after_rotation": float(result.reachable_after_rotation),
        "relays_required": float(result.relays_required),
        "control_fraction": result.interception.control_fraction,
    }


@scenario(
    name="superonion-vs-soap",
    description="SuperOnion hosts vs a basic overlay of equal size under SOAP",
    defaults={
        "hosts": 5,
        "virtual_per_host": 3,
        "peers_per_virtual": 2,
        "rounds": 8,
        "targets_per_round": 3,
    },
)
def superonion_vs_soap(
    *,
    seed: int,
    hosts: int,
    virtual_per_host: int,
    peers_per_virtual: int,
    rounds: int,
    targets_per_round: int,
) -> Dict[str, float]:
    from repro.analysis.experiments import run_superonion_vs_soap

    super_result, basic_result = run_superonion_vs_soap(
        hosts=hosts,
        virtual_per_host=virtual_per_host,
        peers_per_virtual=peers_per_virtual,
        rounds=rounds,
        targets_per_round=targets_per_round,
        seed=seed,
    )
    return {
        "superonion_host_survival": super_result.host_survival_fraction,
        "virtual_nodes_soaped": float(super_result.virtual_nodes_soaped),
        "virtual_nodes_replaced": float(super_result.virtual_nodes_replaced),
        "clones_spent": float(super_result.clones_spent),
        "basic_neutralized": float(basic_result.neutralized),
        "basic_containment_fraction": basic_result.campaign.containment_fraction,
    }


@scenario(
    name="integrated-botnet",
    description="End-to-end botnet: build, broadcast, takedown, rotate, broadcast",
    defaults={"bots": 20, "takedown_fraction": 0.2},
)
def integrated_botnet(*, seed: int, bots: int, takedown_fraction: float) -> Dict[str, float]:
    from repro.analysis.experiments import run_integrated_botnet

    return dict(run_integrated_botnet(bots=bots, seed=seed, takedown_fraction=takedown_fraction))


# ======================================================================
# Ablations (ported from benchmarks/bench_ablations.py onto the runner)
# ======================================================================
@scenario(
    name="ablation-repair-policy",
    description="DDSR repair-policy ablation under gradual deletions",
    defaults={"policy": "clique", "n": 300, "k": 10, "fraction": 0.7},
)
def ablation_repair_policy(
    *, seed: int, policy: str, n: int, k: int, fraction: float
) -> Dict[str, float]:
    from repro.core.ddsr import DDSRConfig, DDSROverlay, RepairPolicy
    from repro.graphs.backend import largest_component_fraction, number_connected_components

    config = DDSRConfig(d_min=5, d_max=15, repair_policy=RepairPolicy(policy))
    overlay = DDSROverlay.k_regular(n, k, config=config, seed=derive_seed(seed, "wiring"))
    overlay.remove_fraction(fraction, rng=random.Random(derive_seed(seed, "victims")))
    return {
        "components": float(number_connected_components(overlay.graph)),
        "largest_component_fraction": largest_component_fraction(overlay.graph),
        "repair_edges_added": float(overlay.stats.repair_edges_added),
        "max_degree": float(overlay.max_degree()),
    }


@scenario(
    name="ablation-pruning-policy",
    description="DDSR pruning-victim-selection ablation under gradual deletions",
    defaults={"policy": "highest-degree", "n": 300, "k": 10, "fraction": 0.5},
)
def ablation_pruning_policy(
    *, seed: int, policy: str, n: int, k: int, fraction: float
) -> Dict[str, float]:
    from repro.core.ddsr import DDSRConfig, DDSROverlay, PruningPolicy
    from repro.graphs.backend import largest_component_fraction, number_connected_components

    config = DDSRConfig(d_min=5, d_max=15, pruning_policy=PruningPolicy(policy))
    overlay = DDSROverlay.k_regular(n, k, config=config, seed=derive_seed(seed, "wiring"))
    overlay.remove_fraction(fraction, rng=random.Random(derive_seed(seed, "victims")))
    return {
        "components": float(number_connected_components(overlay.graph)),
        "largest_component_fraction": largest_component_fraction(overlay.graph),
        "prune_operations": float(overlay.stats.prune_operations),
        "max_degree": float(overlay.max_degree()),
    }


# ======================================================================
# At-scale scenarios (vectorized CSR graph backend; 100k+ nodes)
# ======================================================================
@scenario(
    name="resilience-at-scale",
    description="Fig-5-style gradual takedown resilience sweep at 100k nodes",
    version="3",
    shard_size=1,
    defaults={
        "n": 100_000,
        "k": 10,
        "max_fraction": 0.5,
        "checkpoints": 5,
        "metric_sample": None,
        "closeness_sample": None,
    },
)
def resilience_at_scale(
    *,
    seed: int,
    n: int,
    k: int,
    max_fraction: float,
    checkpoints: int,
    metric_sample: Optional[int],
    closeness_sample: Optional[int],
) -> Dict[str, float]:
    """Figure 5's gradual-takedown sweep at sizes the paper could not reach.

    A k-regular DDSR overlay loses ``max_fraction`` of its nodes one at a
    time (repair after every deletion); components, degree centrality and the
    path metrics are recorded at every checkpoint through
    :meth:`~repro.core.ddsr.DDSROverlay.path_metric_summary`.  Every path
    metric defaults to the *exact full population* (``metric_sample=None``):
    diameter, ASPL and closeness all come from one full-population wave
    campaign per checkpoint, so the 100k-node resilience curves report exact
    values where the paper (and PR 3/4) sampled diameter and path length.
    ``REPRO_PATH_WORKERS=N`` source-shards each campaign across a process
    pool, bit-identically to serial (an environment knob, not a parameter:
    performance settings must not perturb unit seeds or cache identity);
    ``metric_sample=<int>`` restores the PR 4 sampled estimators.
    """
    from repro.core.ddsr import DDSROverlay
    from repro.graphs import backend
    from repro.runner.executor import path_workers_policy
    from repro.workloads.deletion import DeletionSchedule

    path_workers = path_workers_policy()

    overlay = DDSROverlay.k_regular(n, k, seed=derive_seed(seed, "wiring"))
    schedule = DeletionSchedule.random(
        overlay.nodes(), max_fraction, seed=derive_seed(seed, "victims")
    )
    metric_rng = random.Random(derive_seed(seed, "metrics"))
    batch = max(1, len(schedule) // checkpoints) if len(schedule) else 1

    def measure() -> Dict[str, float]:
        summary = overlay.path_metric_summary(
            sample_size=metric_sample,
            rng=metric_rng,
            closeness_sample=closeness_sample,
            path_workers=path_workers,
        )
        return {
            "components": float(summary["components"]),
            "largest_fraction": summary["largest_fraction"],
            "diameter": summary["diameter"],
            "avg_path_length": summary["avg_path_length"],
            "avg_closeness": summary["avg_closeness"],
            "degree_centrality": backend.average_degree_centrality(overlay.graph),
        }

    initial = measure()
    deleted = 0
    connected_until = 0
    still_connected = initial["components"] == 1.0
    final = initial
    for victims in schedule.batches(batch):
        deleted += overlay.remove_nodes(victims)
        final = measure()
        # Only advance while the overlay has never split: repairs can
        # re-join a partitioned overlay at a later checkpoint, which must
        # not retroactively count as uninterrupted connectivity.
        if still_connected and final["components"] == 1.0:
            connected_until = deleted
        else:
            still_connected = False
    return {
        "n": float(n),
        "deleted": float(deleted),
        "survivors": float(len(overlay)),
        "stayed_connected_until_fraction": connected_until / n if n else 0.0,
        "final_components": final["components"],
        "final_largest_fraction": final["largest_fraction"],
        "initial_diameter": initial["diameter"],
        "final_diameter": final["diameter"],
        "initial_avg_path_length": initial["avg_path_length"],
        "final_avg_path_length": final["avg_path_length"],
        "initial_avg_closeness": initial["avg_closeness"],
        "final_avg_closeness": final["avg_closeness"],
        "final_degree_centrality": final["degree_centrality"],
        "repair_edges_added": float(overlay.stats.repair_edges_added),
        "max_degree": float(overlay.max_degree()),
    }


@scenario(
    name="partition-threshold-at-scale",
    description="Fig-6 simultaneous-takedown partition threshold at 100k nodes",
    shard_size=1,
    defaults={"size": 100_000, "k": 10, "resolution": 0.05, "trials_per_fraction": 1},
)
def partition_threshold_at_scale(
    *, seed: int, size: int, k: int, resolution: float, trials_per_fraction: int
) -> Dict[str, float]:
    """Figure 6's partition-threshold search at 100k nodes.

    Identical search to ``fig6-partition-threshold`` -- random victim sets of
    increasing size removed simultaneously until the survivors split -- but
    each trial's component check runs on a masked CSR (no survivor-subgraph
    construction), extending the sweep an order of magnitude past the paper's
    largest network.  Also reports the component structure at the threshold.
    """
    from repro.graphs.generators import k_regular_graph
    from repro.graphs.partition import minimum_partition_fraction, partition_after_fraction

    rng = random.Random(seed)
    graph = k_regular_graph(size, k, rng=rng)
    fraction = minimum_partition_fraction(
        graph, rng=rng, resolution=resolution, trials_per_fraction=trials_per_fraction
    )
    report = partition_after_fraction(
        graph, fraction, rng=random.Random(derive_seed(seed, "report"))
    )
    return {
        "fraction": fraction,
        "nodes_to_partition": float(int(round(fraction * size))),
        "surviving_at_threshold": float(report.surviving_nodes),
        "components_at_threshold": float(report.component_count),
        "largest_fraction_at_threshold": report.largest_fraction,
        "isolated_at_threshold": float(report.isolated_nodes),
    }


@scenario(
    name="soap-at-scale",
    description="SOAP containment campaign against a 50k-node OnionBot overlay",
    shard_size=1,
    defaults={"n": 50_000, "k": 10, "initial_compromised": 1, "max_targets": None},
)
def soap_at_scale(
    *, seed: int, n: int, k: int, initial_compromised: int, max_targets: Optional[int]
) -> Dict[str, float]:
    """Figure 7's containment campaign at sizes the paper never simulated.

    The same experiment as ``soap-campaign`` -- seed a few compromised bots,
    spread containment through learned peer lists until the botnet is
    neutralized -- but sized an order of magnitude past the paper's overlay.
    Tractable because of this layer stack: the vectorized
    :class:`~repro.adversary.soap.SoapAttack` campaign (deque FIFO, degree
    buckets, id-array bookkeeping) and the CSR benign-subgraph kernel, with
    the overlay's clone insertions patching the CSR mirror incrementally.
    Also reports how quickly containment spreads (targets to half coverage).
    """
    from repro.adversary.soap import SoapAttack
    from repro.core.ddsr import DDSROverlay

    overlay = DDSROverlay.k_regular(n, k, seed=derive_seed(seed, "wiring"))
    chooser = random.Random(derive_seed(seed, "compromise"))
    compromised = chooser.sample(overlay.nodes(), initial_compromised)
    attack = SoapAttack(rng=random.Random(derive_seed(seed, "attack")))
    campaign = attack.run_campaign(overlay, compromised, max_targets=max_targets)
    benign = SoapAttack.benign_subgraph_components(overlay)
    half = next(
        (processed for processed, fraction in campaign.timeline if fraction >= 0.5),
        0,
    )
    return {
        "n": float(n),
        "containment_fraction": campaign.containment_fraction,
        "neutralized": float(campaign.neutralized),
        "clones_created": float(campaign.clones_created),
        "clones_per_bot": campaign.clones_per_bot,
        "peering_requests": float(campaign.peering_requests),
        "targets_to_half_containment": float(half),
        "benign_components": float(benign["components"]),
        "benign_nontrivial_components": float(benign["nontrivial_components"]),
        "benign_largest_component": float(benign["largest_component"]),
    }


@scenario(
    name="soap-admission-grid",
    description="PoW / rate-limit admission sweep for SOAP containment at 50k nodes",
    shard_size=1,
    defaults={
        "n": 50_000,
        "k": 10,
        "initial_compromised": 1,
        "admission": "open",
        "pow_escalation": 2.0,
        "pow_budget": 256.0,
        "rate_base_delay": 60.0,
        "rate_per_degree_delay": 30.0,
        "rate_patience": 3600.0,
    },
)
def soap_admission_grid(
    *,
    seed: int,
    n: int,
    k: int,
    initial_compromised: int,
    admission: str,
    pow_escalation: float,
    pow_budget: float,
    rate_base_delay: float,
    rate_per_degree_delay: float,
    rate_patience: float,
) -> Dict[str, float]:
    """Section VII-A's counter-countermeasure trade-off, an order of magnitude up.

    ``soap-at-scale`` runs open admission only; here the 50k-node overlay
    defends itself with the paper's PoW or rate-limit peering admission
    (swept via the ``admission`` axis: ``open`` / ``pow`` / ``rate-limit``
    with their policy-strength parameters), measuring what the defense costs
    the attacker (work, rejections, clones) against how far containment
    still spreads -- and what the same pricing would charge the botnet's own
    repair traffic, the "decreased flexibility" the paper warns about.
    """
    from repro.adversary.soap import SoapAttack, open_admission
    from repro.core.ddsr import DDSROverlay
    from repro.defenses.pow import PowAdmission, PowParameters
    from repro.defenses.rate_limit import RateLimitedAdmission, RateLimitParameters

    if admission == "open":
        policy = open_admission
    elif admission == "pow":
        policy = PowAdmission(
            PowParameters(
                escalation_factor=pow_escalation,
                work_budget_per_clone=pow_budget,
            )
        )
    elif admission == "rate-limit":
        policy = RateLimitedAdmission(
            RateLimitParameters(
                base_delay=rate_base_delay,
                per_degree_delay=rate_per_degree_delay,
                max_acceptable_delay=rate_patience,
            )
        )
    else:
        raise ValueError(
            f"unknown admission policy {admission!r}; "
            "expected 'open', 'pow' or 'rate-limit'"
        )

    overlay = DDSROverlay.k_regular(n, k, seed=derive_seed(seed, "wiring"))
    chooser = random.Random(derive_seed(seed, "compromise"))
    compromised = chooser.sample(overlay.nodes(), initial_compromised)
    attack = SoapAttack(rng=random.Random(derive_seed(seed, "attack")), admission=policy)
    campaign = attack.run_campaign(overlay, compromised)
    benign = SoapAttack.benign_subgraph_components(overlay)

    defense_work = getattr(policy, "total_work_charged", 0.0)
    defense_delay = getattr(policy, "total_delay_charged", 0.0)
    # The flip side of the trade-off: after the campaign a 10% takedown hits
    # the overlay and the survivors heal; the same admission pricing charges
    # every repair edge its entry cost ("decreased flexibility and
    # recoverability", section VII-A).
    baseline_repairs = overlay.stats.repair_edges_added
    overlay.remove_fraction(0.1, rng=random.Random(derive_seed(seed, "heal")))
    heal_edges = overlay.stats.repair_edges_added - baseline_repairs
    # Each policy prices legitimate repairs through its own canonical helper
    # (the same accounting bench_pow_tradeoff reports), not an ad-hoc rate.
    if admission == "pow":
        heal_cost = policy.repair_cost(heal_edges)
    elif admission == "rate-limit":
        heal_cost = policy.repair_delay(overlay, heal_edges)
    else:
        heal_cost = 0.0
    return {
        "n": float(n),
        "containment_fraction": campaign.containment_fraction,
        "neutralized": float(campaign.neutralized),
        "clones_created": float(campaign.clones_created),
        "clones_per_bot": campaign.clones_per_bot,
        "peering_requests": float(campaign.peering_requests),
        "requests_rejected": float(campaign.requests_rejected),
        "attacker_work": campaign.work_spent,
        "defense_work_charged": float(defense_work),
        "defense_delay_charged": float(defense_delay),
        "heal_repair_edges": float(heal_edges),
        "heal_cost_under_policy": float(heal_cost),
        "benign_components": float(benign["components"]),
        "benign_nontrivial_components": float(benign["nontrivial_components"]),
    }


# ======================================================================
# Composed scenarios -- combinations the flat run_* API cannot express
# ======================================================================
@scenario(
    name="soap-under-churn",
    description="SOAP campaign against an overlay with live join/leave churn",
    composed=True,
    version="2",
    defaults={
        "n": 120,
        "k": 8,
        "join_rate": 3.0,
        "leave_rate": 1.5,
        "hours": 8.0,
        "targets_per_hour": 4,
    },
)
def soap_under_churn(
    *,
    seed: int,
    n: int,
    k: int,
    join_rate: float,
    leave_rate: float,
    hours: float,
    targets_per_hour: int,
) -> Dict[str, float]:
    """SOAP vs a *living* botnet.

    ``run_soap_campaign`` attacks a frozen overlay; here new infections keep
    joining (re-opening benign edges behind the attacker) and benign hosts
    keep leaving while the campaign runs, so containment is a race instead of
    a sweep.  Reuses :class:`repro.workloads.churn.ChurnModel` for the event
    stream and the standard SOAP attacker.
    """
    from repro.adversary.soap import SoapAttack, is_clone
    from repro.core.ddsr import DDSROverlay
    from repro.workloads.churn import ChurnKind, ChurnModel

    streams = RandomStreams(seed)
    overlay = DDSROverlay.k_regular(n, k, seed=derive_seed(seed, "wiring"))
    churn = ChurnModel(
        join_rate=join_rate, leave_rate=leave_rate, seed=derive_seed(seed, "churn")
    )
    events = churn.generate(hours)
    attack = SoapAttack(rng=streams.stream("soap"))

    start = streams.choice("initial-compromise", overlay.nodes())
    known = {start} | {peer for peer in overlay.peers(start) if not is_clone(peer)}
    joins = leaves = 0
    targets_attacked = targets_contained = 0
    clones_created = 0

    def benign_nodes():
        return [node for node in overlay.nodes() if not is_clone(node)]

    next_event = 0
    for hour in range(math.ceil(hours)):
        horizon = (hour + 1) * 3600.0
        # --- churn phase: replay this hour's joins and leaves ------------
        while next_event < len(events) and events[next_event].time <= horizon:
            event = events[next_event]
            next_event += 1
            if event.kind is ChurnKind.JOIN:
                candidates = benign_nodes()
                if len(candidates) < 2:
                    continue
                degree = min(k, len(candidates))
                peers = streams.sample("join-peers", candidates, degree)
                overlay.add_node(event.label, peers)
                joins += 1
            else:
                candidates = [node for node in benign_nodes() if node != start]
                if len(candidates) <= 2:
                    continue
                victim = streams.choice("leave-victim", candidates)
                overlay.remove_node(victim)
                known.discard(victim)
                leaves += 1
        # --- attack phase: contain what the attacker currently knows -----
        attacked_this_hour = 0
        for target in sorted(known, key=str):
            if attacked_this_hour >= targets_per_hour:
                break
            if target not in overlay.graph:
                known.discard(target)
                continue
            benign_peers = [p for p in overlay.peers(target) if not is_clone(p)]
            if not benign_peers:
                continue
            result = attack.contain_node(overlay, target)
            clones_created += result.clones_used
            targets_attacked += 1
            if result.contained:
                targets_contained += 1
            known.update(result.learned_addresses)
            attacked_this_hour += 1

    final_benign = benign_nodes()
    contained_now = sum(
        1
        for node in final_benign
        if overlay.peers(node) and all(is_clone(peer) for peer in overlay.peers(node))
    )
    return {
        "final_benign_population": float(len(final_benign)),
        "joins_applied": float(joins),
        "leaves_applied": float(leaves),
        "targets_attacked": float(targets_attacked),
        "targets_contained": float(targets_contained),
        "contained_fraction": contained_now / len(final_benign) if final_benign else 0.0,
        "clones_created": float(clones_created),
        "neutralized": float(bool(final_benign) and contained_now == len(final_benign)),
    }


@scenario(
    name="takedown-superonion",
    description="SuperOnion recovery under combined host seizures and SOAP",
    composed=True,
    defaults={
        "hosts": 6,
        "virtual_per_host": 3,
        "peers_per_virtual": 2,
        "rounds": 6,
        "takedown_per_round": 2,
        "targets_per_round": 2,
    },
)
def takedown_superonion(
    *,
    seed: int,
    hosts: int,
    virtual_per_host: int,
    peers_per_virtual: int,
    rounds: int,
    takedown_per_round: int,
    targets_per_round: int,
) -> Dict[str, float]:
    """Two-front adversary against a SuperOnion deployment.

    ``run_superonion_vs_soap`` only models the SOAP front.  Here each round a
    defender also *seizes* random virtual bots outright (a takedown, via the
    overlay's repair path) before SOAP strikes and the hosts run their
    probe-and-recover cycle -- measuring whether virtualization still keeps
    physical hosts alive when clones and seizures land together.
    """
    from repro.adversary.soap import SoapAttack, is_clone
    from repro.defenses.superonion import SuperOnionNetwork

    streams = RandomStreams(seed)
    network = SuperOnionNetwork(
        hosts=hosts,
        virtual_per_host=virtual_per_host,
        peers_per_virtual=peers_per_virtual,
        seed=derive_seed(seed, "superonion"),
    )
    attack = SoapAttack(rng=streams.stream("soap"))

    start = streams.choice("initial-compromise", network.virtual_nodes())
    known = {start} | {p for p in network.overlay.peers(start) if not is_clone(p)}
    seized = soaped_total = replaced_total = clones_spent = attacks_launched = 0

    for _ in range(rounds):
        # --- seizure phase: take down random virtual bots -----------------
        present = [node for node in network.virtual_nodes() if node in network.overlay.graph]
        count = min(takedown_per_round, max(0, len(present) - 1))
        if count:
            for victim in streams.sample("seizure", present, count):
                network.overlay.remove_node(victim)
                known.discard(victim)
                seized += 1
        # --- SOAP phase ----------------------------------------------------
        attacked = 0
        for target in sorted(known, key=str):
            if attacked >= targets_per_round:
                break
            if target not in network.overlay.graph:
                known.discard(target)
                continue
            if not any(not is_clone(p) for p in network.overlay.peers(target)):
                continue
            result = attack.contain_node(network.overlay, target)
            clones_spent += result.clones_used
            known.update(result.learned_addresses)
            attacked += 1
            attacks_launched += 1
        # --- recovery phase ------------------------------------------------
        soaped, replaced = network.probe_and_recover()
        soaped_total += soaped
        replaced_total += replaced

    surviving = sum(1 for host in network.hosts.values() if network.host_survives(host))
    return {
        "host_survival_fraction": surviving / hosts,
        "hosts_surviving": float(surviving),
        "virtual_nodes_seized": float(seized),
        "virtual_nodes_flagged": float(soaped_total),
        "virtual_nodes_replaced": float(replaced_total),
        "clones_spent": float(clones_spent),
        "soap_attacks_launched": float(attacks_launched),
    }


@scenario(
    name="hsdir-growth-interception",
    description="HSDir interception against a botnet that keeps recruiting",
    composed=True,
    defaults={"initial_bots": 10, "recruits": 4, "intercept_targets": 2},
)
def hsdir_growth_interception(
    *, seed: int, initial_bots: int, recruits: int, intercept_targets: int
) -> Dict[str, float]:
    """Interception races bootstrap growth and address rotation.

    ``run_hsdir_interception`` censors a single standalone hidden service.
    Here the defender intercepts live bot addresses inside a full
    :class:`~repro.core.botnet.OnionBotnet` while the botnet *keeps growing*
    through :class:`~repro.core.recruitment.RecruitmentCampaign` during the
    defender's 25-hour flag delay, then rotates addresses -- quantifying how
    little a per-address takedown buys against a growing, rotating botnet.
    """
    from repro.core.botnet import OnionBotnet
    from repro.core.recruitment import RecruitmentCampaign
    from repro.defenses.hsdir_takeover import HsdirInterception

    net = OnionBotnet(seed=seed)
    net.build(initial_bots)
    coverage_initial = net.broadcast_command("report-status").coverage

    defender = HsdirInterception(net.tor)
    targets = net.active_labels()[: max(0, intercept_targets)]
    denials = 0
    for label in targets:
        result = defender.intercept(net.onion_of(label))
        if result.denial_achieved:
            denials += 1

    # The interception wait advanced simulated time past rotation boundaries;
    # rotate so every bot's hosted address matches the current period again.
    net.advance_to_next_period()

    # Growth continues while (and after) the defender is busy.
    campaign = RecruitmentCampaign(net)
    recruited = campaign.recruit(recruits) if recruits > 0 else None

    reachable_after = 0
    for label in targets:
        try:
            net.tor.lookup_descriptor(net.onion_of(label))
            reachable_after += 1
        except Exception:
            pass
    coverage_final = net.broadcast_command("report-status").coverage
    stats = net.stats()
    return {
        "bots_initial": float(initial_bots),
        "bots_recruited": float(recruited.recruited if recruited else 0),
        "recruit_success_rate": recruited.success_rate if recruited else 0.0,
        "interceptions_attempted": float(len(targets)),
        "denial_fraction": denials / len(targets) if targets else 0.0,
        "reachable_after_rotation_fraction": reachable_after / len(targets) if targets else 0.0,
        "relays_injected": float(defender.collateral_relays()),
        "coverage_initial": coverage_initial,
        "coverage_final": coverage_final,
        "active_bots_final": float(stats.active_bots),
        "components_final": float(stats.connected_components),
    }
