"""Failure-injection tests: relay churn, lost descriptors, missed rotations."""

import pytest

from repro.core.botnet import OnionBotnet
from repro.core.ddsr import DDSROverlay
from repro.tor.hidden_service import ServiceUnreachable
from repro.workloads.churn import ChurnKind, ChurnModel


class TestTorFailures:
    def test_relay_churn_does_not_break_hidden_services(self, tor_network):
        from repro.crypto.keys import KeyPair

        host = tor_network.host_service(KeyPair.from_seed(b"svc"), lambda p, c: b"ok")
        # Take a third of the relays offline (none of them required specifically).
        victims = [entry.fingerprint for entry in tor_network.consensus.entries[:10]]
        for fingerprint in victims:
            tor_network.take_relay_offline(fingerprint)
        tor_network.publish_consensus()
        # The descriptor may now live on HSDirs that disappeared; republishing
        # (which a real hidden service does periodically) restores service.
        tor_network.publish_descriptor(host)
        assert tor_network.send_to("client", host.onion_address, b"ping") == b"ok"

    def test_losing_every_hsdir_with_the_descriptor_requires_republish(self, tor_network):
        from repro.crypto.keys import KeyPair

        host = tor_network.host_service(KeyPair.from_seed(b"svc2"), lambda p, c: b"ok")
        for fingerprint in tor_network.hsdirs_storing(host.onion_address):
            tor_network.take_relay_offline(fingerprint)
        tor_network.publish_consensus()
        with pytest.raises(ServiceUnreachable):
            tor_network.lookup_descriptor(host.onion_address)
        tor_network.publish_descriptor(host)
        assert tor_network.lookup_descriptor(host.onion_address) is not None

    def test_bot_that_misses_rotation_becomes_unreachable(self):
        net = OnionBotnet(seed=21)
        net.build(10)
        lagging = net.active_labels()[0]
        old_onion = net.onion_of(lagging)
        # Remove the lagging bot's host from the rotation by deleting its
        # record, then advance the period: its old address dies with everyone
        # else's, and it never publishes a new one.
        del net._hosts[lagging]
        net.advance_to_next_period()
        with pytest.raises(ServiceUnreachable):
            net.tor.connect("prober", old_onion)
        with pytest.raises(ServiceUnreachable):
            net.tor.connect("prober", net.onion_of(lagging))


class TestOverlayChurn:
    def test_overlay_absorbs_background_churn(self):
        overlay = DDSROverlay.k_regular(120, 8, seed=31)
        churn = ChurnModel(join_rate=3.0, leave_rate=3.0, seed=5)
        events = churn.generate(duration_hours=24.0)
        joined = 0
        import random

        rng = random.Random(9)
        for event in events:
            if event.kind is ChurnKind.JOIN:
                peers = rng.sample(overlay.nodes(), min(4, len(overlay.nodes())))
                overlay.add_node(event.label, peers)
                joined += 1
            else:
                nodes = overlay.nodes()
                if len(nodes) > 10:
                    overlay.remove_node(rng.choice(nodes))
        assert joined > 0
        assert overlay.degree_bounds_satisfied()
        from repro.graphs.metrics import number_connected_components

        assert number_connected_components(overlay.graph) == 1

    def test_botnet_survives_takedown_of_almost_everyone(self):
        """Gradual removal of 90% of the bots leaves the rest connected (paper's claim)."""
        overlay = DDSROverlay.k_regular(200, 10, seed=32)
        import random

        overlay.remove_fraction(0.9, rng=random.Random(3))
        from repro.graphs.metrics import number_connected_components

        assert len(overlay) == 20
        assert number_connected_components(overlay.graph) == 1
