"""On-disk JSON result cache for work units.

Every finished work unit is stored as one small JSON file under
``<root>/<scenario>/<key>.json`` where ``key`` is the SHA-256 hash of the
unit's full identity (scenario name *and version*, canonical parameters,
trial index, derived seed) plus the active execution environment (the
``REPRO_GRAPH_BACKEND`` policy and the ``REPRO_BFS_BATCH`` wave-width
override -- see :meth:`repro.runner.spec.WorkUnit.key_material`).  Because
the key covers everything that can change the output -- and the knobs that
*should not* but whose contract the cache must not assume -- a cache hit is
always safe to serve, repeated runs are near-instant, and a
partially-cached sweep only computes the missing units.
Writes are atomic (temp file + ``os.replace``) so parallel workers and
concurrent sweeps never observe torn files.

Lookups distinguish four outcomes -- **hit**, **miss** (no entry on disk),
**corrupt** (an entry existed but could not be decoded) and **unreadable**
(an entry may exist but the filesystem refused to serve it: permissions,
EMFILE, a directory squatting on the path) -- counted on the instance and
mirrored into the active telemetry collector (``runner.cache.hit`` /
``runner.cache.miss`` / ``runner.cache.corrupt_evicted`` /
``runner.cache.unreadable``).  A corrupt entry is evicted from disk and its
recovery logged, never silently recomputed; an unreadable entry is *not*
evicted (the bytes may be fine) but is logged, so an ailing cache root
cannot silently recompute a whole sweep while looking like a cold cache.
Writes the filesystem refuses are equally non-fatal: the result is already
in memory, so :meth:`ResultCache.put` counts the failure (**unwritable** /
``runner.cache.write_failed``), logs it and lets the campaign finish.
Both I/O paths carry :func:`repro.runner.faults.fault_point` sites
(``cache.read`` / ``cache.write``) so chaos tests can drive them
deterministically.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from repro.obs.telemetry import current as _telemetry
from repro.runner.faults import fault_point
from repro.runner.spec import WorkUnit

#: Default cache location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

logger = logging.getLogger(__name__)


class ResultCache:
    """Filesystem-backed unit-result cache."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        #: Entries that existed on disk but could not be decoded; each one
        #: is evicted (and the recovery logged), then recomputed as a miss.
        self.corrupt = 0
        #: Entries the filesystem refused to serve (``OSError`` other than
        #: "not found"); logged and recomputed, never evicted.
        self.unreadable = 0
        #: Entries the filesystem refused to persist; the result stays in
        #: memory and the campaign continues (logged, never fatal).
        self.unwritable = 0

    # ------------------------------------------------------------------
    def _dir_for(self, scenario: str) -> Path:
        """The (sanitized) per-scenario cache directory."""
        safe = "".join(ch if ch.isalnum() or ch in "-._" else "_" for ch in scenario)
        if safe in ("", ".", ".."):
            safe = safe.replace(".", "_") or "_"
        return self.root / safe

    def path_for(self, unit: WorkUnit, version: str) -> Path:
        """Where the given unit's result lives on disk."""
        return self._dir_for(unit.scenario) / f"{unit.cache_key(version)}.json"

    def _evict_corrupt(self, path: Path, reason: str) -> None:
        """Drop an undecodable entry, counting and logging the recovery."""
        self.corrupt += 1
        _telemetry().count("runner.cache.corrupt_evicted")
        path.unlink(missing_ok=True)
        logger.warning(
            "evicted corrupt cache entry %s (%s); the unit will be recomputed",
            path,
            reason,
        )

    def get(self, unit: WorkUnit, version: str) -> Optional[Dict[str, float]]:
        """Cached metrics for ``unit``, or ``None`` on a miss/corrupt entry.

        The three outcomes are counted separately (``hits`` / ``misses`` /
        ``corrupt``) and mirrored to telemetry; a corrupt entry is also
        evicted from disk so the recomputed result can replace it.
        """
        path = self.path_for(unit, version)
        try:
            fault_point("cache.read")
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            _telemetry().count("runner.cache.miss")
            return None
        except OSError as error:
            # Only "not found" is a miss.  Anything else (EACCES, EMFILE, a
            # directory squatting on the path...) means the cache root is
            # ailing: count it apart and log it, so a permissions problem
            # cannot silently recompute a whole sweep.
            self.unreadable += 1
            _telemetry().count("runner.cache.unreadable")
            logger.warning(
                "unreadable cache entry %s (%s); the unit will be recomputed",
                path,
                error,
            )
            return None
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            self._evict_corrupt(path, f"undecodable JSON: {error}")
            return None
        metrics = payload.get("metrics")
        try:
            result = {str(key): float(value) for key, value in metrics.items()}
        except (AttributeError, TypeError, ValueError):
            self._evict_corrupt(path, "malformed metrics mapping")
            return None
        self.hits += 1
        _telemetry().count("runner.cache.hit")
        return result

    def put(self, unit: WorkUnit, version: str, metrics: Dict[str, float]) -> Optional[Path]:
        """Atomically persist one unit result.

        A filesystem that refuses the write (``OSError``: read-only root,
        ENOSPC, permissions...) must not fail the campaign -- the result is
        already in memory.  The failure is counted (``unwritable`` /
        ``runner.cache.write_failed``) and logged, and ``None`` is
        returned; the unit simply recomputes on the next cold run.
        """
        path = self.path_for(unit, version)
        payload: Dict[str, Any] = {
            "scenario": unit.scenario,
            "version": version,
            "params": dict(unit.params),
            "trial": unit.trial,
            "seed": unit.seed,
            "metrics": metrics,
        }
        try:
            fault_point("cache.write")
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(path.parent), prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, sort_keys=True)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError as error:
            self.unwritable += 1
            _telemetry().count("runner.cache.write_failed")
            logger.warning(
                "failed to persist cache entry %s (%s); continuing without it",
                path,
                error,
            )
            return None
        return path

    # ------------------------------------------------------------------
    def clear(self, scenario: Optional[str] = None) -> int:
        """Delete cached entries (for one scenario, or everything).

        Also sweeps stale ``.tmp-*`` files left behind by writes that
        crashed between :func:`tempfile.mkstemp` and :func:`os.replace`;
        they are not entries, so they never count toward the return value.
        """
        removed = 0
        if not self.root.exists():
            return removed
        directories = (
            [self._dir_for(scenario)] if scenario is not None else list(self.root.iterdir())
        )
        for directory in directories:
            if not directory.is_dir():
                continue
            for entry in directory.glob("*.json"):
                if entry.name.startswith("."):
                    continue  # a stale temp file, swept (uncounted) below
                entry.unlink(missing_ok=True)
                removed += 1
            for stale in directory.glob(".tmp-*"):
                stale.unlink(missing_ok=True)
        return removed

    def entry_count(self) -> int:
        """Number of cached unit results on disk.

        Dot-prefixed names are excluded explicitly: a crashed ``put`` can
        leave ``.tmp-*.json`` files behind, and whether ``glob`` matches
        hidden files varies across pathlib versions -- an orphaned temp
        must never masquerade as an entry either way.
        """
        if not self.root.exists():
            return 0
        return sum(
            1 for path in self.root.glob("*/*.json") if not path.name.startswith(".")
        )
