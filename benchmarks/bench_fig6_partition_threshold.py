"""Figure 6 -- simultaneous-takedown partition threshold vs network size.

Paper setup: 10-regular graphs from n=1000 to n=15000; for each size, find
how many nodes must be removed *simultaneously* (no time to self-repair) to
split the survivors into more than one component.  The paper overlays the line
``f(x) = 0.4 * x``: the threshold sits at roughly 40 % of the nodes across
every size.

The benchmark sweeps smaller sizes by default (the threshold fraction is
already stable there) and additionally contrasts the result with the
centralized-C&C baseline, where a single takedown suffices.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.experiments import run_fig6_partition_threshold
from repro.analysis.reporting import format_series, render_result_rows
from repro.baselines.centralized import CentralizedBotnet

SIZES = (200, 400, 600, 800, 1000)


def test_fig6_partition_threshold(benchmark):
    """Figure 6: nodes that must be removed at once to partition, per size."""
    result = benchmark.pedantic(
        lambda: run_fig6_partition_threshold(
            sizes=SIZES, k=10, seed=60, resolution=0.05, trials_per_fraction=2
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 6 — simultaneous deletions needed to partition (10-regular)",
        format_series("nodes deleted", result.sizes, result.nodes_to_partition)
        + "\n"
        + format_series("fraction", result.sizes, result.fractions)
        + f"\nmean fraction: {result.mean_fraction():.2f} (paper: ~0.4)",
    )
    # Paper shape: a substantial constant fraction (~0.4) across sizes -- far
    # from both "a handful of nodes" and "everyone".
    assert 0.3 <= result.mean_fraction() <= 0.75
    assert max(result.fractions) - min(result.fractions) <= 0.3


def test_fig6_contrast_with_centralized_baseline(benchmark):
    """One C&C seizure ends a centralized botnet; 40 % bot cleanup does not."""
    rows = benchmark(
        lambda: [
            {
                "scenario": name,
                "operational": outcome.operational,
                "surviving_fraction": outcome.surviving_fraction,
            }
            for name, outcome in zip(
                ("remove 40% of bots", "remove the single C&C"),
                CentralizedBotnet.takedown_comparison(2000),
            )
        ]
    )
    emit("Figure 6 context — centralized C&C baseline", render_result_rows(rows))
    assert rows[0]["operational"] is True
    assert rows[1]["operational"] is False
