"""The botmaster / Command & Control logic.

The botmaster owns the hard-coded keypair every bot trusts, collects the
rally-stage key reports, and can therefore (a) compute every bot's current and
future ``.onion`` address without any interaction, and (b) issue signed
commands: broadcast to the whole botnet, directed at specific onion addresses,
or sealed under a group key handed to a subset of bots.  It can also issue
rental tokens that delegate a whitelist of commands to a renter key
(section IV-E).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.addressing import AddressPlan
from repro.core.config import OnionBotConfig
from repro.core.errors import MessageError
from repro.core.messaging import CommandMessage, Envelope, KeyReport, MessageKind, build_envelope
from repro.core.rental import RentalToken, issue_token
from repro.crypto.kdf import derive_group_key, kdf
from repro.crypto.keys import KeyPair, PublicKey
from repro.tor.onion_address import OnionAddress

_nonce_counter = itertools.count(1)


@dataclass
class BotRecord:
    """What the C&C knows about one enrolled bot."""

    bot_key: bytes
    plan: AddressPlan
    first_seen_onion: str
    enrolled_at: float


@dataclass
class Botmaster:
    """The (simulated) operator of the botnet."""

    keypair: KeyPair
    config: OnionBotConfig = field(default_factory=OnionBotConfig)
    #: Shared network key distributed to every bot at infection time.
    network_key: bytes = b""
    _bots: Dict[str, BotRecord] = field(default_factory=dict)
    _group_keys: Dict[str, bytes] = field(default_factory=dict)
    issued_commands: List[CommandMessage] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.network_key:
            self.network_key = kdf("onionbot.network-key", self.keypair.private)

    @property
    def public_key(self) -> PublicKey:
        """The hard-coded public key baked into every bot."""
        return self.keypair.public

    # ------------------------------------------------------------------
    # Enrollment
    # ------------------------------------------------------------------
    def enroll(self, label: str, report: KeyReport) -> BotRecord:
        """Process a rally-stage key report and remember how to reach the bot."""
        bot_key = report.open_with(self.keypair)
        record = BotRecord(
            bot_key=bot_key,
            plan=AddressPlan(
                botmaster_public=self.public_key,
                bot_key=bot_key,
                period_seconds=self.config.rotation_period,
            ),
            first_seen_onion=report.onion_address,
            enrolled_at=report.reported_at,
        )
        self._bots[label] = record
        return record

    def forget_bot(self, label: str) -> None:
        """Drop a bot from the registry (it was taken down or lost)."""
        self._bots.pop(label, None)

    def knows(self, label: str) -> bool:
        """Whether the C&C holds a key report for ``label``."""
        return label in self._bots

    def enrolled_labels(self) -> List[str]:
        """Labels of every enrolled bot."""
        return list(self._bots)

    def address_of(self, label: str, now: float) -> OnionAddress:
        """The current onion address of an enrolled bot.

        This is the paper's key capability: "the bot master is able to access
        and control any bot, anytime" despite constant address rotation.
        """
        if label not in self._bots:
            raise MessageError(f"no key report on file for bot {label!r}")
        return self._bots[label].plan.address_at(now)

    def addresses_at(self, now: float) -> Dict[str, OnionAddress]:
        """Current address of every enrolled bot."""
        return {label: record.plan.address_at(now) for label, record in self._bots.items()}

    # ------------------------------------------------------------------
    # Group keys
    # ------------------------------------------------------------------
    def group_key(self, group: str) -> bytes:
        """Return (creating if needed) the symmetric key for ``group``."""
        if group not in self._group_keys:
            self._group_keys[group] = derive_group_key(self.keypair.private, group)
        return self._group_keys[group]

    # ------------------------------------------------------------------
    # Command issuance
    # ------------------------------------------------------------------
    def _next_nonce(self) -> str:
        return f"cmd-{next(_nonce_counter):08d}"

    def issue_broadcast(
        self,
        command: str,
        *,
        now: float,
        ttl: Optional[float] = None,
        arguments: Optional[Dict[str, str]] = None,
    ) -> CommandMessage:
        """A signed command addressed to every bot."""
        message = CommandMessage(
            kind=MessageKind.COMMAND_BROADCAST,
            command=command,
            arguments=arguments or {},
            issued_at=now,
            expires_at=None if ttl is None else now + ttl,
            nonce=self._next_nonce(),
        ).signed_by(self.keypair)
        self.issued_commands.append(message)
        return message

    def issue_directed(
        self,
        command: str,
        targets: List[str],
        *,
        now: float,
        ttl: Optional[float] = None,
        arguments: Optional[Dict[str, str]] = None,
    ) -> CommandMessage:
        """A signed command addressed to specific onion addresses."""
        if not targets:
            raise MessageError("a directed command needs at least one target")
        message = CommandMessage(
            kind=MessageKind.COMMAND_DIRECTED,
            command=command,
            arguments=arguments or {},
            targets=list(targets),
            issued_at=now,
            expires_at=None if ttl is None else now + ttl,
            nonce=self._next_nonce(),
        ).signed_by(self.keypair)
        self.issued_commands.append(message)
        return message

    def issue_group(
        self,
        command: str,
        group: str,
        *,
        now: float,
        ttl: Optional[float] = None,
        arguments: Optional[Dict[str, str]] = None,
    ) -> CommandMessage:
        """A signed command sealed under a group key."""
        message = CommandMessage(
            kind=MessageKind.COMMAND_GROUP,
            command=command,
            arguments=arguments or {},
            group=group,
            issued_at=now,
            expires_at=None if ttl is None else now + ttl,
            nonce=self._next_nonce(),
        ).signed_by(self.keypair)
        self.issued_commands.append(message)
        return message

    def issue_maintenance(
        self,
        command: str,
        *,
        now: float,
        arguments: Optional[Dict[str, str]] = None,
    ) -> CommandMessage:
        """A signed maintenance message (peer-list adjustments and the like)."""
        message = CommandMessage(
            kind=MessageKind.MAINTENANCE,
            command=command,
            arguments=arguments or {},
            issued_at=now,
            nonce=self._next_nonce(),
        ).signed_by(self.keypair)
        self.issued_commands.append(message)
        return message

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------
    def key_for(self, message: CommandMessage, target_label: Optional[str] = None) -> bytes:
        """The symmetric key under which ``message`` should be enveloped."""
        if message.kind is MessageKind.COMMAND_DIRECTED:
            if target_label is None or target_label not in self._bots:
                raise MessageError("directed commands need an enrolled target label")
            return self._bots[target_label].bot_key
        if message.kind is MessageKind.COMMAND_GROUP:
            if message.group is None:
                raise MessageError("group commands must name their group")
            return self.group_key(message.group)
        return self.network_key

    def envelope_for(
        self,
        message: CommandMessage,
        randomness: bytes,
        *,
        target_label: Optional[str] = None,
    ) -> Envelope:
        """Wrap a command into its fixed-size, uniform-looking envelope."""
        key = self.key_for(message, target_label)
        return build_envelope(message.to_bytes(), key, randomness)

    # ------------------------------------------------------------------
    # Rental
    # ------------------------------------------------------------------
    def rent_out(
        self,
        renter_public: PublicKey,
        *,
        now: float,
        duration: float,
        whitelisted_commands: List[str],
    ) -> RentalToken:
        """Issue a rental token valid for ``duration`` seconds."""
        return issue_token(
            self.keypair,
            renter_public,
            issued_at=now,
            expires_at=now + duration,
            whitelisted_commands=whitelisted_commands,
        )
