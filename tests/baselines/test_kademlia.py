"""Tests for the Kademlia-style structured overlay baseline."""

from repro.baselines.kademlia import (
    BUCKET_SIZE,
    KademliaOverlay,
    node_id_from_label,
    xor_distance,
)


class TestPrimitives:
    def test_node_id_is_deterministic(self):
        assert node_id_from_label("knode-1") == node_id_from_label("knode-1")

    def test_xor_distance_properties(self):
        assert xor_distance(5, 5) == 0
        assert xor_distance(1, 2) == xor_distance(2, 1)


class TestKademliaNode:
    def test_observe_populates_buckets(self):
        overlay = KademliaOverlay.build(50, seed=1)
        node = next(iter(overlay.nodes.values()))
        assert node.routing_state_size() > 0
        assert node.routing_state_size() <= BUCKET_SIZE * 32

    def test_bucket_capacity_respected(self):
        overlay = KademliaOverlay.build(200, seed=2, bootstrap_contacts=64)
        node = next(iter(overlay.nodes.values()))
        assert all(len(bucket) <= BUCKET_SIZE for bucket in node.buckets.values())

    def test_self_never_in_buckets(self):
        overlay = KademliaOverlay.build(30, seed=3)
        for node in overlay.nodes.values():
            assert node.node_id not in node.contacts()

    def test_forget_removes_contact(self):
        overlay = KademliaOverlay.build(20, seed=4)
        node = next(iter(overlay.nodes.values()))
        contact = next(iter(node.contacts()))
        node.forget(contact)
        assert contact not in node.contacts()


class TestLookups:
    def test_lookup_succeeds_on_healthy_network(self):
        overlay = KademliaOverlay.build(100, seed=5)
        assert overlay.lookup_success_rate(trials=50) > 0.9

    def test_lookup_from_unknown_origin(self):
        overlay = KademliaOverlay.build(20, seed=6)
        assert overlay.lookup(999999999, 1) is None

    def test_mass_takedown_degrades_lookups(self):
        overlay = KademliaOverlay.build(150, seed=7)
        healthy = overlay.lookup_success_rate(trials=60)
        overlay.remove_fraction(0.6)
        degraded = overlay.lookup_success_rate(trials=60)
        assert degraded <= healthy

    def test_routing_state_is_larger_than_ddsr_degree(self):
        """Structured overlays carry much more per-node state than DDSR's ~k peers."""
        overlay = KademliaOverlay.build(200, seed=8, bootstrap_contacts=32)
        assert overlay.average_routing_state() > 15

    def test_remove_fraction_bounds(self):
        overlay = KademliaOverlay.build(20, seed=9)
        victims = overlay.remove_fraction(0.5)
        assert len(victims) == 10
        assert len(overlay.nodes) == 10

    def test_empty_overlay_rates(self):
        overlay = KademliaOverlay(seed=0)
        assert overlay.lookup_success_rate() == 0.0
        assert overlay.average_routing_state() == 0.0
