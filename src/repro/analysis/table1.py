"""Table I -- cryptographic use in different botnets, plus empirical columns.

The paper's Table I is a literature-derived comparison (crypto, signing,
replay) of Miner, Storm, ZeroAccess v1 and Zeus; OnionBot is designed to close
every one of those gaps.  ``build_table1`` reproduces the published rows and
adds measured columns from the simulation:

* byte entropy of representative wire messages (how distinguishable the
  framing is to a passive observer);
* whether the framing passes the uniformity check used for OnionBot envelopes;
* whether message sizes leak the plaintext length (OnionBot envelopes are
  constant-size);
* whether a replayed command is accepted (OnionBot bots reject replays via
  nonces; the legacy rows reflect the published "replay: yes" findings).
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.legacy_botnets import (
    LEGACY_BOTNETS,
    ONIONBOT_PROFILE,
    message_lengths_vary,
    sample_message,
)
from repro.core.messaging import ENVELOPE_SIZE, CommandMessage, MessageKind, build_envelope
from repro.crypto.elligator import byte_entropy, looks_uniform
from repro.crypto.keys import KeyPair


def _onionbot_sample_envelopes(count: int = 8) -> List[bytes]:
    """Representative OnionBot wire blobs (signed command in a sealed envelope)."""
    botmaster = KeyPair.from_seed(b"table1-botmaster")
    network_key = b"table1-network-key-material-0001"
    blobs: List[bytes] = []
    for serial in range(count):
        command = CommandMessage(
            kind=MessageKind.COMMAND_BROADCAST,
            command="report-status",
            arguments={"sequence": str(serial)},
            issued_at=float(serial),
            nonce=f"table1-{serial}",
        ).signed_by(botmaster)
        randomness = bytes([serial % 256]) * 32
        blobs.append(build_envelope(command.to_bytes(), network_key, randomness).blob)
    return blobs


def _legacy_samples(name: str, count: int = 8) -> List[bytes]:
    return [sample_message(name, serial) for serial in range(1, count + 1)]


def build_table1(samples_per_family: int = 8) -> List[Dict[str, object]]:
    """Build the augmented Table I rows.

    Returns one dict per botnet family with the published columns (Crypto,
    Signing, Replay) and the measured columns described in the module
    docstring.  The OnionBot row is measured from real simulator envelopes.
    """
    rows: List[Dict[str, object]] = []
    for profile in LEGACY_BOTNETS:
        samples = _legacy_samples(profile.name, samples_per_family)
        # The uniformity check requires >= 64 bytes; legacy messages are ~100B.
        entropies = [byte_entropy(sample) for sample in samples]
        mean_entropy = sum(entropies) / len(entropies)
        uniform = all(
            looks_uniform(sample) for sample in samples if len(sample) >= 64
        ) and all(len(sample) >= 64 for sample in samples)
        rows.append(
            {
                "Botnet": profile.name,
                "Crypto": profile.crypto,
                "Signing": profile.signing,
                "Replay": "no" if profile.replay_protected else "yes",
                "MeanByteEntropy": round(mean_entropy, 2),
                "LooksUniform": uniform,
                "ConstantSize": not message_lengths_vary(profile.name),
            }
        )

    onion_samples = _onionbot_sample_envelopes(samples_per_family)
    onion_entropy = sum(byte_entropy(sample) for sample in onion_samples) / len(onion_samples)
    rows.append(
        {
            "Botnet": ONIONBOT_PROFILE.name,
            "Crypto": ONIONBOT_PROFILE.crypto,
            "Signing": ONIONBOT_PROFILE.signing,
            "Replay": "no" if ONIONBOT_PROFILE.replay_protected else "yes",
            "MeanByteEntropy": round(onion_entropy, 2),
            "LooksUniform": all(looks_uniform(sample) for sample in onion_samples),
            "ConstantSize": all(len(sample) == ENVELOPE_SIZE for sample in onion_samples),
        }
    )
    return rows
