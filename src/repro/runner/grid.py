"""Parameter-grid expansion and canonicalisation.

Kept dependency-free so both the runner and :mod:`repro.analysis.sweep` can
import it without pulling the whole orchestration stack (or creating an
import cycle through :mod:`repro.analysis`).
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Dict, List, Mapping, Sequence

#: Parameter values the runner can hash, cache and ship across processes.
Primitive = (str, int, float, bool, type(None))


def expand_grid(grid: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Cartesian product of ``grid`` as one dict per point, in insertion order.

    ``expand_grid({"a": [1, 2], "b": ["x"]})`` yields
    ``[{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]``.  An empty grid yields the
    single empty point (one run with only base parameters).
    """
    names = list(grid)
    if not names:
        return [{}]
    for name in names:
        values = grid[name]
        if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
            raise TypeError(
                f"grid axis {name!r} must be a sequence of values, got {type(values).__name__}"
            )
        if len(values) == 0:
            raise ValueError(f"grid axis {name!r} has no values")
    return [
        dict(zip(names, values))
        for values in itertools.product(*(grid[name] for name in names))
    ]


def check_params(params: Mapping[str, Any]) -> None:
    """Reject parameter values the cache/executor cannot round-trip."""
    for key, value in params.items():
        if not isinstance(key, str):
            raise TypeError(f"parameter names must be strings, got {key!r}")
        if not isinstance(value, Primitive):
            raise TypeError(
                f"parameter {key!r} must be a JSON primitive (str/int/float/bool/None), "
                f"got {type(value).__name__}; pass enums and objects by name and "
                f"resolve them inside the scenario function"
            )


def canonical_params(params: Mapping[str, Any]) -> str:
    """Stable JSON encoding of a parameter point (sorted keys, no whitespace)."""
    check_params(params)
    return json.dumps(dict(params), sort_keys=True, separators=(",", ":"))


def parse_grid_value(text: str) -> Any:
    """Parse one CLI grid/override value: int, float, bool, null, else str.

    Only ``null`` maps to ``None`` -- the word ``none`` stays a string, since
    several scenario parameters (e.g. the repair policy) use it as a literal.
    """
    lowered = text.strip()
    if lowered.lower() in ("true", "false"):
        return lowered.lower() == "true"
    if lowered.lower() == "null":
        return None
    for converter in (int, float):
        try:
            return converter(lowered)
        except ValueError:
            continue
    return lowered


def parse_grid_axis(text: str) -> tuple:
    """Parse one ``name=v1,v2,...`` CLI axis into ``(name, [values])``."""
    if "=" not in text:
        raise ValueError(f"expected name=v1,v2,..., got {text!r}")
    name, _, values = text.partition("=")
    name = name.strip()
    if not name:
        raise ValueError(f"empty axis name in {text!r}")
    parsed = [parse_grid_value(item) for item in values.split(",") if item.strip() != ""]
    if not parsed:
        raise ValueError(f"axis {name!r} has no values in {text!r}")
    return name, parsed
