"""Node-deletion schedules for the resilience experiments."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, Iterator, List, Sequence

NodeId = Hashable


def fraction_checkpoints(total: int, fractions: Sequence[float]) -> List[int]:
    """Convert deletion fractions into absolute node counts.

    ``fraction_checkpoints(5000, [0.1, 0.2, 0.3])`` -> ``[500, 1000, 1500]``,
    the x-axis checkpoints of the Figure 4 curves.
    """
    checkpoints = []
    for fraction in fractions:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fractions must be in [0, 1], got {fraction}")
        checkpoints.append(int(round(fraction * total)))
    return checkpoints


@dataclass
class DeletionSchedule:
    """A reproducible ordering of victims over a node population.

    The same schedule object can be replayed against the DDSR overlay and the
    normal-graph baseline so both see identical deletions (as Figure 5 does).
    """

    victims: List[NodeId]

    @classmethod
    def random(
        cls, nodes: Sequence[NodeId], fraction: float, *, seed: int = 0
    ) -> "DeletionSchedule":
        """Uniformly random victim ordering covering ``fraction`` of ``nodes``."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        rng = random.Random(seed)
        count = int(round(fraction * len(nodes)))
        return cls(victims=rng.sample(list(nodes), count) if count else [])

    @classmethod
    def full_population(cls, nodes: Sequence[NodeId], *, seed: int = 0) -> "DeletionSchedule":
        """Every node in random order (Figure 5 deletes essentially everyone)."""
        rng = random.Random(seed)
        victims = list(nodes)
        rng.shuffle(victims)
        return cls(victims=victims)

    def __len__(self) -> int:
        return len(self.victims)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.victims)

    def batches(self, batch_size: int) -> Iterator[List[NodeId]]:
        """Yield victims in fixed-size batches (one batch per checkpoint)."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        for start in range(0, len(self.victims), batch_size):
            yield self.victims[start: start + batch_size]

    def prefix(self, count: int) -> List[NodeId]:
        """The first ``count`` victims (a partial campaign)."""
        return self.victims[:count]
