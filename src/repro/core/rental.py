"""Botnet-for-rent token scheme (paper section IV-E).

The botmaster (Mallory) signs a token over the renter's (Trudy's) public key,
an expiration time and a whitelist of permitted commands.  Trudy then signs
her own commands and attaches the token; bots verify (1) the token is signed
by the hard-coded botmaster key, (2) it has not expired, (3) the command verb
is whitelisted, and (4) the command itself is signed by the renter key named
in the token.  The scheme gives renters temporary, scoped control without the
botmaster revealing anything or staying online.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.errors import RentalError
from repro.core.messaging import CommandMessage
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.signing import Signature, sign, verify


@dataclass
class RentalToken:
    """A signed authorisation for a renter key."""

    renter_public: PublicKey
    expires_at: float
    whitelisted_commands: List[str] = field(default_factory=list)
    issued_at: float = 0.0
    signature: Optional[Signature] = None

    def signing_payload(self) -> bytes:
        """Canonical bytes the botmaster signs."""
        body = {
            "renter": self.renter_public.material.hex(),
            "expires_at": self.expires_at,
            "issued_at": self.issued_at,
            "whitelist": sorted(self.whitelisted_commands),
        }
        return json.dumps(body, sort_keys=True).encode("utf-8")

    def is_expired(self, now: float) -> bool:
        """Whether the rental contract term has ended."""
        return now > self.expires_at

    def permits(self, command: str) -> bool:
        """Whether ``command`` is on the token's whitelist."""
        return command in self.whitelisted_commands

    def verify(self, botmaster_public: PublicKey) -> bool:
        """Whether the token carries a valid botmaster signature."""
        if self.signature is None:
            return False
        return verify(botmaster_public, self.signing_payload(), self.signature)


def issue_token(
    botmaster: KeyPair,
    renter_public: PublicKey,
    *,
    expires_at: float,
    whitelisted_commands: List[str],
    issued_at: float = 0.0,
) -> RentalToken:
    """Create and sign a rental token as the botmaster."""
    if expires_at <= issued_at:
        raise RentalError(
            f"token must expire after issuance (issued {issued_at}, expires {expires_at})"
        )
    if not whitelisted_commands:
        raise RentalError("a rental token must whitelist at least one command")
    token = RentalToken(
        renter_public=renter_public,
        expires_at=expires_at,
        whitelisted_commands=list(whitelisted_commands),
        issued_at=issued_at,
    )
    token.signature = sign(botmaster, token.signing_payload())
    return token


def sign_rented_command(renter: KeyPair, command: CommandMessage) -> CommandMessage:
    """Have the renter sign a command she wants the rented bots to run."""
    return command.signed_by(renter)


def verify_rented_command(
    botmaster_public: PublicKey,
    command: CommandMessage,
    token: RentalToken,
    now: float,
) -> bool:
    """Full bot-side verification of a renter-issued command.

    Returns ``True`` only when every check of section IV-E passes; callers
    that want the failure reason should use :func:`require_rented_command`.
    """
    try:
        require_rented_command(botmaster_public, command, token, now)
    except RentalError:
        return False
    return True


def require_rented_command(
    botmaster_public: PublicKey,
    command: CommandMessage,
    token: RentalToken,
    now: float,
) -> None:
    """Raise :class:`RentalError` describing the first failed check, if any."""
    if not token.verify(botmaster_public):
        raise RentalError("rental token is not signed by the botmaster")
    if token.is_expired(now):
        raise RentalError("rental token has expired")
    if not token.permits(command.command):
        raise RentalError(f"command {command.command!r} is not whitelisted by the token")
    if command.is_expired(now):
        raise RentalError("command itself has expired")
    if not command.verify_signature(token.renter_public):
        raise RentalError("command is not signed by the renter named in the token")
