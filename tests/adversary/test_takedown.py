"""Tests for takedown strategies."""

import random

import pytest

from repro.adversary.takedown import (
    GradualTakedown,
    RandomTakedown,
    SimultaneousTakedown,
    TargetedDegreeTakedown,
    victim_schedule,
)
from repro.core.ddsr import DDSROverlay


def overlay(n: int = 150, k: int = 10, seed: int = 0) -> DDSROverlay:
    return DDSROverlay.k_regular(n, k, seed=seed)


class TestRandomTakedown:
    def test_removes_requested_count(self):
        target = overlay()
        result = RandomTakedown(count=30, rng=random.Random(1)).execute(target)
        assert result.removed == 30
        assert result.surviving_nodes == 120
        assert result.strategy == "random"

    def test_overlay_repairs_and_stays_connected(self):
        target = overlay()
        result = RandomTakedown(count=60, rng=random.Random(2)).execute(target)
        assert not result.partitioned
        assert result.repairs_performed == 60
        assert result.max_degree <= target.config.d_max

    def test_cannot_remove_more_than_population(self):
        target = overlay(n=20, k=4)
        result = RandomTakedown(count=100, rng=random.Random(3)).execute(target)
        assert result.surviving_nodes == 0


class TestTargetedDegreeTakedown:
    def test_targets_highest_degree_nodes(self):
        target = overlay()
        # Inflate one node's degree so it becomes the obvious first victim.
        hub = target.nodes()[0]
        for other in target.nodes()[1:20]:
            if not target.graph.has_edge(hub, other):
                target.graph.add_edge(hub, other)
        result = TargetedDegreeTakedown(count=1, rng=random.Random(0)).execute(target)
        assert result.victims == [hub]

    def test_overlay_withstands_targeted_campaign(self):
        target = overlay()
        result = TargetedDegreeTakedown(count=45, rng=random.Random(1)).execute(target)
        assert not result.partitioned


class TestSimultaneousTakedown:
    def test_no_repair_happens_during_mass_removal(self):
        target = overlay()
        SimultaneousTakedown(fraction=0.2, rng=random.Random(1)).execute(target)
        assert target.stats.repair_edges_added == 0

    def test_small_fraction_does_not_partition(self):
        target = overlay(n=200)
        result = SimultaneousTakedown(fraction=0.1, rng=random.Random(2)).execute(target)
        assert not result.partitioned

    def test_huge_fraction_partitions(self):
        target = overlay(n=200)
        result = SimultaneousTakedown(fraction=0.85, rng=random.Random(3)).execute(target)
        assert result.partitioned

    def test_post_repair_option_heals_survivors(self):
        target = overlay(n=200)
        result = SimultaneousTakedown(
            fraction=0.3, rng=random.Random(4), allow_post_repair=True
        ).execute(target)
        assert target.stats.repair_edges_added > 0
        assert not result.partitioned

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            SimultaneousTakedown(fraction=1.5).execute(overlay(n=20, k=4))


class TestGradualTakedown:
    def test_checkpoints_are_produced(self):
        target = overlay()
        results = GradualTakedown(fraction=0.4, checkpoints=4, rng=random.Random(1)).execute_with_checkpoints(target)
        assert len(results) >= 4
        assert results[-1].removed == pytest.approx(60, abs=1)

    def test_execute_returns_final_state(self):
        target = overlay()
        result = GradualTakedown(fraction=0.3, rng=random.Random(1)).execute(target)
        assert result.surviving_nodes == 105

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GradualTakedown(fraction=2.0).execute(overlay(n=20, k=4))
        with pytest.raises(ValueError):
            GradualTakedown(fraction=0.1, checkpoints=0).execute(overlay(n=20, k=4))


class TestVictimSchedule:
    def test_schedule_size(self):
        nodes = list(range(100))
        assert len(victim_schedule(nodes, 0.25, random.Random(0))) == 25

    def test_schedule_is_reproducible(self):
        nodes = list(range(100))
        assert victim_schedule(nodes, 0.5, random.Random(7)) == victim_schedule(
            nodes, 0.5, random.Random(7)
        )

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            victim_schedule([1, 2, 3], -0.1)


class TestGradualPathMetrics:
    def test_path_metrics_off_by_default(self):
        result = GradualTakedown(fraction=0.2, rng=random.Random(2)).execute(
            overlay()
        )
        assert result.path_metrics is None

    def test_exact_path_metrics_when_sample_is_none(self):
        """metric_sample=None records exact full-population metrics."""
        from repro.graphs import backend

        target = overlay()
        strategy = GradualTakedown(
            fraction=0.3,
            checkpoints=2,
            rng=random.Random(4),
            path_metrics=True,
            metric_sample=None,
        )
        results = strategy.execute_with_checkpoints(target)
        final = results[-1]
        summary = backend.full_path_metrics(target.graph)
        assert final.path_metrics == {
            "diameter": summary["diameter"],
            "avg_path_length": summary["avg_path_length"],
            "avg_closeness": summary["avg_closeness"],
        }
        assert final.connected_components == summary["components"]

    def test_exact_path_metrics_identical_across_backends(self):
        from repro.graphs import backend

        def run():
            strategy = GradualTakedown(
                fraction=0.3,
                checkpoints=2,
                rng=random.Random(4),
                path_metrics=True,
                metric_sample=None,
            )
            return [
                checkpoint.path_metrics
                for checkpoint in strategy.execute_with_checkpoints(overlay())
            ]

        with backend.using("python"):
            reference = run()
        with backend.using("fast"):
            assert run() == reference

    def test_path_metrics_recorded_per_checkpoint(self):
        target = overlay()
        strategy = GradualTakedown(
            fraction=0.3,
            checkpoints=3,
            rng=random.Random(2),
            path_metrics=True,
            metric_sample=8,
            metric_rng=random.Random(11),
        )
        results = strategy.execute_with_checkpoints(target)
        assert results
        for checkpoint in results:
            metrics = checkpoint.path_metrics
            assert set(metrics) == {"diameter", "avg_path_length", "avg_closeness"}
            assert metrics["diameter"] >= 1.0
            assert metrics["avg_closeness"] > 0.0
