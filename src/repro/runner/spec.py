"""Declarative description of one experiment campaign.

A :class:`ScenarioSpec` names a registered scenario and pins everything that
determines its output: base parameters, a parameter grid, the number of
trials per grid point and the master seed.  From those it derives the flat
list of :class:`WorkUnit` items the executor schedules, each with its own
deterministic child seed (via :func:`repro.sim.rng.derive_seed`), so results
are bit-identical whether units run serially, sharded across processes, or
are replayed from the on-disk cache.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence

from repro.runner.grid import canonical_params, check_params, expand_grid
from repro.sim.rng import derive_seed


@dataclass(frozen=True)
class WorkUnit:
    """One independent execution: a grid point at one trial index."""

    index: int
    scenario: str
    params: Mapping[str, Any]
    trial: int
    seed: int
    #: Index of the grid point this unit belongs to (trials share it).
    point_index: int

    def key_material(self, version: str) -> str:
        """The canonical string the cache key is hashed from.

        Besides the unit's own identity this covers the *active execution
        environment* -- the graph-backend policy, the BFS wave-width
        override and the forced-LUT popcount flag -- so a result computed
        under ``REPRO_GRAPH_BACKEND=python`` is never served to a
        ``fast``-backend invocation (or vice versa), and a run under a
        forced wave width or popcount kernel never masks the default one.
        The backends and kernels are contractually bit-identical, but the
        cache must not *assume* the contract it exists to help verify.
        """
        from repro.graphs import backend

        return "\n".join(
            [
                f"scenario={self.scenario}",
                f"version={version}",
                f"params={canonical_params(self.params)}",
                f"trial={self.trial}",
                f"seed={self.seed}",
                f"graph_backend={backend.policy()}",
                f"bfs_batch={backend.bfs_batch_policy()}",
                f"popcount_lut={backend.popcount_lut_forced()}",
            ]
        )

    def cache_key(self, version: str) -> str:
        """Stable hex key for the on-disk result cache."""
        digest = hashlib.sha256(self.key_material(version).encode("utf-8")).hexdigest()
        return digest[:32]


@dataclass
class ScenarioSpec:
    """Everything needed to (re)produce one experiment campaign."""

    name: str
    params: Dict[str, Any] = field(default_factory=dict)
    grid: Dict[str, Sequence[Any]] = field(default_factory=dict)
    trials: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        check_params(self.params)
        overlap = set(self.params) & set(self.grid)
        if overlap:
            raise ValueError(
                f"parameters {sorted(overlap)} appear in both params and grid"
            )

    # ------------------------------------------------------------------
    def resolved(self, defaults: Mapping[str, Any]) -> "ScenarioSpec":
        """This spec with scenario defaults folded into ``params``.

        Cache keys and unit seeds are derived from the *resolved* parameter
        set, so editing a scenario's registered defaults invalidates stale
        cache entries, and passing a parameter explicitly at its default
        value hits the same cache entry as omitting it.  Grid axes win over
        defaults; explicit params win over both.
        """
        merged = {key: value for key, value in defaults.items() if key not in self.grid}
        merged.update(self.params)
        if merged == self.params:
            return self
        return ScenarioSpec(
            name=self.name, params=merged, grid=self.grid, trials=self.trials, seed=self.seed
        )

    def points(self) -> List[Dict[str, Any]]:
        """Every grid point merged with the base parameters, in grid order."""
        merged = []
        for point in expand_grid(self.grid):
            combined = dict(self.params)
            combined.update(point)
            check_params(combined)
            merged.append(combined)
        return merged

    def grid_keys(self) -> List[str]:
        """Names of the swept axes (empty for a single-point run)."""
        return list(self.grid)

    def work_units(self) -> List[WorkUnit]:
        """The flat (grid point x trial) schedule with per-unit child seeds.

        Unit seeds depend only on the spec -- never on worker count or
        completion order -- which is what makes ``--workers N`` output
        bit-identical to ``--workers 1``.
        """
        units: List[WorkUnit] = []
        for point_index, point in enumerate(self.points()):
            point_token = canonical_params(point)
            for trial in range(self.trials):
                unit_seed = derive_seed(
                    self.seed, f"runner:{self.name}:{point_token}:trial={trial}"
                )
                units.append(
                    WorkUnit(
                        index=len(units),
                        scenario=self.name,
                        params=point,
                        trial=trial,
                        seed=unit_seed,
                        point_index=point_index,
                    )
                )
        return units

    def spec_hash(self) -> str:
        """Stable hash over the whole campaign (name, params, grid, trials, seed)."""
        axes = json.dumps(
            {name: list(values) for name, values in self.grid.items()},
            sort_keys=True,
            separators=(",", ":"),
        )
        material = "\n".join(
            [
                f"scenario={self.name}",
                f"params={canonical_params(self.params)}",
                f"grid={axes}",
                f"trials={self.trials}",
                f"seed={self.seed}",
            ]
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]
