"""Honeypot-based bot capture.

SOAP's prerequisite (section VI-B) is learning at least one bot's ``.onion``
address, "either by detecting and reverse engineering an already infected
host, or by using a set of honeypots".  The :class:`HoneypotOperator` models
that acquisition step against a running :class:`~repro.core.botnet.OnionBotnet`
or a bare overlay: capturing a bot reveals its label/onion and its current
peer list -- and nothing else.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Set

from repro.core.botnet import OnionBotnet
from repro.core.ddsr import DDSROverlay

NodeId = Hashable


@dataclass
class CaptureResult:
    """What one captured bot reveals to the defender."""

    captured: NodeId
    peer_addresses: Set[str]
    peer_labels: Set[NodeId]
    captured_at: float

    @property
    def exposure(self) -> int:
        """Number of other bots whose addresses were exposed."""
        return len(self.peer_addresses or self.peer_labels)


@dataclass
class HoneypotOperator:
    """A defender running honeypots to get footholds into the botnet."""

    rng: random.Random = field(default_factory=lambda: random.Random(0))
    captures: List[CaptureResult] = field(default_factory=list)

    def capture_from_botnet(self, botnet: OnionBotnet, label: Optional[str] = None) -> CaptureResult:
        """Capture one bot of a full botnet simulation (random if unspecified)."""
        active = botnet.active_labels()
        if not active:
            raise ValueError("no active bots left to capture")
        chosen = label if label is not None else self.rng.choice(active)
        peers = botnet.capture_view(chosen)
        peer_labels = set(botnet.overlay.peers(chosen)) if chosen in botnet.overlay.graph else set()
        result = CaptureResult(
            captured=chosen,
            peer_addresses=peers,
            peer_labels=peer_labels,
            captured_at=botnet.simulator.now,
        )
        self.captures.append(result)
        return result

    def capture_from_overlay(
        self, overlay: DDSROverlay, node: Optional[NodeId] = None, now: float = 0.0
    ) -> CaptureResult:
        """Capture one node of a bare overlay (graph-level experiments)."""
        nodes = overlay.nodes()
        if not nodes:
            raise ValueError("overlay is empty")
        chosen = node if node is not None else self.rng.choice(nodes)
        peers = overlay.peers(chosen)
        result = CaptureResult(
            captured=chosen,
            peer_addresses=set(),
            peer_labels=set(peers),
            captured_at=now,
        )
        self.captures.append(result)
        return result

    def total_exposed(self) -> Set[NodeId]:
        """Union of everything every capture has revealed so far."""
        exposed: Set[NodeId] = set()
        for capture in self.captures:
            exposed.update(capture.peer_labels)
            exposed.add(capture.captured)
        return exposed
