"""Tests for the DDSR self-healing overlay (the paper's core algorithm)."""

import random

import pytest

from repro.core.ddsr import DDSRConfig, DDSROverlay, PruningPolicy, RepairPolicy
from repro.core.errors import OverlayError
from repro.graphs.metrics import number_connected_components


class TestConstruction:
    def test_k_regular_builder(self):
        overlay = DDSROverlay.k_regular(60, 6, seed=1)
        assert len(overlay) == 60
        assert all(overlay.degree(node) == 6 for node in overlay.nodes())

    def test_from_edges_builder(self):
        overlay = DDSROverlay.from_edges([(0, 1), (1, 2)])
        assert len(overlay) == 3
        assert overlay.degree(1) == 2

    def test_default_config_bounds_around_k(self):
        overlay = DDSROverlay.k_regular(40, 10, seed=1)
        assert overlay.config.d_min == 5
        assert overlay.config.d_max == 15

    def test_invalid_config_rejected(self):
        with pytest.raises(OverlayError):
            DDSRConfig(d_min=10, d_max=5)


class TestRepairStep:
    def test_figure3_scenario_neighbors_form_clique(self):
        """Removing node 7 makes its former neighbours pairwise connected."""
        overlay = DDSROverlay.k_regular(12, 3, seed=7)
        victim = overlay.nodes()[0]
        neighbors = sorted(overlay.peers(victim), key=repr)
        overlay.remove_node(victim)
        for index, u in enumerate(neighbors):
            for v in neighbors[index + 1:]:
                assert overlay.graph.has_edge(u, v)

    def test_repair_keeps_overlay_connected_through_heavy_deletion(self):
        overlay = DDSROverlay.k_regular(150, 10, seed=3)
        overlay.remove_fraction(0.6, rng=random.Random(1))
        assert number_connected_components(overlay.graph) == 1

    def test_no_repair_policy_behaves_like_normal_graph(self):
        config = DDSRConfig(d_min=0, d_max=10**9, repair_policy=RepairPolicy.NONE,
                            pruning_policy=PruningPolicy.NONE)
        overlay = DDSROverlay.k_regular(100, 4, config=config, seed=5)
        overlay.remove_fraction(0.5, rng=random.Random(2))
        assert overlay.stats.repair_edges_added == 0
        assert number_connected_components(overlay.graph) > 1

    def test_ring_repair_adds_fewer_edges_than_clique(self):
        clique = DDSROverlay.k_regular(100, 8, seed=9)
        ring = DDSROverlay.k_regular(
            100, 8, config=DDSRConfig(repair_policy=RepairPolicy.RING), seed=9
        )
        victims = clique.nodes()[:20]
        clique.remove_nodes(list(victims))
        ring.remove_nodes(list(victims))
        assert ring.stats.repair_edges_added < clique.stats.repair_edges_added

    def test_repair_counters(self):
        overlay = DDSROverlay.k_regular(30, 4, seed=1)
        overlay.remove_node(overlay.nodes()[0])
        assert overlay.stats.nodes_removed == 1
        assert overlay.stats.repairs_performed == 1
        assert overlay.stats.repair_edges_added > 0

    def test_removing_unknown_node_raises(self):
        overlay = DDSROverlay.k_regular(10, 2, seed=1)
        with pytest.raises(OverlayError):
            overlay.remove_node("missing")


class TestPruning:
    def test_degree_bound_maintained_under_deletions(self):
        overlay = DDSROverlay.k_regular(200, 10, seed=2)
        overlay.remove_fraction(0.3, rng=random.Random(3))
        assert overlay.degree_bounds_satisfied()
        assert overlay.max_degree() <= overlay.config.d_max

    def test_without_pruning_degrees_grow(self):
        config = DDSRConfig(d_min=5, d_max=15, pruning_policy=PruningPolicy.NONE)
        overlay = DDSROverlay.k_regular(200, 10, config=config, seed=2)
        overlay.remove_fraction(0.3, rng=random.Random(3))
        assert overlay.max_degree() > 15

    def test_enforce_degree_bound_public_api(self):
        overlay = DDSROverlay.k_regular(30, 4, config=DDSRConfig(d_min=2, d_max=4), seed=1)
        node = overlay.nodes()[0]
        # Manually over-connect the node.
        for other in overlay.nodes():
            if other != node and not overlay.graph.has_edge(node, other):
                overlay.graph.add_edge(node, other)
        assert overlay.degree(node) > 4
        removed = overlay.enforce_degree_bound(node)
        assert removed > 0
        assert overlay.degree(node) <= 4

    def test_enforce_degree_bound_unknown_node(self):
        overlay = DDSROverlay.k_regular(10, 2, seed=1)
        with pytest.raises(OverlayError):
            overlay.enforce_degree_bound("missing")

    def test_prune_victim_is_highest_degree_peer(self):
        overlay = DDSROverlay.from_edges(
            [("t", "a"), ("t", "b"), ("t", "c"), ("a", "b"), ("a", "c"), ("a", "d")],
            config=DDSRConfig(d_min=1, d_max=2),
        )
        overlay.enforce_degree_bound("t")
        # "a" has the highest degree among t's peers, so it gets dropped first.
        assert not overlay.graph.has_edge("t", "a")
        assert overlay.degree("t") == 2

    def test_random_pruning_policy(self):
        config = DDSRConfig(d_min=2, d_max=5, pruning_policy=PruningPolicy.RANDOM)
        overlay = DDSROverlay.k_regular(100, 5, config=config, seed=4)
        overlay.remove_fraction(0.2, rng=random.Random(5))
        assert overlay.max_degree() <= 5

    def test_forgetting_counter(self):
        overlay = DDSROverlay.k_regular(50, 6, seed=6)
        overlay.remove_node(overlay.nodes()[0])
        assert overlay.stats.addresses_forgotten >= 1
        assert len(overlay.forgotten) == 1


class TestNoNKnowledge:
    def test_knows_peers_and_their_peers_only(self):
        overlay = DDSROverlay.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
        assert overlay.knows(0, 1)       # direct peer
        assert overlay.knows(0, 2)       # neighbour of neighbour
        assert not overlay.knows(0, 3)   # two hops away: unknown
        assert not overlay.knows(0, 99)  # not in overlay

    def test_neighbors_of_neighbors_delegation(self):
        overlay = DDSROverlay.from_edges([(0, 1), (1, 2)])
        assert overlay.neighbors_of_neighbors(0) == {2}


class TestMembership:
    def test_add_node_with_peers(self):
        overlay = DDSROverlay.k_regular(20, 4, seed=1)
        peers = overlay.nodes()[:3]
        overlay.add_node("newcomer", peers)
        assert overlay.degree("newcomer") == 3
        assert overlay.stats.nodes_joined == 1

    def test_add_duplicate_node_rejected(self):
        overlay = DDSROverlay.k_regular(20, 4, seed=1)
        with pytest.raises(OverlayError):
            overlay.add_node(overlay.nodes()[0])

    def test_add_node_with_unknown_peer_rejected(self):
        overlay = DDSROverlay.k_regular(20, 4, seed=1)
        with pytest.raises(OverlayError):
            overlay.add_node("newcomer", ["ghost"])

    def test_add_edge_requires_members(self):
        overlay = DDSROverlay.k_regular(20, 4, seed=1)
        with pytest.raises(OverlayError):
            overlay.add_edge("ghost", overlay.nodes()[0])

    def test_remove_fraction_validates_input(self):
        overlay = DDSROverlay.k_regular(20, 4, seed=1)
        with pytest.raises(OverlayError):
            overlay.remove_fraction(1.5)


class TestMassRemoval:
    def test_simultaneous_removal_then_batch_repair(self):
        overlay = DDSROverlay.k_regular(100, 10, seed=8)
        victims = overlay.nodes()[:20]
        neighbor_sets = [overlay.remove_node(victim, repair=False) for victim in victims]
        assert overlay.stats.repair_edges_added == 0
        added = overlay.repair_after_mass_removal(neighbor_sets)
        assert added > 0
        assert overlay.degree_bounds_satisfied()

    def test_snapshot_is_independent_copy(self):
        overlay = DDSROverlay.k_regular(30, 4, seed=1)
        snapshot = overlay.snapshot()
        overlay.remove_node(overlay.nodes()[0])
        assert snapshot.number_of_nodes() == 30


class TestPathMetricSummary:
    def test_summary_matches_backend_metrics(self):
        import random

        from repro.graphs import backend

        overlay = DDSROverlay.k_regular(120, 8, seed=4)
        summary = overlay.path_metric_summary(sample_size=10, rng=random.Random(3))
        components, largest = backend.component_summary(overlay.graph)
        assert summary["components"] == components
        assert summary["largest_fraction"] == largest / overlay.graph.number_of_nodes()
        # Same extraction + same rng stream reproduces the summary exactly.
        rng = random.Random(3)
        working = backend.largest_component_subgraph(overlay.graph)
        assert summary["diameter"] == backend.diameter(
            working, sample_size=10, rng=rng, connected=True
        )
        assert summary["avg_path_length"] == backend.average_shortest_path_length(
            working, sample_size=10, rng=rng, connected=True
        )
        assert summary["avg_closeness"] == backend.average_closeness_centrality(working)

    def test_summary_identical_across_backends(self):
        import random

        from repro.graphs import backend

        overlay = DDSROverlay.k_regular(150, 8, seed=5)
        overlay.remove_fraction(0.3, rng=random.Random(6))
        with backend.using("python"):
            reference = overlay.path_metric_summary(
                sample_size=12, rng=random.Random(9)
            )
        with backend.using("fast"):
            assert overlay.path_metric_summary(
                sample_size=12, rng=random.Random(9)
            ) == reference

    def test_empty_overlay_summary(self):
        overlay = DDSROverlay.k_regular(10, 4, seed=1)
        for node in list(overlay.nodes()):
            overlay.graph.remove_node(node)
        summary = overlay.path_metric_summary()
        assert summary["components"] == 0 and summary["avg_closeness"] == 0.0

    def test_exact_summary_matches_full_path_metrics(self):
        """sample_size=None routes through the one-campaign exact kernel."""
        import random

        from repro.graphs import backend

        overlay = DDSROverlay.k_regular(140, 8, seed=7)
        overlay.remove_fraction(0.25, rng=random.Random(8))
        summary = overlay.path_metric_summary()
        assert summary == backend.full_path_metrics(overlay.graph)
        with backend.using("python"):
            assert overlay.path_metric_summary() == summary
        with backend.using("fast"):
            assert overlay.path_metric_summary() == summary

    def test_exact_summary_agrees_with_sampled_estimator_limits(self):
        """Exact values equal the sampled estimators run at full population."""
        import random

        from repro.graphs import backend

        overlay = DDSROverlay.k_regular(120, 8, seed=9)
        exact = overlay.path_metric_summary()
        n = overlay.graph.number_of_nodes()
        # A sample covering every node is the full population by contract.
        sampled = overlay.path_metric_summary(
            sample_size=n, rng=random.Random(1)
        )
        assert sampled["diameter"] == exact["diameter"]
        assert sampled["avg_path_length"] == exact["avg_path_length"]
        assert sampled["avg_closeness"] == exact["avg_closeness"]
        assert exact["components"] == 1
        working = backend.largest_component_subgraph(overlay.graph)
        assert exact["avg_closeness"] == backend.average_closeness_centrality(working)
