"""Circuits through the simulated Tor network.

Circuits are modelled at the level the experiments need: an ordered relay
path with a purpose (general, introduction, rendezvous), a latency derived
from its length, and enough book-keeping to count how much work hidden-service
connections cost.  There is no real onion encryption here -- hop-by-hop
confidentiality is assumed, as the paper does.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.tor.consensus import ConsensusEntry

#: Default per-hop latency in seconds used by the latency model.
DEFAULT_HOP_LATENCY = 0.05


class CircuitPurpose(enum.Enum):
    """Why a circuit was built (mirrors the hidden-service handshake steps)."""

    GENERAL = "general"
    INTRODUCTION = "introduction"
    RENDEZVOUS = "rendezvous"
    HSDIR_FETCH = "hsdir-fetch"


_circuit_ids = itertools.count(1)


@dataclass
class Circuit:
    """An established circuit through an ordered list of relays."""

    path: List[ConsensusEntry]
    purpose: CircuitPurpose
    built_at: float
    circuit_id: int = field(default_factory=lambda: next(_circuit_ids))
    closed_at: Optional[float] = None
    cells_sent: int = 0

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("a circuit needs at least one relay in its path")

    @property
    def length(self) -> int:
        """Number of relays in the path."""
        return len(self.path)

    @property
    def is_open(self) -> bool:
        """Whether the circuit is still usable."""
        return self.closed_at is None

    def latency(self, per_hop: float = DEFAULT_HOP_LATENCY) -> float:
        """One-way latency estimate for this circuit."""
        return self.length * per_hop

    def close(self, now: float) -> None:
        """Tear the circuit down."""
        if self.closed_at is None:
            self.closed_at = now

    def record_cells(self, count: int) -> None:
        """Account for ``count`` cells sent along the circuit."""
        if count < 0:
            raise ValueError(f"cell count must be non-negative, got {count}")
        self.cells_sent += count

    def contains_relay(self, fingerprint: bytes) -> bool:
        """Whether a relay with ``fingerprint`` is on the path."""
        return any(entry.fingerprint == fingerprint for entry in self.path)


def build_path(
    candidates: Sequence[ConsensusEntry],
    length: int,
    chooser,
) -> List[ConsensusEntry]:
    """Select a loop-free path of ``length`` distinct relays.

    ``chooser`` is a ``random.Random``-like object providing ``sample``; the
    caller passes a named stream from the simulator so path selection is
    reproducible.
    """
    pool = list(candidates)
    if length <= 0:
        raise ValueError(f"path length must be positive, got {length}")
    if len(pool) < length:
        raise ValueError(
            f"not enough relays to build a {length}-hop circuit (have {len(pool)})"
        )
    return chooser.sample(pool, length)


def rendezvous_latency(client_circuit: Circuit, service_circuit: Circuit, per_hop: float = DEFAULT_HOP_LATENCY) -> float:
    """End-to-end latency of a rendezvous connection (both spliced circuits)."""
    return client_circuit.latency(per_hop) + service_circuit.latency(per_hop)
