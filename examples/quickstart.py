#!/usr/bin/env python3
"""Quickstart: build a simulated OnionBotnet, command it, attack it, watch it heal.

This is the five-minute tour of the public API:

1. build a small OnionBot deployment on top of the in-memory Tor model;
2. broadcast a (benign, simulated) command and check coverage;
3. take down a quarter of the bots, as a defender would, and watch the DDSR
   overlay self-repair;
4. advance to the next rotation period -- every bot moves to a fresh
   ``.onion`` address the botmaster can still compute;
5. print the resulting statistics.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import OnionBotConfig, OnionBotnet  # noqa: E402


def main() -> None:
    print("Building a 40-bot OnionBotnet over the simulated Tor network...")
    net = OnionBotnet(seed=7, config=OnionBotConfig(degree=8, d_min=4, d_max=12))
    net.build(40)
    stats = net.stats()
    print(f"  bots: {stats.active_bots}, overlay edges: {stats.overlay_edges}, "
          f"diameter: {stats.overlay_diameter:.0f}")

    print("\nBroadcasting a simulated 'report-status' command...")
    report = net.broadcast_command("report-status")
    print(f"  reached {report.reached}/{report.total_active} bots "
          f"({report.coverage:.0%}) in {report.rounds} flooding rounds, "
          f"{report.envelopes_sent} fixed-size envelopes sent")

    print("\nDefender takes down 10 bots (gradual cleanup)...")
    victims = net.active_labels()[:10]
    net.take_down(victims)
    stats = net.stats()
    print(f"  survivors: {stats.active_bots}, connected components: "
          f"{stats.connected_components}, max degree after pruning: {stats.max_degree}")

    print("\nAdvancing to the next rotation period (every bot gets a new .onion)...")
    rotated = net.advance_to_next_period()
    example_label, example_onion = next(iter(rotated.items()))
    print(f"  {len(rotated)} bots rotated; e.g. {example_label} now listens at {example_onion}")

    print("\nBroadcasting again after takedown + rotation...")
    report = net.broadcast_command("simulated-task")
    print(f"  reached {report.reached}/{report.total_active} bots ({report.coverage:.0%})")

    print("\nFinal statistics:")
    for key, value in net.stats().as_dict().items():
        print(f"  {key:24s} {value}")


if __name__ == "__main__":
    main()
