"""Tests for the passive traffic-analysis observer."""

import pytest

from repro.adversary.traffic_analysis import (
    PassiveObserver,
    distinguishable,
    extract_features,
    message_classes_leak,
)
from repro.baselines.legacy_botnets import sample_message
from repro.core.messaging import CommandMessage, MessageKind, build_envelope
from repro.crypto.keys import KeyPair

BOTMASTER = KeyPair.from_seed(b"traffic-botmaster")
KEY = b"traffic-analysis-network-key-32b"


def onionbot_flow(kind: MessageKind = MessageKind.COMMAND_BROADCAST, count: int = 8):
    flow = []
    for serial in range(count):
        message = CommandMessage(
            kind=kind,
            command="report-status",
            arguments={"sequence": str(serial)},
            targets=["abcdefghijklmnop.onion"] if kind is MessageKind.COMMAND_DIRECTED else [],
            issued_at=float(serial),
            nonce=f"ta-{kind.value}-{serial}",
        ).signed_by(BOTMASTER)
        flow.append(build_envelope(message.to_bytes(), KEY, bytes([serial]) * 32).blob)
    return flow


def legacy_flow(family: str, count: int = 8):
    # Serials of different magnitudes so the plaintext (and thus the framed
    # message) length varies, as real command streams do.
    serials = (5, 42, 137, 1024, 99999, 7, 314159, 28, 3, 65536)
    return [sample_message(family, serial) for serial in serials[:count]]


class TestFeatureExtraction:
    def test_features_of_onionbot_flow(self):
        features = extract_features(onionbot_flow())
        assert features.constant_size
        assert features.looks_encrypted
        assert features.length_stdev == 0.0

    def test_features_of_plaintext_flow(self):
        features = extract_features(legacy_flow("Miner"))
        assert not features.looks_encrypted
        assert features.mean_entropy < 6.0

    def test_empty_flow_rejected(self):
        with pytest.raises(ValueError):
            extract_features([])


class TestPassiveObserver:
    def test_classifies_plaintext_cnc(self):
        observer = PassiveObserver()
        observer.observe_many(legacy_flow("Miner"))
        assert observer.classify() == "plaintext-like"

    def test_classifies_obfuscated_but_size_leaking_cnc(self):
        observer = PassiveObserver()
        observer.observe_many(legacy_flow("ZeroAccess v1"))
        assert observer.classify() == "obfuscated-variable-size"

    def test_classifies_onionbot_flow_as_uniform(self):
        observer = PassiveObserver()
        observer.observe_many(onionbot_flow())
        assert observer.classify() == "uniform-fixed-size"

    def test_observe_single_blob(self):
        observer = PassiveObserver()
        observer.observe(onionbot_flow(count=1)[0])
        assert observer.report().samples == 1


class TestDistinguishability:
    def test_legacy_families_distinguishable_from_onionbot(self):
        onion = onionbot_flow()
        for family in ("Miner", "Storm", "ZeroAccess v1", "Zeus"):
            assert distinguishable(legacy_flow(family), onion)

    def test_onionbot_message_classes_do_not_leak(self):
        """Broadcast, directed and maintenance envelopes are mutually indistinguishable."""
        flows = [
            onionbot_flow(MessageKind.COMMAND_BROADCAST),
            onionbot_flow(MessageKind.COMMAND_DIRECTED),
            onionbot_flow(MessageKind.MAINTENANCE),
        ]
        assert not message_classes_leak(flows)

    def test_legacy_message_classes_leak(self):
        flows = [legacy_flow("Miner"), legacy_flow("ZeroAccess v1")]
        assert message_classes_leak(flows)

    def test_same_family_not_distinguishable_from_itself(self):
        assert not distinguishable(onionbot_flow(count=5), onionbot_flow(count=7))
