"""Tests for the crawling / mapping adversary."""

from repro.adversary.mapping import OverlayCrawler, SizeEstimator
from repro.core.ddsr import DDSROverlay


def overlay(n: int = 200, k: int = 8, seed: int = 0) -> DDSROverlay:
    return DDSROverlay.k_regular(n, k, seed=seed)


class TestOverlayCrawler:
    def test_single_capture_with_one_round_sees_local_neighborhood_only(self):
        target = overlay()
        crawler = OverlayCrawler(use_non_knowledge=False, max_rounds=1)
        result = crawler.crawl(target, [target.nodes()[0]])
        # One round from one bot: itself plus its k peers.
        assert len(result.discovered) <= 1 + 8
        assert result.coverage < 0.1

    def test_non_knowledge_expands_reach(self):
        target = overlay()
        start = [target.nodes()[0]]
        without = OverlayCrawler(use_non_knowledge=False, max_rounds=1).crawl(target, start)
        with_non = OverlayCrawler(use_non_knowledge=True, max_rounds=1).crawl(target, start)
        assert len(with_non.discovered) > len(without.discovered)

    def test_more_rounds_discover_more(self):
        target = overlay()
        start = [target.nodes()[0]]
        shallow = OverlayCrawler(max_rounds=1).crawl(target, start)
        deep = OverlayCrawler(max_rounds=4).crawl(target, start)
        assert len(deep.discovered) >= len(shallow.discovered)

    def test_unknown_start_nodes_are_ignored(self):
        target = overlay()
        result = OverlayCrawler().crawl(target, ["ghost"])
        assert result.discovered == set()
        assert result.coverage == 0.0

    def test_rotation_invalidates_harvested_addresses(self):
        """After one rotation only the captured bots remain actionable."""
        target = overlay()
        crawler = OverlayCrawler(max_rounds=3)
        start = target.nodes()[:2]
        result = crawler.crawl_then_rotate(target, start)
        assert result.stale_after_rotation == len(result.discovered) - 2
        assert result.usable_after_rotation == 2

    def test_empty_overlay_coverage(self):
        empty = DDSROverlay()
        result = OverlayCrawler().crawl(empty, [])
        assert result.coverage == 0.0


class TestSizeEstimator:
    def test_no_captures_estimates_zero(self):
        assert SizeEstimator().estimate() == 0.0

    def test_single_capture_lower_bounds_by_peer_count(self):
        estimator = SizeEstimator()
        estimator.record_capture({1, 2, 3, 4, 5})
        assert estimator.estimate() == 5.0

    def test_capture_recapture_estimate(self):
        estimator = SizeEstimator()
        estimator.record_capture(set(range(10)))
        estimator.record_capture(set(range(5, 15)))
        # Lincoln-Petersen: 10 * 10 / 5 overlap = 20.
        assert estimator.estimate() == 20.0

    def test_disjoint_captures_lower_bound(self):
        estimator = SizeEstimator()
        estimator.record_capture({1, 2})
        estimator.record_capture({3, 4})
        assert estimator.estimate() == 4.0

    def test_estimate_error_is_large_for_onionbots(self):
        """Peer-list-based estimation wildly underestimates a 10-regular overlay."""
        target = overlay(n=500, k=10)
        estimator = SizeEstimator()
        estimator.record_capture(target.peers(target.nodes()[0]))
        estimator.record_capture(target.peers(target.nodes()[1]))
        assert estimator.error_against(500) > 0.5

    def test_error_against_zero_population(self):
        assert SizeEstimator().error_against(0) == 0.0
