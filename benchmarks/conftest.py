"""Benchmark-suite configuration.

Adds ``src`` to ``sys.path`` (so the suite runs without an installed package)
and provides a helper for printing the regenerated table/figure data beneath
the pytest-benchmark timing output.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def emit(title: str, body: str) -> None:
    """Print a clearly delimited block of regenerated experiment output."""
    print()
    print(f"=== {title} ===")
    print(body)
    print(f"=== end {title} ===")
