"""Tests for metric collection."""

import pytest

from repro.sim.metrics import CounterSet, MetricRecorder, TimeSeries, summarize


class TestTimeSeries:
    def test_record_and_read_back(self):
        series = TimeSeries("closeness")
        series.record(0, 0.5)
        series.record(100, 0.4)
        assert series.xs() == [0.0, 100.0]
        assert series.values() == [0.5, 0.4]
        assert len(series) == 2

    def test_last_and_empty(self):
        series = TimeSeries("x")
        assert series.last() is None
        series.record(1, 2)
        assert series.last() == (1.0, 2.0)

    def test_mean_min_max(self):
        series = TimeSeries("x")
        for value in (1.0, 2.0, 3.0):
            series.record(value, value)
        assert series.mean() == pytest.approx(2.0)
        assert series.min() == 1.0
        assert series.max() == 3.0

    def test_min_on_empty_raises(self):
        with pytest.raises(ValueError):
            TimeSeries("x").min()

    def test_mean_on_empty_is_zero(self):
        assert TimeSeries("x").mean() == 0.0


class TestCounterSet:
    def test_increment_and_get(self):
        counters = CounterSet()
        assert counters.get("repairs") == 0
        counters.increment("repairs")
        counters.increment("repairs", 4)
        assert counters.get("repairs") == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            CounterSet().increment("x", -1)

    def test_contains_and_as_dict(self):
        counters = CounterSet()
        counters.increment("a", 2)
        assert "a" in counters
        assert "b" not in counters
        assert counters.as_dict() == {"a": 2}


class TestMetricRecorder:
    def test_series_created_on_demand(self):
        recorder = MetricRecorder()
        recorder.record("closeness", 0, 1.0)
        assert recorder.has_series("closeness")
        assert recorder.series("closeness").values() == [1.0]

    def test_series_names_sorted(self):
        recorder = MetricRecorder()
        recorder.record("b", 0, 1)
        recorder.record("a", 0, 1)
        assert recorder.series_names() == ["a", "b"]

    def test_as_dict_snapshot(self):
        recorder = MetricRecorder()
        recorder.record("x", 1, 2)
        assert recorder.as_dict() == {"x": [(1.0, 2.0)]}

    def test_merge_with_prefix(self):
        first = MetricRecorder()
        first.record("x", 0, 1)
        first.counters.increment("c", 3)
        second = MetricRecorder()
        second.merge(first, prefix="run1.")
        assert second.series("run1.x").values() == [1.0]
        assert second.counters.get("run1.c") == 3


class TestSummarize:
    def test_summary_statistics(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats["count"] == 3
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0

    def test_summary_of_empty(self):
        stats = summarize([])
        assert stats["count"] == 0
        assert stats["mean"] == 0.0
