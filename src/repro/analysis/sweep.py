"""A minimal parameter-sweep helper used by ablation benchmarks."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence


@dataclass
class SweepResult:
    """All outcomes of a parameter sweep."""

    parameter_names: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def filter(self, **conditions: Any) -> List[Dict[str, Any]]:
        """Rows whose parameters match every given condition."""
        matched = []
        for row in self.rows:
            if all(row.get(key) == value for key, value in conditions.items()):
                matched.append(row)
        return matched

    def column(self, name: str) -> List[Any]:
        """Every value of one result/parameter column, in sweep order."""
        return [row.get(name) for row in self.rows]


def parameter_sweep(
    runner: Callable[..., Mapping[str, Any]],
    grid: Mapping[str, Sequence[Any]],
) -> SweepResult:
    """Run ``runner(**point)`` over the Cartesian product of ``grid``.

    The runner must return a mapping of result columns; the sweep merges those
    with the parameter values into one row per grid point.
    """
    names = list(grid)
    result = SweepResult(parameter_names=names)
    for values in itertools.product(*(grid[name] for name in names)):
        point = dict(zip(names, values))
        outcome = runner(**point)
        row = dict(point)
        row.update(outcome)
        result.rows.append(row)
    return result
