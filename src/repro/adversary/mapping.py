"""Crawling / mapping adversary.

Section V-A argues that mapping an OnionBotnet is impractical: a captured bot
only reveals the *current* onion addresses of its handful of peers, addresses
rotate every period, and nothing links an address to an IP.  The
:class:`OverlayCrawler` quantifies that claim: starting from one (or more)
captured bots, it repeatedly expands its knowledge through peer lists and NoN
knowledge, and reports how much of the botnet it could enumerate before the
next rotation invalidates its map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Set

from repro.core.ddsr import DDSROverlay

NodeId = Hashable


@dataclass
class CrawlResult:
    """Outcome of one crawling campaign."""

    start_nodes: List[NodeId]
    discovered: Set[NodeId]
    crawl_rounds: int
    total_population: int
    #: Nodes whose addresses the crawler held that became stale after rotation.
    stale_after_rotation: int = 0

    @property
    def coverage(self) -> float:
        """Fraction of the botnet the crawler enumerated."""
        if self.total_population == 0:
            return 0.0
        return len(self.discovered) / self.total_population

    @property
    def usable_after_rotation(self) -> int:
        """Addresses still valid once the botnet rotates (always the crawler's
        own peers at best -- everyone else's new address is unknown)."""
        return max(0, len(self.discovered) - self.stale_after_rotation)


@dataclass
class OverlayCrawler:
    """Expands knowledge of the overlay from a set of captured bots.

    ``use_non_knowledge`` controls whether the crawler also exploits the
    neighbours-of-neighbours information a captured bot holds (it does, per
    the DDSR design); ``max_rounds`` caps the breadth-first expansion, which in
    practice is limited by how many bots the defender can actually compromise
    per rotation period.
    """

    use_non_knowledge: bool = True
    max_rounds: int = 3

    def crawl(self, overlay: DDSROverlay, start_nodes: List[NodeId]) -> CrawlResult:
        """Run the crawl and report coverage.

        Each round, the crawler "visits" every newly discovered node it can
        compromise and learns that node's peers (and NoN if enabled).  A real
        defender cannot compromise arbitrary bots at will, so coverage here is
        an *upper bound* on what mapping can achieve.
        """
        known: Set[NodeId] = set()
        frontier: Set[NodeId] = {node for node in start_nodes if node in overlay.graph}
        known.update(frontier)
        rounds = 0
        for _ in range(self.max_rounds):
            if not frontier:
                break
            rounds += 1
            next_frontier: Set[NodeId] = set()
            for node in frontier:
                if node not in overlay.graph:
                    continue
                peers = overlay.peers(node)
                next_frontier.update(peer for peer in peers if peer not in known)
                known.update(peers)
                if self.use_non_knowledge:
                    non = overlay.neighbors_of_neighbors(node)
                    next_frontier.update(peer for peer in non if peer not in known)
                    known.update(non)
            frontier = next_frontier
        return CrawlResult(
            start_nodes=list(start_nodes),
            discovered=known,
            crawl_rounds=rounds,
            total_population=len(overlay),
        )

    def crawl_then_rotate(self, overlay: DDSROverlay, start_nodes: List[NodeId]) -> CrawlResult:
        """Crawl, then account for a rotation invalidating harvested addresses.

        After a rotation the only addresses the defender still controls are the
        captured bots themselves (they will learn their peers' *new* addresses
        as peers announce them); everything harvested second-hand goes stale.
        """
        result = self.crawl(overlay, start_nodes)
        captured = {node for node in start_nodes if node in overlay.graph}
        stale = len(result.discovered - captured)
        return CrawlResult(
            start_nodes=result.start_nodes,
            discovered=result.discovered,
            crawl_rounds=result.crawl_rounds,
            total_population=result.total_population,
            stale_after_rotation=stale,
        )


@dataclass
class SizeEstimator:
    """Estimate of the botnet size available to a defender.

    Because bots relay indistinguishable fixed-size messages and no central
    rendezvous exists, a defender can only extrapolate from the peers of the
    bots it captured.  The estimator implements a capture-recapture style
    guess and records its error against the true population.
    """

    captures: List[Set[NodeId]] = field(default_factory=list)

    def record_capture(self, peers: Set[NodeId]) -> None:
        """Record the peer set revealed by one captured bot."""
        self.captures.append(set(peers))

    def estimate(self) -> float:
        """Lincoln--Petersen estimate from the first two captures (or a sum)."""
        if not self.captures:
            return 0.0
        if len(self.captures) == 1:
            return float(len(self.captures[0]))
        first, second = self.captures[0], self.captures[1]
        overlap = len(first & second)
        if overlap == 0:
            # No overlap: the defender can only lower-bound the size.
            return float(len(first | second))
        return len(first) * len(second) / overlap

    def error_against(self, true_size: int) -> float:
        """Relative error of the estimate versus the true population size."""
        if true_size <= 0:
            return 0.0
        return abs(self.estimate() - true_size) / true_size
