"""Tests for hidden-service descriptors."""

import pytest

from repro.crypto.keys import KeyPair
from repro.tor.descriptor import DESCRIPTOR_LIFETIME, HiddenServiceDescriptor
from repro.tor.onion_address import onion_address_from_public_key


def make_descriptor(seed: bytes = b"svc", published_at: float = 0.0) -> HiddenServiceDescriptor:
    keypair = KeyPair.from_seed(seed)
    descriptor = HiddenServiceDescriptor(
        service_key=keypair.public,
        introduction_points=[b"ip-1" * 5, b"ip-2" * 5, b"ip-3" * 5],
        published_at=published_at,
    )
    return descriptor.signed_by(keypair)


class TestDescriptorIdentity:
    def test_identifier_and_onion_address_derive_from_key(self):
        keypair = KeyPair.from_seed(b"svc")
        descriptor = make_descriptor(b"svc")
        assert descriptor.onion_address == onion_address_from_public_key(keypair)
        assert descriptor.identifier == descriptor.onion_address.identifier()

    def test_freshness_window(self):
        descriptor = make_descriptor(published_at=0.0)
        assert descriptor.is_fresh(now=DESCRIPTOR_LIFETIME - 1)
        assert not descriptor.is_fresh(now=DESCRIPTOR_LIFETIME + 1)

    def test_custom_lifetime(self):
        descriptor = make_descriptor(published_at=0.0)
        assert not descriptor.is_fresh(now=100.0, lifetime=50.0)


class TestDescriptorSigning:
    def test_signed_descriptor_verifies(self):
        assert make_descriptor().verify_signature()

    def test_unsigned_descriptor_fails(self):
        keypair = KeyPair.from_seed(b"svc")
        descriptor = HiddenServiceDescriptor(
            service_key=keypair.public,
            introduction_points=[b"ip"],
            published_at=0.0,
        )
        assert not descriptor.verify_signature()

    def test_signing_with_foreign_key_rejected(self):
        keypair = KeyPair.from_seed(b"svc")
        other = KeyPair.from_seed(b"other")
        descriptor = HiddenServiceDescriptor(
            service_key=keypair.public,
            introduction_points=[b"ip"],
            published_at=0.0,
        )
        with pytest.raises(ValueError):
            descriptor.signed_by(other)

    def test_tampered_intro_points_fail_verification(self):
        descriptor = make_descriptor()
        descriptor.introduction_points.append(b"evil-intro-point")
        assert not descriptor.verify_signature()

    def test_signing_payload_is_order_insensitive_for_intro_points(self):
        keypair = KeyPair.from_seed(b"svc")
        a = HiddenServiceDescriptor(
            service_key=keypair.public,
            introduction_points=[b"ip-1", b"ip-2"],
            published_at=0.0,
        )
        b = HiddenServiceDescriptor(
            service_key=keypair.public,
            introduction_points=[b"ip-2", b"ip-1"],
            published_at=0.0,
        )
        assert a.signing_payload() == b.signing_payload()
