"""Tests for the integrated OnionBotnet orchestrator."""

import pytest

from repro.core.botnet import OnionBotnet
from repro.core.errors import BotnetError
from repro.tor.hidden_service import ServiceUnreachable


class TestBuild:
    def test_build_creates_bots_services_and_overlay(self, small_botnet):
        stats = small_botnet.stats()
        assert stats.active_bots == 16
        assert stats.connected_components == 1
        assert stats.overlay_edges > 0
        assert len(small_botnet.tor.hosted_addresses()) == 16

    def test_every_bot_is_enrolled_with_the_cc(self, small_botnet):
        assert len(small_botnet.botmaster.enrolled_labels()) == 16

    def test_build_twice_rejected(self, small_botnet):
        with pytest.raises(BotnetError):
            small_botnet.build(4)

    def test_too_few_bots_rejected(self):
        with pytest.raises(BotnetError):
            OnionBotnet(seed=1).build(1)

    def test_onion_of_unknown_bot_rejected(self, small_botnet):
        with pytest.raises(BotnetError):
            small_botnet.onion_of("ghost")

    def test_bots_only_know_peer_onions_not_labels(self, small_botnet):
        """Stealth property: a bot's view contains onion addresses only."""
        label = small_botnet.active_labels()[0]
        view = small_botnet.capture_view(label)
        assert all(address.endswith(".onion") for address in view)
        assert not any(address.startswith("bot-") for address in view)


class TestCommandPropagation:
    def test_broadcast_reaches_every_active_bot(self, small_botnet):
        report = small_botnet.broadcast_command("report-status")
        assert report.coverage == 1.0
        assert report.executed == 16
        assert report.envelopes_sent >= 16

    def test_directed_command_only_executes_on_targets(self, small_botnet):
        targets = small_botnet.active_labels()[:2]
        report = small_botnet.directed_command("simulated-task", targets)
        assert report.reached == 16  # everyone relays the envelope...
        assert report.executed == 2  # ...but only the targets execute it

    def test_replayed_broadcast_not_executed_twice(self, small_botnet):
        first = small_botnet.broadcast_command("noop")
        assert first.executed == 16
        # A second, distinct command executes; the same nonce never re-executes
        # (replay protection is per-command nonce, exercised in node tests).
        second = small_botnet.broadcast_command("noop")
        assert second.executed == 16
        assert first.nonce != second.nonce


class TestTakedownAndSelfHealing:
    def test_gradual_takedown_keeps_overlay_connected(self, small_botnet):
        victims = small_botnet.active_labels()[:5]
        removed = small_botnet.take_down(victims)
        stats = small_botnet.stats()
        assert removed == 5
        assert stats.active_bots == 11
        assert stats.connected_components == 1
        assert stats.max_degree <= small_botnet.config.d_max

    def test_taken_down_bot_unreachable_over_tor(self, small_botnet):
        victim = small_botnet.active_labels()[0]
        victim_onion = small_botnet.onion_of(victim)
        small_botnet.take_down([victim])
        with pytest.raises(ServiceUnreachable):
            small_botnet.tor.connect("prober", victim_onion)

    def test_commands_still_propagate_after_takedown(self, small_botnet):
        small_botnet.take_down(small_botnet.active_labels()[:4])
        report = small_botnet.broadcast_command("report-status")
        assert report.coverage == 1.0

    def test_take_down_unknown_or_dead_bots_is_safe(self, small_botnet):
        victim = small_botnet.active_labels()[0]
        small_botnet.take_down([victim])
        assert small_botnet.take_down([victim, "ghost"]) == 0

    def test_simultaneous_takedown_without_repair(self, small_botnet):
        victims = small_botnet.active_labels()[:6]
        removed = small_botnet.take_down(victims, repair=False)
        assert removed == 6
        # Survivors healed in one batch afterwards; overlay should still work.
        report = small_botnet.broadcast_command("noop")
        assert report.total_active == 10


class TestAddressRotation:
    def test_rotation_changes_every_address(self, small_botnet):
        before = {label: small_botnet.onion_of(label) for label in small_botnet.active_labels()}
        rotated = small_botnet.advance_to_next_period()
        assert set(rotated) == set(before)
        assert all(rotated[label] != before[label] for label in rotated)

    def test_botmaster_can_still_reach_bots_after_rotation(self, small_botnet):
        small_botnet.advance_to_next_period()
        now = small_botnet.simulator.now
        for label in small_botnet.active_labels()[:4]:
            expected = small_botnet.botmaster.address_of(label, now)
            assert str(expected) == small_botnet.onion_of(label)

    def test_old_addresses_are_dead_after_rotation(self, small_botnet):
        label = small_botnet.active_labels()[0]
        old_onion = small_botnet.onion_of(label)
        small_botnet.advance_to_next_period()
        with pytest.raises(ServiceUnreachable):
            small_botnet.tor.connect("prober", old_onion)

    def test_commands_propagate_after_rotation(self, small_botnet):
        small_botnet.advance_to_next_period()
        report = small_botnet.broadcast_command("report-status")
        assert report.coverage == 1.0
