"""Tests for the botnet-for-rent token scheme."""

import pytest

from repro.core.errors import RentalError
from repro.core.messaging import CommandMessage, MessageKind
from repro.core.rental import (
    issue_token,
    require_rented_command,
    sign_rented_command,
    verify_rented_command,
)
from repro.crypto.keys import KeyPair

BOTMASTER = KeyPair.from_seed(b"rental-botmaster")
RENTER = KeyPair.from_seed(b"rental-renter")


def make_token(whitelist=("simulated-task",), expires_at=1000.0):
    return issue_token(
        BOTMASTER,
        RENTER.public,
        issued_at=0.0,
        expires_at=expires_at,
        whitelisted_commands=list(whitelist),
    )


def renter_command(command="simulated-task", expires_at=None):
    message = CommandMessage(
        kind=MessageKind.COMMAND_BROADCAST,
        command=command,
        issued_at=1.0,
        expires_at=expires_at,
        nonce="rental-1",
    )
    return sign_rented_command(RENTER, message)


class TestTokenIssuance:
    def test_token_verifies_against_botmaster(self):
        assert make_token().verify(BOTMASTER.public)

    def test_token_from_wrong_issuer_fails(self):
        impostor = KeyPair.from_seed(b"impostor")
        token = issue_token(
            impostor, RENTER.public, issued_at=0.0, expires_at=10.0, whitelisted_commands=["x"]
        )
        assert not token.verify(BOTMASTER.public)

    def test_token_expiry(self):
        token = make_token(expires_at=100.0)
        assert not token.is_expired(50.0)
        assert token.is_expired(101.0)

    def test_token_whitelist(self):
        token = make_token(whitelist=("a", "b"))
        assert token.permits("a")
        assert not token.permits("c")

    def test_empty_whitelist_rejected(self):
        with pytest.raises(RentalError):
            issue_token(BOTMASTER, RENTER.public, issued_at=0.0, expires_at=10.0, whitelisted_commands=[])

    def test_expiry_before_issuance_rejected(self):
        with pytest.raises(RentalError):
            issue_token(BOTMASTER, RENTER.public, issued_at=10.0, expires_at=5.0, whitelisted_commands=["x"])


class TestRentedCommandVerification:
    def test_valid_rented_command_accepted(self):
        assert verify_rented_command(BOTMASTER.public, renter_command(), make_token(), now=10.0)

    def test_command_not_on_whitelist_rejected(self):
        command = renter_command(command="forbidden-task")
        assert not verify_rented_command(BOTMASTER.public, command, make_token(), now=10.0)
        with pytest.raises(RentalError, match="not whitelisted"):
            require_rented_command(BOTMASTER.public, command, make_token(), now=10.0)

    def test_expired_token_rejected(self):
        token = make_token(expires_at=5.0)
        with pytest.raises(RentalError, match="expired"):
            require_rented_command(BOTMASTER.public, renter_command(), token, now=10.0)

    def test_expired_command_rejected(self):
        command = renter_command(expires_at=2.0)
        with pytest.raises(RentalError, match="command itself has expired"):
            require_rented_command(BOTMASTER.public, command, make_token(), now=10.0)

    def test_command_signed_by_wrong_renter_rejected(self):
        other = KeyPair.from_seed(b"other-renter")
        message = CommandMessage(
            kind=MessageKind.COMMAND_BROADCAST, command="simulated-task", issued_at=1.0, nonce="x"
        ).signed_by(other)
        with pytest.raises(RentalError, match="not signed by the renter"):
            require_rented_command(BOTMASTER.public, message, make_token(), now=10.0)

    def test_forged_token_rejected(self):
        impostor = KeyPair.from_seed(b"impostor")
        forged = issue_token(
            impostor, RENTER.public, issued_at=0.0, expires_at=100.0, whitelisted_commands=["simulated-task"]
        )
        with pytest.raises(RentalError, match="not signed by the botmaster"):
            require_rented_command(BOTMASTER.public, renter_command(), forged, now=10.0)

    def test_bot_accepts_rented_command_through_node_api(self):
        from repro.core.config import OnionBotConfig
        from repro.core.node import OnionBotNode
        from repro.crypto.kdf import kdf

        bot = OnionBotNode(
            label="rented-bot",
            botmaster_public=BOTMASTER.public,
            network_key=b"net-key",
            bot_key=kdf("onionbot.bot-key", b"rented-bot"),
            config=OnionBotConfig(),
        )
        bot.infect(0.0)
        bot.rally(set(), 1.0)
        accepted = bot.process_command(renter_command(), 10.0, rental_token=make_token())
        assert accepted is True
        rejected = bot.process_command(
            renter_command(command="forbidden-task"), 11.0, rental_token=make_token()
        )
        assert rejected is False
