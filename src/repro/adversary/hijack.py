"""Command-injection (hijack) attempts.

Legacy botnets with weak or absent message authentication (Table I) have been
hijacked by defenders injecting their own commands.  OnionBot commands are
signed by the hard-coded botmaster key (or by a renter covered by a valid
token), so injection attempts fail.  :class:`HijackAttempt` runs those
attempts against a live simulation and records the outcome -- the counts feed
the Table I comparison benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.botnet import OnionBotnet
from repro.core.messaging import CommandMessage, MessageKind
from repro.crypto.keys import KeyPair


@dataclass
class HijackOutcome:
    """Result of one batch of injection attempts."""

    attempted: int
    accepted: int
    rejected: int
    technique: str

    @property
    def success_rate(self) -> float:
        """Fraction of injected commands any bot accepted."""
        if self.attempted == 0:
            return 0.0
        return self.accepted / self.attempted


@dataclass
class HijackAttempt:
    """A defender (or rival operator) trying to seize control of the botnet."""

    attacker_keypair: KeyPair = field(
        default_factory=lambda: KeyPair.from_seed(b"hijacker-keypair")
    )
    outcomes: List[HijackOutcome] = field(default_factory=list)

    def inject_unsigned(self, botnet: OnionBotnet, command: str = "hijack-unsigned") -> HijackOutcome:
        """Inject a completely unsigned broadcast command."""
        message = CommandMessage(
            kind=MessageKind.COMMAND_BROADCAST,
            command=command,
            issued_at=botnet.simulator.now,
            nonce="hijack-unsigned-nonce",
        )
        return self._deliver(botnet, message, technique="unsigned")

    def inject_self_signed(self, botnet: OnionBotnet, command: str = "hijack-signed") -> HijackOutcome:
        """Inject a command signed by the attacker's own key (not the botmaster's)."""
        message = CommandMessage(
            kind=MessageKind.COMMAND_BROADCAST,
            command=command,
            issued_at=botnet.simulator.now,
            nonce="hijack-selfsigned-nonce",
        ).signed_by(self.attacker_keypair)
        return self._deliver(botnet, message, technique="self-signed")

    def replay(self, botnet: OnionBotnet, original: CommandMessage) -> HijackOutcome:
        """Replay a previously observed, legitimately signed command."""
        return self._deliver(botnet, original, technique="replay")

    def _deliver(
        self,
        botnet: OnionBotnet,
        message: CommandMessage,
        *,
        technique: str,
        limit: Optional[int] = None,
    ) -> HijackOutcome:
        """Hand the forged command directly to every active bot and count accepts."""
        now = botnet.simulator.now
        labels = botnet.active_labels()
        if limit is not None:
            labels = labels[:limit]
        accepted = 0
        for label in labels:
            bot = botnet.bots[label]
            if bot.process_command(message, now):
                accepted += 1
        outcome = HijackOutcome(
            attempted=len(labels),
            accepted=accepted,
            rejected=len(labels) - accepted,
            technique=technique,
        )
        self.outcomes.append(outcome)
        return outcome
