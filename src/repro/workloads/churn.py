"""Background churn: bots joining and leaving over time.

The paper's experiments only delete nodes, but a realistic deployment also
gains bots (new infections) and loses them benignly (hosts powered off,
cleaned up by their owners).  The churn model produces a reproducible event
stream the failure-injection tests and the ablation benchmarks replay against
overlays.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterator, List


class ChurnKind(enum.Enum):
    """Type of churn event."""

    JOIN = "join"
    LEAVE = "leave"


@dataclass(frozen=True)
class ChurnEvent:
    """One join or leave at a simulated time."""

    time: float
    kind: ChurnKind
    label: str


@dataclass
class ChurnModel:
    """Poisson-ish join/leave process generated ahead of time.

    ``join_rate`` and ``leave_rate`` are events per simulated hour.  Events are
    pre-generated so that experiments remain reproducible regardless of how
    the consuming overlay reacts to them.
    """

    join_rate: float = 2.0
    leave_rate: float = 2.0
    seed: int = 0

    def generate(self, duration_hours: float, start_label_index: int = 0) -> List[ChurnEvent]:
        """Generate all churn events over ``duration_hours``."""
        if duration_hours < 0:
            raise ValueError(f"duration must be non-negative, got {duration_hours}")
        rng = random.Random(self.seed)
        events: List[ChurnEvent] = []
        label_index = start_label_index

        def exponential_times(rate: float) -> Iterator[float]:
            time = 0.0
            while rate > 0:
                time += rng.expovariate(rate)
                if time > duration_hours:
                    return
                yield time

        for join_time in exponential_times(self.join_rate):
            events.append(
                ChurnEvent(time=join_time * 3600.0, kind=ChurnKind.JOIN, label=f"churn-join-{label_index:05d}")
            )
            label_index += 1
        for leave_time in exponential_times(self.leave_rate):
            events.append(
                ChurnEvent(time=leave_time * 3600.0, kind=ChurnKind.LEAVE, label="")
            )
        events.sort(key=lambda event: event.time)
        return events

    def expected_events(self, duration_hours: float) -> float:
        """Expected total number of churn events over the duration."""
        return (self.join_rate + self.leave_rate) * duration_hours
