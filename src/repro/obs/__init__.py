"""``repro.obs`` -- zero-overhead-when-off telemetry for the whole stack.

The observability layer has three parts:

* :mod:`repro.obs.telemetry` -- an in-process, thread-safe collector of
  named **counters**, key-value **gauges** and wall-clock **spans**.  Off by
  default: the module-level singleton is a no-op collector whose methods
  allocate nothing, so instrumented hot paths (the wave engine, the CSR
  delta log, the runner) pay only an attribute check when telemetry is
  disabled.
* :mod:`repro.obs.report` -- renders a collected run into a stable JSON
  document (the per-run provenance artifact) plus a human-readable text
  summary.
* :mod:`repro.obs.schema` -- validates a report against the checked-in
  JSON schema (``report_schema.json``), so the artifact format cannot
  drift silently.

Telemetry is **observational only**: it never touches rng streams, unit
seeds, result values or cache keys -- campaigns with telemetry on are
bit-identical to telemetry off (locked by ``tests/obs``).
"""

from repro.obs.telemetry import (  # noqa: F401
    ENV_VAR,
    NULL,
    Collector,
    NullCollector,
    collecting,
    current,
    disable,
    enable,
    enabled,
    env_report_path,
)
from repro.obs.report import (  # noqa: F401
    SCHEMA_ID,
    dumps_report,
    format_report,
    load_report,
    render_report,
    write_report,
)
