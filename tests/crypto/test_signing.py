"""Tests for simulated signatures."""

import pytest

from repro.crypto.keys import KeyPair
from repro.crypto.signing import SignatureError, require_valid, sign, verify


class TestSignatures:
    def test_sign_and_verify_roundtrip(self):
        keypair = KeyPair.from_seed(b"signer")
        signature = sign(keypair, b"message")
        assert verify(keypair.public, b"message", signature)

    def test_tampered_message_fails(self):
        keypair = KeyPair.from_seed(b"signer")
        signature = sign(keypair, b"message")
        assert not verify(keypair.public, b"other message", signature)

    def test_wrong_public_key_fails(self):
        signer = KeyPair.from_seed(b"signer")
        other = KeyPair.from_seed(b"other")
        signature = sign(signer, b"message")
        assert not verify(other.public, b"message", signature)

    def test_signature_from_other_key_claiming_same_signer_fails(self):
        signer = KeyPair.from_seed(b"signer")
        impostor = KeyPair.from_seed(b"impostor")
        # The impostor signs, then swaps the signer field to claim it came
        # from the real signer; verification must reject it.
        forged = sign(impostor, b"attack command")
        from repro.crypto.signing import Signature

        claimed = Signature(tag=forged.tag, signer=signer.public)
        sign(signer, b"anything")  # ensure the real signer's binding exists
        assert not verify(signer.public, b"attack command", claimed)

    def test_signature_is_deterministic_per_message(self):
        keypair = KeyPair.from_seed(b"signer")
        assert sign(keypair, b"m").tag == sign(keypair, b"m").tag

    def test_signature_differs_per_message(self):
        keypair = KeyPair.from_seed(b"signer")
        assert sign(keypair, b"m1").tag != sign(keypair, b"m2").tag

    def test_sign_requires_bytes(self):
        keypair = KeyPair.from_seed(b"signer")
        with pytest.raises(TypeError):
            sign(keypair, "not bytes")  # type: ignore[arg-type]

    def test_verify_requires_signature_type(self):
        keypair = KeyPair.from_seed(b"signer")
        with pytest.raises(TypeError):
            verify(keypair.public, b"m", b"raw-bytes")  # type: ignore[arg-type]

    def test_require_valid_raises_on_failure(self):
        keypair = KeyPair.from_seed(b"signer")
        signature = sign(keypair, b"message")
        require_valid(keypair.public, b"message", signature)
        with pytest.raises(SignatureError):
            require_valid(keypair.public, b"tampered", signature)

    def test_signature_hex_rendering(self):
        keypair = KeyPair.from_seed(b"signer")
        signature = sign(keypair, b"message")
        assert len(signature.hex()) == 64
