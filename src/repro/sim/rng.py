"""Named, independently seeded random streams.

Experiments in the paper mix several stochastic processes: which nodes are
deleted, how a k-regular graph is wired, which peer a clone approaches, which
relays become HSDirs, and so on.  Deriving each of those from a *single*
``random.Random`` makes results fragile -- adding one extra draw in the Tor
model would silently change every takedown schedule.  ``RandomStreams`` hands
out one deterministic ``random.Random`` per named component, all derived from
the experiment master seed, so individual subsystems can evolve without
perturbing each other's randomness.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream ``name``.

    Uses SHA-256 over the pair so that stream seeds are stable across Python
    versions and independent of hash randomisation.
    """
    payload = f"{master_seed}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """Factory of named deterministic random number generators."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the RNG for stream ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.master_seed, name))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child ``RandomStreams`` with a derived master seed.

        Useful when a sub-experiment (e.g. one repetition of a sweep) should
        get an entire independent family of streams.
        """
        return RandomStreams(derive_seed(self.master_seed, f"spawn:{name}"))

    # ------------------------------------------------------------------
    # Convenience draws used across the codebase
    # ------------------------------------------------------------------
    def choice(self, name: str, population: Sequence[T]) -> T:
        """Uniformly choose one element of ``population`` from stream ``name``."""
        if not population:
            raise IndexError("cannot choose from an empty population")
        return self.stream(name).choice(list(population))

    def sample(self, name: str, population: Iterable[T], k: int) -> list[T]:
        """Sample ``k`` distinct elements from ``population``."""
        pool = list(population)
        if k > len(pool):
            raise ValueError(f"cannot sample {k} items from population of {len(pool)}")
        return self.stream(name).sample(pool, k)

    def shuffled(self, name: str, population: Iterable[T]) -> list[T]:
        """Return a new list with the population order shuffled."""
        pool = list(population)
        self.stream(name).shuffle(pool)
        return pool

    def uniform(self, name: str, low: float, high: float) -> float:
        """Uniform float in ``[low, high]`` from stream ``name``."""
        return self.stream(name).uniform(low, high)

    def randint(self, name: str, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` from stream ``name``."""
        return self.stream(name).randint(low, high)

    def random_bytes(self, name: str, length: int) -> bytes:
        """Deterministic pseudo-random bytes from stream ``name``."""
        rng = self.stream(name)
        return bytes(rng.getrandbits(8) for _ in range(length))
