"""Individual OnionBot nodes.

An :class:`OnionBotNode` is one simulated bot: it owns the per-bot key
``K_B``, knows the hard-coded botmaster public key and the shared network key,
tracks its life-cycle stage, maintains its peer list (onion addresses of its
current overlay neighbours) and processes inbound envelopes -- verifying
signatures, de-duplicating by nonce, honouring expiry, and recording the
benign stand-in "execution" of authorised commands.

Crucially, a bot object never holds any other bot's "real" identity: peers are
known exclusively by their current ``.onion`` address, mirroring the paper's
claim that "no bot (not even the C&C) knows the IP address of any of the other
bots".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.addressing import AddressPlan
from repro.core.config import OnionBotConfig
from repro.core.errors import LifecycleError, MessageError
from repro.core.lifecycle import BotStage, LifecycleMachine
from repro.core.messaging import (
    CommandMessage,
    Envelope,
    KeyReport,
    MessageKind,
    build_envelope,
    open_envelope,
)
from repro.core.rental import RentalToken, verify_rented_command
from repro.crypto.keys import KeyPair, PublicKey
from repro.tor.onion_address import OnionAddress


@dataclass
class ExecutionRecord:
    """One command the bot accepted and (notionally) executed."""

    command: str
    kind: MessageKind
    executed_at: float
    nonce: str


@dataclass
class OnionBotNode:
    """State and behaviour of a single simulated bot."""

    label: str
    botmaster_public: PublicKey
    network_key: bytes
    bot_key: bytes
    config: OnionBotConfig = field(default_factory=OnionBotConfig)
    lifecycle: LifecycleMachine = field(default_factory=LifecycleMachine)
    #: Current peer list: onion address strings of overlay neighbours.
    peer_addresses: Set[str] = field(default_factory=set)
    #: Group keys this bot holds (group name -> key bytes).
    group_keys: Dict[str, bytes] = field(default_factory=dict)
    executed: List[ExecutionRecord] = field(default_factory=list)
    seen_nonces: Set[str] = field(default_factory=set)
    relayed_envelopes: int = 0
    rejected_messages: int = 0
    rental_tokens: List[RentalToken] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Identity / address rotation
    # ------------------------------------------------------------------
    @property
    def address_plan(self) -> AddressPlan:
        """The rotation plan shared (implicitly) with the botmaster."""
        return AddressPlan(
            botmaster_public=self.botmaster_public,
            bot_key=self.bot_key,
            period_seconds=self.config.rotation_period,
        )

    def keypair_at(self, now: float) -> KeyPair:
        """The bot's hidden-service keypair at simulated time ``now``."""
        return self.address_plan.keypair_at(now)

    def onion_at(self, now: float) -> OnionAddress:
        """The bot's onion address at simulated time ``now``."""
        return self.address_plan.address_at(now)

    # ------------------------------------------------------------------
    # Life cycle
    # ------------------------------------------------------------------
    def infect(self, now: float) -> None:
        """Enter the infection stage (the bot now exists)."""
        self.lifecycle.infect(now)

    def rally(self, peer_addresses: Set[str], now: float) -> KeyReport:
        """Join the overlay with the given peers and produce the key report."""
        self.lifecycle.rally(now)
        self.peer_addresses = set(peer_addresses)
        report = KeyReport.create(
            bot_key=self.bot_key,
            onion_address=str(self.onion_at(now)),
            botmaster_public=self.botmaster_public,
            nonce=self.bot_key[:16],
            reported_at=now,
        )
        self.lifecycle.wait(now)
        return report

    def neutralize(self, now: float) -> None:
        """Remove the bot permanently (takedown, cleanup, SOAP containment)."""
        if not self.lifecycle.is_neutralized:
            self.lifecycle.neutralize(now)
        self.peer_addresses.clear()

    @property
    def is_active(self) -> bool:
        """Whether the bot still participates in the overlay."""
        return self.lifecycle.is_active

    # ------------------------------------------------------------------
    # Peer-list maintenance
    # ------------------------------------------------------------------
    def learn_peer(self, onion: str) -> None:
        """Add a peer's current address to the peer list."""
        self.peer_addresses.add(onion)

    def forget_peer(self, onion: str) -> None:
        """Drop (and forget) a peer address, as pruning/forgetting requires."""
        self.peer_addresses.discard(onion)

    def replace_peer_address(self, old: str, new: str) -> None:
        """Update the stored address when a peer announces a rotation."""
        if old in self.peer_addresses:
            self.peer_addresses.discard(old)
            self.peer_addresses.add(new)

    def peer_count(self) -> int:
        """Current degree of the bot in the overlay (as the bot sees it)."""
        return len(self.peer_addresses)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def key_for(self, kind: MessageKind, group: Optional[str] = None) -> bytes:
        """Which symmetric key this bot expects a message of ``kind`` under."""
        if kind in (MessageKind.COMMAND_BROADCAST, MessageKind.MAINTENANCE, MessageKind.HEARTBEAT):
            return self.network_key
        if kind is MessageKind.COMMAND_DIRECTED:
            return self.bot_key
        if kind is MessageKind.COMMAND_GROUP:
            if group is None or group not in self.group_keys:
                raise MessageError(f"bot {self.label} holds no key for group {group!r}")
            return self.group_keys[group]
        raise MessageError(f"bots do not receive messages of kind {kind}")

    def wrap_command(self, command: CommandMessage, randomness: bytes) -> Envelope:
        """Wrap a command for forwarding to a peer (same fixed-size envelope)."""
        key = self.key_for(command.kind, command.group)
        return build_envelope(command.to_bytes(), key, randomness)

    def try_open(self, envelope: Envelope, now: float) -> Optional[CommandMessage]:
        """Attempt to open an envelope with every key this bot holds.

        Relaying bots cannot tell whom a message is for, so each bot simply
        tries its keys; failure means "not for me, forward it".  Returns the
        parsed command when the envelope opened, else ``None``.
        """
        candidate_keys = [self.network_key, self.bot_key, *self.group_keys.values()]
        for key in candidate_keys:
            try:
                plaintext = open_envelope(envelope, key)
                return CommandMessage.from_bytes(plaintext)
            except MessageError:
                continue
        return None

    def process_command(
        self,
        command: CommandMessage,
        now: float,
        *,
        rental_token: Optional[RentalToken] = None,
    ) -> bool:
        """Validate and (notionally) execute a command.

        Returns ``True`` when the command was accepted and executed.  The
        validation order mirrors section IV-D/IV-E: replay check, expiry,
        addressing, then signature -- by the botmaster directly, or by a
        renter covered by a valid rental token.
        """
        if not self.is_active:
            return False
        if command.nonce and command.nonce in self.seen_nonces:
            return False
        if command.is_expired(now):
            self.rejected_messages += 1
            return False
        my_onion = str(self.onion_at(now))
        if not command.addressed_to(my_onion):
            return False
        authorised = command.verify_signature(self.botmaster_public)
        if not authorised and rental_token is not None:
            authorised = verify_rented_command(self.botmaster_public, command, rental_token, now)
        if not authorised:
            self.rejected_messages += 1
            return False
        if command.nonce:
            self.seen_nonces.add(command.nonce)
        try:
            self.lifecycle.execute(now)
            self.lifecycle.wait(now)
        except LifecycleError:
            # Maintenance messages can arrive while rallying; treat as accepted
            # without a full execution cycle.
            pass
        self.executed.append(
            ExecutionRecord(
                command=command.command,
                kind=command.kind,
                executed_at=now,
                nonce=command.nonce,
            )
        )
        return True

    def record_relay(self) -> None:
        """Account for one envelope relayed on behalf of other bots."""
        self.relayed_envelopes += 1
