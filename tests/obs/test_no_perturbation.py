"""Telemetry is observation only: instrumented runs are bit-identical to dark.

These differentials are the hard contract of the obs subsystem.  Every test
runs the same campaign twice -- collector off, collector on -- and asserts
the scientific outputs (wave results, unit metrics, cache keys) are equal,
then that the collector actually saw the run (so the differential cannot
silently pass because the instrumentation went dead).
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.graphs import backend
from repro.graphs.generators import k_regular_graph
from repro.obs import telemetry
from repro.runner.executor import run_scenario, sharded_full_path_metrics
from repro.runner.spec import ScenarioSpec


class TestWaveCampaignDifferential:
    def test_full_path_metrics_bit_identical_with_collection_on(self):
        from repro.graphs import fast

        graph = k_regular_graph(400, 6, seed=5)
        with backend.using("fast"):
            dark = fast.full_path_metrics(graph)
            with telemetry.collecting() as collector:
                lit = fast.full_path_metrics(graph)
        assert lit == dark
        # The wave engine was genuinely observed, per-level and per-wave.
        snap = collector.snapshot()["counters"]
        assert snap["wave.count"] >= 1
        assert snap["wave.sources"] == 400
        assert snap["wave.levels"] >= 1
        dispatch = sum(v for k, v in snap.items() if k.startswith("wave.dispatch."))
        assert dispatch == snap["wave.levels"]
        assert collector.snapshot()["gauges"]["wave.popcount_backend"] in (
            "native",
            "lut",
        )

    def test_closeness_campaign_identical_and_csr_cache_observed(self):
        import random

        from repro.graphs import fast

        graph = k_regular_graph(300, 6, seed=9)
        with backend.using("fast"):
            dark = fast.average_closeness_centrality(
                graph, sample_size=64, rng=random.Random(3)
            )
            with telemetry.collecting() as collector:
                fresh = k_regular_graph(300, 6, seed=9)
                fast.csr_of(fresh)  # first sight of this graph: a build
                lit = fast.average_closeness_centrality(
                    graph, sample_size=64, rng=random.Random(3)
                )
        assert lit == dark
        counters = collector.snapshot()["counters"]
        assert counters["csr.cache.build"] == 1
        assert counters["csr.cache.hit"] >= 1  # dark run left graph's CSR warm

    def test_wave_frontier_accounting_is_consistent(self):
        """Dispatch/frontier counters describe the same levels the engine ran."""
        from repro.graphs import fast

        graph = k_regular_graph(500, 8, seed=13)
        with backend.using("fast"):
            with telemetry.collecting() as collector:
                fast.full_path_metrics(graph)
        counters = collector.snapshot()["counters"]
        # The level-map rows scanned per level always span all n nodes.
        assert counters["wave.node_levels"] == 500 * counters["wave.levels"]
        # Scratch buffers were recycled: at most one miss per width in use.
        assert counters.get("wave.scratch.miss", 0) <= counters["wave.count"]


class TestRunnerDifferential:
    SCENARIO = dict(params={"n": 60, "hours": 3}, trials=2, seed=0)

    def test_serial_scenario_bit_identical(self):
        dark = run_scenario("soap-under-churn", **self.SCENARIO)
        with telemetry.collecting() as collector:
            lit = run_scenario("soap-under-churn", **self.SCENARIO)
        assert lit.unit_metrics == dark.unit_metrics
        snap = collector.snapshot()
        assert snap["gauges"]["runner.units"] == 2
        assert snap["spans"]["runner.unit"]["count"] == 2
        assert snap["spans"]["runner.execute"]["count"] == 1

    def test_pooled_scenario_bit_identical_and_worker_spans_merge(self):
        from repro.runner.pool import shutdown_pools

        dark = run_scenario("soap-under-churn", **self.SCENARIO)
        # The pool is persistent (one spin-up per invocation, not per
        # campaign); retire any pool a previous test left warm so the
        # spin-up span lands inside this collector deterministically.
        shutdown_pools()
        with telemetry.collecting() as collector:
            lit = run_scenario("soap-under-churn", workers=2, **self.SCENARIO)
        assert lit.unit_metrics == dark.unit_metrics
        snap = collector.snapshot()
        # Worker-side collectors rode back with the shard results: the
        # per-unit spans were recorded in child processes, merged here.
        assert snap["spans"]["runner.unit"]["count"] == 2
        assert snap["spans"]["runner.pool_spinup"]["count"] == 1
        assert snap["gauges"]["runner.pool_workers"] >= 1

    def test_cache_keys_unchanged_by_telemetry(self, monkeypatch):
        spec = ScenarioSpec(
            name="soap-under-churn", params={"n": 60, "hours": 3}, trials=2, seed=0
        )
        units = spec.work_units()
        monkeypatch.delenv(telemetry.ENV_VAR, raising=False)
        dark_keys = [unit.key_material("v1") for unit in units]
        monkeypatch.setenv(telemetry.ENV_VAR, "report.json")
        with telemetry.collecting():
            lit_keys = [unit.key_material("v1") for unit in units]
        assert lit_keys == dark_keys
        assert all("telemetry" not in key.lower() for key in dark_keys)


class TestShardedPathMetricsDifferential:
    @pytest.fixture(scope="class")
    def graph(self):
        return k_regular_graph(600, 6, seed=17)

    @pytest.fixture(scope="class")
    def dark(self, graph):
        with backend.using("fast"):
            return sharded_full_path_metrics(graph, workers=1)

    @pytest.mark.parametrize("workers", [2, 3])
    def test_sharded_bit_identical_with_merged_worker_collectors(
        self, graph, dark, workers
    ):
        from repro.runner.pool import shutdown_pools

        # Pools persist across campaigns; retire any warm pool so this
        # collector observes the (single) spin-up span itself.
        shutdown_pools()
        with backend.using("fast"):
            with telemetry.collecting() as collector:
                lit = sharded_full_path_metrics(graph, workers=workers)
        assert lit == dark
        snap = collector.snapshot()
        shards = snap["gauges"]["runner.path_shards"]
        assert shards == workers  # even ceil-split: one shard per worker
        # One worker-local accumulate span per shard, merged exactly; the
        # shard source counters add back up to the full population.
        assert snap["spans"]["runner.path_shard"]["count"] == shards
        assert snap["counters"]["runner.path_shard.sources"] == 600
        assert snap["spans"]["runner.pool_spinup"]["count"] == 1

    def test_sharded_dark_run_still_bit_identical(self, graph, dark):
        """The telemetry plumbing itself must not perturb an uninstrumented run."""
        with backend.using("fast"):
            again = sharded_full_path_metrics(graph, workers=2)
        assert again == dark
