"""SOAP -- the Sybil Onion Attack Protocol (paper section VI-B, Figure 7).

SOAP is the paper's mitigation against the basic OnionBot: it turns the
botnet's own stealth features (peers only know each other's rotating onion
addresses, anyone can host many onion services on one machine) against it.

Per-node containment follows Figure 7's steps: a compromised peer (or any
defender node that learned the target's address) spins up clones; each clone
requests peering with the target while announcing a small random degree; the
target accepts, finds itself over its degree bound, and -- following the DDSR
pruning rule -- drops its *highest-degree* peer, which is always a real bot
rather than a low-degree clone.  Repeating this, the target's peer list fills
up with clones until it has no benign neighbours left: it is **contained**
(still running, but every message it sends or receives passes through the
defender).  The campaign then spreads to the neighbours learned along the way
until the whole botnet is neutralized.

The implementation works directly on a :class:`~repro.core.ddsr.DDSROverlay`
so it can be evaluated at the same scales as the resilience experiments, and
it accepts an optional *admission policy* (see :mod:`repro.defenses.pow` and
:mod:`repro.defenses.rate_limit`) so the counter-countermeasures of section
VII-A can be quantified: the policy can reject clone peering requests or
charge them work/delay, which the result objects account for.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.ddsr import DDSROverlay

NodeId = Hashable

#: Prefix of every clone identifier created by the attack.
CLONE_PREFIX = "soap-clone-"


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of asking a target bot to accept a new peer."""

    accepted: bool
    work_required: float = 0.0
    delay_seconds: float = 0.0


#: An admission policy decides whether a peering request is accepted and what
#: it costs.  ``policy(target, requester, overlay)`` -> :class:`AdmissionDecision`.
AdmissionPolicy = Callable[[NodeId, NodeId, DDSROverlay], AdmissionDecision]


def open_admission(_target: NodeId, _requester: NodeId, _overlay: DDSROverlay) -> AdmissionDecision:
    """The basic OnionBot's policy: accept every peering request for free."""
    return AdmissionDecision(accepted=True)


def is_clone(node: NodeId) -> bool:
    """Whether a node identifier was minted by the SOAP attack."""
    return isinstance(node, str) and node.startswith(CLONE_PREFIX)


@dataclass
class SoapNodeResult:
    """Outcome of containing a single target bot."""

    target: NodeId
    contained: bool
    clones_used: int
    peering_requests: int
    requests_rejected: int
    benign_peers_displaced: int
    work_spent: float
    time_spent: float
    learned_addresses: Set[NodeId] = field(default_factory=set)


@dataclass
class SoapCampaignResult:
    """Outcome of a full SOAP campaign against a botnet overlay."""

    total_benign: int
    contained: Set[NodeId]
    clones_created: int
    peering_requests: int
    requests_rejected: int
    work_spent: float
    time_spent: float
    #: ``(targets processed, fraction of benign bots contained)`` checkpoints.
    timeline: List[Tuple[int, float]]
    per_node: List[SoapNodeResult] = field(default_factory=list)

    @property
    def containment_fraction(self) -> float:
        """Fraction of the original benign population that ended up contained."""
        if self.total_benign == 0:
            return 0.0
        return len(self.contained) / self.total_benign

    @property
    def neutralized(self) -> bool:
        """Whether every benign bot was contained (the botnet is neutralized)."""
        return self.total_benign > 0 and len(self.contained) >= self.total_benign

    @property
    def clones_per_bot(self) -> float:
        """Average number of clones spent per contained bot."""
        if not self.contained:
            return 0.0
        return self.clones_created / len(self.contained)


class SoapAttack:
    """Runs SOAP against a DDSR overlay.

    Parameters
    ----------
    rng:
        Randomness source (declared clone degrees, tie-breaks).
    admission:
        The target bots' peering-admission policy; defaults to the basic
        OnionBot's open admission.  Defense policies (PoW, rate limiting) come
        from :mod:`repro.defenses`.
    work_budget / time_budget:
        Optional caps on the total proof-of-work and waiting time the defender
        is willing to spend; the campaign stops when either is exhausted.
    max_clones_per_node:
        Safety valve so a single stubborn target cannot absorb the whole run.
    """

    def __init__(
        self,
        *,
        rng: Optional[random.Random] = None,
        admission: AdmissionPolicy = open_admission,
        work_budget: Optional[float] = None,
        time_budget: Optional[float] = None,
        max_clones_per_node: int = 200,
    ) -> None:
        self.rng = rng if rng is not None else random.Random(0)
        self.admission = admission
        self.work_budget = work_budget
        self.time_budget = time_budget
        self.max_clones_per_node = max_clones_per_node
        self._clone_counter = itertools.count(1)
        self.work_spent = 0.0
        self.time_spent = 0.0

    # ------------------------------------------------------------------
    # Per-node containment (Figure 7 steps 2-9)
    # ------------------------------------------------------------------
    def _new_clone(self) -> str:
        return f"{CLONE_PREFIX}{next(self._clone_counter):06d}"

    def _benign_peers(self, overlay: DDSROverlay, node: NodeId) -> Set[NodeId]:
        return {peer for peer in overlay.peers(node) if not is_clone(peer)}

    def _budget_exhausted(self) -> bool:
        if self.work_budget is not None and self.work_spent >= self.work_budget:
            return True
        if self.time_budget is not None and self.time_spent >= self.time_budget:
            return True
        return False

    def contain_node(self, overlay: DDSROverlay, target: NodeId) -> SoapNodeResult:
        """Surround one bot with clones until it has no benign peers left."""
        if target not in overlay.graph:
            return SoapNodeResult(
                target=target,
                contained=False,
                clones_used=0,
                peering_requests=0,
                requests_rejected=0,
                benign_peers_displaced=0,
                work_spent=0.0,
                time_spent=0.0,
            )
        learned = self._benign_peers(overlay, target)
        clones_used = 0
        requests = 0
        rejected = 0
        displaced = 0
        node_work = 0.0
        node_time = 0.0
        # Give up on a target once twice the clone budget in peering requests
        # has been burned -- admission policies that keep rejecting (PoW above
        # the work budget, rate limits above the patience threshold) stall the
        # attack on this node rather than letting it retry forever.
        max_requests = self.max_clones_per_node * 2

        while self._benign_peers(overlay, target) and clones_used < self.max_clones_per_node:
            if self._budget_exhausted() or requests >= max_requests:
                break
            clone = self._new_clone()
            requests += 1
            decision = self.admission(target, clone, overlay)
            node_work += decision.work_required
            node_time += decision.delay_seconds
            self.work_spent += decision.work_required
            self.time_spent += decision.delay_seconds
            if not decision.accepted:
                rejected += 1
                continue
            benign_before = len(self._benign_peers(overlay, target))
            overlay.graph.add_node(clone)
            overlay.graph.add_edge(clone, target)
            clones_used += 1
            # The target applies its normal DDSR pruning once over its bound;
            # the clone's (graph) degree of 1 matches its small announced
            # degree, so pruning evicts a real, higher-degree peer instead.
            overlay.enforce_degree_bound(target)
            benign_after = len(self._benign_peers(overlay, target))
            displaced += max(0, benign_before - benign_after)

        contained = not self._benign_peers(overlay, target) and target in overlay.graph
        return SoapNodeResult(
            target=target,
            contained=contained,
            clones_used=clones_used,
            peering_requests=requests,
            requests_rejected=rejected,
            benign_peers_displaced=displaced,
            work_spent=node_work,
            time_spent=node_time,
            learned_addresses=learned,
        )

    # ------------------------------------------------------------------
    # Campaign (spreading containment through the whole botnet)
    # ------------------------------------------------------------------
    def run_campaign(
        self,
        overlay: DDSROverlay,
        initial_compromised: Iterable[NodeId],
        *,
        max_targets: Optional[int] = None,
    ) -> SoapCampaignResult:
        """Contain the whole botnet starting from a set of compromised bots.

        ``initial_compromised`` are bots the defender already controls (via
        honeypots or host cleanup); their peer lists seed the list of known
        addresses.  The campaign processes known-but-uncontained bots in FIFO
        order, learning new addresses from each target's peer list as it is
        attacked, until no reachable benign bot remains (or the optional
        ``max_targets`` / work / time budgets run out).
        """
        benign_population = {node for node in overlay.nodes() if not is_clone(node)}
        total_benign = len(benign_population)

        contained: Set[NodeId] = set()
        known: Set[NodeId] = set()
        queue: List[NodeId] = []
        results: List[SoapNodeResult] = []
        timeline: List[Tuple[int, float]] = []
        clones_created = 0
        requests = 0
        rejected = 0

        for compromised in initial_compromised:
            if compromised not in overlay.graph or is_clone(compromised):
                continue
            # A compromised bot is already under defender control: count it as
            # contained and learn its peers.
            contained.add(compromised)
            known.add(compromised)
            for peer in self._benign_peers(overlay, compromised):
                if peer not in known:
                    known.add(peer)
                    queue.append(peer)

        processed = 0
        while queue:
            if max_targets is not None and processed >= max_targets:
                break
            if self._budget_exhausted():
                break
            target = queue.pop(0)
            if target in contained or target not in overlay.graph:
                continue
            result = self.contain_node(overlay, target)
            processed += 1
            results.append(result)
            clones_created += result.clones_used
            requests += result.peering_requests
            rejected += result.requests_rejected
            if result.contained:
                contained.add(target)
            for peer in result.learned_addresses:
                if peer not in known and not is_clone(peer):
                    known.add(peer)
                    queue.append(peer)
            fraction = len(contained) / total_benign if total_benign else 0.0
            timeline.append((processed, fraction))

        return SoapCampaignResult(
            total_benign=total_benign,
            contained=contained,
            clones_created=clones_created,
            peering_requests=requests,
            requests_rejected=rejected,
            work_spent=self.work_spent,
            time_spent=self.time_spent,
            timeline=timeline,
            per_node=results,
        )

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    @staticmethod
    def benign_subgraph_components(overlay: DDSROverlay) -> Dict[str, int]:
        """Component structure of the benign-to-benign communication graph.

        Contained bots can only talk to clones, so once the campaign is done
        the benign subgraph induced on *uncontained* communication paths tells
        the defender whether the botnet is still able to coordinate.
        """
        from repro.graphs.metrics import connected_components

        benign_nodes = [node for node in overlay.nodes() if not is_clone(node)]
        subgraph = overlay.graph.subgraph(benign_nodes)
        components = connected_components(subgraph)
        nontrivial = [component for component in components if len(component) > 1]
        return {
            "benign_nodes": len(benign_nodes),
            "components": len(components),
            "nontrivial_components": len(nontrivial),
            "largest_component": len(components[0]) if components else 0,
        }
