"""Deterministic fault injection for chaos-testing the runner.

The crash-safety layer (watchdog, bounded retry, degraded-serial drain,
journal resume) is only trustworthy if its failure paths can be driven *on
purpose*, reproducibly, from a test or a CI job.  This module provides that
plane: a fault spec names registered **injection sites** in the pool, the
executor and the result cache, and each armed clause fires at an exact
**invocation count** of its site -- so the same spec against the same
campaign always injects the same fault at the same point, and every chaos
differential ("kill the worker before shard 2, assert bit-identical
aggregates") is deterministic.

Spec grammar (``REPRO_FAULTS`` environment variable or the CLI's
``--inject-faults``)::

    SPEC    := CLAUSE ("," CLAUSE)*
    CLAUSE  := SITE "=" ACTION ["(" ARG ")"] ["@" N]
    SITE    := a key of :data:`SITES`
    ACTION  := kill | hang | delay | oserror | raise | interrupt
    N       := 1-based invocation of SITE at which the clause fires
               (exactly once; default 1)

Examples::

    REPRO_FAULTS="pool.task=kill@2"             # SIGKILL the worker running
                                                # the 2nd task entered
    REPRO_FAULTS="pool.task=hang@1,cache.read=oserror@3"
    REPRO_FAULTS="pool.task=delay(0.2)@1"       # slow one task by 200ms
    REPRO_FAULTS="executor.unit=interrupt@5"    # simulate ^C after 5 units

Invocation counters are **cross-process**: sites fire in pool workers as
well as in the parent, so counts live in small files under a state
directory (``REPRO_FAULTS_STATE``, created automatically and exported so
forked/spawned workers share it) and are bumped under an exclusive
``flock``.  A fired clause is spent -- respawned workers re-reading the
same spec never re-fire it -- which is what makes "kill once, then
recover" scenarios expressible at all.

Zero cost when off: :func:`fault_point` is a module-global ``None`` check
when no spec is configured.  Every firing logs a warning and counts
``runner.fault.injected`` on the active telemetry collector (best-effort:
a ``kill`` obviously never reports).
"""

from __future__ import annotations

import logging
import os
import re
import signal
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.telemetry import current as _telemetry

logger = logging.getLogger(__name__)

#: Environment variable holding the fault spec (empty/unset = no faults).
ENV_VAR = "REPRO_FAULTS"

#: Environment variable naming the shared counter-state directory.  Set
#: automatically the first time a spec is parsed, so pool workers inherit
#: the *same* directory and the per-site invocation counters are global
#: across the whole process tree.
STATE_ENV_VAR = "REPRO_FAULTS_STATE"

#: Registered injection sites.  A spec naming anything else is a
#: :class:`~repro.core.errors.ConfigError` -- a typo must fail loudly, not
#: silently inject nothing.
SITES = {
    "pool.task": "worker entry of a work-unit shard (pool._pool_run_shard)",
    "pool.path_task": "worker entry of a path-metric source shard",
    "pool.shm_attach": "worker attach of a published shared-memory segment",
    "executor.unit": "parent side, after one work unit's result is recorded",
    "cache.read": "result-cache lookup (ResultCache.get)",
    "cache.write": "result-cache persist (ResultCache.put)",
    "journal.write": "campaign-journal append (CampaignJournal._append)",
    "journal.read": "campaign-journal load (CampaignJournal._read)",
    "executor.checkpoint": (
        "parent side, entry of one sub-unit path-metric checkpoint "
        "(sharded_full_path_metrics)"
    ),
}

#: Supported actions; ``ARG`` is the sleep duration for hang/delay.
ACTIONS = ("kill", "hang", "delay", "oserror", "raise", "interrupt")

#: How long a ``hang`` sleeps when no argument is given -- far beyond any
#: sane ``REPRO_TASK_TIMEOUT``, so an unwatched hang is unmistakable.
DEFAULT_HANG_SECONDS = 600.0

#: Default ``delay`` duration.
DEFAULT_DELAY_SECONDS = 0.05

_CLAUSE_RE = re.compile(
    r"^(?P<site>[a-z_][a-z0-9_.]*)"
    r"=(?P<action>[a-z]+)"
    r"(?:\((?P<arg>[^)]*)\))?"
    r"(?:@(?P<at>\d+))?$"
)


class InjectedFault(RuntimeError):
    """The generic exception thrown by a ``raise`` clause."""


@dataclass(frozen=True)
class FaultClause:
    """One armed fault: fire ``action`` at invocation ``at`` of ``site``."""

    site: str
    action: str
    arg: Optional[float]
    at: int

    def spec(self) -> str:
        arg = f"({self.arg:g})" if self.arg is not None else ""
        return f"{self.site}={self.action}{arg}@{self.at}"


def parse_spec(spec: str) -> List[FaultClause]:
    """Parse a fault spec; raise ``ConfigError`` on any malformed clause."""
    from repro.core.errors import ConfigError

    clauses: List[FaultClause] = []
    for raw in spec.split(","):
        raw = raw.strip()
        if not raw:
            continue
        match = _CLAUSE_RE.match(raw)
        if match is None:
            raise ConfigError(
                f"invalid fault clause {raw!r}; expected "
                "SITE=ACTION[(ARG)][@N], e.g. pool.task=kill@2"
            )
        site = match.group("site")
        if site not in SITES:
            raise ConfigError(
                f"unknown fault site {site!r}; known sites: "
                f"{', '.join(sorted(SITES))}"
            )
        action = match.group("action")
        if action not in ACTIONS:
            raise ConfigError(
                f"unknown fault action {action!r} in {raw!r}; known actions: "
                f"{', '.join(ACTIONS)}"
            )
        arg = None
        if match.group("arg") is not None:
            try:
                arg = float(match.group("arg"))
            except ValueError:
                raise ConfigError(
                    f"fault clause {raw!r} has a non-numeric argument "
                    f"{match.group('arg')!r}"
                ) from None
        at = int(match.group("at") or 1)
        if at < 1:
            raise ConfigError(f"fault clause {raw!r} must fire at invocation >= 1")
        clauses.append(FaultClause(site=site, action=action, arg=arg, at=at))
    return clauses


class FaultPlane:
    """A parsed spec plus the shared cross-process invocation counters."""

    def __init__(self, clauses: List[FaultClause], state_dir: str) -> None:
        self.state_dir = state_dir
        self.by_site: Dict[str, List[FaultClause]] = {}
        for clause in clauses:
            self.by_site.setdefault(clause.site, []).append(clause)

    # ------------------------------------------------------------------
    def _bump(self, site: str) -> int:
        """Atomically increment and return ``site``'s invocation counter.

        The counter file is shared by every process that inherited
        :data:`STATE_ENV_VAR`, and the read-increment-write runs under an
        exclusive ``flock``, so each invocation across the whole process
        tree observes a unique count -- the property that makes ``@N``
        fire exactly once no matter which worker gets there.
        """
        import fcntl

        path = os.path.join(self.state_dir, site.replace("/", "_") + ".count")
        fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o600)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            raw = os.read(fd, 64)
            count = int(raw) if raw.strip() else 0
            count += 1
            os.lseek(fd, 0, os.SEEK_SET)
            os.truncate(fd, 0)
            os.write(fd, str(count).encode("ascii"))
            return count
        finally:
            os.close(fd)

    def fire(self, site: str) -> None:
        """Trigger whatever clauses are due at this invocation of ``site``."""
        clauses = self.by_site.get(site)
        if not clauses:
            return
        count = self._bump(site)
        for clause in clauses:
            if clause.at == count:
                self._trigger(clause, count)

    def _trigger(self, clause: FaultClause, count: int) -> None:
        logger.warning(
            "fault injected: %s (invocation %d of %s, pid %d)",
            clause.spec(),
            count,
            clause.site,
            os.getpid(),
        )
        _telemetry().count("runner.fault.injected")
        if clause.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif clause.action == "hang":
            time.sleep(clause.arg if clause.arg is not None else DEFAULT_HANG_SECONDS)
        elif clause.action == "delay":
            time.sleep(clause.arg if clause.arg is not None else DEFAULT_DELAY_SECONDS)
        elif clause.action == "oserror":
            raise OSError(f"injected fault at {clause.site} ({clause.spec()})")
        elif clause.action == "raise":
            raise InjectedFault(f"injected fault at {clause.site} ({clause.spec()})")
        elif clause.action == "interrupt":
            raise KeyboardInterrupt(f"injected interrupt at {clause.site}")


# ----------------------------------------------------------------------
# Module-level active plane
# ----------------------------------------------------------------------
_plane: Optional[FaultPlane] = None
_loaded = False


def _build_plane(spec: str) -> Optional[FaultPlane]:
    clauses = parse_spec(spec)
    if not clauses:
        return None
    state_dir = os.environ.get(STATE_ENV_VAR, "").strip()
    if not state_dir:
        # First parser in the process tree owns the state dir; exporting it
        # makes every later fork/spawn share the same counters.
        state_dir = tempfile.mkdtemp(prefix="repro-faults-")
        os.environ[STATE_ENV_VAR] = state_dir
    else:
        os.makedirs(state_dir, exist_ok=True)
    return FaultPlane(clauses, state_dir)


def ensure_loaded() -> None:
    """Parse :data:`ENV_VAR` once (idempotent; called before pool fan-out).

    Parsing in the parent *before* the first worker is forked matters: it
    pins :data:`STATE_ENV_VAR` so all workers share one counter directory.
    """
    global _plane, _loaded
    if _loaded:
        return
    _loaded = True
    spec = os.environ.get(ENV_VAR, "").strip()
    _plane = _build_plane(spec) if spec else None


def install(spec: str) -> Optional[FaultPlane]:
    """Activate ``spec`` for this process tree (the CLI's ``--inject-faults``).

    Exports :data:`ENV_VAR` (and the shared state directory) so pool
    workers inherit the plane; raises ``ConfigError`` on a malformed spec.
    """
    global _plane, _loaded
    _loaded = True
    spec = (spec or "").strip()
    # Each install owns a *fresh* counter directory: re-arming the same spec
    # must restart every site at invocation 0, never inherit counts from a
    # previous plane in this process.
    os.environ.pop(STATE_ENV_VAR, None)
    if spec:
        # Parse before exporting: a malformed spec must raise without
        # leaving itself armed in the environment for later runs.
        plane = _build_plane(spec)
        os.environ[ENV_VAR] = spec
        _plane = plane
    else:
        os.environ.pop(ENV_VAR, None)
        _plane = None
    return _plane


def reset() -> None:
    """Forget the active plane; the next :func:`fault_point` re-reads the env.

    Also drops the exported counter-state directory so a re-armed spec
    starts counting from scratch (test isolation).
    """
    global _plane, _loaded
    _plane = None
    _loaded = False
    os.environ.pop(STATE_ENV_VAR, None)


def active() -> Optional[FaultPlane]:
    """The currently armed plane (``None`` when fault injection is off)."""
    ensure_loaded()
    return _plane


def fault_point(site: str) -> None:
    """Declare an injection site; fires whatever the active spec armed there.

    The disabled path is one module-global check -- instrumented code can
    call this unconditionally.
    """
    if not _loaded:
        ensure_loaded()
    if _plane is not None:
        _plane.fire(site)
