"""Command-line entry point: ``python -m repro.runner
list|run|sweep|telemetry|journal``.

Examples::

    python -m repro.runner list
    python -m repro.runner run soap-campaign --set n=200 --trials 4 --workers 4
    python -m repro.runner sweep fig6-partition-threshold \
        --grid size=200,500,1000 --trials 2 --workers 4 --csv fig6.csv
    python -m repro.runner run soap-campaign --telemetry obs.json
    python -m repro.runner telemetry obs.json
    python -m repro.runner journal .repro-cache/journals/<spec-hash>.jsonl

``run`` executes one scenario at its defaults plus ``--set`` overrides;
``sweep`` additionally crosses ``--grid`` axes.  Both cache per-unit results
under ``--cache-dir`` (default ``.repro-cache``), so a repeated invocation is
served from disk; pass ``--no-cache`` to force recomputation.

``--telemetry PATH`` (or the ``REPRO_TELEMETRY`` environment variable)
enables the :mod:`repro.obs` collector for the run and writes its JSON
report to PATH afterwards -- an environment-level observation knob that
never feeds unit seeds or cache keys, so an instrumented run is bit-identical
to a dark one.  ``telemetry`` pretty-prints (and validates) a saved report.

Crash safety: unless ``--no-journal`` is given, every cached run journals
completed units under ``<cache-dir>/journals/<spec-hash>.jsonl`` (override
with ``--journal PATH``); after a crash or ^C, ``--resume`` replays the
journal's units verbatim and finishes the remainder, bit-identical to an
uninterrupted run.  Journal schema v2 additionally records sub-unit
checkpoint state, so a campaign killed *inside* a long unit re-enters it
from its first incomplete path-metric checkpoint shard.  ``journal PATH``
inspects a journal without running anything: schema version, progress,
whether ``--resume`` in the current environment would accept it (exit 0
valid / 3 mismatched-or-corrupt).  ``--inject-faults SPEC`` arms the
deterministic fault plane (:mod:`repro.runner.faults`) for chaos testing.

Exit codes are distinct per failure class so scripts and CI can tell them
apart:

* ``0``   success
* ``2``   usage errors (unknown scenario, bad ``--set``/``--grid`` values)
* ``3``   configuration errors (:class:`~repro.core.errors.ConfigError`:
  bad environment policy, malformed fault spec, journal mismatch on
  resume or inspect)
* ``4``   the worker pool failed (:class:`~repro.runner.pool.PoolError`,
  including an in-parent hang caught by the parent watchdog)
* ``5``   a task failed inside a worker
  (:class:`~repro.runner.pool.PoolTaskError`)
* ``130`` interrupted (^C); pools are torn down and the journal stays
  resumable
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runner.executor import execute
from repro.runner.grid import parse_grid_axis, parse_grid_value
from repro.runner.registry import ScenarioError, all_scenarios, get_scenario
from repro.runner.spec import ScenarioSpec


def _add_common_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("scenario", help="registered scenario name (see `list`)")
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override one scenario parameter (repeatable)",
    )
    parser.add_argument("--trials", type=int, default=1, help="trials per grid point")
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = in-process)"
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, help="result cache directory"
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="do not read or write the cache"
    )
    parser.add_argument("--json", dest="json_out", help="write aggregate rows as JSON")
    parser.add_argument("--csv", dest="csv_out", help="write aggregate rows as CSV")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-unit progress lines"
    )
    parser.add_argument(
        "--telemetry",
        dest="telemetry_out",
        default=None,
        metavar="PATH",
        help=(
            "collect run telemetry and write the JSON report to PATH "
            "(defaults to $REPRO_TELEMETRY when that is set)"
        ),
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help=(
            "journal completed units to PATH (default: "
            "<cache-dir>/journals/<spec-hash>.jsonl unless --no-cache)"
        ),
    )
    parser.add_argument(
        "--no-journal", action="store_true", help="disable the campaign journal"
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "replay the journal's completed units and finish the remainder "
            "(bit-identical to an uninterrupted run)"
        ),
    )
    parser.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help=(
            "arm deterministic fault injection, e.g. 'pool.task=kill@2' "
            "(see repro.runner.faults; also $REPRO_FAULTS)"
        ),
    )


def _parse_overrides(items: Sequence[str]) -> Dict[str, Any]:
    overrides: Dict[str, Any] = {}
    for item in items:
        if "=" not in item:
            raise SystemExit(f"--set expects KEY=VALUE, got {item!r}")
        key, _, value = item.partition("=")
        overrides[key.strip()] = parse_grid_value(value)
    return overrides


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Declarative, parallel, cached experiment orchestration.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="list registered scenarios")
    list_parser.add_argument(
        "--composed", action="store_true", help="only composed (multi-subsystem) scenarios"
    )

    run_parser = sub.add_parser("run", help="run one scenario (no grid)")
    _add_common_run_args(run_parser)

    sweep_parser = sub.add_parser("sweep", help="run a scenario over a parameter grid")
    _add_common_run_args(sweep_parser)
    sweep_parser.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        help="one grid axis (repeatable; crossed as a Cartesian product)",
    )

    telemetry_parser = sub.add_parser(
        "telemetry", help="validate and pretty-print a saved telemetry report"
    )
    telemetry_parser.add_argument("report", help="path to a --telemetry JSON report")

    journal_parser = sub.add_parser(
        "journal", help="validate and summarize a campaign journal"
    )
    journal_parser.add_argument("journal", help="path to a campaign journal (.jsonl)")
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import format_table

    rows = []
    for sc in all_scenarios():
        if args.composed and not sc.composed:
            continue
        defaults = ", ".join(f"{key}={value}" for key, value in sc.defaults.items())
        rows.append(
            [sc.name, "composed" if sc.composed else "wrapper", sc.description, defaults]
        )
    print(format_table(["scenario", "kind", "description", "defaults"], rows))
    return 0


#: Distinct exit codes per failure class (documented in the module docstring).
EXIT_USAGE = 2
EXIT_CONFIG = 3
EXIT_POOL = 4
EXIT_TASK = 5
EXIT_INTERRUPTED = 130


def _journal_path(args: argparse.Namespace, spec: ScenarioSpec) -> Optional[str]:
    """Where this invocation journals (``None`` when journaling is off)."""
    if args.no_journal:
        return None
    if args.journal:
        return args.journal
    if args.no_cache:
        # No cache directory to anchor the default path under; journaling
        # stays opt-in via an explicit --journal.
        return None
    from pathlib import Path

    return str(Path(args.cache_dir) / "journals" / f"{spec.spec_hash()}.jsonl")


def _cmd_run(args: argparse.Namespace, grid_args: Sequence[str]) -> int:
    from repro.core.errors import ConfigError
    from repro.runner import faults
    from repro.runner.pool import PoolError, PoolTaskError

    try:
        sc = get_scenario(args.scenario)
    except ScenarioError as error:
        print(str(error), file=sys.stderr)
        return EXIT_USAGE
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    progress = None if args.quiet else lambda line: print(line, file=sys.stderr)
    telemetry_out = args.telemetry_out or os.environ.get("REPRO_TELEMETRY", "").strip() or None
    collector = None
    if telemetry_out:
        from repro.obs import telemetry

        collector = telemetry.enable(label=f"runner:{sc.name}")
    journal = None
    try:
        if args.inject_faults is not None:
            faults.install(args.inject_faults)
        grid: Dict[str, List[Any]] = {}
        for axis in grid_args:
            name, values = parse_grid_axis(axis)
            grid[name] = values
        spec = ScenarioSpec(
            name=sc.name,
            params=_parse_overrides(args.overrides),
            grid=grid,
            trials=args.trials,
            seed=args.seed,
        )
        journal = _journal_path(args, spec)
        result = execute(
            spec,
            workers=args.workers,
            cache=cache,
            progress=progress,
            journal=journal,
            resume=args.resume,
        )
    except ConfigError as error:
        print(f"config error: {error}", file=sys.stderr)
        return EXIT_CONFIG
    except PoolTaskError as error:
        # Before PoolError: PoolTaskError subclasses it.
        print(f"task failed: {error}", file=sys.stderr)
        return EXIT_TASK
    except PoolError as error:
        print(f"worker pool failed: {error}", file=sys.stderr)
        return EXIT_POOL
    except KeyboardInterrupt:
        note = f"; resume with --resume (journal: {journal})" if journal else ""
        print(f"interrupted{note}", file=sys.stderr)
        return EXIT_INTERRUPTED
    except (TypeError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    finally:
        if collector is not None:
            from repro.obs import telemetry

            telemetry.disable()

    from repro.analysis.reporting import render_result_rows

    rows = result.rows()
    print(render_result_rows(rows))
    corrupt_note = (
        f", {result.cache_corrupt} corrupt evicted" if result.cache_corrupt else ""
    )
    replay_note = f", {result.replayed} replayed" if result.replayed else ""
    if result.checkpoints_replayed:
        replay_note += f", {result.checkpoints_replayed} ckpt shard(s) replayed"
    print(
        f"\n{len(result.unit_metrics)} unit(s) "
        f"[{result.cache_hits} cached, {result.cache_misses} computed"
        f"{corrupt_note}{replay_note}] "
        f"in {result.elapsed_seconds:.2f}s with {result.workers} worker(s); "
        f"spec hash {spec.spec_hash()}"
    )
    if args.json_out:
        from repro.analysis.export import write_json

        write_json(args.json_out, {"spec_hash": spec.spec_hash(), "rows": rows})
        print(f"wrote {args.json_out}")
    if args.csv_out:
        from repro.analysis.export import write_rows_csv

        write_rows_csv(args.csv_out, rows)
        print(f"wrote {args.csv_out}")
    if collector is not None:
        from repro.obs.report import render_report, write_report

        meta: Dict[str, Any] = {
            "scenario": sc.name,
            "spec_hash": spec.spec_hash(),
            "trials": args.trials,
            "seed": args.seed,
            "workers": result.workers,
            "elapsed_seconds": result.elapsed_seconds,
            "cache_hits": result.cache_hits,
            "cache_misses": result.cache_misses,
            "cache_corrupt": result.cache_corrupt,
        }
        if result.journal_path is not None:
            meta["journal"] = {
                "path": result.journal_path,
                "resumed": bool(args.resume),
                "replayed": result.replayed,
                "units": len(result.unit_metrics),
                "checkpoints_recorded": result.checkpoints_recorded,
                "checkpoints_replayed": result.checkpoints_replayed,
            }
        if args.inject_faults:
            meta["injected_faults"] = args.inject_faults
        report = render_report(collector, meta=meta)
        write_report(telemetry_out, report)
        print(f"wrote telemetry report {telemetry_out}")
    return 0


def _cmd_journal(args: argparse.Namespace) -> int:
    """Inspect a campaign journal: exit 0 when --resume would accept it."""
    from repro.core.errors import ConfigError
    from repro.runner import journal as journal_mod

    try:
        summary = journal_mod.inspect(args.journal)
    except FileNotFoundError:
        print(f"{args.journal}: no such journal", file=sys.stderr)
        return EXIT_CONFIG
    except ConfigError as error:
        print(f"{args.journal}: invalid journal -- {error}", file=sys.stderr)
        return EXIT_CONFIG
    print(f"journal   {summary['path']}")
    print(f"schema    {summary['schema']}")
    print(
        f"campaign  {summary['scenario']} v{summary['version']} "
        f"(spec hash {summary['spec_hash']}, seed {summary['seed']}, "
        f"{summary['trials']} trial(s))"
    )
    state = "complete" if summary["complete"] else "in progress"
    print(
        f"progress  {summary['units_complete']}/{summary['units_total']} "
        f"unit(s) ({summary['percent_complete']:.1f}%), {state}"
    )
    if summary["checkpoints"]:
        print(
            f"sub-unit  {summary['checkpoint_shards']} checkpoint shard(s) "
            f"across {summary['checkpoints']} checkpoint(s)"
        )
    for key in summary["environment_mismatches"]:
        print(
            f"mismatch  {key}: journal recorded "
            f"{summary['environment'][key]!r} but the current environment "
            "differs",
            file=sys.stderr,
        )
    if summary["out_of_range_units"]:
        print(
            f"mismatch  out-of-range unit record(s) "
            f"{summary['out_of_range_units']}",
            file=sys.stderr,
        )
    if not summary["resumable"]:
        print("resume    would be REFUSED in this environment", file=sys.stderr)
        return EXIT_CONFIG
    print("resume    would be accepted in this environment")
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.obs.report import format_report, load_report
    from repro.obs.schema import validate_report

    try:
        report = load_report(args.report)
        validate_report(report)
    except (OSError, ValueError) as error:
        # SchemaError subclasses ValueError: invalid shape and invalid JSON
        # both land here with the violation list attached.
        print(f"{args.report}: invalid telemetry report -- {error}", file=sys.stderr)
        return 2
    print(format_report(report), end="")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args, grid_args=[])
    if args.command == "sweep":
        return _cmd_run(args, grid_args=args.grid)
    if args.command == "telemetry":
        return _cmd_telemetry(args)
    if args.command == "journal":
        return _cmd_journal(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
