"""Fixed-size Tor cells.

"The client sends the data in fixed sized cells" (paper, section III) -- and
OnionBot reuses the same property so that relayed botnet messages carry no
length side-channel ("All messages are of the same fixed size, as they are in
Tor", section IV-D).  This module provides padding/chunking of payloads into
512-byte cells and reassembly, plus the invariant checks the tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

#: Tor's classic fixed cell size in bytes.
CELL_SIZE = 512
#: Bytes of each cell reserved for framing (circuit id, command, length).
HEADER_SIZE = 5
#: Usable payload bytes per cell.
PAYLOAD_PER_CELL = CELL_SIZE - HEADER_SIZE


class CellError(ValueError):
    """Raised for malformed cells or reassembly failures."""


@dataclass(frozen=True)
class Cell:
    """One fixed-size cell."""

    circuit_id: int
    sequence: int
    payload: bytes
    payload_length: int

    def __post_init__(self) -> None:
        if len(self.payload) != PAYLOAD_PER_CELL:
            raise CellError(
                f"cell payload must be padded to {PAYLOAD_PER_CELL} bytes, got {len(self.payload)}"
            )
        if not 0 <= self.payload_length <= PAYLOAD_PER_CELL:
            raise CellError(f"invalid payload length {self.payload_length}")

    @property
    def size(self) -> int:
        """Total wire size of the cell (always :data:`CELL_SIZE`)."""
        return HEADER_SIZE + len(self.payload)


def chunk_payload(circuit_id: int, payload: bytes) -> List[Cell]:
    """Split ``payload`` into padded fixed-size cells.

    Every returned cell has exactly the same wire size, regardless of the
    payload length -- the property that makes traffic analysis by size
    impossible for relaying nodes.
    """
    if circuit_id < 0:
        raise CellError(f"circuit id must be non-negative, got {circuit_id}")
    cells: List[Cell] = []
    offset = 0
    sequence = 0
    # Always emit at least one cell so that empty keep-alives are padded too.
    while offset < len(payload) or sequence == 0:
        chunk = payload[offset: offset + PAYLOAD_PER_CELL]
        padded = chunk + b"\x00" * (PAYLOAD_PER_CELL - len(chunk))
        cells.append(
            Cell(
                circuit_id=circuit_id,
                sequence=sequence,
                payload=padded,
                payload_length=len(chunk),
            )
        )
        offset += PAYLOAD_PER_CELL
        sequence += 1
    return cells


def reassemble_cells(cells: Sequence[Cell]) -> bytes:
    """Reconstruct the original payload from an ordered cell sequence."""
    if not cells:
        raise CellError("cannot reassemble an empty cell sequence")
    circuit_ids = {cell.circuit_id for cell in cells}
    if len(circuit_ids) != 1:
        raise CellError(f"cells from multiple circuits: {sorted(circuit_ids)}")
    expected = list(range(len(cells)))
    if [cell.sequence for cell in cells] != expected:
        raise CellError("cells are out of order or missing")
    return b"".join(cell.payload[: cell.payload_length] for cell in cells)


def cells_required(payload_length: int) -> int:
    """Number of cells needed to carry ``payload_length`` bytes."""
    if payload_length < 0:
        raise CellError(f"payload length must be non-negative, got {payload_length}")
    if payload_length == 0:
        return 1
    return -(-payload_length // PAYLOAD_PER_CELL)
