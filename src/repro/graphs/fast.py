"""Vectorized CSR graph kernels (the ``fast`` backend).

The pure-Python BFS metrics in :mod:`repro.graphs.metrics` are the readable
reference implementation, but they dominate the runtime of every resilience
sweep once networks grow past a few thousand nodes.  This module provides a
compressed-sparse-row (CSR) mirror of :class:`~repro.graphs.adjacency.
UndirectedGraph` -- two numpy arrays, ``indptr`` and ``indices`` -- plus
vectorized kernels over it:

* frontier-based BFS (distances, eccentricity, closeness),
* connected components via min-label propagation with pointer jumping
  (Shiloach--Vishkin style, O(m log n) total work),
* sampled diameter / average-shortest-path estimators,
* masked component summaries for the Figure 6 simultaneous-deletion sweeps
  (no Python-side subgraph construction per victim set).

Every public function takes the same arguments as its ``metrics`` twin and is
required -- and tested, in ``tests/graphs/test_backend_equivalence.py`` -- to
return **identical** results: exact for integer metrics, bit-identical for
float ones (the float expressions deliberately mirror the reference
implementation's evaluation order, and sampled estimators consume a shared
``random.Random`` in exactly the same way).

The CSR mirror is cached on the graph object and invalidated by the graph's
mutation stamp, so DDSR repair loops that interleave deletions with several
metric reads per checkpoint build the arrays once per checkpoint, not once
per metric.
"""

from __future__ import annotations

import random
from itertools import chain
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graphs.adjacency import GraphError, UndirectedGraph
from repro.graphs.metrics import _select_nodes

NodeId = Hashable

_CSR_CACHE_ATTR = "_csr_cache"


class CSRGraph:
    """Immutable CSR snapshot of an :class:`UndirectedGraph`.

    ``nodes`` preserves the graph's insertion order (``graph.nodes()``), so
    index ``i`` everywhere below refers to ``nodes[i]``.  Each undirected edge
    appears twice in ``indices`` (once per direction).
    """

    __slots__ = ("nodes", "index_of", "indptr", "indices")

    def __init__(
        self,
        nodes: List[NodeId],
        index_of: Dict[NodeId, int],
        indptr: np.ndarray,
        indices: np.ndarray,
    ) -> None:
        self.nodes = nodes
        self.index_of = index_of
        self.indptr = indptr
        self.indices = indices

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    def degrees(self) -> np.ndarray:
        """Degree of every node, in node order."""
        return np.diff(self.indptr)


def build_csr(graph: UndirectedGraph) -> CSRGraph:
    """Convert ``graph`` into a fresh :class:`CSRGraph` (no caching)."""
    adjacency = graph._adjacency
    nodes = list(adjacency)
    n = len(nodes)
    degrees = np.fromiter(
        (len(adjacency[node]) for node in nodes), dtype=np.int64, count=n
    )
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    total = int(indptr[-1])
    if nodes == list(range(n)):
        # Contiguous integer labels (every generator's output): neighbour ids
        # are already CSR indices, so skip the per-edge dict lookups.
        index_of = {node: node for node in nodes}
        flat = chain.from_iterable(adjacency[node] for node in nodes)
    else:
        index_of = {node: i for i, node in enumerate(nodes)}
        flat = (
            index_of[neighbor]
            for node in nodes
            for neighbor in adjacency[node]
        )
    indices = np.fromiter(flat, dtype=np.int32, count=total)
    return CSRGraph(nodes, index_of, indptr, indices)


def csr_of(graph: UndirectedGraph) -> CSRGraph:
    """The cached CSR mirror of ``graph``, rebuilt only after mutations."""
    stamp = graph.mutation_stamp
    cached = getattr(graph, _CSR_CACHE_ATTR, None)
    if cached is not None and cached[0] == stamp:
        return cached[1]
    csr = build_csr(graph)
    setattr(graph, _CSR_CACHE_ATTR, (stamp, csr))
    return csr


# ----------------------------------------------------------------------
# Core kernels
# ----------------------------------------------------------------------
def _gather_neighbors(csr: CSRGraph, frontier: np.ndarray) -> np.ndarray:
    """Concatenation of every frontier node's neighbour list (with duplicates)."""
    starts = csr.indptr[frontier]
    counts = csr.indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int32)
    exclusive = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=exclusive[1:])
    positions = np.repeat(starts - exclusive, counts) + np.arange(total, dtype=np.int64)
    return csr.indices[positions]


def bfs_distances(csr: CSRGraph, source_index: int) -> np.ndarray:
    """BFS distances (``-1`` for unreachable) from one node index."""
    distances = np.full(csr.n, -1, dtype=np.int64)
    distances[source_index] = 0
    frontier = np.array([source_index], dtype=np.int64)
    mask = np.zeros(csr.n, dtype=bool)
    depth = 0
    while frontier.size:
        candidates = _gather_neighbors(csr, frontier)
        if candidates.size == 0:
            break
        mask[:] = False
        mask[candidates] = True
        mask &= distances < 0
        frontier = np.flatnonzero(mask)
        depth += 1
        distances[frontier] = depth
    return distances


def _component_labels(
    n: int, indptr: np.ndarray, indices: np.ndarray
) -> np.ndarray:
    """Component label (minimum member index) for every node.

    Min-label propagation over the CSR neighbour segments
    (``np.minimum.reduceat``) alternated with pointer jumping; converges in
    O(log n) outer rounds even on path/ring graphs.
    """
    labels = np.arange(n, dtype=np.int64)
    if n == 0 or indices.size == 0:
        return labels
    degrees = np.diff(indptr)
    nonzero = np.flatnonzero(degrees > 0)
    starts = indptr[nonzero]
    while True:
        neighbor_min = np.minimum.reduceat(labels[indices], starts)
        proposal = labels.copy()
        proposal[nonzero] = np.minimum(labels[nonzero], neighbor_min)
        while True:
            hopped = proposal[proposal]
            if np.array_equal(hopped, proposal):
                break
            proposal = hopped
        if np.array_equal(proposal, labels):
            return labels
        labels = proposal


def component_labels(graph: UndirectedGraph) -> np.ndarray:
    """Component label array for ``graph`` (cached CSR)."""
    csr = csr_of(graph)
    return _component_labels(csr.n, csr.indptr, csr.indices)


# ----------------------------------------------------------------------
# metrics.py twins
# ----------------------------------------------------------------------
def shortest_path_lengths_from(graph: UndirectedGraph, source: NodeId) -> Dict[NodeId, int]:
    """BFS distances from ``source`` to every reachable node (including itself)."""
    csr = csr_of(graph)
    if source not in csr.index_of:
        raise GraphError(f"source {source!r} not in graph")
    distances = bfs_distances(csr, csr.index_of[source])
    reached = np.flatnonzero(distances >= 0)
    nodes = csr.nodes
    return {nodes[int(i)]: int(distances[i]) for i in reached}


def closeness_centrality(graph: UndirectedGraph, node: NodeId) -> float:
    """Normalised closeness centrality of ``node`` (reference-identical)."""
    n = graph.number_of_nodes()
    if n <= 1:
        return 0.0
    csr = csr_of(graph)
    if node not in csr.index_of:
        raise GraphError(f"source {node!r} not in graph")
    distances = bfs_distances(csr, csr.index_of[node])
    reached = distances >= 0
    reachable = int(reached.sum()) - 1
    if reachable == 0:
        return 0.0
    total = int(distances[reached].sum())
    closeness = reachable / total
    return closeness * (reachable / (n - 1))


def average_closeness_centrality(
    graph: UndirectedGraph,
    *,
    sample_size: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> float:
    """Mean closeness centrality over all nodes (or a deterministic sample)."""
    nodes = _select_nodes(graph, sample_size, rng)
    if not nodes:
        return 0.0
    return sum(closeness_centrality(graph, node) for node in nodes) / len(nodes)


def degree_centrality(graph: UndirectedGraph, node: NodeId) -> float:
    """Degree of ``node`` normalised by ``n - 1``."""
    n = graph.number_of_nodes()
    if n <= 1:
        return 0.0
    return graph.degree(node) / (n - 1)


def average_degree_centrality(graph: UndirectedGraph) -> float:
    """Mean degree centrality over every node."""
    n = graph.number_of_nodes()
    if n <= 1:
        return 0.0
    csr = csr_of(graph)
    total_degree = int(csr.indptr[-1])
    return (total_degree / n) / (n - 1)


def _grouped_components(labels: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Unique labels (ascending == discovery order) and their member indices."""
    order = np.argsort(labels, kind="stable")
    sorted_labels = labels[order]
    boundaries = np.flatnonzero(np.diff(sorted_labels)) + 1
    groups = np.split(order, boundaries)
    unique = sorted_labels[np.concatenate(([0], boundaries))] if labels.size else sorted_labels
    return unique, groups


def connected_components(graph: UndirectedGraph) -> List[Set[NodeId]]:
    """All connected components as sets of nodes, reference-identical order.

    The reference implementation discovers components by scanning
    ``graph.nodes()`` and stable-sorts by size (descending).  A component's
    label is its minimum node *index*, so ascending label order *is* discovery
    order; the same stable size sort then reproduces the exact list order.
    """
    csr = csr_of(graph)
    if csr.n == 0:
        return []
    labels = _component_labels(csr.n, csr.indptr, csr.indices)
    _, groups = _grouped_components(labels)
    sizes = np.fromiter((len(group) for group in groups), dtype=np.int64, count=len(groups))
    order = np.argsort(-sizes, kind="stable")
    nodes = csr.nodes
    return [{nodes[int(i)] for i in groups[int(g)]} for g in order]


def number_connected_components(graph: UndirectedGraph) -> int:
    """Count of connected components (0 for an empty graph)."""
    if graph.number_of_nodes() == 0:
        return 0
    labels = component_labels(graph)
    return len(np.unique(labels))


def component_summary(graph: UndirectedGraph) -> Tuple[int, int]:
    """``(component_count, largest_component_size)`` in one kernel run."""
    if graph.number_of_nodes() == 0:
        return 0, 0
    labels = component_labels(graph)
    _, counts = np.unique(labels, return_counts=True)
    return len(counts), int(counts.max())


def largest_component_fraction(graph: UndirectedGraph) -> float:
    """Fraction of surviving nodes inside the largest connected component."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0.0
    _, largest = component_summary(graph)
    return largest / n


def eccentricity(graph: UndirectedGraph, node: NodeId) -> int:
    """Largest BFS distance from ``node`` within its component."""
    csr = csr_of(graph)
    if node not in csr.index_of:
        raise GraphError(f"source {node!r} not in graph")
    distances = bfs_distances(csr, csr.index_of[node])
    return int(distances.max()) if distances.size else 0


def largest_component_subgraph(graph: UndirectedGraph) -> UndirectedGraph:
    """``graph`` when connected, else the induced largest-component subgraph."""
    if graph.number_of_nodes() == 0:
        return graph
    return _working_component(graph)[0]


def _working_component(graph: UndirectedGraph) -> Tuple[UndirectedGraph, int]:
    """``(graph-or-largest-component-subgraph, component_count)``.

    Mirrors the reference implementations exactly: the subgraph is built with
    the same ``UndirectedGraph.subgraph(set)`` call on an equal component set
    (largest, ties broken by discovery order), so node insertion order -- and
    therefore sampled-source selection -- is identical.
    """
    labels = component_labels(graph)
    unique, counts = np.unique(labels, return_counts=True)
    if len(unique) <= 1:
        return graph, len(unique)
    # ``unique`` ascends by label == discovery order; argmax keeps the first
    # (discovery-order) component among equal-size ties, like the reference's
    # stable size sort.
    winner = unique[int(np.argmax(counts))]
    nodes = csr_of(graph).nodes
    members = {nodes[int(i)] for i in np.flatnonzero(labels == winner)}
    return graph.subgraph(members), len(unique)


def diameter(
    graph: UndirectedGraph,
    *,
    sample_size: Optional[int] = None,
    rng: Optional[random.Random] = None,
    largest_component_only: bool = True,
    connected: Optional[bool] = None,
) -> float:
    """Diameter of the graph (see :func:`repro.graphs.metrics.diameter`)."""
    if graph.number_of_nodes() == 0:
        return 0.0
    if connected:
        working = graph
    else:
        working, component_count = _working_component(graph)
        if component_count > 1 and not largest_component_only:
            return float("inf")
    csr = csr_of(working)
    nodes = _select_nodes(working, sample_size, rng)
    best = 0
    for node in nodes:
        distances = bfs_distances(csr, csr.index_of[node])
        best = max(best, int(distances.max()))
    return float(best)


def average_shortest_path_length(
    graph: UndirectedGraph,
    *,
    sample_size: Optional[int] = None,
    rng: Optional[random.Random] = None,
    connected: Optional[bool] = None,
) -> float:
    """Mean pairwise distance inside the largest component (sampled sources)."""
    if graph.number_of_nodes() <= 1:
        return 0.0
    working = graph if connected else _working_component(graph)[0]
    csr = csr_of(working)
    nodes = _select_nodes(working, sample_size, rng)
    total = 0
    pairs = 0
    for node in nodes:
        distances = bfs_distances(csr, csr.index_of[node])
        reached = distances >= 0
        total += int(distances[reached].sum())
        pairs += int(reached.sum()) - 1
    if pairs == 0:
        return 0.0
    return total / pairs


def degree_histogram(graph: UndirectedGraph) -> Dict[int, int]:
    """Mapping of degree value -> number of nodes with that degree."""
    csr = csr_of(graph)
    if csr.n == 0:
        return {}
    values, counts = np.unique(csr.degrees(), return_counts=True)
    return {int(value): int(count) for value, count in zip(values, counts)}


# ----------------------------------------------------------------------
# Masked kernels (Figure 6 simultaneous-deletion sweeps)
# ----------------------------------------------------------------------
def partition_summary_after_removal(
    graph: UndirectedGraph, victims: Sequence[NodeId]
) -> Tuple[int, int, int, int]:
    """``(surviving, components, largest, isolated)`` after removing ``victims``.

    Computes the survivors' component structure directly on a masked CSR --
    no per-victim-set Python subgraph construction -- which is what makes the
    100k-node partition-threshold sweep tractable.
    """
    csr = csr_of(graph)
    keep = np.ones(csr.n, dtype=bool)
    for victim in victims:
        index = csr.index_of.get(victim)
        if index is not None:
            keep[index] = False
    surviving = int(keep.sum())
    if surviving == 0:
        return 0, 0, 0, 0
    # Filter to surviving-endpoint edges and rebuild a compact CSR over the
    # original index space (removed nodes simply keep zero degree).
    src = np.repeat(np.arange(csr.n, dtype=np.int64), csr.degrees())
    dst = csr.indices.astype(np.int64, copy=False)
    edge_keep = keep[src] & keep[dst]
    fsrc = src[edge_keep]
    fdst = dst[edge_keep]
    order = np.argsort(fsrc, kind="stable")
    findices = fdst[order]
    fdegrees = np.bincount(fsrc, minlength=csr.n)
    findptr = np.zeros(csr.n + 1, dtype=np.int64)
    np.cumsum(fdegrees, out=findptr[1:])
    labels = _component_labels(csr.n, findptr, findices)
    _, counts = np.unique(labels[keep], return_counts=True)
    components = len(counts)
    largest = int(counts.max())
    isolated = int((counts == 1).sum())
    return surviving, components, largest, isolated
