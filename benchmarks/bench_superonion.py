"""Figure 8 / section VII-B -- SuperOnionBots vs SOAP.

The SuperOnion construction (n physical hosts x m virtual bots, i peers per
virtual bot) detects soaped virtual bots through connectivity self-probes and
re-bootstraps them, so the *physical* botnet survives a SOAP campaign that
fully neutralizes the basic design.  The benchmark runs the two head-to-head
with the Figure 8 parameters (n=5, m=3, i=2) and at a larger scale.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.experiments import run_superonion_vs_soap
from repro.analysis.reporting import format_series, render_result_rows


def _render(super_result, basic_result):
    rows = [
        {
            "construction": "SuperOnion",
            "hosts_or_bots": super_result.hosts_total,
            "survival_fraction": round(super_result.host_survival_fraction, 2),
            "replacements": super_result.virtual_nodes_replaced,
            "attacker_clones": super_result.clones_spent,
        },
        {
            "construction": "Basic OnionBot",
            "hosts_or_bots": basic_result.n,
            "survival_fraction": round(1.0 - basic_result.campaign.containment_fraction, 2),
            "replacements": 0,
            "attacker_clones": basic_result.campaign.clones_created,
        },
    ]
    timeline = format_series(
        "SuperOnion host survival per round",
        [r for r, _ in super_result.survival_timeline],
        [f for _, f in super_result.survival_timeline],
    )
    return render_result_rows(rows) + "\n" + timeline


def test_superonion_figure8_parameters(benchmark):
    """The exact Figure 8 construction: n=5 hosts, m=3 virtual bots, i=2 peers."""
    super_result, basic_result = benchmark.pedantic(
        lambda: run_superonion_vs_soap(
            hosts=5, virtual_per_host=3, peers_per_virtual=2, rounds=8, targets_per_round=3, seed=81
        ),
        rounds=1,
        iterations=1,
    )
    emit("Figure 8 — SuperOnion (n=5, m=3, i=2) vs SOAP", _render(super_result, basic_result))
    assert basic_result.neutralized
    assert super_result.host_survival_fraction > 0.0


def test_superonion_larger_deployment(benchmark):
    """A larger SuperOnion deployment sustains its hosts through a longer campaign."""
    super_result, basic_result = benchmark.pedantic(
        lambda: run_superonion_vs_soap(
            hosts=12, virtual_per_host=4, peers_per_virtual=3, rounds=10, targets_per_round=4, seed=82
        ),
        rounds=1,
        iterations=1,
    )
    emit("SuperOnion (n=12, m=4, i=3) vs SOAP", _render(super_result, basic_result))
    assert basic_result.neutralized
    assert super_result.host_survival_fraction >= 0.5
    assert super_result.virtual_nodes_replaced > 0
