"""Golden regression tests for the paper-figure scenarios.

Each case pins the *exact* metric outputs of a Figure 4/5/6 runner scenario
(plus the two at-scale scenarios) at small n and a fixed seed, evaluated under
**both** graph backends.  Two properties are locked down at once:

* refactors cannot silently drift the paper numbers (the values below were
  produced by the reviewed implementation and are asserted bit-for-bit);
* the fast CSR backend stays interchangeable with the pure-Python reference
  at the full-scenario level, not just kernel by kernel -- including shared
  rng consumption across checkpoints.

All arithmetic on both paths is integer BFS work followed by float division
in a fixed order, so exact equality is portable across platforms.  If a
*deliberate* behaviour change moves these numbers, regenerate them with the
commands in the docstrings and say so in the commit message.
"""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")

from repro.graphs import backend
from repro.runner.registry import get_scenario

#: (scenario, params, seed) -> exact expected metrics.
GOLDENS = [
    (
        "fig4-centrality",
        {
            "n": 120,
            "degree": 6,
            "pruning": True,
            "max_fraction": 0.3,
            "checkpoints": 3,
            "closeness_sample": 16,
        },
        2024,
        {
            "initial_closeness": 0.3497140217914879,
            "final_closeness": 0.5132850011796675,
            "closeness_drop": -0.16357097938817955,
            "final_degree_centrality": 0.16609294320137694,
            "max_degree_observed": 15.0,
        },
    ),
    (
        "fig5-resilience",
        {"n": 120, "k": 10, "max_fraction": 0.9, "checkpoints": 6, "diameter_sample": 12},
        77,
        {
            "ddsr_stays_connected_until": 0.9,
            "normal_partition_fraction": 0.75,
            "max_ddsr_components": 1.0,
            "max_normal_components": 5.0,
            "ddsr_final_degree_centrality": 0.5172413793103449,
            "normal_final_degree_centrality": 0.08505747126436781,
            "ddsr_initial_diameter": 4.0,
            "ddsr_late_diameter": 2.0,
        },
    ),
    (
        "fig6-partition-threshold",
        {"size": 150, "k": 10, "resolution": 0.05, "trials_per_fraction": 2},
        9,
        {"fraction": 0.55, "nodes_to_partition": 82.0},
    ),
    (
        "resilience-at-scale",
        {"n": 400, "k": 10, "max_fraction": 0.5, "checkpoints": 4, "metric_sample": 16},
        5,
        {
            "n": 400.0,
            "deleted": 200.0,
            "survivors": 200.0,
            "stayed_connected_until_fraction": 0.5,
            "final_components": 1.0,
            "final_largest_fraction": 1.0,
            "initial_diameter": 4.0,
            "final_diameter": 3.0,
            "initial_avg_path_length": 2.843828320802005,
            "final_avg_path_length": 2.227701005025126,
            # Exact full-population closeness (closeness_sample=None): the
            # multi-word wave engine made every-node-a-source affordable.
            "initial_avg_closeness": 0.3521321221062865,
            "final_avg_closeness": 0.44903600009225864,
            "final_degree_centrality": 0.07512562814070352,
            "repair_edges_added": 17216.0,
            "max_degree": 15.0,
        },
    ),
    (
        # The same sweep under the PR 5 exact defaults (metric_sample=None):
        # diameter and ASPL are exact full-population values from the
        # one-campaign accumulator path, no sampling anywhere.
        "resilience-at-scale",
        {"n": 400, "k": 10, "max_fraction": 0.5, "checkpoints": 4},
        5,
        {
            "n": 400.0,
            "deleted": 200.0,
            "survivors": 200.0,
            "stayed_connected_until_fraction": 0.5,
            "final_components": 1.0,
            "final_largest_fraction": 1.0,
            "initial_diameter": 4.0,
            "final_diameter": 3.0,
            "initial_avg_path_length": 2.839987468671679,
            "final_avg_path_length": 2.2272361809045225,
            "initial_avg_closeness": 0.3521321221062865,
            "final_avg_closeness": 0.44903600009225864,
            "final_degree_centrality": 0.07512562814070352,
            "repair_edges_added": 17216.0,
            "max_degree": 15.0,
        },
    ),
    (
        "partition-threshold-at-scale",
        {"size": 300, "k": 10, "resolution": 0.05, "trials_per_fraction": 1},
        3,
        {
            "fraction": 0.6,
            "nodes_to_partition": 180.0,
            "surviving_at_threshold": 120.0,
            "components_at_threshold": 1.0,
            "largest_fraction_at_threshold": 1.0,
            "isolated_at_threshold": 0.0,
        },
    ),
]

IDS = [name for name, _, _, _ in GOLDENS]


@pytest.mark.parametrize("graph_backend", ["python", "fast"])
@pytest.mark.parametrize("name,params,seed,expected", GOLDENS, ids=IDS)
def test_figure_scenario_goldens(graph_backend, name, params, seed, expected):
    """The scenario reproduces its pinned metrics exactly, on either backend.

    Regenerate (after a *deliberate* change) with::

        PYTHONPATH=src python - <<'PY'
        from repro.runner.registry import get_scenario
        print(get_scenario(NAME).call(seed=SEED, **PARAMS))
        PY
    """
    with backend.using(graph_backend):
        result = get_scenario(name).call(seed=seed, **params)
    assert result == expected


@pytest.mark.parametrize("name,params,seed,expected", GOLDENS, ids=IDS)
def test_backends_agree_bit_for_bit(name, params, seed, expected):
    """Beyond the pins: both backends produce the identical metric mapping."""
    with backend.using("python"):
        reference = get_scenario(name).call(seed=seed, **params)
    with backend.using("fast"):
        vectorized = get_scenario(name).call(seed=seed, **params)
    assert vectorized == reference
