"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

import networkx as nx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ddsr import DDSRConfig, DDSROverlay
from repro.core.messaging import ENVELOPE_SIZE, build_envelope, open_envelope
from repro.crypto.elligator import decode_uniform, encode_uniform
from repro.crypto.keys import KeyPair
from repro.crypto.symmetric import open_sealed, seal
from repro.graphs.generators import k_regular_graph, to_networkx
from repro.graphs.metrics import (
    closeness_centrality,
    number_connected_components,
)
from repro.sim.events import EventQueue
from repro.tor.cells import chunk_payload, reassemble_cells
from repro.tor.hsdir import REPLICAS, SPREAD, responsible_hsdirs
from repro.tor.onion_address import onion_address_from_public_key

_SLOW = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestGraphProperties:
    @_SLOW
    @given(
        n=st.integers(min_value=20, max_value=80),
        k=st.sampled_from([4, 6, 8]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_k_regular_generator_always_produces_k_regular_graphs(self, n, k, seed):
        graph = k_regular_graph(n, k, seed=seed)
        assert all(graph.degree(node) == k for node in graph.nodes())
        assert graph.number_of_edges() == n * k // 2

    @_SLOW
    @given(
        n=st.integers(min_value=10, max_value=40),
        p=st.floats(min_value=0.1, max_value=0.5),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_closeness_centrality_matches_networkx_on_random_graphs(self, n, p, seed):
        from repro.graphs.generators import erdos_renyi_graph

        graph = erdos_renyi_graph(n, p, seed=seed)
        nx_graph = to_networkx(graph)
        nx_closeness = nx.closeness_centrality(nx_graph)
        rng = random.Random(seed)
        for node in rng.sample(graph.nodes(), min(5, len(graph.nodes()))):
            ours = closeness_centrality(graph, node)
            assert abs(ours - nx_closeness[node]) < 1e-9


class TestDDSRInvariants:
    @_SLOW
    @given(
        n=st.integers(min_value=30, max_value=80),
        k=st.sampled_from([6, 8, 10]),
        fraction=st.floats(min_value=0.05, max_value=0.5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_degree_bound_holds_after_any_deletion_sequence(self, n, k, fraction, seed):
        overlay = DDSROverlay.k_regular(n, k, seed=seed)
        overlay.remove_fraction(fraction, rng=random.Random(seed + 1))
        assert overlay.degree_bounds_satisfied()

    @_SLOW
    @given(
        n=st.integers(min_value=30, max_value=70),
        fraction=st.floats(min_value=0.05, max_value=0.6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_incremental_deletions_never_partition_a_10_regular_overlay(self, n, fraction, seed):
        overlay = DDSROverlay.k_regular(n, 10, seed=seed)
        overlay.remove_fraction(fraction, rng=random.Random(seed + 2))
        if len(overlay) > 1:
            assert number_connected_components(overlay.graph) == 1

    @_SLOW
    @given(
        d_max=st.integers(min_value=4, max_value=12),
        extra_edges=st.integers(min_value=1, max_value=20),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_enforce_degree_bound_always_restores_the_bound(self, d_max, extra_edges, seed):
        overlay = DDSROverlay.k_regular(
            40, 4, config=DDSRConfig(d_min=2, d_max=d_max), seed=seed
        )
        rng = random.Random(seed)
        node = overlay.nodes()[0]
        others = [other for other in overlay.nodes() if other != node]
        for other in rng.sample(others, min(extra_edges, len(others))):
            if not overlay.graph.has_edge(node, other):
                overlay.graph.add_edge(node, other)
        overlay.enforce_degree_bound(node)
        assert overlay.degree(node) <= d_max


class TestCryptoProperties:
    @_SLOW
    @given(payload=st.binary(min_size=0, max_size=2000), randomness=st.binary(min_size=1, max_size=64))
    def test_uniform_encoding_roundtrips(self, payload, randomness):
        assert decode_uniform(encode_uniform(payload, randomness)) == payload

    @_SLOW
    @given(
        key=st.binary(min_size=1, max_size=64),
        plaintext=st.binary(min_size=0, max_size=1000),
        nonce=st.binary(min_size=8, max_size=32),
    )
    def test_seal_roundtrips(self, key, plaintext, nonce):
        assert open_sealed(key, seal(key, plaintext, nonce)) == plaintext

    @_SLOW
    @given(
        plaintext=st.binary(min_size=0, max_size=1500),
        key=st.binary(min_size=1, max_size=64),
        randomness=st.binary(min_size=16, max_size=64),
    )
    def test_envelopes_are_constant_size_and_roundtrip(self, plaintext, key, randomness):
        envelope = build_envelope(plaintext, key, randomness)
        assert envelope.size == ENVELOPE_SIZE
        assert open_envelope(envelope, key) == plaintext

    @_SLOW
    @given(seed=st.binary(min_size=1, max_size=64))
    def test_onion_addresses_are_always_valid(self, seed):
        address = onion_address_from_public_key(KeyPair.from_seed(seed))
        assert len(address.label) == 16
        assert str(address).endswith(".onion")


class TestTorProperties:
    @_SLOW
    @given(
        payload=st.binary(min_size=0, max_size=4000),
        circuit_id=st.integers(min_value=0, max_value=2**16),
    )
    def test_cell_chunking_roundtrips_and_pads(self, payload, circuit_id):
        cells = chunk_payload(circuit_id, payload)
        assert all(cell.size == cells[0].size for cell in cells)
        assert reassemble_cells(cells) == payload

    @_SLOW
    @given(
        service_seed=st.binary(min_size=1, max_size=32),
        when=st.floats(min_value=0, max_value=10 * 86400),
        n_relays=st.integers(min_value=6, max_value=25),
    )
    def test_responsible_hsdirs_are_consistent_and_bounded(self, service_seed, when, n_relays):
        from repro.crypto.keys import KeyPair as KP
        from repro.tor.consensus import DirectoryAuthority
        from repro.tor.onion_address import service_identifier
        from repro.tor.relay import Relay

        authority = DirectoryAuthority()
        for index in range(n_relays):
            authority.register(
                Relay(
                    nickname=f"r{index}",
                    keypair=KP.from_seed(b"prop-relay-%d" % index),
                    joined_at=-30 * 3600.0,
                )
            )
        consensus = authority.publish_consensus(now=0.0)
        identifier = service_identifier(KP.from_seed(service_seed).public)
        first = responsible_hsdirs(consensus, identifier, when)
        second = responsible_hsdirs(consensus, identifier, when)
        assert [e.fingerprint for e in first] == [e.fingerprint for e in second]
        assert 1 <= len(first) <= REPLICAS * SPREAD
        fingerprints = [e.fingerprint for e in first]
        assert len(fingerprints) == len(set(fingerprints))


class TestEventQueueProperties:
    @_SLOW
    @given(
        timestamps=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200)
    )
    def test_events_always_pop_in_nondecreasing_time_order(self, timestamps):
        queue = EventQueue()
        for timestamp in timestamps:
            queue.push(timestamp, lambda: None)
        popped = [event.timestamp for event in queue.drain()]
        assert popped == sorted(popped)
        assert len(popped) == len(timestamps)
