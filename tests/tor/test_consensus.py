"""Tests for the directory authority and consensus documents."""

import pytest

from repro.crypto.keys import KeyPair
from repro.tor.consensus import CONSENSUS_INTERVAL, DirectoryAuthority
from repro.tor.relay import Relay, RelayFlag


def make_relay(name: str, joined_at: float = 0.0, adversarial: bool = False) -> Relay:
    return Relay(
        nickname=name,
        keypair=KeyPair.from_seed(name.encode()),
        joined_at=joined_at,
        is_adversarial=adversarial,
    )


class TestRegistration:
    def test_register_and_lookup(self):
        authority = DirectoryAuthority()
        relay = make_relay("r1")
        authority.register(relay)
        assert authority.relay(relay.fingerprint) is relay
        assert len(authority.relays()) == 1

    def test_duplicate_registration_rejected(self):
        authority = DirectoryAuthority()
        relay = make_relay("r1")
        authority.register(relay)
        with pytest.raises(ValueError):
            authority.register(make_relay("r1"))

    def test_deregister(self):
        authority = DirectoryAuthority()
        relay = make_relay("r1")
        authority.register(relay)
        authority.deregister(relay.fingerprint)
        assert authority.relay(relay.fingerprint) is None


class TestConsensus:
    def test_consensus_includes_online_relays_only(self):
        authority = DirectoryAuthority()
        online = make_relay("online")
        offline = make_relay("offline")
        offline.go_offline(now=10.0)
        authority.register(online)
        authority.register(offline)
        consensus = authority.publish_consensus(now=100.0)
        assert len(consensus) == 1
        assert consensus.entries[0].nickname == "online"

    def test_hsdir_flag_assigned_after_25_hours(self):
        authority = DirectoryAuthority()
        old = make_relay("old", joined_at=0.0)
        fresh = make_relay("fresh", joined_at=26 * 3600.0 - 600.0)
        authority.register(old)
        authority.register(fresh)
        consensus = authority.publish_consensus(now=26 * 3600.0)
        hsdirs = {entry.nickname for entry in consensus.hsdirs()}
        assert hsdirs == {"old"}

    def test_stable_flag_after_8_hours(self):
        authority = DirectoryAuthority()
        authority.register(make_relay("r", joined_at=0.0))
        consensus = authority.publish_consensus(now=9 * 3600.0)
        assert consensus.entries[0].has_flag(RelayFlag.STABLE)

    def test_hsdir_ring_sorted_by_fingerprint(self):
        authority = DirectoryAuthority()
        for index in range(10):
            authority.register(make_relay(f"r{index}", joined_at=-30 * 3600.0))
        consensus = authority.publish_consensus(now=0.0)
        ring = consensus.hsdir_ring()
        fingerprints = [entry.fingerprint for entry in ring]
        assert fingerprints == sorted(fingerprints)
        assert len(ring) == 10

    def test_consensus_validity_window(self):
        authority = DirectoryAuthority()
        consensus = authority.publish_consensus(now=1000.0)
        assert consensus.valid_until == 1000.0 + CONSENSUS_INTERVAL

    def test_find_by_fingerprint(self):
        authority = DirectoryAuthority()
        relay = make_relay("r1")
        authority.register(relay)
        consensus = authority.publish_consensus(now=0.0)
        assert consensus.find(relay.fingerprint).nickname == "r1"
        assert consensus.find(b"\x00" * 20) is None

    def test_latest_consensus_and_history(self):
        authority = DirectoryAuthority()
        authority.register(make_relay("r1"))
        first = authority.publish_consensus(now=0.0)
        second = authority.publish_consensus(now=3600.0)
        assert authority.latest_consensus is second
        assert authority.consensus_history == [first, second]

    def test_adversarial_flag_carried_into_entries(self):
        authority = DirectoryAuthority()
        authority.register(make_relay("evil", adversarial=True))
        consensus = authority.publish_consensus(now=0.0)
        assert consensus.entries[0].is_adversarial
