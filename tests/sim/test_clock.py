"""Tests for the simulated clock."""

import pytest

from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR, ClockError, SimClock


class TestSimClockBasics:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(start=100.0).now == 100.0

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            SimClock(start=-1.0)

    def test_advance_to_moves_forward(self):
        clock = SimClock()
        assert clock.advance_to(50.0) == 50.0
        assert clock.now == 50.0

    def test_advance_to_same_time_is_allowed(self):
        clock = SimClock(start=10.0)
        assert clock.advance_to(10.0) == 10.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(start=10.0)
        with pytest.raises(ClockError):
            clock.advance_to(5.0)

    def test_advance_by_delta(self):
        clock = SimClock(start=5.0)
        assert clock.advance_by(2.5) == 7.5

    def test_advance_by_negative_rejected(self):
        clock = SimClock()
        with pytest.raises(ClockError):
            clock.advance_by(-0.1)


class TestProtocolUnits:
    def test_hours_and_days_properties(self):
        clock = SimClock(start=SECONDS_PER_DAY + SECONDS_PER_HOUR)
        assert clock.hours == pytest.approx(25.0)
        assert clock.days == pytest.approx(25.0 / 24.0)

    def test_period_index_daily(self):
        clock = SimClock(start=3 * SECONDS_PER_DAY + 10)
        assert clock.period_index() == 3

    def test_period_index_custom_period(self):
        clock = SimClock(start=7200.0)
        assert clock.period_index(period_seconds=3600.0) == 2

    def test_period_index_rejects_nonpositive_period(self):
        clock = SimClock()
        with pytest.raises(ClockError):
            clock.period_index(period_seconds=0)

    def test_seconds_until_period_boundary(self):
        clock = SimClock(start=SECONDS_PER_DAY - 100)
        assert clock.seconds_until_period() == pytest.approx(100.0)

    def test_seconds_until_period_at_boundary(self):
        clock = SimClock(start=SECONDS_PER_DAY)
        # Exactly on a boundary the next boundary is a full period away.
        assert clock.seconds_until_period() == pytest.approx(SECONDS_PER_DAY)
