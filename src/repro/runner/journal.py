"""Atomic per-campaign journals: crash-safe progress records and ``--resume``.

A journal is one append-only JSONL file per campaign.  The first line is a
**header** pinning everything that determines the campaign's output -- the
resolved spec hash, scenario name and version, master seed, trials, unit
count, and the active execution environment (graph backend / wave width /
popcount policy, the same knobs :meth:`repro.runner.spec.WorkUnit.key_material`
folds into cache keys).  Every completed work unit appends one
``{"unit": index, "metrics": {...}}`` record (flushed immediately, so a
SIGKILL mid-campaign loses at most the record in flight), and a finished
campaign appends a ``{"complete": true}`` marker.

Schema v2 (``repro.runner/journal.v2``; the loader still reads v1) adds
**sub-unit checkpoint records**: a long-running unit whose exact
path-metric checkpoints run in the parent process appends one
``{"ckpt": unit, "seq": k, "key": ..., "span": [a, b], "state": {...}}``
record per completed checkpoint *shard* -- the serialized int64
eccentricity-max / distance-sum accumulators of
:func:`repro.graphs.fast.accumulate_path_shard`, keyed by a content hash of
the checkpoint's CSR snapshot and source set plus the shard's source span.
``--resume`` then re-enters a partially-finished unit: when the re-run
reaches a checkpoint whose content key matches a journaled one, the saved
accumulators are reloaded instead of recomputed (integer exactness makes
the merge order-free, so the resumed aggregates stay **bit-identical** to
an uninterrupted run), and at most one checkpoint shard of work is lost.

``python -m repro.runner run --resume`` replays the recorded units verbatim
-- JSON round-trips IEEE doubles exactly, and the executor drains results
in unit-schedule order either way.  Resume refuses a journal whose header
does not match the current campaign (different spec, scenario version, or
execution environment) with a :class:`~repro.core.errors.ConfigError`
naming the mismatched fields.

Crash tolerance on load: a process killed mid-append can leave one
truncated trailing line; it is dropped (with a warning) and the record
simply recomputes.  Anything undecodable *before* the end means real
corruption and fails loudly.  Filesystem **pressure** never fails a
campaign: a journal append the filesystem refuses (``ENOSPC``, read-only
root...) logs one warning, counts ``runner.journal.write_failed`` and
degrades the rest of the campaign to un-journaled execution -- mirroring
:meth:`repro.runner.cache.ResultCache.put` -- and an oversized checkpoint
state (above :func:`state_limit_policy`) is dropped with a logged fallback
to unit-granularity journaling instead of bloating the journal.
"""

from __future__ import annotations

import json
import logging
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.obs.telemetry import current as _telemetry

logger = logging.getLogger(__name__)

#: Versioned identifier stamped into every new journal header.
JOURNAL_SCHEMA = "repro.runner/journal.v2"

#: The PR 8 schema: unit records only.  Still accepted on load/resume --
#: a v1 journal simply carries no sub-unit checkpoint state.
JOURNAL_SCHEMA_V1 = "repro.runner/journal.v1"

#: Every schema the loader accepts.
ACCEPTED_SCHEMAS = (JOURNAL_SCHEMA, JOURNAL_SCHEMA_V1)

#: Per-record byte budget for serialized checkpoint state
#: (:func:`state_limit_policy` override).  A 1M-node checkpoint shard is a
#: few MB compressed; anything past this cap falls back -- loudly -- to
#: unit-granularity journaling rather than ballooning the journal file.
STATE_LIMIT_ENV_VAR = "REPRO_JOURNAL_STATE_LIMIT"

#: Default checkpoint-state cap in bytes (64 MiB).
DEFAULT_STATE_LIMIT = 64 * 1024 * 1024


def state_limit_policy() -> int:
    """Max encoded bytes of one checkpoint-state record (default 64 MiB).

    Parses :data:`STATE_LIMIT_ENV_VAR`; an invalid value raises
    :class:`repro.core.errors.ConfigError` instead of silently journaling
    unbounded state.
    """
    raw = os.environ.get(STATE_LIMIT_ENV_VAR, "").strip()
    if not raw:
        return DEFAULT_STATE_LIMIT
    from repro.core.errors import ConfigError

    try:
        value = int(raw)
    except ValueError:
        value = 0
    if value < 1:
        raise ConfigError(
            f"invalid {STATE_LIMIT_ENV_VAR}={raw!r}; expected a positive "
            "integer byte budget"
        )
    return value


def environment_pins() -> Dict[str, Any]:
    """The execution-environment fields pinned into every journal header.

    The same knobs :meth:`repro.runner.spec.WorkUnit.key_material` folds
    into cache keys: anything that could change a recorded value must
    refuse to replay under a different setting.
    """
    from repro.graphs import backend

    return {
        "graph_backend": backend.policy(),
        "bfs_batch": backend.bfs_batch_policy(),
        "popcount_lut": backend.popcount_lut_forced(),
    }


def journal_header(spec, version: str, unit_count: int) -> Dict[str, Any]:
    """The header record for one campaign: identity plus execution env.

    ``spec`` must already be resolved against the scenario's defaults --
    the executor builds the header from the same spec its unit seeds derive
    from, so a default edit (new resolved hash) or a version bump can never
    replay stale results.
    """
    header = {
        "journal": JOURNAL_SCHEMA,
        "scenario": spec.name,
        "version": version,
        "spec_hash": spec.spec_hash(),
        "seed": spec.seed,
        "trials": spec.trials,
        "units": unit_count,
    }
    header.update(environment_pins())
    return header


def _header_mismatches(recorded: Mapping[str, Any], header: Mapping[str, Any]):
    """Field names of ``header`` that ``recorded`` contradicts.

    The ``journal`` schema tag is compared separately (v1 journals resume
    under v2 code); every identity/environment field must match exactly.
    """
    return sorted(
        key
        for key in header
        if key != "journal" and recorded.get(key) != header[key]
    )


class CampaignJournal:
    """One campaign's append-only progress journal on disk."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = None
        #: Set once the filesystem refuses an append: the campaign carries
        #: on un-journaled (warned once, counted once per journal).
        self.write_failed = False
        #: Sub-unit checkpoint states loaded by the last :meth:`_read` --
        #: ``{(unit, seq): {"key": str, "spans": {(a, b): state-dict}}}``.
        self.checkpoints: Dict[Tuple[int, int], Dict[str, Any]] = {}

    # -- reading -------------------------------------------------------
    def _read(self) -> Tuple[Optional[Dict[str, Any]], Dict[int, Dict[str, float]], bool]:
        """Parse the file: ``(header, {unit_index: metrics}, complete)``.

        Sub-unit checkpoint records land in :attr:`checkpoints` as a side
        effect.  Tolerates exactly one undecodable *trailing* line (a crash
        between write and flush); earlier garbage raises ``ConfigError``.
        """
        from repro.core.errors import ConfigError
        from repro.runner import faults

        header: Optional[Dict[str, Any]] = None
        units: Dict[int, Dict[str, float]] = {}
        checkpoints: Dict[Tuple[int, int], Dict[str, Any]] = {}
        complete = False
        try:
            faults.fault_point("journal.read")
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except FileNotFoundError:
            raise
        except OSError as error:
            raise ConfigError(
                f"journal {self.path} could not be read ({error}); "
                "delete it to start the campaign from scratch"
            ) from error
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines):
                    logger.warning(
                        "journal %s: dropping truncated trailing record "
                        "(crash mid-append); the record will recompute",
                        self.path,
                    )
                    break
                raise ConfigError(
                    f"journal {self.path} is corrupt at line {lineno}; "
                    "delete it to start the campaign from scratch"
                ) from None
            if header is None:
                if (
                    not isinstance(record, dict)
                    or record.get("journal") not in ACCEPTED_SCHEMAS
                ):
                    raise ConfigError(
                        f"journal {self.path} has no {JOURNAL_SCHEMA} header; "
                        "delete it to start the campaign from scratch"
                    )
                header = record
            elif record.get("complete"):
                complete = True
            elif "ckpt" in record:
                self._load_checkpoint_record(record, checkpoints)
            elif "unit" in record:
                units[int(record["unit"])] = {
                    str(key): float(value)
                    for key, value in record.get("metrics", {}).items()
                }
        self.checkpoints = checkpoints
        return header, units, complete

    def _load_checkpoint_record(
        self,
        record: Mapping[str, Any],
        checkpoints: Dict[Tuple[int, int], Dict[str, Any]],
    ) -> None:
        """Fold one ``ckpt`` record into the per-``(unit, seq)`` state map.

        A record whose content key disagrees with an earlier one for the
        same checkpoint replaces it wholesale (the later run's environment
        won); a structurally broken record is dropped with a warning --
        checkpoint state is an optimization, never worth failing a resume.
        """
        try:
            unit = int(record["ckpt"])
            seq = int(record["seq"])
            key = str(record["key"])
            a, b = record["span"]
            span = (int(a), int(b))
            state = record["state"]
            if not isinstance(state, dict):
                raise TypeError("state must be a mapping")
        except (KeyError, TypeError, ValueError) as error:
            logger.warning(
                "journal %s: dropping malformed checkpoint record (%s); "
                "that shard will recompute",
                self.path,
                error,
            )
            return
        entry = checkpoints.get((unit, seq))
        if entry is None or entry["key"] != key:
            entry = {"key": key, "spans": {}}
            checkpoints[(unit, seq)] = entry
        entry["spans"][span] = state

    def resume_state(self, header: Mapping[str, Any]) -> Dict[int, Dict[str, float]]:
        """Validate the on-disk journal against ``header`` and load its units.

        Also populates :attr:`checkpoints` with the journal's sub-unit
        checkpoint states.  Raises ``ConfigError`` when there is nothing to
        resume or the journal belongs to a different campaign/environment.
        """
        from repro.core.errors import ConfigError

        if not self.path.exists():
            raise ConfigError(
                f"nothing to resume: no journal at {self.path} "
                "(run without --resume first)"
            )
        recorded, units, _complete = self._read()
        if recorded is None:
            raise ConfigError(
                f"nothing to resume: journal {self.path} has no readable header"
            )
        mismatched = _header_mismatches(recorded, header)
        if mismatched:
            detail = ", ".join(
                f"{key}: journal={recorded.get(key)!r} vs campaign={header[key]!r}"
                for key in mismatched
            )
            raise ConfigError(
                f"journal {self.path} does not match this campaign ({detail}); "
                "delete it or rerun without --resume"
            )
        total = int(header["units"])
        out_of_range = [index for index in units if not 0 <= index < total]
        if out_of_range:
            raise ConfigError(
                f"journal {self.path} records out-of-range unit(s) "
                f"{sorted(out_of_range)} for a {total}-unit campaign"
            )
        stale = [key for key in self.checkpoints if not 0 <= key[0] < total]
        for key in stale:
            # Checkpoint state is an optimization: out-of-range records are
            # dropped (warned), never fatal like a contradictory unit record.
            logger.warning(
                "journal %s: dropping checkpoint state for out-of-range "
                "unit %d",
                self.path,
                key[0],
            )
            del self.checkpoints[key]
        return units

    # -- writing -------------------------------------------------------
    def open(self, header: Mapping[str, Any], *, resume: bool = False) -> None:
        """Start journaling: fresh runs truncate and write the header,
        resumed runs append below the existing records.

        A resumed open **re-verifies** the on-disk header immediately
        before appending: the tolerant-truncation pass (or a concurrent
        writer) may have changed what is actually on disk since
        :meth:`resume_state` ran, and appending under a stale or absent pin
        would let a journal truncated down into its header silently restart
        a different campaign.  Mismatch or unreadable header raises
        :class:`~repro.core.errors.ConfigError`.
        """
        from repro.core.errors import ConfigError

        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume and self.path.exists():
            recorded, _units, _complete = self._read()
            if recorded is None:
                raise ConfigError(
                    f"cannot resume into journal {self.path}: no readable "
                    "header survives on disk; delete it and rerun without "
                    "--resume"
                )
            mismatched = _header_mismatches(recorded, header)
            if mismatched:
                raise ConfigError(
                    f"cannot resume into journal {self.path}: the on-disk "
                    f"header no longer matches this campaign "
                    f"(fields: {', '.join(mismatched)}); delete it or rerun "
                    "without --resume"
                )
            self._handle = self.path.open("a", encoding="utf-8")
            return
        self._handle = self.path.open("w", encoding="utf-8")
        self._append(header, fsync=True)

    def _degrade_writes(self, error: OSError) -> None:
        """First refused append: warn once, count once, stop journaling.

        The campaign's results are all in memory (and in the cache when one
        is active), so an ailing filesystem must cost the *journal*, never
        the run -- the same posture as ``ResultCache.put``.
        """
        self.write_failed = True
        _telemetry().count("runner.journal.write_failed")
        logger.warning(
            "journal %s: append refused by the filesystem (%s); continuing "
            "the campaign un-journaled (--resume will replay only the "
            "records already on disk)",
            self.path,
            error,
        )
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def _append(self, record: Mapping[str, Any], *, fsync: bool = False) -> bool:
        if self._handle is None:
            return False
        from repro.runner import faults

        try:
            faults.fault_point("journal.write")
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            # Flush every record: a SIGKILLed parent then loses at most the
            # line being written, and the tolerant loader drops that one.
            self._handle.flush()
            if fsync:
                os.fsync(self._handle.fileno())
        except OSError as error:
            self._degrade_writes(error)
            return False
        return True

    def record_unit(self, index: int, metrics: Mapping[str, float]) -> None:
        """Append one completed unit's metrics."""
        self._append({"unit": index, "metrics": dict(metrics)})

    def record_checkpoint_shard(
        self,
        unit: int,
        seq: int,
        key: str,
        span: Tuple[int, int],
        spans: int,
        state: Mapping[str, str],
    ) -> bool:
        """Append one completed checkpoint shard's serialized accumulators.

        ``state`` maps accumulator names to encoded payloads
        (:func:`repro.graphs.fast.serialize_accumulators`).  Oversized
        states (past :func:`state_limit_policy`) are not written: the
        fallback to unit-granularity journaling is logged and counted
        (``runner.journal.ckpt_oversize``), because an interrupted unit
        that silently stopped checkpointing would look resumable-at-shard
        granularity when it is not.
        """
        if self._handle is None:
            return False
        encoded_size = sum(len(value) for value in state.values())
        if encoded_size > state_limit_policy():
            _telemetry().count("runner.journal.ckpt_oversize")
            logger.warning(
                "journal %s: checkpoint state for unit %d seq %d is %d "
                "bytes (limit %d, %s); falling back to unit-granularity "
                "journaling for this checkpoint",
                self.path,
                unit,
                seq,
                encoded_size,
                state_limit_policy(),
                STATE_LIMIT_ENV_VAR,
            )
            return False
        written = self._append(
            {
                "ckpt": unit,
                "seq": seq,
                "key": key,
                "span": [int(span[0]), int(span[1])],
                "spans": int(spans),
                "state": dict(state),
            }
        )
        if written:
            _telemetry().count("runner.journal.ckpt_recorded")
        return written

    def finish(self) -> None:
        """Mark the campaign complete and close the file."""
        self._append({"complete": True}, fsync=True)
        self.close()

    def close(self) -> None:
        """Close the handle (idempotent; an unfinished journal stays resumable)."""
        if self._handle is not None:
            try:
                self._handle.flush()
            except OSError:
                pass
            finally:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None


# ----------------------------------------------------------------------
# Sub-unit checkpoint plumbing (parent-process state)
# ----------------------------------------------------------------------
# The executor installs one CheckpointJournalContext per journaled campaign
# and a UnitCheckpointScope around every work unit it computes *in the
# parent process* (the serial ``workers=1`` loop and the degraded-serial
# drain).  Checkpointed computations deep inside a unit -- the exact
# path-metric campaigns of ``sharded_full_path_metrics`` -- consult
# :func:`active_unit_scope` to replay journaled accumulators and to record
# fresh ones.  Pool workers never see this state (it is process-local and
# never shipped), so a unit running in a worker journals at unit
# granularity exactly as before.

class CheckpointJournalContext:
    """One journaled campaign's sub-unit checkpoint state (parent-side)."""

    def __init__(
        self,
        journal: CampaignJournal,
        saved: Mapping[Tuple[int, int], Dict[str, Any]],
    ) -> None:
        self.journal = journal
        self.saved = dict(saved)
        #: Checkpoint shards replayed from the journal instead of computed.
        self.shards_replayed = 0
        #: Fresh checkpoint shards appended to the journal.
        self.shards_recorded = 0


class UnitCheckpointScope:
    """One in-parent work unit's view of the campaign checkpoint context."""

    def __init__(self, context: CheckpointJournalContext, unit_index: int) -> None:
        self.context = context
        self.unit = unit_index
        #: Checkpoints are numbered in execution order within the unit; the
        #: re-run reaches them in the same deterministic order, which is
        #: what lets ``seq`` anchor a journaled state to "the k-th
        #: checkpoint of unit i".
        self.seq = 0

    def begin_checkpoint(self, key: str) -> Tuple[int, Dict[Tuple[int, int], Any]]:
        """Enter the next checkpoint; returns ``(seq, saved_spans)``.

        ``saved_spans`` maps source spans to serialized states journaled
        for this exact checkpoint (same unit, same sequence position, same
        content key).  A key mismatch -- the journaled state belongs to a
        different graph snapshot -- yields no spans: the checkpoint simply
        recomputes, it can never replay the wrong state.
        """
        seq = self.seq
        self.seq += 1
        entry = self.context.saved.get((self.unit, seq))
        if entry is not None and entry["key"] == key:
            return seq, dict(entry["spans"])
        return seq, {}

    def note_replayed(self, spans: int = 1) -> None:
        self.context.shards_replayed += spans
        _telemetry().count("runner.journal.ckpt_replayed", spans)

    def record_shard(
        self,
        seq: int,
        key: str,
        span: Tuple[int, int],
        spans: int,
        state: Mapping[str, str],
    ) -> None:
        if self.context.journal.record_checkpoint_shard(
            self.unit, seq, key, span, spans, state
        ):
            self.context.shards_recorded += 1


_campaign_context: Optional[CheckpointJournalContext] = None
_active_scope: Optional[UnitCheckpointScope] = None


@contextmanager
def campaign_checkpoints(
    journal: Optional[CampaignJournal],
    saved: Optional[Mapping[Tuple[int, int], Dict[str, Any]]] = None,
):
    """Install the campaign checkpoint context for the executor's duration.

    Yields the installed :class:`CheckpointJournalContext` (``None`` when
    ``journal`` is ``None``: an un-journaled campaign runs with sub-unit
    checkpointing off).  Re-entrant: a nested campaign shadows and then
    restores the outer one.
    """
    global _campaign_context
    previous = _campaign_context
    context = (
        CheckpointJournalContext(journal, saved or {}) if journal is not None else None
    )
    _campaign_context = context
    try:
        yield context
    finally:
        _campaign_context = previous


@contextmanager
def unit_scope(unit_index: int):
    """Activate sub-unit checkpointing for one in-parent work unit.

    A no-op (yields ``None``) outside a journaled campaign -- which is
    exactly what happens inside pool workers, where the campaign context is
    never installed.
    """
    global _active_scope
    if _campaign_context is None:
        yield None
        return
    previous = _active_scope
    scope = UnitCheckpointScope(_campaign_context, unit_index)
    _active_scope = scope
    try:
        yield scope
    finally:
        _active_scope = previous


def active_unit_scope() -> Optional[UnitCheckpointScope]:
    """The in-flight unit's checkpoint scope (``None`` almost everywhere)."""
    return _active_scope


# ----------------------------------------------------------------------
# Inspection (the ``python -m repro.runner journal`` subcommand)
# ----------------------------------------------------------------------
def inspect(path: Union[str, Path]) -> Dict[str, Any]:
    """Summarize a journal for humans and CI: validity, progress, env fit.

    Returns a plain dict; raises :class:`~repro.core.errors.ConfigError`
    (or ``FileNotFoundError``) when the journal is unreadable or corrupt --
    the CLI maps both onto exit code 3.
    """
    journal = CampaignJournal(path)
    header, units, complete = journal._read()
    if header is None:
        from repro.core.errors import ConfigError

        raise ConfigError(f"journal {path} has no readable header")
    total = int(header.get("units", 0))
    in_range = [index for index in units if 0 <= index < total]
    out_of_range = sorted(set(units) - set(in_range))
    current_env = environment_pins()
    env_mismatches = sorted(
        key for key in current_env if header.get(key) != current_env[key]
    )
    checkpoint_shards = sum(
        len(entry["spans"]) for entry in journal.checkpoints.values()
    )
    return {
        "path": str(path),
        "schema": header.get("journal"),
        "scenario": header.get("scenario"),
        "version": header.get("version"),
        "spec_hash": header.get("spec_hash"),
        "seed": header.get("seed"),
        "trials": header.get("trials"),
        "units_total": total,
        "units_complete": len(in_range),
        "percent_complete": (100.0 * len(in_range) / total) if total else 0.0,
        "complete": complete,
        "checkpoints": len(journal.checkpoints),
        "checkpoint_shards": checkpoint_shards,
        "environment": {key: header.get(key) for key in current_env},
        "environment_mismatches": env_mismatches,
        "out_of_range_units": out_of_range,
        "resumable": not env_mismatches and not out_of_range,
    }
