"""Tests for the botmaster / C&C logic."""

import pytest

from repro.core.commander import Botmaster
from repro.core.config import OnionBotConfig
from repro.core.errors import MessageError
from repro.core.messaging import KeyReport, MessageKind, open_envelope
from repro.core.node import OnionBotNode
from repro.crypto.kdf import kdf
from repro.crypto.keys import KeyPair


def make_botmaster() -> Botmaster:
    return Botmaster(keypair=KeyPair.from_seed(b"commander-test"), config=OnionBotConfig())


def make_bot(botmaster: Botmaster, label: str) -> OnionBotNode:
    bot = OnionBotNode(
        label=label,
        botmaster_public=botmaster.public_key,
        network_key=botmaster.network_key,
        bot_key=kdf("onionbot.bot-key", label.encode()),
        config=botmaster.config,
    )
    bot.infect(0.0)
    return bot


def enroll(botmaster: Botmaster, bot: OnionBotNode, now: float = 10.0) -> KeyReport:
    report = bot.rally(set(), now)
    botmaster.enroll(bot.label, report)
    return report


class TestEnrollment:
    def test_enroll_recovers_bot_key(self):
        botmaster = make_botmaster()
        bot = make_bot(botmaster, "bot-1")
        enroll(botmaster, bot)
        assert botmaster.knows("bot-1")
        assert botmaster.enrolled_labels() == ["bot-1"]

    def test_address_of_matches_bot_across_periods(self):
        """The C&C can reach any bot anytime despite rotation (section IV-D)."""
        botmaster = make_botmaster()
        bot = make_bot(botmaster, "bot-1")
        enroll(botmaster, bot)
        for time in (0.0, 90_000.0, 200_000.0, 1_000_000.0):
            assert botmaster.address_of("bot-1", time) == bot.onion_at(time)

    def test_address_of_unknown_bot_raises(self):
        with pytest.raises(MessageError):
            make_botmaster().address_of("ghost", 0.0)

    def test_addresses_at_lists_all_bots(self):
        botmaster = make_botmaster()
        for index in range(3):
            enroll(botmaster, make_bot(botmaster, f"bot-{index}"))
        addresses = botmaster.addresses_at(50_000.0)
        assert len(addresses) == 3
        assert len(set(addresses.values())) == 3

    def test_forget_bot(self):
        botmaster = make_botmaster()
        bot = make_bot(botmaster, "bot-1")
        enroll(botmaster, bot)
        botmaster.forget_bot("bot-1")
        assert not botmaster.knows("bot-1")


class TestCommandIssuance:
    def test_broadcast_is_signed_and_recorded(self):
        botmaster = make_botmaster()
        message = botmaster.issue_broadcast("noop", now=5.0, ttl=60.0)
        assert message.verify_signature(botmaster.public_key)
        assert message.expires_at == 65.0
        assert botmaster.issued_commands == [message]

    def test_nonces_are_unique(self):
        botmaster = make_botmaster()
        nonces = {botmaster.issue_broadcast("noop", now=0.0).nonce for _ in range(10)}
        assert len(nonces) == 10

    def test_directed_requires_targets(self):
        botmaster = make_botmaster()
        with pytest.raises(MessageError):
            botmaster.issue_directed("noop", [], now=0.0)

    def test_group_command_names_group(self):
        botmaster = make_botmaster()
        message = botmaster.issue_group("noop", "miners", now=0.0)
        assert message.kind is MessageKind.COMMAND_GROUP
        assert message.group == "miners"

    def test_maintenance_message(self):
        botmaster = make_botmaster()
        message = botmaster.issue_maintenance("update-peer-list", now=0.0)
        assert message.kind is MessageKind.MAINTENANCE
        assert message.verify_signature(botmaster.public_key)


class TestEnvelopes:
    def test_broadcast_envelope_opens_with_network_key(self):
        botmaster = make_botmaster()
        message = botmaster.issue_broadcast("noop", now=0.0)
        envelope = botmaster.envelope_for(message, b"r" * 32)
        assert open_envelope(envelope, botmaster.network_key) == message.to_bytes()

    def test_directed_envelope_uses_bot_key(self):
        botmaster = make_botmaster()
        bot = make_bot(botmaster, "bot-1")
        enroll(botmaster, bot)
        message = botmaster.issue_directed("noop", [str(bot.onion_at(20.0))], now=20.0)
        envelope = botmaster.envelope_for(message, b"r" * 32, target_label="bot-1")
        assert open_envelope(envelope, bot.bot_key) == message.to_bytes()

    def test_directed_envelope_without_label_rejected(self):
        botmaster = make_botmaster()
        message = botmaster.issue_directed("noop", ["target.onion"], now=0.0)
        with pytest.raises(MessageError):
            botmaster.envelope_for(message, b"r" * 32)

    def test_group_envelope_uses_group_key(self):
        botmaster = make_botmaster()
        message = botmaster.issue_group("noop", "miners", now=0.0)
        envelope = botmaster.envelope_for(message, b"r" * 32)
        assert open_envelope(envelope, botmaster.group_key("miners")) == message.to_bytes()

    def test_group_keys_are_stable_and_distinct(self):
        botmaster = make_botmaster()
        assert botmaster.group_key("a") == botmaster.group_key("a")
        assert botmaster.group_key("a") != botmaster.group_key("b")


class TestRental:
    def test_rent_out_issues_valid_token(self):
        botmaster = make_botmaster()
        renter = KeyPair.from_seed(b"renter")
        token = botmaster.rent_out(
            renter.public, now=0.0, duration=3600.0, whitelisted_commands=["noop"]
        )
        assert token.verify(botmaster.public_key)
        assert token.expires_at == 3600.0
        assert token.permits("noop")
