"""Sim-layer metric types bridge into an obs collector without duplication."""

from __future__ import annotations

from repro.obs.report import render_report
from repro.obs.schema import validate_report
from repro.obs.telemetry import Collector
from repro.sim.metrics import CounterSet, MetricRecorder
from repro.sim.trace import TraceLog


class TestCounterSetBridge:
    def test_counters_land_under_sim_prefix(self):
        counters = CounterSet()
        counters.increment("joins", 3)
        counters.increment("leaves")
        collector = Collector()
        counters.snapshot_into(collector)
        assert collector.counter("sim.joins") == 3
        assert collector.counter("sim.leaves") == 1

    def test_custom_prefix(self):
        counters = CounterSet()
        counters.increment("clones")
        collector = Collector()
        counters.snapshot_into(collector, prefix="soap.")
        assert collector.counter("soap.clones") == 1

    def test_repeated_snapshots_accumulate_like_counters(self):
        counters = CounterSet()
        counters.increment("ticks", 2)
        collector = Collector()
        counters.snapshot_into(collector)
        counters.snapshot_into(collector)
        assert collector.counter("sim.ticks") == 4


class TestTraceLogBridge:
    def test_per_category_counts(self):
        log = TraceLog()
        log.record(0.0, "rotation", "bot rotated")
        log.record(1.0, "rotation", "bot rotated")
        log.record(2.0, "soap", "clone admitted")
        collector = Collector()
        log.snapshot_into(collector)
        assert collector.counter("trace.rotation") == 2
        assert collector.counter("trace.soap") == 1

    def test_empty_log_adds_nothing(self):
        collector = Collector()
        TraceLog().snapshot_into(collector)
        assert collector.snapshot()["counters"] == {}


class TestMetricRecorderBridge:
    def test_counters_and_series_summaries(self):
        recorder = MetricRecorder()
        recorder.counters.increment("neutralized", 5)
        recorder.record("population", 0.0, 100.0)
        recorder.record("population", 1.0, 97.0)
        collector = Collector()
        recorder.snapshot_into(collector)
        assert collector.counter("sim.neutralized") == 5
        section = collector.snapshot()["sections"]["sim"]
        pop = section["series"]["population"]
        assert pop == {"points": 2, "last_x": 1.0, "last_value": 97.0}

    def test_bridged_collector_renders_a_valid_report(self):
        recorder = MetricRecorder()
        recorder.counters.increment("targets_attacked", 12)
        recorder.record("benign_population", 3.0, 62.0)
        collector = Collector(label="bridge")
        recorder.snapshot_into(collector)
        validate_report(render_report(collector, meta={"scenario": "soap-under-churn"}))
