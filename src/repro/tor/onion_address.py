"""Onion address derivation (v2 hidden-service style, as in the paper).

Section III of the paper: "The first 10 bytes of the SHA-1 digest of the
generated RSA public key becomes the Identifier of the hidden service.  The
``.onion`` hostname is the base-32 encoding representation of the public key"
(more precisely: of that 80-bit identifier, yielding the familiar 16-character
v2 onion names).  This module reproduces exactly that arithmetic over the
simulated keypairs.
"""

from __future__ import annotations

import base64
import hashlib
from dataclasses import dataclass

from repro.crypto.keys import KeyPair, PublicKey

#: Length in bytes of the truncated SHA-1 digest that forms the identifier.
IDENTIFIER_LENGTH = 10
#: Length in characters of a v2 onion name (base32 of 10 bytes).
ONION_NAME_LENGTH = 16
_ONION_SUFFIX = ".onion"


@dataclass(frozen=True, order=True)
class OnionAddress:
    """A validated ``.onion`` hostname."""

    name: str

    def __post_init__(self) -> None:
        if not self.name.endswith(_ONION_SUFFIX):
            raise ValueError(f"onion address must end with {_ONION_SUFFIX!r}: {self.name!r}")
        label = self.name[: -len(_ONION_SUFFIX)]
        if len(label) != ONION_NAME_LENGTH:
            raise ValueError(
                f"onion label must be {ONION_NAME_LENGTH} base32 characters, got {label!r}"
            )
        try:
            base64.b32decode(label.upper())
        except Exception as exc:  # pragma: no cover - defensive
            raise ValueError(f"onion label is not valid base32: {label!r}") from exc

    @property
    def label(self) -> str:
        """The 16-character base32 label without the ``.onion`` suffix."""
        return self.name[: -len(_ONION_SUFFIX)]

    def identifier(self) -> bytes:
        """The 80-bit service identifier encoded by this address."""
        return base64.b32decode(self.label.upper())

    def __str__(self) -> str:
        return self.name


def service_identifier(public_key: PublicKey | bytes) -> bytes:
    """First 10 bytes of SHA-1 over the public key material."""
    material = public_key.material if isinstance(public_key, PublicKey) else bytes(public_key)
    return hashlib.sha1(material).digest()[:IDENTIFIER_LENGTH]


def onion_address_from_identifier(identifier: bytes) -> OnionAddress:
    """Base32-encode an 80-bit identifier into a ``.onion`` hostname."""
    if len(identifier) != IDENTIFIER_LENGTH:
        raise ValueError(
            f"identifier must be exactly {IDENTIFIER_LENGTH} bytes, got {len(identifier)}"
        )
    label = base64.b32encode(identifier).decode("ascii").lower()
    return OnionAddress(label + _ONION_SUFFIX)


def onion_address_from_public_key(key: PublicKey | KeyPair | bytes) -> OnionAddress:
    """Derive the ``.onion`` hostname for a (simulated) hidden-service key."""
    if isinstance(key, KeyPair):
        key = key.public
    return onion_address_from_identifier(service_identifier(key))


def is_valid_onion(name: str) -> bool:
    """Whether ``name`` parses as a v2-style onion hostname."""
    try:
        OnionAddress(name)
    except ValueError:
        return False
    return True
