"""Tests for result export (CSV / JSON)."""

import csv
import json

import pytest

from repro.analysis.experiments import (
    run_fig4_centrality,
    run_fig5_resilience,
    run_fig6_partition_threshold,
)
from repro.analysis.export import (
    export_fig4,
    export_fig5,
    export_fig6,
    write_json,
    write_rows_csv,
    write_series_csv,
)
from repro.analysis.table1 import build_table1


class TestPrimitives:
    def test_write_series_csv(self, tmp_path):
        path = write_series_csv(tmp_path / "series.csv", {"x": [1, 2, 3], "y": [4.0, 5.0, 6.0]})
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["x", "y"]
        assert rows[1] == ["1", "4.0"]
        assert len(rows) == 4

    def test_write_series_csv_mismatched_lengths(self, tmp_path):
        with pytest.raises(ValueError):
            write_series_csv(tmp_path / "bad.csv", {"x": [1, 2], "y": [1]})

    def test_write_series_csv_empty(self, tmp_path):
        with pytest.raises(ValueError):
            write_series_csv(tmp_path / "bad.csv", {})

    def test_write_rows_csv(self, tmp_path):
        path = write_rows_csv(tmp_path / "table1.csv", build_table1(samples_per_family=2))
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["Botnet"] == "Miner"
        assert rows[-1]["Botnet"] == "OnionBot"

    def test_write_rows_csv_empty(self, tmp_path):
        with pytest.raises(ValueError):
            write_rows_csv(tmp_path / "bad.csv", [])

    def test_write_json_handles_dataclasses_and_special_values(self, tmp_path):
        payload = {"inf": float("inf"), "bytes": b"\x01\x02", "set": {3, 1, 2}}
        path = write_json(tmp_path / "nested" / "out.json", payload)
        loaded = json.loads(path.read_text())
        assert loaded["inf"] == "inf"
        assert loaded["bytes"] == "0102"
        assert loaded["set"] == [1, 2, 3]


class TestFigureExports:
    def test_export_fig4(self, tmp_path):
        results = run_fig4_centrality(n=80, degrees=(4,), checkpoints=2, closeness_sample=10)
        written = export_fig4(results, tmp_path)
        assert any(path.suffix == ".csv" for path in written)
        assert (tmp_path / "fig4.json").exists()
        loaded = json.loads((tmp_path / "fig4.json").read_text())
        assert loaded[0]["degree"] == 4

    def test_export_fig5(self, tmp_path):
        result = run_fig5_resilience(n=80, k=6, checkpoints=2, diameter_sample=8)
        written = export_fig5(result, tmp_path)
        csv_path = next(path for path in written if path.suffix == ".csv")
        with csv_path.open() as handle:
            header = next(csv.reader(handle))
        assert "ddsr_components" in header

    def test_export_fig6(self, tmp_path):
        result = run_fig6_partition_threshold(sizes=(60,), k=6, trials_per_fraction=1)
        written = export_fig6(result, tmp_path)
        assert (tmp_path / "fig6.csv").exists()
        assert (tmp_path / "fig6.json").exists()
        assert len(written) == 2
