"""Section VI-A -- HSDir interception: denying access to a bot's descriptors.

The defender computes a target's responsible HSDirs, injects relays with
crafted fingerprints, waits out the 25-hour HSDir-flag delay, then refuses to
serve the descriptors.  The benchmark measures the full flow and the two
limitations the paper points out: six relays and >25 hours of lead time are
needed *per bot per period*, and the bot escapes by rotating its address.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.experiments import run_hsdir_interception
from repro.analysis.reporting import render_result_rows
from repro.defenses.hsdir_takeover import interception_cost_estimate


def test_hsdir_interception_denies_then_rotation_escapes(benchmark):
    """Interception denies the current address; the next period's address escapes."""
    result = benchmark.pedantic(lambda: run_hsdir_interception(relays=40, seed=80), rounds=1, iterations=1)
    emit(
        "HSDir interception against one bot",
        render_result_rows(
            [
                {
                    "relays_injected": result.interception.relays_injected,
                    "lead_time_hours": round(result.interception.lead_time_hours, 1),
                    "responsible_controlled": result.interception.responsible_controlled,
                    "denied_before_rotation": result.denial_before_rotation,
                    "reachable_after_rotation": result.reachable_after_rotation,
                }
            ]
        ),
    )
    assert result.denial_before_rotation
    assert result.reachable_after_rotation
    assert result.interception.lead_time_hours >= 25.0


def test_hsdir_interception_cost_at_botnet_scale(benchmark):
    """Why the paper dismisses this mitigation at scale: relays needed per period."""
    rows = benchmark(
        lambda: [
            {"bots": bots, **interception_cost_estimate(bots=bots, periods=7)}
            for bots in (10, 100, 1000, 10000)
        ]
    )
    emit("HSDir interception cost for a week of daily rotations", render_result_rows(rows))
    assert rows[-1]["relays_needed"] == 10000 * 6 * 7
    assert all(row["lead_exceeds_daily_rotation"] == 1.0 for row in rows)
