"""Tests for the scenario registry: registration round-trip and built-ins."""

import pytest

from repro.runner.registry import (
    ScenarioError,
    get_scenario,
    scenario,
    scenario_names,
    unregister,
)


class TestRegistrationRoundTrip:
    def test_register_lookup_and_call(self):
        @scenario(name="test-reg-roundtrip", description="noop", defaults={"a": 2})
        def fn(*, seed: int, a: int):
            return {"value": seed + a, "flag": True}

        try:
            sc = get_scenario("test-reg-roundtrip")
            assert sc.name == "test-reg-roundtrip"
            assert sc.description == "noop"
            metrics = sc.call(seed=10)
            assert metrics == {"value": 12.0, "flag": 1.0}
            # Explicit params override the registered defaults.
            assert sc.call(seed=10, a=5)["value"] == 15.0
        finally:
            unregister("test-reg-roundtrip")

    def test_duplicate_name_rejected(self):
        @scenario(name="test-reg-dup")
        def fn(*, seed: int):
            return {}

        try:
            with pytest.raises(ValueError, match="already registered"):

                @scenario(name="test-reg-dup")
                def fn2(*, seed: int):
                    return {}

        finally:
            unregister("test-reg-dup")

    def test_unknown_scenario_names_known_ones(self):
        with pytest.raises(ScenarioError, match="soap-campaign"):
            get_scenario("no-such-scenario")

    def test_non_numeric_metric_rejected(self):
        @scenario(name="test-reg-bad-metric")
        def fn(*, seed: int):
            return {"oops": "text"}

        try:
            with pytest.raises(TypeError, match="numeric"):
                get_scenario("test-reg-bad-metric").call(seed=0)
        finally:
            unregister("test-reg-bad-metric")

    def test_docstring_first_line_becomes_description(self):
        @scenario(name="test-reg-doc")
        def fn(*, seed: int):
            """First line wins.

            Not this one.
            """
            return {}

        try:
            assert get_scenario("test-reg-doc").description == "First line wins."
        finally:
            unregister("test-reg-doc")


class TestBuiltins:
    def test_paper_figure_wrappers_registered(self):
        names = scenario_names()
        for expected in (
            "fig3-walkthrough",
            "fig4-centrality",
            "fig5-resilience",
            "fig6-partition-threshold",
            "soap-campaign",
            "hsdir-interception",
            "superonion-vs-soap",
            "pow-tradeoff",
            "integrated-botnet",
        ):
            assert expected in names

    def test_at_least_three_composed_scenarios(self):
        composed = scenario_names(composed_only=True)
        assert len(composed) >= 3
        assert {
            "soap-under-churn",
            "takedown-superonion",
            "hsdir-growth-interception",
        } <= set(composed)
