"""Recurring simulated processes.

Several OnionBots mechanisms are periodic: the Tor consensus is published every
hour, hidden-service descriptors are refreshed every 24 hours, bots rotate
their ``.onion`` address once per period and SuperOnion hosts probe their
virtual nodes on a fixed schedule.  :class:`PeriodicProcess` wraps "call this
function every *interval* seconds" on top of the event queue, with optional
jitter so that thousands of bots do not act in lock-step.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.events import Event


class ProcessState(enum.Enum):
    """Lifecycle of a periodic process."""

    CREATED = "created"
    RUNNING = "running"
    STOPPED = "stopped"


class PeriodicProcess:
    """Invoke a callback every ``interval`` simulated seconds.

    Parameters
    ----------
    simulator:
        The owning :class:`~repro.sim.engine.Simulator`.
    interval:
        Seconds between invocations (must be positive).
    action:
        Callable invoked with no arguments on every tick.
    name:
        Label used for traces and jitter stream derivation.
    jitter:
        If non-zero, each tick is displaced by a uniform offset in
        ``[-jitter, +jitter]`` drawn from the process's own random stream.
    start_delay:
        Seconds before the first tick (defaults to one full interval).
    max_ticks:
        Optional upper bound on the number of invocations.
    """

    def __init__(
        self,
        simulator: "Simulator",
        interval: float,
        action: Callable[[], None],
        *,
        name: str = "process",
        jitter: float = 0.0,
        start_delay: Optional[float] = None,
        max_ticks: Optional[int] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        if jitter < 0 or jitter >= interval:
            raise ValueError(f"jitter must be in [0, interval), got {jitter!r}")
        self.simulator = simulator
        self.interval = float(interval)
        self.action = action
        self.name = name
        self.jitter = float(jitter)
        self.start_delay = float(interval if start_delay is None else start_delay)
        self.max_ticks = max_ticks
        self.ticks = 0
        self.state = ProcessState.CREATED
        self._pending: Optional["Event"] = None

    # ------------------------------------------------------------------
    def start(self) -> "PeriodicProcess":
        """Schedule the first tick and mark the process as running."""
        if self.state is ProcessState.RUNNING:
            return self
        self.state = ProcessState.RUNNING
        self._schedule_next(self.start_delay)
        return self

    def stop(self) -> None:
        """Cancel any pending tick and mark the process as stopped."""
        self.state = ProcessState.STOPPED
        if self._pending is not None:
            self.simulator.cancel(self._pending)
            self._pending = None

    @property
    def is_running(self) -> bool:
        """Whether the process still has ticks scheduled."""
        return self.state is ProcessState.RUNNING

    # ------------------------------------------------------------------
    def _schedule_next(self, delay: float) -> None:
        offset = 0.0
        if self.jitter:
            offset = self.simulator.random.uniform(
                f"process:{self.name}", -self.jitter, self.jitter
            )
        delay = max(0.0, delay + offset)
        self._pending = self.simulator.schedule_in(
            delay, self._tick, label=f"{self.name}.tick"
        )

    def _tick(self) -> None:
        if self.state is not ProcessState.RUNNING:
            return
        self._pending = None
        self.ticks += 1
        self.action()
        if self.max_ticks is not None and self.ticks >= self.max_ticks:
            self.state = ProcessState.STOPPED
            return
        if self.state is ProcessState.RUNNING:
            self._schedule_next(self.interval)
