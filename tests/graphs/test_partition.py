"""Tests for partition analysis (Figure 6 primitives)."""

import random

import pytest

from repro.graphs.adjacency import UndirectedGraph
from repro.graphs.generators import k_regular_graph, ring_graph
from repro.graphs.partition import (
    PartitionReport,
    analyze_partition,
    is_partitioned,
    minimum_partition_fraction,
    partition_after_fraction,
    simultaneous_deletion_survivors,
)


class TestPartitionReport:
    def test_connected_graph_report(self):
        report = analyze_partition(ring_graph(10))
        assert report.surviving_nodes == 10
        assert report.component_count == 1
        assert report.largest_component == 10
        assert not report.is_partitioned
        assert report.largest_fraction == 1.0

    def test_partitioned_graph_report(self):
        graph = UndirectedGraph(edges=[(0, 1), (2, 3)])
        graph.add_node(4)
        report = analyze_partition(graph)
        assert report.component_count == 3
        assert report.isolated_nodes == 1
        assert report.is_partitioned
        assert is_partitioned(graph)

    def test_empty_graph_report(self):
        report = analyze_partition(UndirectedGraph())
        assert report == PartitionReport(0, 0, 0, 0)
        assert report.largest_fraction == 0.0


class TestSimultaneousDeletion:
    def test_survivors_exclude_victims(self):
        graph = ring_graph(10)
        survivors = simultaneous_deletion_survivors(graph, [0, 5])
        assert survivors.number_of_nodes() == 8
        assert 0 not in survivors and 5 not in survivors

    def test_removing_opposite_ring_nodes_partitions(self):
        graph = ring_graph(10)
        survivors = simultaneous_deletion_survivors(graph, [0, 5])
        assert is_partitioned(survivors)

    def test_original_graph_untouched(self):
        graph = ring_graph(6)
        simultaneous_deletion_survivors(graph, [0])
        assert graph.number_of_nodes() == 6


class TestPartitionThreshold:
    def test_ring_partitions_immediately(self):
        # Removing any two non-adjacent nodes partitions a ring, so the
        # threshold should be found at a very small fraction.
        fraction = minimum_partition_fraction(
            ring_graph(50), rng=random.Random(0), resolution=0.02, trials_per_fraction=3
        )
        assert fraction <= 0.1

    def test_k_regular_threshold_is_substantial(self):
        graph = k_regular_graph(200, 10, seed=1)
        fraction = minimum_partition_fraction(
            graph, rng=random.Random(1), resolution=0.05, trials_per_fraction=2
        )
        # The paper reports ~40% for larger graphs; small graphs partition a
        # bit later, but never below 20% for a 10-regular topology.
        assert fraction >= 0.2

    def test_invalid_resolution_rejected(self):
        with pytest.raises(ValueError):
            minimum_partition_fraction(ring_graph(10), resolution=0.0)

    def test_tiny_graph_returns_one(self):
        assert minimum_partition_fraction(UndirectedGraph(edges=[(0, 1)])) == 1.0


class TestPartitionAfterFraction:
    def test_zero_fraction_keeps_graph_connected(self):
        graph = k_regular_graph(100, 8, seed=2)
        report = partition_after_fraction(graph, 0.0)
        assert report.component_count == 1

    def test_high_fraction_partitions_k_regular(self):
        graph = k_regular_graph(200, 10, seed=3)
        report = partition_after_fraction(graph, 0.85, rng=random.Random(0))
        assert report.surviving_nodes == 30
        assert report.is_partitioned

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            partition_after_fraction(ring_graph(5), 1.5)
