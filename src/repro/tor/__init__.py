"""In-memory model of the Tor network and its hidden-service machinery.

The OnionBot design leans on specific Tor mechanisms (paper section III):

* relays, the hourly consensus, and the **HSDir** flag earned after 25 hours
  of uptime (Figure 2 and section VI-A, where adversarial HSDir positioning is
  the basis of one mitigation);
* hidden services: identifier = first 80 bits of SHA-1(public key), ``.onion``
  = base32 of that identifier, descriptor IDs recomputed every 24 hours and
  stored on 2 x 3 responsible HSDirs around the fingerprint ring (Figure 1/2);
* introduction points and rendezvous points mediating mutually anonymous
  connections carried in fixed-size cells.

This package models all of the above deterministically and in-process: there
is no networking and no interaction with the real Tor network.  The model is
rich enough to drive every experiment in the paper that touches Tor behaviour
(address rotation, HSDir interception, descriptor churn) while remaining fast
enough for thousands of simulated services.
"""

from repro.tor.onion_address import (
    OnionAddress,
    onion_address_from_identifier,
    onion_address_from_public_key,
    service_identifier,
)
from repro.tor.relay import Relay, RelayFlag
from repro.tor.consensus import ConsensusDocument, DirectoryAuthority
from repro.tor.descriptor import HiddenServiceDescriptor
from repro.tor.hsdir import (
    REPLICAS,
    SPREAD,
    descriptor_id,
    responsible_hsdirs,
    secret_id_part,
    time_period,
)
from repro.tor.cells import CELL_SIZE, Cell, chunk_payload, reassemble_cells
from repro.tor.circuit import Circuit, CircuitPurpose
from repro.tor.hidden_service import HiddenServiceHost, RendezvousConnection
from repro.tor.network import TorNetwork, TorNetworkConfig

__all__ = [
    "OnionAddress",
    "onion_address_from_public_key",
    "onion_address_from_identifier",
    "service_identifier",
    "Relay",
    "RelayFlag",
    "ConsensusDocument",
    "DirectoryAuthority",
    "HiddenServiceDescriptor",
    "descriptor_id",
    "secret_id_part",
    "time_period",
    "responsible_hsdirs",
    "REPLICAS",
    "SPREAD",
    "Cell",
    "CELL_SIZE",
    "chunk_payload",
    "reassemble_cells",
    "Circuit",
    "CircuitPurpose",
    "HiddenServiceHost",
    "RendezvousConnection",
    "TorNetwork",
    "TorNetworkConfig",
]
