"""Adapters from the sim-layer metric types into an obs collector.

The simulation layer grew its own lightweight metric containers long before
``repro.obs`` existed: :class:`repro.sim.metrics.CounterSet` (monotonic named
counters), :class:`repro.sim.metrics.MetricRecorder` (counters + time series)
and :class:`repro.sim.trace.TraceLog` (structured events).  Rather than
duplicate that vocabulary, these helpers *snapshot* sim-layer state into an
obs collector -- counters land in the shared counter namespace (prefixed),
series and trace shapes land in a report section -- so one report speaks a
single counter vocabulary ahead of the batched-sim refactor.

Each sim class exposes the adapter as a one-line ``snapshot_into`` method
delegating here; this module is the only place that knows both sides.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping


def counters_into(collector: Any, counters: Mapping[str, int], prefix: str = "sim.") -> None:
    """Add every named counter (``{name: value}``) under ``prefix``."""
    for name, value in counters.items():
        collector.count(prefix + name, int(value))


def trace_into(collector: Any, entries: Iterable[Any], prefix: str = "trace.") -> None:
    """Add one counter per trace *category* counting its recorded entries."""
    totals: dict = {}
    for entry in entries:
        totals[entry.category] = totals.get(entry.category, 0) + 1
    for category, total in totals.items():
        collector.count(prefix + category, total)


def recorder_section(collector: Any, recorder: Any, section: str = "sim") -> None:
    """Snapshot a :class:`~repro.sim.metrics.MetricRecorder` wholesale.

    Counters join the shared namespace (``sim.<name>``); the time series are
    summarised -- name, length, last observation -- into the ``section``
    payload, keeping the report bounded even for long campaigns.
    """
    counters_into(collector, recorder.counters.as_dict(), prefix=f"{section}.")
    series = {}
    for name in recorder.series_names():
        ts = recorder.series(name)
        last = ts.last()
        series[name] = {
            "points": len(ts),
            "last_x": last[0] if last else None,
            "last_value": last[1] if last else None,
        }
    collector.section(section, {"series": series})
