"""Tests for the discrete-event simulator engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_schedule_at_runs_action_at_time(self):
        sim = Simulator()
        fired_at = []
        sim.schedule_at(10.0, lambda: fired_at.append(sim.now))
        sim.run()
        assert fired_at == [10.0]

    def test_schedule_in_is_relative(self):
        sim = Simulator()
        sim.schedule_in(5.0, lambda: None)
        sim.run()
        assert sim.now == 5.0

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule_at(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_in(-1.0, lambda: None)

    def test_cancel_prevents_execution(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_in(1.0, lambda: fired.append(1))
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule_in(5.0, lambda: fired.append("second"))

        sim.schedule_in(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 6.0


class TestRunControl:
    def test_run_until_stops_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append("early"))
        sim.schedule_at(50.0, lambda: fired.append("late"))
        sim.run(until=10.0)
        assert fired == ["early"]
        assert sim.now == 10.0

    def test_run_for_advances_relative_duration(self):
        sim = Simulator()
        sim.run_for(100.0)
        assert sim.now == 100.0

    def test_run_for_negative_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().run_for(-1.0)

    def test_max_events_budget(self):
        sim = Simulator()
        fired = []
        for index in range(10):
            sim.schedule_at(float(index + 1), lambda i=index: fired.append(i))
        processed = sim.run(max_events=3)
        assert processed == 3
        assert fired == [0, 1, 2]

    def test_events_processed_counter(self):
        sim = Simulator()
        for index in range(5):
            sim.schedule_at(float(index), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False


class TestDeterminism:
    def test_same_seed_same_random_streams(self):
        sim_a = Simulator(seed=7)
        sim_b = Simulator(seed=7)
        draws_a = [sim_a.random.randint("x", 0, 1000) for _ in range(10)]
        draws_b = [sim_b.random.randint("x", 0, 1000) for _ in range(10)]
        assert draws_a == draws_b

    def test_different_seeds_differ(self):
        sim_a = Simulator(seed=7)
        sim_b = Simulator(seed=8)
        draws_a = [sim_a.random.randint("x", 0, 10**9) for _ in range(5)]
        draws_b = [sim_b.random.randint("x", 0, 10**9) for _ in range(5)]
        assert draws_a != draws_b

    def test_trace_log_records_with_timestamp(self):
        sim = Simulator()
        sim.schedule_in(3.0, lambda: sim.log("test", "fired"))
        sim.run()
        entry = sim.trace.last("test")
        assert entry is not None
        assert entry.timestamp == 3.0
        assert entry.message == "fired"
