"""Tests for periodic onion-address rotation."""

import pytest

from repro.core.addressing import (
    AddressPlan,
    current_onion_address,
    keypair_for_period,
    onion_schedule,
    period_index_for,
)
from repro.crypto.keys import KeyPair
from repro.sim.clock import SECONDS_PER_DAY


BOTMASTER = KeyPair.from_seed(b"addressing-botmaster")
BOT_KEY = b"addressing-bot-key"


class TestPeriodIndex:
    def test_daily_periods(self):
        assert period_index_for(0.0) == 0
        assert period_index_for(SECONDS_PER_DAY - 1) == 0
        assert period_index_for(SECONDS_PER_DAY) == 1

    def test_custom_period(self):
        assert period_index_for(7200.0, period_seconds=3600.0) == 2

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            period_index_for(-1.0)
        with pytest.raises(ValueError):
            period_index_for(0.0, period_seconds=0.0)


class TestRotationRecipe:
    def test_bot_and_cc_agree_on_address(self):
        """generateKey(PK_CC, H(K_B, i_p)) yields the same address on both sides."""
        for day in range(4):
            time = day * SECONDS_PER_DAY + 100.0
            bot_side = current_onion_address(BOTMASTER.public, BOT_KEY, time)
            cc_side = AddressPlan(BOTMASTER.public, BOT_KEY).address_at(time)
            assert bot_side == cc_side

    def test_address_changes_each_period(self):
        addresses = onion_schedule(BOTMASTER.public, BOT_KEY, 0, 10)
        assert len(set(addresses)) == 10

    def test_address_stable_within_period(self):
        early = current_onion_address(BOTMASTER.public, BOT_KEY, 10.0)
        late = current_onion_address(BOTMASTER.public, BOT_KEY, SECONDS_PER_DAY - 10.0)
        assert early == late

    def test_different_bots_never_collide(self):
        a = onion_schedule(BOTMASTER.public, b"bot-a", 0, 5)
        b = onion_schedule(BOTMASTER.public, b"bot-b", 0, 5)
        assert not set(a) & set(b)

    def test_past_addresses_not_derivable_without_bot_key(self):
        """Different bot keys give unrelated schedules (no cross-prediction)."""
        schedule_real = onion_schedule(BOTMASTER.public, BOT_KEY, 0, 3)
        schedule_guess = onion_schedule(BOTMASTER.public, b"wrong-guess", 0, 3)
        assert not set(schedule_real) & set(schedule_guess)

    def test_keypair_for_period_deterministic(self):
        assert keypair_for_period(BOTMASTER.public, BOT_KEY, 7) == keypair_for_period(
            BOTMASTER.public, BOT_KEY, 7
        )

    def test_negative_schedule_rejected(self):
        with pytest.raises(ValueError):
            onion_schedule(BOTMASTER.public, BOT_KEY, 0, -1)


class TestAddressPlan:
    def test_addresses_between_covers_every_period(self):
        plan = AddressPlan(BOTMASTER.public, BOT_KEY)
        addresses = plan.addresses_between(0.0, 3 * SECONDS_PER_DAY)
        assert len(addresses) == 4

    def test_addresses_between_invalid_range(self):
        plan = AddressPlan(BOTMASTER.public, BOT_KEY)
        with pytest.raises(ValueError):
            plan.addresses_between(100.0, 0.0)

    def test_window_maps_period_to_address(self):
        plan = AddressPlan(BOTMASTER.public, BOT_KEY)
        window = plan.window(0.0, periods_ahead=3)
        assert sorted(window) == [0, 1, 2, 3]
        assert window[2] == plan.address_at(2 * SECONDS_PER_DAY + 1)

    def test_custom_rotation_period(self):
        plan = AddressPlan(BOTMASTER.public, BOT_KEY, period_seconds=3600.0)
        assert plan.address_at(0.0) != plan.address_at(3601.0)
