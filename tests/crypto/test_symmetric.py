"""Tests for simulated symmetric sealing."""

import pytest

from repro.crypto.symmetric import (
    SealedBox,
    SealError,
    open_from_private,
    open_sealed,
    seal,
    seal_to_public,
)
from repro.crypto.keys import KeyPair


class TestSeal:
    def test_roundtrip(self):
        box = seal(b"key", b"hello world", b"nonce-12345678")
        assert open_sealed(b"key", box) == b"hello world"

    def test_wrong_key_fails_authentication(self):
        box = seal(b"key", b"hello", b"nonce-12345678")
        with pytest.raises(SealError):
            open_sealed(b"other-key", box)

    def test_tampered_ciphertext_fails(self):
        box = seal(b"key", b"hello", b"nonce-12345678")
        tampered = SealedBox(
            nonce=box.nonce,
            ciphertext=bytes([box.ciphertext[0] ^ 1]) + box.ciphertext[1:],
            tag=box.tag,
        )
        with pytest.raises(SealError):
            open_sealed(b"key", tampered)

    def test_tampered_nonce_fails(self):
        box = seal(b"key", b"hello", b"nonce-12345678")
        tampered = SealedBox(nonce=b"another-nonce!!", ciphertext=box.ciphertext, tag=box.tag)
        with pytest.raises(SealError):
            open_sealed(b"key", tampered)

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            seal(b"", b"data", b"nonce-12345678")

    def test_short_nonce_rejected(self):
        with pytest.raises(ValueError):
            seal(b"key", b"data", b"short")

    def test_ciphertext_differs_from_plaintext(self):
        box = seal(b"key", b"hello world, this is plaintext", b"nonce-12345678")
        assert box.ciphertext != b"hello world, this is plaintext"

    def test_different_nonces_give_different_ciphertexts(self):
        a = seal(b"key", b"same message", b"nonce-aaaaaaaa")
        b = seal(b"key", b"same message", b"nonce-bbbbbbbb")
        assert a.ciphertext != b.ciphertext

    def test_empty_plaintext_roundtrip(self):
        box = seal(b"key", b"", b"nonce-12345678")
        assert open_sealed(b"key", box) == b""

    def test_box_size(self):
        box = seal(b"key", b"12345", b"nonce-12345678")
        assert box.size() == len(box.nonce) + len(box.ciphertext) + len(box.tag)


class TestPublicKeySealing:
    def test_roundtrip_to_keypair_owner(self):
        botmaster = KeyPair.from_seed(b"cc")
        box = seal_to_public(botmaster.public.material, b"K_B material", b"nonce-12345678")
        opened = open_from_private(botmaster.private, botmaster.public.material, box)
        assert opened == b"K_B material"

    def test_open_requires_private_material(self):
        botmaster = KeyPair.from_seed(b"cc")
        box = seal_to_public(botmaster.public.material, b"secret", b"nonce-12345678")
        with pytest.raises(ValueError):
            open_from_private(b"", botmaster.public.material, box)

    def test_wrong_recipient_cannot_open(self):
        botmaster = KeyPair.from_seed(b"cc")
        other = KeyPair.from_seed(b"other")
        box = seal_to_public(botmaster.public.material, b"secret", b"nonce-12345678")
        with pytest.raises(SealError):
            open_from_private(other.private, other.public.material, box)
