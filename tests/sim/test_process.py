"""Tests for periodic processes."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess, ProcessState


class TestPeriodicProcess:
    def test_ticks_at_regular_intervals(self):
        sim = Simulator()
        times = []
        sim.every(10.0, lambda: times.append(sim.now))
        sim.run(until=35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_start_delay_overrides_first_tick(self):
        sim = Simulator()
        times = []
        sim.every(10.0, lambda: times.append(sim.now), start_delay=1.0)
        sim.run(until=25.0)
        assert times == [1.0, 11.0, 21.0]

    def test_max_ticks_stops_process(self):
        sim = Simulator()
        count = []
        process = sim.every(5.0, lambda: count.append(1), max_ticks=3)
        sim.run(until=100.0)
        assert len(count) == 3
        assert process.state is ProcessState.STOPPED

    def test_stop_cancels_future_ticks(self):
        sim = Simulator()
        count = []
        process = sim.every(5.0, lambda: count.append(1))
        sim.run(until=12.0)
        process.stop()
        sim.run(until=100.0)
        assert len(count) == 2
        assert not process.is_running

    def test_invalid_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicProcess(sim, 0.0, lambda: None)

    def test_invalid_jitter_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicProcess(sim, 10.0, lambda: None, jitter=10.0)

    def test_jitter_displaces_ticks_but_keeps_count(self):
        sim = Simulator(seed=3)
        times = []
        sim.every(10.0, lambda: times.append(sim.now), jitter=2.0, name="jittery")
        sim.run(until=55.0)
        assert 4 <= len(times) <= 6
        # Ticks should not be exactly on the multiples of 10 (with overwhelming
        # probability given a 2-second jitter).
        assert any(abs(time % 10.0) > 1e-9 for time in times)

    def test_tick_counter(self):
        sim = Simulator()
        process = sim.every(1.0, lambda: None)
        sim.run(until=5.5)
        assert process.ticks == 5

    def test_starting_twice_is_idempotent(self):
        sim = Simulator()
        process = sim.every(1.0, lambda: None)
        assert process.start() is process
        sim.run(until=3.0)
        assert process.ticks == 3
