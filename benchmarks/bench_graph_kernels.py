"""Graph-kernel backend benchmark: pure-Python BFS vs vectorized CSR.

Times the two hot kernels of every resilience sweep -- connected components
and the sampled diameter estimator -- on k-regular graphs at n in {1k, 5k,
20k, 100k} under both backends, and writes the measurements to
``BENCH_graph_kernels.json`` at the repository root (the first entry of the
kernel-benchmark trajectory; future PRs append runs to compare against).

The fast timings are measured *cold*: the CSR cache is dropped before each
repetition, so the reported numbers include the UndirectedGraph -> CSR
conversion that a real checkpoint pays after a batch of deletions.

Asserted contract (the PR's acceptance bar): at n=20k the fast backend is at
least 10x faster on the combined connected-components + sampled-diameter
workload.

Run directly for a quick smoke with a wall-clock bound (used by CI)::

    python benchmarks/bench_graph_kernels.py --sizes 1000 --max-seconds 60
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

SIZES = (1_000, 5_000, 20_000, 100_000)
K = 10
DIAMETER_SAMPLE = 32
#: Repetitions per (size, backend); the minimum is reported.
REPEATS = {1_000: 3, 5_000: 3, 20_000: 2, 100_000: 1}

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_graph_kernels.json"

SPEEDUP_FLOOR_AT_20K = 10.0


def _workload(module, graph, *, connected_components=True, diameter=True):
    """The benchmarked kernel pair, via one backend module."""
    results = {}
    if connected_components:
        results["components"] = module.number_connected_components(graph)
    if diameter:
        results["diameter"] = module.diameter(
            graph, sample_size=DIAMETER_SAMPLE, rng=random.Random(0)
        )
    return results


def _time_backend(module, graph, repeats: int, *, drop_csr_cache: bool = False):
    """``(best_seconds, workload_result)`` over ``repeats`` repetitions."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        if drop_csr_cache and hasattr(graph, "_csr_cache"):
            delattr(graph, "_csr_cache")
        started = time.perf_counter()
        result = _workload(module, graph)
        best = min(best, time.perf_counter() - started)
    return best, result


def run_benchmark(sizes=SIZES, *, emit=print) -> dict:
    """Measure both backends at every size and return the report dict."""
    from repro.graphs import fast, metrics
    from repro.graphs.generators import k_regular_graph

    rows = []
    for n in sizes:
        repeats = REPEATS.get(n, 1)
        graph = k_regular_graph(n, K, seed=1000 + n)
        python_seconds, python_result = _time_backend(metrics, graph, repeats)
        fast_seconds, fast_result = _time_backend(fast, graph, repeats, drop_csr_cache=True)
        # Sanity: both backends agree on the benchmarked graph.
        assert python_result == fast_result
        speedup = python_seconds / fast_seconds if fast_seconds else float("inf")
        rows.append(
            {
                "n": n,
                "k": K,
                "edges": graph.number_of_edges(),
                "diameter_sample": DIAMETER_SAMPLE,
                "repeats": repeats,
                "python_seconds": round(python_seconds, 6),
                "fast_seconds": round(fast_seconds, 6),
                "speedup": round(speedup, 2),
            }
        )
        emit(
            f"n={n:>7,}  python={python_seconds:8.3f}s  "
            f"fast={fast_seconds:8.4f}s  speedup={speedup:7.1f}x"
        )
    return {
        "benchmark": "graph_kernels",
        "workload": "connected_components + sampled diameter "
        f"(sample={DIAMETER_SAMPLE}) on k-regular graphs (k={K})",
        "timing": "best-of-repeats wall clock; fast timings include the "
        "UndirectedGraph->CSR conversion (cold cache)",
        "rows": rows,
    }


def write_report(report: dict, path: Path = OUTPUT) -> None:
    path.write_text(json.dumps(report, indent=2) + "\n")


def test_graph_kernel_speedup(benchmark):
    """Fast backend >= 10x at n=20k on CC + sampled diameter; emit the JSON."""
    from conftest import emit

    report = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    write_report(report)
    emit(
        "Graph-kernel backends — python vs fast (CSR)",
        json.dumps(report["rows"], indent=2) + f"\nwritten to {OUTPUT}",
    )
    at_20k = next(row for row in report["rows"] if row["n"] == 20_000)
    assert at_20k["speedup"] >= SPEEDUP_FLOOR_AT_20K, (
        f"fast backend only {at_20k['speedup']}x at n=20k "
        f"(floor {SPEEDUP_FLOOR_AT_20K}x)"
    )
    # Every size must still benefit, even where fixed numpy costs loom larger.
    assert all(row["speedup"] > 1.0 for row in report["rows"])


def main(argv=None) -> int:
    """CLI smoke mode: bounded sizes and a wall-clock sanity ceiling."""
    import argparse
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", default="1000", help="comma-separated graph sizes (default: 1000)"
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="fail when the whole run exceeds this wall-clock bound",
    )
    parser.add_argument(
        "--json", action="store_true", help="also write BENCH_graph_kernels.json"
    )
    args = parser.parse_args(argv)
    sizes = tuple(int(size) for size in args.sizes.split(","))

    started = time.perf_counter()
    report = run_benchmark(sizes)
    elapsed = time.perf_counter() - started
    if args.json:
        write_report(report)
        print(f"written: {OUTPUT}")
    print(f"total: {elapsed:.2f}s")
    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(f"FAIL: exceeded --max-seconds {args.max_seconds}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
