"""The discrete-event simulator.

:class:`Simulator` owns the clock, the event queue, seeded randomness, metric
collection and the trace log.  Higher layers (the Tor model, overlays,
adversaries) hold a reference to one simulator instance and schedule their
behaviour through it.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue
from repro.sim.metrics import MetricRecorder
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceLog


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests."""


class Simulator:
    """Deterministic single-threaded discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed from which every named random stream is derived.
    start_time:
        Initial simulated timestamp (seconds).
    trace:
        Whether to record structured traces (disable for large sweeps).
    """

    def __init__(self, seed: int = 0, start_time: float = 0.0, trace: bool = True) -> None:
        self.clock = SimClock(start=start_time)
        self.queue = EventQueue()
        self.random = RandomStreams(seed)
        self.metrics = MetricRecorder()
        self.trace = TraceLog(enabled=trace)
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self,
        timestamp: float,
        action: Callable[[], Any],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute simulated time ``timestamp``."""
        if timestamp < self.now:
            raise SimulationError(
                f"cannot schedule event {label!r} in the past "
                f"({timestamp} < {self.now})"
            )
        return self.queue.push(timestamp, action, priority=priority, label=label)

    def schedule_in(
        self,
        delay: float,
        action: Callable[[], Any],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        return self.schedule_at(self.now + delay, action, priority=priority, label=label)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        self.queue.cancel(event)

    def every(
        self,
        interval: float,
        action: Callable[[], None],
        *,
        name: str = "process",
        jitter: float = 0.0,
        start_delay: Optional[float] = None,
        max_ticks: Optional[int] = None,
    ) -> PeriodicProcess:
        """Create and start a :class:`PeriodicProcess`."""
        process = PeriodicProcess(
            self,
            interval,
            action,
            name=name,
            jitter=jitter,
            start_delay=start_delay,
            max_ticks=max_ticks,
        )
        return process.start()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns ``False`` if none remained."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.timestamp)
        self.events_processed += 1
        event.action()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or the budget ends.

        Parameters
        ----------
        until:
            Stop once the next event would fire after this simulated time.
            The clock is advanced to ``until`` when the horizon is hit.
        max_events:
            Optional cap on the number of events processed in this call.

        Returns
        -------
        int
            Number of events processed during this call.
        """
        processed = 0
        while True:
            if max_events is not None and processed >= max_events:
                return processed
            next_time = self.queue.peek_time()
            if next_time is None:
                if until is not None and until > self.now:
                    self.clock.advance_to(until)
                return processed
            if until is not None and next_time > until:
                self.clock.advance_to(until)
                return processed
            if not self.step():
                return processed
            processed += 1

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        """Run for ``duration`` simulated seconds from the current time."""
        if duration < 0:
            raise SimulationError(f"duration must be non-negative, got {duration!r}")
        return self.run(until=self.now + duration, max_events=max_events)

    # ------------------------------------------------------------------
    # Tracing helper
    # ------------------------------------------------------------------
    def log(self, category: str, message: str, **details: Any) -> None:
        """Record a trace entry stamped with the current simulated time."""
        self.trace.record(self.now, category, message, **details)
