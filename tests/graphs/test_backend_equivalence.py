"""Differential harness: the fast CSR backend must match the Python reference.

Every fast kernel is run against the pure-Python implementation in
:mod:`repro.graphs.metrics` over a zoo of seeded graph families (k-regular,
Erdos--Renyi, Barabasi--Albert, ring, partitioned variants, and empty /
singleton edge cases).  Integer metrics must match exactly; float metrics are
checked with ``math.isclose`` (in practice they are bit-identical, because the
fast kernels mirror the reference's arithmetic).  Sampled estimators are fed
the *same* rng seed on both sides and must agree exactly, which pins down not
just the math but the rng consumption pattern.
"""

from __future__ import annotations

import math
import random

import pytest

np = pytest.importorskip("numpy")

from repro.graphs import backend, fast, metrics
from repro.graphs.adjacency import UndirectedGraph
from repro.graphs.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    k_regular_graph,
    relabel,
    ring_graph,
)
from repro.graphs.partition import (
    analyze_partition,
    minimum_partition_fraction,
    partition_after_fraction,
    simultaneous_deletion_survivors,
)

SAMPLE_SIZES = (None, 5)


def _partitioned_k_regular(n: int, k: int, removed_fraction: float, seed: int) -> UndirectedGraph:
    """A k-regular graph with a simultaneous mass removal applied (no repair)."""
    graph = k_regular_graph(n, k, seed=seed)
    rng = random.Random(seed + 1)
    victims = rng.sample(graph.nodes(), int(removed_fraction * n))
    return simultaneous_deletion_survivors(graph, victims)


def _partitioned_sparse_ids(seed: int) -> UndirectedGraph:
    """Disconnected components over large, sparse integer node ids.

    Regression shape for the backend-identity contract: with ids drawn from a
    huge range, CPython set iteration order depends on how the set was built
    (hash collisions), so any code path that iterates a component *set*
    instead of canonical graph order diverges between backends -- exactly
    what a late 100k-node resilience checkpoint looks like.
    """
    rng = random.Random(seed)
    ids = rng.sample(range(100_000), 240)
    graph = UndirectedGraph(nodes=ids)
    # Three path-shaped components of uneven length plus leftover dust.
    for chunk in (ids[0:100], ids[100:180], ids[180:220]):
        for u, v in zip(chunk, chunk[1:]):
            graph.add_edge(u, v)
    return graph


def _two_rings_and_dust() -> UndirectedGraph:
    """Two disjoint rings plus isolated nodes: several components, exact ties."""
    graph = ring_graph(12)
    other = relabel(ring_graph(12), {node: node + 100 for node in range(12)})
    for node in other.nodes():
        graph.add_node(node)
    for u, v in other.edges():
        graph.add_edge(u, v)
    for dust in (500, 501, 502):
        graph.add_node(dust)
    return graph


def graph_zoo():
    """(name, graph) pairs covering the families the experiments touch."""
    return [
        ("k-regular-small", k_regular_graph(30, 4, seed=11)),
        ("k-regular", k_regular_graph(90, 6, seed=12)),
        ("erdos-renyi-sparse", erdos_renyi_graph(80, 0.02, seed=13)),
        ("erdos-renyi-dense", erdos_renyi_graph(60, 0.15, seed=14)),
        ("barabasi-albert", barabasi_albert_graph(70, 3, seed=15)),
        ("ring", ring_graph(41)),
        ("partitioned-k-regular", _partitioned_k_regular(80, 6, 0.45, seed=16)),
        ("partitioned-sparse-ids", _partitioned_sparse_ids(seed=17)),
        ("two-rings-and-dust", _two_rings_and_dust()),
        ("empty", UndirectedGraph()),
        ("singleton", UndirectedGraph(nodes=["only"])),
        ("two-isolated", UndirectedGraph(nodes=[0, 1])),
        ("single-edge", UndirectedGraph(edges=[(0, 1)])),
        ("star", UndirectedGraph(edges=[(0, leaf) for leaf in range(1, 9)])),
    ]


ZOO = graph_zoo()


@pytest.fixture(params=ZOO, ids=[name for name, _ in ZOO])
def zoo_graph(request):
    return request.param[1]


# ----------------------------------------------------------------------
# Per-kernel equivalence
# ----------------------------------------------------------------------
def test_connected_components_identical(zoo_graph):
    # Exact list equality: same sets in the same (size-desc, discovery) order.
    assert fast.connected_components(zoo_graph) == metrics.connected_components(zoo_graph)
    assert fast.number_connected_components(zoo_graph) == metrics.number_connected_components(
        zoo_graph
    )


def test_component_summary_matches_reference(zoo_graph):
    components = metrics.connected_components(zoo_graph)
    expected = (len(components), len(components[0])) if components else (0, 0)
    assert fast.component_summary(zoo_graph) == expected


def test_largest_component_fraction_identical(zoo_graph):
    assert math.isclose(
        fast.largest_component_fraction(zoo_graph),
        metrics.largest_component_fraction(zoo_graph),
        rel_tol=0.0,
        abs_tol=0.0,
    )


def test_shortest_path_lengths_identical(zoo_graph):
    for source in list(zoo_graph.nodes())[:6]:
        assert fast.shortest_path_lengths_from(zoo_graph, source) == (
            metrics.shortest_path_lengths_from(zoo_graph, source)
        )


def test_eccentricity_identical(zoo_graph):
    for node in list(zoo_graph.nodes())[:6]:
        assert fast.eccentricity(zoo_graph, node) == metrics.eccentricity(zoo_graph, node)


def test_closeness_centrality_identical(zoo_graph):
    for node in list(zoo_graph.nodes())[:6]:
        assert math.isclose(
            fast.closeness_centrality(zoo_graph, node),
            metrics.closeness_centrality(zoo_graph, node),
            rel_tol=1e-12,
        )


@pytest.mark.parametrize("sample_size", SAMPLE_SIZES)
def test_average_closeness_identical(zoo_graph, sample_size):
    reference = metrics.average_closeness_centrality(
        zoo_graph, sample_size=sample_size, rng=random.Random(7)
    )
    vectorized = fast.average_closeness_centrality(
        zoo_graph, sample_size=sample_size, rng=random.Random(7)
    )
    assert math.isclose(vectorized, reference, rel_tol=1e-12, abs_tol=0.0)


def test_degree_metrics_identical(zoo_graph):
    assert fast.degree_histogram(zoo_graph) == metrics.degree_histogram(zoo_graph)
    assert math.isclose(
        fast.average_degree_centrality(zoo_graph),
        metrics.average_degree_centrality(zoo_graph),
        rel_tol=0.0,
        abs_tol=0.0,
    )
    for node in list(zoo_graph.nodes())[:6]:
        assert fast.degree_centrality(zoo_graph, node) == metrics.degree_centrality(
            zoo_graph, node
        )


@pytest.mark.parametrize("sample_size", SAMPLE_SIZES)
def test_diameter_identical(zoo_graph, sample_size):
    reference = metrics.diameter(zoo_graph, sample_size=sample_size, rng=random.Random(21))
    vectorized = fast.diameter(zoo_graph, sample_size=sample_size, rng=random.Random(21))
    assert vectorized == reference


def test_diameter_infinite_on_partitioned(zoo_graph):
    reference = metrics.diameter(zoo_graph, largest_component_only=False)
    vectorized = fast.diameter(zoo_graph, largest_component_only=False)
    assert vectorized == reference


@pytest.mark.parametrize("sample_size", SAMPLE_SIZES)
def test_average_shortest_path_identical(zoo_graph, sample_size):
    reference = metrics.average_shortest_path_length(
        zoo_graph, sample_size=sample_size, rng=random.Random(23)
    )
    vectorized = fast.average_shortest_path_length(
        zoo_graph, sample_size=sample_size, rng=random.Random(23)
    )
    assert math.isclose(vectorized, reference, rel_tol=1e-12, abs_tol=0.0)


def test_connected_flag_does_not_change_connected_results():
    graph = k_regular_graph(64, 6, seed=31)
    for fn in (metrics.diameter, fast.diameter):
        assert fn(graph, sample_size=8, rng=random.Random(1), connected=True) == fn(
            graph, sample_size=8, rng=random.Random(1)
        )
    for fn in (metrics.average_shortest_path_length, fast.average_shortest_path_length):
        assert fn(graph, sample_size=8, rng=random.Random(1), connected=True) == fn(
            graph, sample_size=8, rng=random.Random(1)
        )


def test_partition_summary_after_removal_identical(zoo_graph):
    nodes = zoo_graph.nodes()
    victims = random.Random(41).sample(nodes, len(nodes) // 3) if nodes else []
    survivors = simultaneous_deletion_survivors(zoo_graph, victims)
    report = analyze_partition(survivors)
    assert fast.partition_summary_after_removal(zoo_graph, victims) == (
        report.surviving_nodes,
        report.component_count,
        report.largest_component,
        report.isolated_nodes,
    )


def test_partition_search_identical_across_backends():
    graph = k_regular_graph(120, 6, seed=43)
    with backend.using("python"):
        reference = minimum_partition_fraction(graph, rng=random.Random(5), resolution=0.1)
        reference_report = partition_after_fraction(graph, 0.5, rng=random.Random(6))
    with backend.using("fast"):
        vectorized = minimum_partition_fraction(graph, rng=random.Random(5), resolution=0.1)
        vectorized_report = partition_after_fraction(graph, 0.5, rng=random.Random(6))
    assert vectorized == reference
    assert vectorized_report == reference_report


def test_missing_node_raises_on_both_backends():
    graph = ring_graph(5)
    for impl in (metrics, fast):
        with pytest.raises(Exception):
            impl.shortest_path_lengths_from(graph, "ghost")
        with pytest.raises(Exception):
            impl.eccentricity(graph, "ghost")


def test_string_node_ids_supported():
    graph = UndirectedGraph(edges=[("a", "b"), ("b", "c"), ("x", "y")])
    assert fast.connected_components(graph) == metrics.connected_components(graph)
    assert fast.shortest_path_lengths_from(graph, "a") == metrics.shortest_path_lengths_from(
        graph, "a"
    )


# ----------------------------------------------------------------------
# Batched multi-source BFS
# ----------------------------------------------------------------------
def test_batched_bfs_matches_per_source(zoo_graph):
    """The packed wave reproduces per-source BFS distances exactly."""
    nodes = zoo_graph.nodes()
    if not nodes:
        assert fast.shortest_path_lengths_from_many(zoo_graph, []) == []
        return
    sources = nodes[:: max(1, len(nodes) // 10)]
    batched = fast.shortest_path_lengths_from_many(zoo_graph, sources)
    for source, distances in zip(sources, batched):
        assert distances == metrics.shortest_path_lengths_from(zoo_graph, source)


def test_batched_bfs_dispatcher_identical_across_backends(zoo_graph):
    sources = zoo_graph.nodes()[:7]
    with backend.using("python"):
        reference = backend.shortest_path_lengths_from_many(zoo_graph, sources)
    with backend.using("fast"):
        assert backend.shortest_path_lengths_from_many(zoo_graph, sources) == reference


def test_batched_bfs_chunks_past_wave_width():
    """More sources than one 64-bit wave: chunking must not change results."""
    graph = k_regular_graph(150, 6, seed=71)
    sources = graph.nodes()  # 150 sources -> 3 waves
    batched = fast.shortest_path_lengths_from_many(graph, sources)
    for source in (sources[0], sources[63], sources[64], sources[129], sources[149]):
        index = sources.index(source)
        assert batched[index] == metrics.shortest_path_lengths_from(graph, source)
    # The estimators run the same chunked waves over every node.
    assert fast.diameter(graph) == metrics.diameter(graph)
    assert fast.average_shortest_path_length(graph) == (
        metrics.average_shortest_path_length(graph)
    )


def test_batched_bfs_rejects_unknown_source():
    graph = ring_graph(6)
    with pytest.raises(Exception):
        fast.shortest_path_lengths_from_many(graph, [0, "ghost"])


# ----------------------------------------------------------------------
# Incremental CSR maintenance (delta patching)
# ----------------------------------------------------------------------
def _assert_all_metrics_match(graph):
    assert fast.connected_components(graph) == metrics.connected_components(graph)
    assert fast.component_summary(graph) == (
        (lambda components: (len(components), len(components[0])) if components else (0, 0))(
            metrics.connected_components(graph)
        )
    )
    assert fast.degree_histogram(graph) == metrics.degree_histogram(graph)
    assert fast.diameter(graph, sample_size=6, rng=random.Random(1)) == (
        metrics.diameter(graph, sample_size=6, rng=random.Random(1))
    )
    assert fast.average_degree_centrality(graph) == metrics.average_degree_centrality(graph)
    for node in list(graph.nodes())[:3]:
        assert fast.shortest_path_lengths_from(graph, node) == (
            metrics.shortest_path_lengths_from(graph, node)
        )


def test_incremental_patch_matches_full_rebuild():
    """Interleaved mutations patch the mirror; results equal a fresh build."""
    graph = k_regular_graph(300, 6, seed=81)
    fast.csr_of(graph)  # prime the cache so deltas apply to it
    rng = random.Random(82)
    rebuilds = 0
    original_build = fast.build_csr

    def counting_build(target):
        nonlocal rebuilds
        rebuilds += 1
        return original_build(target)

    fast.build_csr = counting_build
    try:
        for step in range(25):
            action = step % 5
            if action == 0:
                graph.remove_node(rng.choice(graph.nodes()))
            elif action == 1:
                u, v = rng.sample(graph.nodes(), 2)
                graph.add_edge(u, v)
            elif action == 2:
                u, v = graph.edges()[0]
                graph.remove_edge(u, v)
            elif action == 3:
                graph.add_node(f"new-{step}")
                graph.add_edge(f"new-{step}", rng.choice(graph.nodes()))
            else:
                # Re-add an id ghosted in an *earlier* window.
                victim = rng.choice(graph.nodes())
                graph.remove_node(victim)
                fast.csr_of(graph)  # sync: the removal lands in its own window
                graph.add_node(victim)
                graph.add_edge(victim, rng.choice([n for n in graph.nodes() if n != victim]))
            _assert_all_metrics_match(graph)
        csr = fast.csr_of(graph)
        assert csr.alive is not None and csr.ghost_count > 0
    finally:
        fast.build_csr = original_build
    assert rebuilds == 0, "delta patching should have avoided every rebuild"
    # A patched mirror and a fresh rebuild describe the same graph.
    fresh = fast.build_csr(graph)
    patched = fast.csr_of(graph)
    assert sorted(map(repr, fresh.index_of)) == sorted(map(repr, patched.index_of))
    assert int(fresh.indptr[-1]) == int(patched.indptr[-1])


def test_delta_log_overflow_triggers_rebuild(monkeypatch):
    graph = k_regular_graph(120, 6, seed=83)
    fast.csr_of(graph)
    monkeypatch.setattr("repro.graphs.adjacency.DELTA_LOG_LIMIT", 4)
    rng = random.Random(84)
    for _ in range(6):  # > limit: the log overflows and delta_since returns None
        graph.remove_node(rng.choice(graph.nodes()))
    assert graph.delta_since(graph.mutation_stamp - 1) is None
    _assert_all_metrics_match(graph)
    assert fast.csr_of(graph).alive is None  # rebuilt, not patched


def test_removed_then_readded_in_one_window_rebuilds_correctly():
    graph = ring_graph(40)
    fast.csr_of(graph)
    graph.remove_node(5)
    graph.add_node(5)
    graph.add_edge(5, 6)
    graph.add_edge(5, 4)
    _assert_all_metrics_match(graph)


def test_ghost_pressure_triggers_compaction(monkeypatch):
    monkeypatch.setattr(fast, "GHOST_SLACK", 4)
    graph = k_regular_graph(60, 4, seed=85)
    fast.csr_of(graph)
    rng = random.Random(86)
    for _ in range(40):
        graph.remove_node(rng.choice(graph.nodes()))
        fast.csr_of(graph)
    csr = fast.csr_of(graph)
    # Ghosts never outnumber max(GHOST_SLACK, live): compaction kicked in.
    assert csr.ghost_count <= max(4, graph.number_of_nodes())
    _assert_all_metrics_match(graph)


def test_patched_partition_summary_matches(zoo_graph):
    """Masked kernels respect the alive overlay after in-place mutations."""
    graph = zoo_graph.copy()
    fast.csr_of(graph)
    nodes = graph.nodes()
    for victim in nodes[: len(nodes) // 4]:
        graph.remove_node(victim)
    remaining = graph.nodes()
    victims = random.Random(87).sample(remaining, len(remaining) // 3) if remaining else []
    survivors = simultaneous_deletion_survivors(graph, victims)
    report = analyze_partition(survivors)
    assert fast.partition_summary_after_removal(graph, victims) == (
        report.surviving_nodes,
        report.component_count,
        report.largest_component,
        report.isolated_nodes,
    )


def test_add_leaf_equivalent_to_add_node_plus_edge():
    via_leaf = UndirectedGraph(edges=[(0, 1), (1, 2)])
    fast.csr_of(via_leaf)
    via_leaf.add_leaf("leaf", 1)
    via_generic = UndirectedGraph(edges=[(0, 1), (1, 2)])
    via_generic.add_node("leaf")
    via_generic.add_edge("leaf", 1)
    assert via_leaf.nodes() == via_generic.nodes()
    assert set(map(frozenset, via_leaf.edges())) == set(map(frozenset, via_generic.edges()))
    # Patched after the leaf insertion, kernels still agree with the oracle.
    _assert_all_metrics_match(via_leaf)
    # Fallback path: existing node id routes through the general insertion.
    via_leaf.add_leaf("leaf", 2)
    assert via_leaf.has_edge("leaf", 2)


def test_induced_component_summary_identical_across_backends(zoo_graph):
    nodes = zoo_graph.nodes()
    keep = random.Random(90).sample(nodes, (2 * len(nodes)) // 3) if nodes else []
    keep.append("not-in-graph")  # absent ids are ignored on both paths
    with backend.using("python"):
        reference = backend.induced_component_summary(zoo_graph, keep)
    with backend.using("fast"):
        assert backend.induced_component_summary(zoo_graph, keep) == reference
    # Cross-check against the victim-oriented masked kernel: keeping K is
    # removing everything else.
    victims = [node for node in nodes if node not in set(keep)]
    assert reference == backend.partition_summary_after_removal(zoo_graph, victims)


def test_induced_component_summary_ignores_duplicate_keeps():
    """A repeated keep id is one node on both backends (no phantom rows)."""
    graph = UndirectedGraph(edges=[(0, 1), (1, 2), (3, 4)])
    keep = [0, 0, 1, 3, 3, 3]
    with backend.using("python"):
        reference = backend.induced_component_summary(graph, keep)
    with backend.using("fast"):
        assert backend.induced_component_summary(graph, keep) == reference
    assert reference == (3, 2, 2, 1)  # {0,1} together, {3} isolated


def test_full_path_metrics_identical_across_backends(zoo_graph):
    """Exact largest-component diameter/ASPL/closeness: the dispatcher pair."""
    with backend.using("python"):
        reference = backend.full_path_metrics(zoo_graph)
    with backend.using("fast"):
        assert backend.full_path_metrics(zoo_graph) == reference


def test_path_length_accumulators_identical_across_backends(zoo_graph):
    with backend.using("python"):
        reference = backend.path_length_accumulators(zoo_graph)
    with backend.using("fast"):
        assert backend.path_length_accumulators(zoo_graph) == reference


# ----------------------------------------------------------------------
# Ghost-compaction and delta-log boundary cases
# ----------------------------------------------------------------------
def test_remove_readd_straddling_ghost_slack(monkeypatch):
    """Remove->re-add of one id while ghost pressure crosses the threshold.

    The same-id re-add within one window forces a rebuild regardless; the
    interesting part is that it stays correct exactly *at* and *past* the
    ``GHOST_SLACK`` compaction boundary, where the patch path would have
    chosen a full rebuild anyway and the two decisions must compose.
    """
    monkeypatch.setattr(fast, "GHOST_SLACK", 6)
    graph = k_regular_graph(80, 6, seed=91)
    fast.csr_of(graph)
    rng = random.Random(92)
    # Accumulate ghosts one sync at a time right up to the threshold.
    for _ in range(6):
        graph.remove_node(rng.choice(graph.nodes()))
        fast.csr_of(graph)
    assert fast.csr_of(graph).ghost_count <= max(6, graph.number_of_nodes())
    # Now straddle: one more removal *plus* a same-id remove->re-add in the
    # same window.
    victim = rng.choice(graph.nodes())
    other = rng.choice([n for n in graph.nodes() if n != victim])
    graph.remove_node(other)
    graph.remove_node(victim)
    graph.add_node(victim)
    anchor = rng.choice([n for n in graph.nodes() if n != victim])
    graph.add_edge(victim, anchor)
    _assert_all_metrics_match(graph)
    # The re-added node is fully live again on the patched-or-rebuilt mirror.
    assert fast.shortest_path_lengths_from(graph, victim) == (
        metrics.shortest_path_lengths_from(graph, victim)
    )
    # And the mirror agrees with a from-scratch build structurally (ghost
    # rows hold zero edges, so the edge-entry totals must be equal).
    fresh = fast.build_csr(graph)
    mirrored = fast.csr_of(graph)
    assert int(fresh.indptr[-1]) == int(mirrored.indptr[-1])
    assert sorted(map(repr, fresh.index_of)) == sorted(map(repr, mirrored.index_of))


def test_ghost_readd_exactly_at_compaction_threshold(monkeypatch):
    """Ghost count exactly equal to the threshold still patches (strict >)."""
    monkeypatch.setattr(fast, "GHOST_SLACK", 3)
    graph = k_regular_graph(40, 4, seed=93)
    fast.csr_of(graph)
    rng = random.Random(94)
    for expected_ghosts in (1, 2, 3):
        graph.remove_node(rng.choice(graph.nodes()))
        csr = fast.csr_of(graph)
        if expected_ghosts <= max(3, graph.number_of_nodes()):
            assert csr.ghost_count == expected_ghosts  # patched, not compacted
        _assert_all_metrics_match(graph)


def test_delta_since_after_exactly_log_limit_ops(monkeypatch):
    """A window of exactly ``DELTA_LOG_LIMIT`` ops is still fully patchable."""
    monkeypatch.setattr("repro.graphs.adjacency.DELTA_LOG_LIMIT", 6)
    graph = k_regular_graph(60, 4, seed=95)
    csr_before = fast.csr_of(graph)
    stamp = graph.mutation_stamp
    edges = graph.edges()
    for u, v in edges[:6]:  # exactly DELTA_LOG_LIMIT primitive mutations
        graph.remove_edge(u, v)
    ops = graph.delta_since(stamp)
    assert ops is not None and len(ops) == 6
    _assert_all_metrics_match(graph)
    assert fast.csr_of(graph) is not csr_before  # resynchronised
    # One more window: limit + 1 ops must overflow and rebuild instead.
    stamp = graph.mutation_stamp
    for u, v in graph.edges()[:7]:
        graph.remove_edge(u, v)
    assert graph.delta_since(stamp) is None
    _assert_all_metrics_match(graph)


def test_overflow_mid_node_removal_stays_consistent(monkeypatch):
    """A node removal whose edge entries straddle the log limit overflows
    cleanly (the partial window is discarded, never half-applied)."""
    monkeypatch.setattr("repro.graphs.adjacency.DELTA_LOG_LIMIT", 3)
    graph = k_regular_graph(50, 6, seed=96)
    fast.csr_of(graph)
    stamp = graph.mutation_stamp
    graph.remove_node(graph.nodes()[0])  # 6 "-e" entries + "-n": overflows
    assert graph.delta_since(stamp) is None
    _assert_all_metrics_match(graph)
    assert fast.csr_of(graph).alive is None  # rebuilt, not patched


def test_delta_log_disarmed_until_first_backend_sync():
    """Graphs that never touch the CSR layer record no mutation log."""
    graph = ring_graph(12)
    assert graph._delta_log is None
    graph.remove_edge(0, 1)
    assert graph._delta_log is None  # still disarmed: no consumer yet
    fast.csr_of(graph)  # first sync arms the log
    graph.remove_edge(1, 2)
    assert graph.delta_since(graph.mutation_stamp - 1) == [("-e", 1, 2)]
    assert fast.connected_components(graph) == metrics.connected_components(graph)


def test_top_degree_nodes_identical_across_backends(zoo_graph):
    with backend.using("python"):
        reference = backend.top_degree_nodes(zoo_graph)
    with backend.using("fast"):
        assert backend.top_degree_nodes(zoo_graph) == reference


def test_top_degree_nodes_after_patching():
    graph = k_regular_graph(100, 6, seed=88)
    with backend.using("fast"):
        backend.top_degree_nodes(graph)  # prime the CSR cache
        rng = random.Random(89)
        for _ in range(10):
            graph.remove_node(rng.choice(graph.nodes()))
            with backend.using("python"):
                reference = backend.top_degree_nodes(graph)
            assert backend.top_degree_nodes(graph) == reference


# ----------------------------------------------------------------------
# CSR cache behaviour
# ----------------------------------------------------------------------
def test_csr_cache_reused_until_mutation():
    graph = k_regular_graph(40, 4, seed=51)
    first = fast.csr_of(graph)
    assert fast.csr_of(graph) is first  # no mutation -> same snapshot
    graph.remove_edge(*graph.edges()[0])
    second = fast.csr_of(graph)
    assert second is not first
    # Metric reads (non-mutating) keep the snapshot stable.
    fast.connected_components(graph)
    assert fast.csr_of(graph) is second


def test_csr_cache_invalidated_by_every_mutation_kind():
    graph = ring_graph(10)
    baseline = metrics.connected_components(graph)
    assert fast.connected_components(graph) == baseline

    graph.remove_edge(0, 1)
    assert fast.connected_components(graph) == metrics.connected_components(graph)
    graph.add_edge(0, 1)
    assert fast.connected_components(graph) == metrics.connected_components(graph)
    graph.remove_node(5)
    assert fast.connected_components(graph) == metrics.connected_components(graph)
    graph.add_node("fresh")
    assert fast.connected_components(graph) == metrics.connected_components(graph)


def test_overlay_repair_loop_stays_equivalent():
    """Interleave DDSR deletions (mutations) with fast metric reads."""
    from repro.core.ddsr import DDSROverlay

    overlay = DDSROverlay.k_regular(60, 6, seed=61)
    rng = random.Random(62)
    for _ in range(12):
        overlay.remove_node(rng.choice(overlay.nodes()))
        assert fast.number_connected_components(overlay.graph) == (
            metrics.number_connected_components(overlay.graph)
        )
        assert fast.degree_histogram(overlay.graph) == metrics.degree_histogram(overlay.graph)
        with backend.using("python"):
            reference_summary = overlay.connectivity_summary()
        with backend.using("fast"):
            assert overlay.connectivity_summary() == reference_summary


# ----------------------------------------------------------------------
# Backend selection layer
# ----------------------------------------------------------------------
def test_backend_use_and_restore():
    graph = ring_graph(5)
    previous = backend.use("python")
    try:
        assert backend.resolve_for(graph) == "python"
        with backend.using("fast"):
            assert backend.resolve_for(graph) == "fast"
        assert backend.resolve_for(graph) == "python"
    finally:
        backend.use(previous)


def test_backend_env_var_selection(monkeypatch):
    graph = ring_graph(5)
    previous = backend.use(None)
    try:
        monkeypatch.setenv(backend.ENV_VAR, "fast")
        assert backend.policy() == "fast"
        assert backend.resolve_for(graph) == "fast"
        monkeypatch.setenv(backend.ENV_VAR, "python")
        assert backend.resolve_for(graph) == "python"
        monkeypatch.setenv(backend.ENV_VAR, "bogus")
        with pytest.raises(backend.BackendError):
            backend.policy()
    finally:
        backend.use(previous)


def test_backend_auto_picks_by_size(monkeypatch):
    previous = backend.use("auto")
    try:
        monkeypatch.delenv(backend.ENV_VAR, raising=False)
        small = ring_graph(8)
        assert backend.resolve_for(small) == "python"
        big = UndirectedGraph(nodes=range(backend.AUTO_THRESHOLD))
        assert backend.resolve_for(big) == "fast"
    finally:
        backend.use(previous)


def test_backend_rejects_unknown_name():
    with pytest.raises(backend.BackendError):
        backend.use("numba")


def test_backend_dispatchers_cover_every_metric():
    graph = _two_rings_and_dust()
    with backend.using("fast"):
        assert backend.connected_components(graph) == metrics.connected_components(graph)
        assert backend.number_connected_components(graph) == (
            metrics.number_connected_components(graph)
        )
        assert backend.largest_component_fraction(graph) == (
            metrics.largest_component_fraction(graph)
        )
        assert backend.degree_histogram(graph) == metrics.degree_histogram(graph)
        assert backend.average_degree_centrality(graph) == (
            metrics.average_degree_centrality(graph)
        )
        assert backend.diameter(graph) == metrics.diameter(graph)
        assert backend.average_shortest_path_length(graph) == (
            metrics.average_shortest_path_length(graph)
        )
        assert backend.eccentricity(graph, 0) == metrics.eccentricity(graph, 0)
        assert backend.closeness_centrality(graph, 0) == metrics.closeness_centrality(graph, 0)
        assert backend.degree_centrality(graph, 0) == metrics.degree_centrality(graph, 0)
        assert backend.shortest_path_lengths_from(graph, 0) == (
            metrics.shortest_path_lengths_from(graph, 0)
        )
        assert backend.average_closeness_centrality(
            graph, sample_size=4, rng=random.Random(3)
        ) == metrics.average_closeness_centrality(graph, sample_size=4, rng=random.Random(3))
        assert backend.component_summary(graph) == fast.component_summary(graph)
        assert backend.full_path_metrics(graph) == metrics.full_path_metrics(graph)
        assert backend.path_length_accumulators(graph) == (
            metrics.path_length_accumulators(graph)
        )
