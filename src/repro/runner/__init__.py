"""Declarative scenario registry with parallel, cached experiment orchestration.

The runner is the execution layer for every evaluation artifact in this
reproduction:

* :mod:`~repro.runner.registry` -- ``@scenario`` decorator and name lookup;
* :mod:`~repro.runner.spec` -- :class:`ScenarioSpec` (params x grid x trials
  x seed) expanded into deterministic work units;
* :mod:`~repro.runner.executor` -- serial or process-parallel execution with
  bit-identical results either way;
* :mod:`~repro.runner.cache` -- per-unit on-disk JSON cache keyed by a stable
  hash of the unit's full identity;
* :mod:`~repro.runner.journal` -- crash-safe per-campaign progress journals
  behind ``--resume`` (bit-identical replay of completed units);
* :mod:`~repro.runner.faults` -- deterministic fault injection
  (``REPRO_FAULTS`` / ``--inject-faults``) for chaos-testing the pool,
  executor and cache failure paths;
* :mod:`~repro.runner.stats` -- streaming Welford aggregation with
  confidence intervals;
* :mod:`~repro.runner.scenarios` -- built-in scenarios: paper-figure wrappers
  plus composed attack/defense/workload studies;
* :mod:`~repro.runner.cli` -- ``python -m repro.runner list|run|sweep``.

Quickstart::

    from repro.runner import run_scenario

    result = run_scenario(
        "soap-under-churn",
        grid={"join_rate": [1.0, 3.0]},
        trials=5,
        seed=7,
        workers=4,
    )
    for row in result.rows():
        print(row)
"""

from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runner.executor import RunResult, execute, run_scenario
from repro.runner.faults import InjectedFault, fault_point
from repro.runner.grid import expand_grid
from repro.runner.journal import CampaignJournal, journal_header
from repro.runner.pool import PoolError, PoolTaskError, TransientTaskError
from repro.runner.registry import (
    Scenario,
    ScenarioError,
    all_scenarios,
    get_scenario,
    scenario,
    scenario_names,
)
from repro.runner.spec import ScenarioSpec, WorkUnit
from repro.runner.stats import MetricAggregator, StreamingStat, summarize_trials

__all__ = [
    "CampaignJournal",
    "DEFAULT_CACHE_DIR",
    "InjectedFault",
    "MetricAggregator",
    "PoolError",
    "PoolTaskError",
    "ResultCache",
    "RunResult",
    "Scenario",
    "ScenarioError",
    "ScenarioSpec",
    "StreamingStat",
    "TransientTaskError",
    "WorkUnit",
    "all_scenarios",
    "execute",
    "expand_grid",
    "fault_point",
    "get_scenario",
    "journal_header",
    "run_scenario",
    "scenario",
    "scenario_names",
    "summarize_trials",
]
